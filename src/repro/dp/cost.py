"""Kernel-level DP cost estimation.

Translates a DP kernel's DPX-call count into estimated GPU time using
the per-device DPX throughput model — the algorithm-level view of
Fig 7's instruction-level numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import DeviceSpec
from repro.dpx import DpxTimingModel, get_dpx_function
from repro.dpx.functions import DpxFunction

__all__ = ["DpKernelEstimate", "estimate_kernel_time"]


@dataclass(frozen=True)
class DpKernelEstimate:
    """Estimated execution of one DP kernel on one device."""

    device: str
    dpx_calls: int
    hardware_dpx: bool
    seconds: float

    @property
    def calls_per_second(self) -> float:
        return self.dpx_calls / self.seconds if self.seconds else 0.0


def estimate_kernel_time(
    device: DeviceSpec,
    dpx_calls: int,
    *,
    function_name: str = "__viaddmax_s32_relu",
    utilization: float = 0.75,
) -> DpKernelEstimate:
    """Estimate a DP kernel dominated by one DPX intrinsic.

    ``utilization`` discounts peak DPX throughput for the wavefront's
    ramp-up/ramp-down (short anti-diagonals under-fill the machine).
    """
    if dpx_calls < 0:
        raise ValueError("dpx_calls must be non-negative")
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    fn: DpxFunction = get_dpx_function(function_name)
    model = DpxTimingModel(device)
    gops = model.throughput_gops(fn) * utilization
    return DpKernelEstimate(
        device=device.name,
        dpx_calls=dpx_calls,
        hardware_dpx=model.hardware,
        seconds=dpx_calls / (gops * 1e9) if dpx_calls else 0.0,
    )
