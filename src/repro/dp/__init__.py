"""Dynamic-programming algorithms on DPX intrinsics.

The application layer the paper's DPX section motivates (§III-D1):
genomics alignment and graph DP whose inner loops are exactly the
fused min/max patterns DPX accelerates.  Every kernel here

* computes its recurrence *through* :mod:`repro.dpx` intrinsics
  (vectorised along the anti-diagonal / row axis, the way a GPU kernel
  parallelises it),
* counts the DPX calls it issues, and
* prices itself on any device via the DPX timing model — giving the
  end-to-end speedup story (Hopper hardware DPX vs emulation) at the
  algorithm level rather than the instruction level.

Contents:

* :class:`SmithWaterman` / :class:`NeedlemanWunsch` — local/global
  sequence alignment (``__viaddmax_s32[_relu]`` inner loop),
* :class:`FloydWarshall` — all-pairs shortest paths
  (``__viaddmin_s32`` inner loop),
* :func:`estimate_kernel_time` — DPX-call-count × device throughput.
"""

from __future__ import annotations

from repro.dp.alignment import (
    AlignmentResult,
    NeedlemanWunsch,
    SmithWaterman,
)
from repro.dp.graph import FloydWarshall, ShortestPathResult
from repro.dp.cost import DpKernelEstimate, estimate_kernel_time

__all__ = [
    "SmithWaterman",
    "NeedlemanWunsch",
    "AlignmentResult",
    "FloydWarshall",
    "ShortestPathResult",
    "DpKernelEstimate",
    "estimate_kernel_time",
]
