"""Graph dynamic programming on DPX: Floyd-Warshall.

All-pairs shortest paths with the relaxation
``D[i][j] = min(D[i][j], D[i][k] + D[k][j])`` expressed as one
``__viaddmin_s32`` per cell per pivot — a row-vectorised GPU-style
sweep.  Distances are exact 32-bit integers; results are verified
against :func:`scipy.sparse.csgraph.floyd_warshall`-style references
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dpx import get_dpx_function

__all__ = ["ShortestPathResult", "FloydWarshall"]

_viaddmin = get_dpx_function("__viaddmin_s32")

#: "unreachable" sentinel, chosen so sums never wrap 32 bits
INF = 1 << 28


@dataclass(frozen=True)
class ShortestPathResult:
    """All-pairs distances + DPX-call accounting."""

    distances: np.ndarray
    dpx_calls: int
    n: int

    def distance(self, u: int, v: int) -> int | None:
        d = int(self.distances[u, v])
        return None if d >= INF else d


class FloydWarshall:
    """All-pairs shortest paths over a non-negative weight matrix."""

    def run(self, weights: np.ndarray) -> ShortestPathResult:
        """``weights[i, j]`` = edge weight, ``INF`` (or any value ≥
        INF) = no edge.  Diagonal is forced to zero."""
        w = np.asarray(weights)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError("weights must be a square matrix")
        if np.any(w < 0):
            raise ValueError("negative edge weights are not supported")
        n = w.shape[0]
        d = np.minimum(w.astype(np.int64), INF)
        np.fill_diagonal(d, 0)
        calls = 0
        for k in range(n):
            # one DPX relaxation per row: min(D[i,:], D[i,k] + D[k,:])
            col_k = d[:, k][:, None]      # broadcast D[i,k]
            row_k = d[k, :][None, :]      # broadcast D[k,j]
            d = _viaddmin(np.broadcast_to(col_k, d.shape),
                          np.broadcast_to(row_k, d.shape), d)
            d = np.minimum(d, INF)
            calls += n * n
        return ShortestPathResult(distances=d, dpx_calls=calls, n=n)

    @staticmethod
    def from_edges(n: int, edges) -> np.ndarray:
        """Build a weight matrix from ``(u, v, w)`` triples
        (undirected)."""
        w = np.full((n, n), INF, dtype=np.int64)
        np.fill_diagonal(w, 0)
        for u, v, weight in edges:
            if weight < 0:
                raise ValueError("negative edge weight")
            w[u, v] = min(w[u, v], weight)
            w[v, u] = min(w[v, u], weight)
        return w
