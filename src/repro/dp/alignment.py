"""Sequence alignment on DPX intrinsics.

Smith-Waterman (local) and Needleman-Wunsch (global) alignment with
linear gap penalties.  The recurrences are evaluated anti-diagonal by
anti-diagonal — the wavefront parallelisation a GPU kernel uses — with
the per-cell max chains expressed as DPX intrinsic calls:

* SW:  ``H[i,j] = relu(max(H[i-1,j-1] + s, max(H[i-1,j] - g, H[i,j-1] - g)))``
  → one ``__viaddmax_s32`` + one ``__viaddmax_s32_relu`` per cell,
* NW:  same without the ReLU clamp → two ``__viaddmax_s32``.

Scores are exact 32-bit integer DP; results are verified against naive
references in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dpx import get_dpx_function

__all__ = ["AlignmentResult", "SmithWaterman", "NeedlemanWunsch"]

_viaddmax = get_dpx_function("__viaddmax_s32")
_viaddmax_relu = get_dpx_function("__viaddmax_s32_relu")

#: a safely-representable "minus infinity" for NW borders
_NEG_INF = -(1 << 28)


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of one alignment."""

    score: int
    dpx_calls: int
    cells: int
    matrix: Optional[np.ndarray] = None

    @property
    def dpx_calls_per_cell(self) -> float:
        return self.dpx_calls / self.cells if self.cells else 0.0


def _encode(seq: str) -> np.ndarray:
    if not seq:
        raise ValueError("sequences must be non-empty")
    return np.frombuffer(seq.encode(), dtype=np.uint8)


class _AffineBase:
    """Shared wavefront machinery for linear-gap alignment."""

    def __init__(self, match: int = 3, mismatch: int = -2,
                 gap: int = 4) -> None:
        if gap < 0:
            raise ValueError("gap is a penalty; pass it positive")
        self.match = int(match)
        self.mismatch = int(mismatch)
        self.gap = int(gap)

    def _substitution(self, av, bv, i, j) -> np.ndarray:
        return np.where(av[i - 1] == bv[j - 1], self.match,
                        self.mismatch)

    def _sweep(self, a: str, b: str, *, local: bool,
               keep_matrix: bool) -> AlignmentResult:
        av, bv = _encode(a), _encode(b)
        n, m = len(av), len(bv)
        H = np.zeros((n + 1, m + 1), dtype=np.int64)
        if not local:
            H[:, 0] = -self.gap * np.arange(n + 1)
            H[0, :] = -self.gap * np.arange(m + 1)
        calls = 0
        for d in range(2, n + m + 1):
            i_lo, i_hi = max(1, d - m), min(n, d - 1)
            if i_lo > i_hi:
                continue
            i = np.arange(i_lo, i_hi + 1)
            j = d - i
            s = self._substitution(av, bv, i, j)
            diag, up, left = H[i - 1, j - 1], H[i - 1, j], H[i, j - 1]
            gap_vec = np.full_like(up, -self.gap)
            gaps = _viaddmax(up, gap_vec, left - self.gap)
            if local:
                H[i, j] = _viaddmax_relu(diag, s, gaps)
            else:
                H[i, j] = _viaddmax(diag, s, gaps)
            calls += 2 * len(i)
        score = int(H.max()) if local else int(H[n, m])
        return AlignmentResult(
            score=score, dpx_calls=calls, cells=n * m,
            matrix=H if keep_matrix else None,
        )


class SmithWaterman(_AffineBase):
    """Local alignment (the paper's canonical DPX workload)."""

    def align(self, a: str, b: str,
              keep_matrix: bool = False) -> AlignmentResult:
        return self._sweep(a, b, local=True, keep_matrix=keep_matrix)

    def score(self, a: str, b: str) -> int:
        return self.align(a, b).score


class NeedlemanWunsch(_AffineBase):
    """Global alignment."""

    def align(self, a: str, b: str,
              keep_matrix: bool = False) -> AlignmentResult:
        return self._sweep(a, b, local=False, keep_matrix=keep_matrix)

    def score(self, a: str, b: str) -> int:
        return self.align(a, b).score


def reference_smith_waterman(a: str, b: str, match=3, mismatch=-2,
                             gap=4) -> int:
    """Naive scalar reference (for tests)."""
    n, m = len(a), len(b)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            H[i, j] = max(0, H[i - 1, j - 1] + s, H[i - 1, j] - gap,
                          H[i, j - 1] - gap)
    return int(H.max())


def reference_needleman_wunsch(a: str, b: str, match=3, mismatch=-2,
                               gap=4) -> int:
    """Naive scalar reference (for tests)."""
    n, m = len(a), len(b)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    H[:, 0] = -gap * np.arange(n + 1)
    H[0, :] = -gap * np.arange(m + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            H[i, j] = max(H[i - 1, j - 1] + s, H[i - 1, j] - gap,
                          H[i, j - 1] - gap)
    return int(H[n, m])
