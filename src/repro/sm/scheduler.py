"""Wave-based block scheduler.

CUDA distributes blocks to SMs greedily; with uniform per-block work
the grid executes in *waves* of ``num_sms × blocks_per_sm`` blocks.
A grid of ``k · SMs + 1`` blocks therefore takes one extra full wave
for a single straggler block — the mechanism behind the paper's DPX
observation (§IV-E): throughput plummets just past SM-count multiples
and peaks exactly at them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch import DeviceSpec
from repro.obs import session as _obs
from repro.sm.occupancy import BlockConfig, Occupancy, occupancy

__all__ = ["KernelLaunch", "ScheduleResult", "schedule_blocks"]


@dataclass(frozen=True)
class KernelLaunch:
    """Grid/block (and optional cluster) shape of one kernel launch."""

    num_blocks: int
    block: BlockConfig
    cluster_size: int = 1

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if self.cluster_size > 1 and self.num_blocks % self.cluster_size:
            raise ValueError(
                "grid size must be a multiple of the cluster size"
            )

    @property
    def num_clusters(self) -> int:
        return self.num_blocks // self.cluster_size

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.block.threads


@dataclass(frozen=True)
class ScheduleResult:
    """How a launch maps onto the machine."""

    waves: int
    blocks_per_sm: int
    occupancy: Occupancy
    utilization: float   # mean fraction of block slots busy over the run

    @property
    def full(self) -> bool:
        return self.utilization >= 0.999


def schedule_blocks(
    device: DeviceSpec,
    launch: KernelLaunch,
    *,
    blocks_per_sm_override: Optional[int] = None,
) -> ScheduleResult:
    """Schedule ``launch`` on ``device``.

    ``utilization`` is ``num_blocks / (waves × capacity)`` — the mean
    busy fraction across the run.  A kernel whose throughput scales
    with busy block slots (like the DPX benchmark) achieves
    ``peak × utilization``, which produces the sawtooth.

    Clusters must be co-resident: a cluster's blocks occupy SMs of one
    GPC together, so scheduling proceeds in cluster granules (every
    block of a partially placeable cluster waits for the next wave).
    """
    occ = occupancy(device, launch.block)
    if not occ.active:
        raise ValueError(
            f"block config {launch.block} cannot run on {device.name}: "
            f"limited by {occ.limiter}"
        )
    bps = blocks_per_sm_override or occ.blocks_per_sm
    bps = min(bps, occ.blocks_per_sm)
    capacity = device.num_sms * bps
    if launch.cluster_size > 1:
        if launch.cluster_size > device.max_cluster_size:
            raise ValueError(
                f"cluster size {launch.cluster_size} exceeds "
                f"{device.name}'s maximum {device.max_cluster_size}"
            )
        clusters_per_wave = max(capacity // launch.cluster_size, 1)
        waves = math.ceil(launch.num_clusters / clusters_per_wave)
        placeable = clusters_per_wave * launch.cluster_size
        util = launch.num_blocks / (waves * placeable)
    else:
        waves = math.ceil(launch.num_blocks / capacity)
        util = launch.num_blocks / (waves * capacity)
    sess = _obs.ACTIVE
    if sess is not None:
        c = sess.counters
        c.add("sm.schedule.launches")
        c.add("sm.schedule.blocks", launch.num_blocks)
        c.add("sm.schedule.waves", waves)
        if launch.num_blocks % capacity:
            c.add("sm.schedule.partial_waves")
        if sess.tracer is not None:
            sess.tracer.instant(
                f"launch {launch.num_blocks}b on {device.name}",
                cat="schedule",
                args={"device": device.name,
                      "blocks": launch.num_blocks,
                      "blocks_per_sm": bps,
                      "waves": waves,
                      "cluster_size": launch.cluster_size,
                      "utilization": round(util, 4)})
    return ScheduleResult(
        waves=waves, blocks_per_sm=bps, occupancy=occ, utilization=util
    )
