"""Streaming-multiprocessor execution model.

Three pieces every throughput benchmark in the paper rests on:

* :mod:`repro.sm.occupancy` — how many blocks/warps fit on an SM given
  threads, registers and shared memory (drives Fig 9's Nbins story),
* :mod:`repro.sm.scheduler` — the wave-based block scheduler (drives
  Fig 7's throughput sawtooth at SM-count multiples),
* :mod:`repro.sm.pipeline` — a Little's-law issue/latency pipeline
  model (drives everything that hides latency with warps or ILP).
"""

from __future__ import annotations

from repro.sm.occupancy import BlockConfig, Occupancy, occupancy
from repro.sm.pipeline import (
    PipeSpec,
    dependent_chain_cycles,
    sustained_ipc,
    throughput_cycles,
)
from repro.sm.scheduler import KernelLaunch, ScheduleResult, schedule_blocks
from repro.sm.kernel import KernelEstimate, KernelModel, KernelSpec
from repro.sm.roofline import Roofline, RooflinePoint

__all__ = [
    "KernelSpec",
    "KernelModel",
    "KernelEstimate",
    "Roofline",
    "RooflinePoint",
    "BlockConfig",
    "Occupancy",
    "occupancy",
    "PipeSpec",
    "sustained_ipc",
    "dependent_chain_cycles",
    "throughput_cycles",
    "KernelLaunch",
    "ScheduleResult",
    "schedule_blocks",
]
