"""Issue/latency pipeline model (Little's law).

The workhorse abstraction behind every latency-hiding argument in the
paper: an execution pipe is characterised by its *completion latency*
``L`` (cycles from issue until the result is usable — the quantity the
paper's latency microbenchmarks measure) and its *initiation interval*
``II`` (cycles between back-to-back independent issues).

With ``W`` concurrent contexts (warps × per-warp ILP), the sustained
issue rate is::

    IPC = min(1 / II,  W / L)

— either the pipe is saturated (one instruction per ``II``) or the
instruction window is too small to cover the latency.  All throughput
sweeps over warps/ILP (Figs 7, 8; Tables XIII, XIV) fall out of this.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PipeSpec",
    "sustained_ipc",
    "dependent_chain_cycles",
    "throughput_cycles",
]


@dataclass(frozen=True)
class PipeSpec:
    """An execution pipe's timing signature."""

    latency_clk: float
    initiation_interval_clk: float

    def __post_init__(self) -> None:
        if self.latency_clk <= 0 or self.initiation_interval_clk <= 0:
            raise ValueError("latency and II must be positive")
        if self.initiation_interval_clk > self.latency_clk:
            raise ValueError("II cannot exceed completion latency")

    def ipc(self, inflight: float) -> float:
        return sustained_ipc(
            self.latency_clk, self.initiation_interval_clk, inflight
        )


def sustained_ipc(latency: float, ii: float, inflight: float) -> float:
    """Sustained instructions per cycle for one pipe.

    ``inflight`` is the number of independent instructions the issuing
    contexts can keep in the pipe (warps × ILP).
    """
    if latency <= 0 or ii <= 0:
        raise ValueError("latency and II must be positive")
    if inflight <= 0:
        return 0.0
    return min(1.0 / ii, inflight / latency)


def dependent_chain_cycles(latency: float, n: int) -> float:
    """Cycles for ``n`` serially dependent instructions.

    The paper's latency benchmarks time exactly this chain (one thread
    issuing an instruction whose input is the previous output), so the
    per-instruction cost *is* the completion latency.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return latency * n


def throughput_cycles(
    n: int,
    *,
    latency: float,
    ii: float,
    inflight: float,
) -> float:
    """Cycles to retire ``n`` instructions with ``inflight`` parallelism.

    Pipeline fill (one latency) plus steady-state drain at the
    sustained IPC.
    """
    if n <= 0:
        return 0.0
    ipc = sustained_ipc(latency, ii, inflight)
    if ipc == 0.0:
        raise ValueError("zero parallelism cannot make progress")
    return latency + (n - 1) / ipc
