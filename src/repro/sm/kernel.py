"""Generic kernel execution-cost model.

The paper's stated purpose is to enable *performance modelling*
(§I, §II).  This module composes the library's calibrated pieces —
occupancy, wave scheduling, unit throughputs, DRAM bandwidth and
latency hiding — into a reusable estimator for arbitrary regular
kernels: describe a kernel's per-thread work (FLOPs, tensor-core
FLOPs, DRAM and shared-memory traffic), get back its bottleneck and
execution time on any registered device.

This is the abstraction a downstream user adopts to ask "would my
kernel be memory- or compute-bound on an H800?" without writing CUDA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch import DeviceSpec
from repro.sm.occupancy import BlockConfig, occupancy
from repro.sm.scheduler import KernelLaunch, schedule_blocks

__all__ = ["KernelSpec", "KernelEstimate", "KernelModel"]


@dataclass(frozen=True)
class KernelSpec:
    """Per-thread work description of a regular kernel."""

    name: str
    block: BlockConfig
    num_blocks: int
    flops_per_thread: float = 0.0          # CUDA-core FP32 FLOPs
    tc_flops_per_thread: float = 0.0       # tensor-core FLOPs
    tc_precision: str = "fp16"
    dram_bytes_per_thread: float = 0.0
    smem_bytes_per_thread: float = 0.0
    #: average outstanding memory requests per thread (latency hiding)
    memory_ilp: float = 2.0

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        for f in ("flops_per_thread", "tc_flops_per_thread",
                  "dram_bytes_per_thread", "smem_bytes_per_thread"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")
        if self.memory_ilp <= 0:
            raise ValueError("memory_ilp must be positive")

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.block.threads

    @property
    def total_flops(self) -> float:
        return (self.flops_per_thread + self.tc_flops_per_thread) \
            * self.total_threads

    @property
    def total_dram_bytes(self) -> float:
        return self.dram_bytes_per_thread * self.total_threads

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte — the roofline x-coordinate."""
        if self.total_dram_bytes == 0:
            return float("inf")
        return self.total_flops / self.total_dram_bytes


@dataclass(frozen=True)
class KernelEstimate:
    """Execution estimate: time, bottleneck, per-resource timings."""

    spec: KernelSpec
    device: str
    seconds: float
    limiter: str
    resource_seconds: Dict[str, float]
    waves: int
    occupancy_blocks: int

    @property
    def achieved_tflops(self) -> float:
        return self.spec.total_flops / self.seconds / 1e12 \
            if self.seconds else 0.0

    @property
    def achieved_gbps(self) -> float:
        return self.spec.total_dram_bytes / self.seconds / 1e9 \
            if self.seconds else 0.0


class KernelModel:
    """Per-device kernel cost estimator."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # -- per-resource times ------------------------------------------------

    def _fp32_seconds(self, spec: KernelSpec) -> float:
        if not spec.flops_per_thread:
            return 0.0
        rate = (2.0 * self.device.cuda_cores_per_sm
                * self.device.num_sms * self.device.clocks.observed_hz)
        return spec.flops_per_thread * spec.total_threads / rate

    def _tc_seconds(self, spec: KernelSpec) -> float:
        if not spec.tc_flops_per_thread:
            return 0.0
        peak = self.device.tc_peak_tflops(spec.tc_precision) * 1e12
        return (spec.tc_flops_per_thread * spec.total_threads
                / (peak * 0.9))

    def _dram_seconds(self, spec: KernelSpec) -> float:
        if not spec.dram_bytes_per_thread:
            return 0.0
        bw = self.device.dram.effective_bandwidth_gbps(0.8) * 1e9
        return spec.total_dram_bytes / bw

    def _smem_seconds(self, spec: KernelSpec) -> float:
        if not spec.smem_bytes_per_thread:
            return 0.0
        bw = (self.device.mem_widths.smem_bytes_per_clk_sm
              * self.device.num_sms * self.device.clocks.observed_hz)
        return (spec.smem_bytes_per_thread * spec.total_threads) / bw

    def _latency_seconds(self, spec: KernelSpec, occ_blocks: int
                         ) -> float:
        """Latency-bound floor: outstanding requests over DRAM latency
        (Little's law with the kernel's memory ILP)."""
        if not spec.dram_bytes_per_thread:
            return 0.0
        lat_s = (self.device.mem_latencies.global_clk
                 / self.device.clocks.observed_hz)
        inflight_threads = min(
            spec.total_threads,
            occ_blocks * spec.block.threads * self.device.num_sms,
        )
        inflight_bytes = inflight_threads * spec.memory_ilp * 32.0
        achievable = inflight_bytes / lat_s        # bytes per second
        return spec.total_dram_bytes / achievable

    # -- the estimate --------------------------------------------------------

    def estimate(self, spec: KernelSpec) -> KernelEstimate:
        occ = occupancy(self.device, spec.block)
        if not occ.active:
            raise ValueError(
                f"kernel {spec.name!r} cannot launch on "
                f"{self.device.name}: blocked by {occ.limiter}"
            )
        sched = schedule_blocks(
            self.device, KernelLaunch(spec.num_blocks, spec.block)
        )
        resources = {
            "FP32 pipes": self._fp32_seconds(spec),
            "tensor cores": self._tc_seconds(spec),
            "DRAM bandwidth": self._dram_seconds(spec),
            "shared memory": self._smem_seconds(spec),
            "memory latency": self._latency_seconds(
                spec, occ.blocks_per_sm),
        }
        limiter = max(resources, key=resources.get)
        base = resources[limiter]
        # partial-wave stretch: the straggler wave runs at low util
        seconds = base / max(sched.utilization, 1e-9)
        return KernelEstimate(
            spec=spec,
            device=self.device.name,
            seconds=seconds,
            limiter=limiter,
            resource_seconds=resources,
            waves=sched.waves,
            occupancy_blocks=occ.blocks_per_sm,
        )
