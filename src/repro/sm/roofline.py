"""Roofline model per device and precision.

``achievable = min(peak_compute, intensity × memory_bandwidth)`` —
the standard visual language for the compute-vs-memory-bound question
every section of the paper circles.  Curves are generated from the
calibrated device models, so the FP8/FP16/TF32 ceilings and the DRAM
slope are exactly the ones the instruction benchmarks measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch import DeviceSpec
from repro.sm.kernel import KernelSpec

__all__ = ["RooflinePoint", "Roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    name: str
    intensity_flops_per_byte: float
    achievable_tflops: float
    bound: str       # "memory" | "compute"


class Roofline:
    """Roofline calculator for one device."""

    def __init__(self, device: DeviceSpec,
                 precision: str = "fp16") -> None:
        self.device = device
        self.precision = precision

    @property
    def peak_tflops(self) -> float:
        if self.precision == "fp32":
            # CUDA-core FP32 (non-tensor) peak
            return (2.0 * self.device.cuda_cores_per_sm
                    * self.device.num_sms
                    * self.device.clocks.observed_hz / 1e12)
        return self.device.tc_peak_tflops(self.precision)

    @property
    def memory_bandwidth_tbps(self) -> float:
        return self.device.dram.effective_bandwidth_gbps(0.8) / 1e3

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (FLOP/B) where the roofs meet."""
        return self.peak_tflops / self.memory_bandwidth_tbps

    def achievable_tflops(self, intensity: float) -> float:
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return min(self.peak_tflops,
                   intensity * self.memory_bandwidth_tbps)

    def classify(self, intensity: float) -> str:
        return "compute" if intensity >= self.ridge_point else "memory"

    def place(self, spec: KernelSpec,
              name: Optional[str] = None) -> RooflinePoint:
        """Place a kernel spec on this roofline."""
        i = spec.arithmetic_intensity
        if i == float("inf"):
            return RooflinePoint(name or spec.name, i,
                                 self.peak_tflops, "compute")
        return RooflinePoint(
            name or spec.name,
            i,
            self.achievable_tflops(i),
            self.classify(i),
        )

    def curve(self, intensities: List[float]) -> Dict[float, float]:
        """Sampled roofline curve (for plotting / tabulation)."""
        return {i: self.achievable_tflops(i) for i in intensities}
