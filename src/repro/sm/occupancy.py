"""SM occupancy calculator.

Given a block's resource appetite (threads, registers, shared memory),
computes how many blocks an SM can host concurrently — the CUDA
occupancy rules.  The paper leans on this twice:

* Fig 9: large histogram ``Nbins`` inflate per-block shared memory,
  capping active blocks per SM; distributing bins across a cluster
  restores concurrency.
* Tables XIII/XIV: small block sizes under-populate SMs with warps, so
  synchronous copies cannot hide their latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch import DeviceSpec

__all__ = ["BlockConfig", "Occupancy", "occupancy"]

#: register allocation granularity (registers are allocated per warp in
#: multiples of 256 on all three architectures)
_REG_ALLOC_UNIT = 256
#: shared-memory allocation granularity
_SMEM_ALLOC_UNIT = 1024


@dataclass(frozen=True)
class BlockConfig:
    """Resource appetite of one thread block."""

    threads: int
    regs_per_thread: int = 32
    smem_bytes: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.threads <= 1024:
            raise ValueError("block size must be in [1, 1024] threads")
        if self.regs_per_thread < 0 or self.smem_bytes < 0:
            raise ValueError("resources must be non-negative")

    @property
    def warps(self) -> int:
        return math.ceil(self.threads / 32)


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy computation for one (device, block)."""

    blocks_per_sm: int
    limiter: str

    @property
    def active(self) -> bool:
        return self.blocks_per_sm > 0

    def warps_per_sm(self, cfg: BlockConfig) -> int:
        return self.blocks_per_sm * cfg.warps


def occupancy(device: DeviceSpec, cfg: BlockConfig) -> Occupancy:
    """Blocks of ``cfg`` an SM of ``device`` can run concurrently."""
    limits: dict[str, float] = {}

    limits["threads"] = device.max_threads_per_sm // cfg.threads
    limits["blocks"] = device.max_blocks_per_sm

    regs_per_warp = (
        math.ceil(cfg.regs_per_thread * 32 / _REG_ALLOC_UNIT)
        * _REG_ALLOC_UNIT
    )
    regs_per_block = regs_per_warp * cfg.warps
    limits["registers"] = (
        device.registers_per_sm // regs_per_block if regs_per_block else
        device.max_blocks_per_sm
    )

    if cfg.smem_bytes:
        smem_alloc = (
            math.ceil(cfg.smem_bytes / _SMEM_ALLOC_UNIT) * _SMEM_ALLOC_UNIT
        )
        budget = device.cache.shared_max_kib * 1024
        if smem_alloc > budget:
            return Occupancy(0, "shared memory")
        limits["shared memory"] = budget // smem_alloc

    limiter = min(limits, key=limits.get)
    return Occupancy(int(limits[limiter]), limiter)
