"""Architecture packs — per-generation capability and calibration data.

An :class:`ArchPack` is the *data plane* of the device models: every
piece of per-generation knowledge the engines need — capability flags,
PTX→SASS lowering deltas, tensor-core latency/efficiency tables, power
idle/unit-energy tables, async-copy cycle calibrations, SM-to-SM
fabric parameters — lives here as declarative data.  Engines
(:mod:`repro.tensorcore.timing`, :mod:`repro.power.model`,
:mod:`repro.isa.lowering`, :mod:`repro.asynccopy`, :mod:`repro.dsm`,
…) read ``device.pack`` and stay generation-agnostic; adding a GPU
generation means registering a pack, not editing engine code.

Two kinds of fields, by contract:

* **Parameters** are primitive calibrations a microbenchmark measures
  directly (an issue efficiency, a pJ/MAC, a step-overhead cycle
  count).  They carry units in their names and are never computed from
  other fields.
* **Derived** quantities (peak TFLOPS at a clock, effective bandwidth,
  issue intervals) are *never* stored in a pack — engines derive them
  so they stay consistent under ``with_overrides`` ablations.

The three paper generations (Ampere, Ada, Hopper) carry the exact
calibration constants the golden tables were pinned against.  The
Volta pack is grounded in the GPU-lineage study (arXiv 2106.04979);
the Blackwell pack in the B200 microbenchmark study (arXiv
2507.10789).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

__all__ = [
    "MmaCalibration",
    "WgmmaCalibration",
    "PowerCalibration",
    "AsyncCopyCalibration",
    "DsmCalibration",
    "ArchPack",
    "register_pack",
    "get_pack",
    "list_packs",
    "validate_pack",
    "PackValidationError",
]

#: (peak_key, accumulator ptx name, sparse) -> pJ per physical MAC
EnergyKey = Tuple[str, str, bool]


class PackValidationError(ValueError):
    """An ArchPack fails the schema-completeness contract."""


@dataclass(frozen=True)
class MmaCalibration:
    """Legacy warp-level ``mma`` pipe table for one generation.

    ``steps`` is the instruction depth (k / min-k ∈ {1, 2}); see
    :mod:`repro.tensorcore.timing` for the mechanism.
    """

    #: completion latency in cycles: {steps: clk}
    latency_clk: Mapping[int, float]
    #: issue efficiency (achieved / peak issue rate): {sparse: {steps: eff}}
    efficiency: Mapping[bool, Mapping[int, float]]
    #: deeper-pipe latency table for FP32 accumulation, where the
    #: generation pays one (Ada's consumer tensor cores); None = same pipe
    f32acc_latency_clk: Optional[Mapping[int, float]] = None
    #: fraction of peak retained by FP16/BF16 → FP32 accumulation
    #: (1.0 = full rate; Ada double-pumps at 0.5)
    f32acc_rate: float = 1.0
    #: tensor-core pipes per SM (one per scheduler sub-partition)
    pipes_per_sm: int = 4


@dataclass(frozen=True)
class WgmmaCalibration:
    """Warp-group MMA (asynchronous tensor-core path) calibration."""

    #: minimum wgmma completion latency (pipe depth floor), cycles
    min_latency_clk: float
    #: sparse RS floor is slightly deeper (metadata select stage)
    sparse_rs_floor_clk: float
    #: pipeline-bubble stretch of the dependent-accumulator chain
    chain_stretch: float
    #: compute-bound efficiency (scoreboard overhead at full tilt)
    compute_eff: float


@dataclass(frozen=True)
class PowerCalibration:
    """Idle power and per-MAC energy tables for one generation."""

    #: board idle power (W)
    idle_watts: float
    #: legacy mma path: (peak_key, cd ptx name, sparse) -> pJ per MAC
    mma_energy_pj: Mapping[EnergyKey, float] = field(default_factory=dict)
    #: warp-group path energies (empty where wgmma does not exist)
    wgmma_energy_pj: Mapping[EnergyKey, float] = field(default_factory=dict)


@dataclass(frozen=True)
class AsyncCopyCalibration:
    """Tiled-matmul pipeline step-overhead calibration.

    Keys are :class:`repro.asynccopy.CopyVariant` *values* (strings)
    so the pack layer stays import-free of the engine; empty tables
    fall back to the structural model in
    :mod:`repro.asynccopy.matmul_pipeline`.
    """

    #: per-step exposed-latency + software overhead, cycles:
    #: {variant value: {block_dim: clk}}
    step_overhead_clk: Mapping[str, Mapping[int, float]] = \
        field(default_factory=dict)


@dataclass(frozen=True)
class DsmCalibration:
    """SM-to-SM fabric parameters (generations with clusters only)."""

    #: per-SM fabric injection width, bytes per SM clock
    link_bytes_per_clk: float
    #: fabric-sharing contention coefficient
    contention_alpha: float


@dataclass(frozen=True)
class ArchPack:
    """Everything per-generation, as data.  See the module docstring
    for the parameter-vs-derived contract."""

    name: str                      # registry key, e.g. "hopper"
    display_name: str              # e.g. "Hopper"
    compute_capability: str        # e.g. "9.0"
    tensor_core_generation: int

    # -- capability flags -------------------------------------------------
    has_dpx_hardware: bool = False
    has_distributed_shared_memory: bool = False
    has_wgmma: bool = False
    has_tma: bool = False
    has_cp_async: bool = True
    has_fp8: bool = False
    has_sparse_mma: bool = True    # 2:4 structured sparsity (Ampere+)
    has_tmem: bool = False         # Blackwell tensor memory (tcgen05)
    has_tcgen05: bool = False      # 5th-gen asynchronous MMA ISA

    # -- PTX → SASS lowering deltas ---------------------------------------
    #: INT4 mma compiles but lowers to CUDA-core IMAD sequences
    #: (Hopper dropped INT4 tensor-core support; Blackwell keeps it out)
    int4_mma_emulated: bool = False
    #: restrict which input precisions have *any* mma lowering
    #: (None = every PTX-defined pairing; Volta is FP16-only)
    mma_peak_keys: Optional[FrozenSet[str]] = None

    # -- calibration tables ------------------------------------------------
    mma: MmaCalibration = field(
        default_factory=lambda: MmaCalibration(
            latency_clk={}, efficiency={}))
    wgmma: Optional[WgmmaCalibration] = None
    power: PowerCalibration = field(
        default_factory=lambda: PowerCalibration(idle_watts=50.0))
    asynccopy: AsyncCopyCalibration = field(
        default_factory=AsyncCopyCalibration)
    dsm: Optional[DsmCalibration] = None

    def supports_mma_input(self, peak_key: str) -> bool:
        """Whether any warp-level mma lowering exists for an input
        precision on this generation."""
        return self.mma_peak_keys is None or peak_key in self.mma_peak_keys


# --------------------------------------------------------------------------
# validation
# --------------------------------------------------------------------------

#: capability flags every pack must define (all bool)
CAPABILITY_FLAGS = (
    "has_dpx_hardware",
    "has_distributed_shared_memory",
    "has_wgmma",
    "has_tma",
    "has_cp_async",
    "has_fp8",
    "has_sparse_mma",
    "has_tmem",
    "has_tcgen05",
)


def validate_pack(pack: ArchPack) -> None:
    """Assert schema completeness; raise :class:`PackValidationError`.

    This is the contract the CI pack-validation step enforces: every
    flag present and boolean, calibration tables complete for the
    capabilities the pack claims, and no capability without the data
    the engines will read for it.
    """
    def fail(msg: str) -> None:
        raise PackValidationError(f"pack {pack.name!r}: {msg}")

    if not pack.name or pack.name != pack.name.lower():
        fail("name must be a non-empty lowercase identifier")
    parts = pack.compute_capability.split(".")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        fail(f"compute_capability {pack.compute_capability!r} "
             "is not 'major.minor'")
    if pack.tensor_core_generation < 1:
        fail("tensor_core_generation must be >= 1")
    for flag in CAPABILITY_FLAGS:
        v = getattr(pack, flag)
        if not isinstance(v, bool):
            fail(f"{flag} must be bool, got {type(v).__name__}")

    # mma pipe table: both depths, dense always; sparse iff claimed
    for steps in (1, 2):
        if steps not in pack.mma.latency_clk:
            fail(f"mma.latency_clk missing steps={steps}")
    if False not in pack.mma.efficiency:
        fail("mma.efficiency missing the dense (False) table")
    if pack.has_sparse_mma and True not in pack.mma.efficiency:
        fail("has_sparse_mma but mma.efficiency has no sparse table")
    for sparse, table in pack.mma.efficiency.items():
        for steps in (1, 2):
            if steps not in table:
                fail(f"mma.efficiency[{sparse}] missing steps={steps}")
            if not 0.0 < table[steps] <= 1.0:
                fail(f"mma.efficiency[{sparse}][{steps}] out of (0, 1]")
    if pack.mma.f32acc_rate != 1.0 and pack.mma.f32acc_latency_clk is None:
        fail("f32acc_rate != 1.0 requires an f32acc_latency_clk table")
    if pack.mma.pipes_per_sm < 1:
        fail("mma.pipes_per_sm must be >= 1")

    # wgmma calibration present exactly when the ISA exists
    if pack.has_wgmma and pack.wgmma is None:
        fail("has_wgmma but no wgmma calibration")
    if pack.wgmma is not None and not pack.has_wgmma:
        fail("wgmma calibration on a generation without wgmma")
    if pack.wgmma is not None:
        if pack.wgmma.min_latency_clk <= 0:
            fail("wgmma.min_latency_clk must be positive")
        if pack.wgmma.chain_stretch < 1.0:
            fail("wgmma.chain_stretch must be >= 1.0")
        if not 0.0 < pack.wgmma.compute_eff <= 1.0:
            fail("wgmma.compute_eff out of (0, 1]")
        if not pack.power.wgmma_energy_pj:
            fail("has_wgmma but power.wgmma_energy_pj is empty")

    # power
    if pack.power.idle_watts <= 0:
        fail("power.idle_watts must be positive")
    if not pack.power.mma_energy_pj:
        fail("power.mma_energy_pj must not be empty")
    for table in (pack.power.mma_energy_pj, pack.power.wgmma_energy_pj):
        for key, pj in table.items():
            if len(key) != 3 or pj <= 0:
                fail(f"bad energy entry {key!r} -> {pj!r}")

    # dsm calibration present exactly when clusters exist
    if pack.has_distributed_shared_memory and pack.dsm is None:
        fail("has_distributed_shared_memory but no dsm calibration")
    if pack.dsm is not None and not pack.has_distributed_shared_memory:
        fail("dsm calibration on a generation without clusters")
    if pack.dsm is not None and pack.dsm.link_bytes_per_clk <= 0:
        fail("dsm.link_bytes_per_clk must be positive")

    # async-copy tables must key on known variants and sane cycles
    for variant, table in pack.asynccopy.step_overhead_clk.items():
        if variant not in ("SyncShare", "AsyncPipe", "TmaPipe"):
            fail(f"asynccopy variant {variant!r} unknown")
        for dim, clk in table.items():
            if clk <= 0:
                fail(f"asynccopy overhead for {variant}/{dim} "
                     "must be positive")

    # lowering deltas must be coherent with the peak-key restriction
    if pack.mma_peak_keys is not None and not pack.mma_peak_keys:
        fail("mma_peak_keys must be None or non-empty")


# --------------------------------------------------------------------------
# the packs
# --------------------------------------------------------------------------

VOLTA = ArchPack(
    name="volta",
    display_name="Volta",
    compute_capability="7.0",
    tensor_core_generation=1,
    # sm_70 predates every Hopper-era feature the paper dissects —
    # and cp.async itself (async copies arrive with Ampere, cf. the
    # lineage study's K80→A100 async-copy evolution).
    has_dpx_hardware=False,
    has_distributed_shared_memory=False,
    has_wgmma=False,
    has_tma=False,
    has_cp_async=False,
    has_fp8=False,
    has_sparse_mma=False,
    # 1st-gen tensor cores are FP16-input only: no TF32/BF16/INT8
    # pairings lower to HMMA at all.
    mma_peak_keys=frozenset({"fp16"}),
    mma=MmaCalibration(
        latency_clk={1: 21.2, 2: 29.6},
        efficiency={False: {1: 0.95, 2: 0.97}},
    ),
    power=PowerCalibration(
        idle_watts=39.0,
        mma_energy_pj={
            ("fp16", "f16", False): 1.150,
            ("fp16", "f32", False): 1.320,
        },
    ),
)

AMPERE = ArchPack(
    name="ampere",
    display_name="Ampere",
    compute_capability="8.0",
    tensor_core_generation=3,
    mma=MmaCalibration(
        latency_clk={1: 17.7, 2: 25.5},
        efficiency={
            False: {1: 0.99, 2: 0.99},
            True: {1: 0.645, 2: 0.99},
        },
    ),
    power=PowerCalibration(
        idle_watts=60.0,
        mma_energy_pj={
            ("fp16", "f16", False): 0.730, ("fp16", "f16", True): 0.891,
            ("fp16", "f32", False): 0.847, ("fp16", "f32", True): 1.035,
            ("bf16", "f32", False): 0.847, ("bf16", "f32", True): 1.035,
            ("tf32", "f32", False): 2.042, ("tf32", "f32", True): 2.331,
            ("int8", "s32", False): 0.390, ("int8", "s32", True): 0.443,
        },
    ),
    asynccopy=AsyncCopyCalibration(step_overhead_clk={
        "SyncShare": {8: 375.0, 16: 447.0, 32: 140.0},
        "AsyncPipe": {8: 375.0, 16: 304.0, 32: 128.0},
    }),
)

ADA = ArchPack(
    name="ada",
    display_name="Ada",
    compute_capability="8.9",
    tensor_core_generation=4,
    has_fp8=True,
    mma=MmaCalibration(
        latency_clk={1: 17.5, 2: 24.6},
        efficiency={
            False: {1: 0.99, 2: 0.99},
            True: {1: 0.99, 2: 0.99},
        },
        # Ada pays double-pumped FP32 accumulation on its consumer
        # tensor cores: deeper pipe, half rate (paper Table VII).
        f32acc_latency_clk={1: 19.0, 2: 33.2},
        f32acc_rate=0.5,
    ),
    power=PowerCalibration(
        idle_watts=55.0,
        mma_energy_pj={
            ("fp16", "f16", False): 0.750, ("fp16", "f16", True): 0.894,
            ("fp16", "f32", False): 1.108, ("fp16", "f32", True): 1.246,
            ("bf16", "f32", False): 1.108, ("bf16", "f32", True): 1.246,
            ("tf32", "f32", False): 2.680, ("tf32", "f32", True): 2.974,
            ("int8", "s32", False): 0.411, ("int8", "s32", True): 0.463,
        },
    ),
)

HOPPER = ArchPack(
    name="hopper",
    display_name="Hopper",
    compute_capability="9.0",
    tensor_core_generation=4,
    has_dpx_hardware=True,
    has_distributed_shared_memory=True,
    has_wgmma=True,
    has_tma=True,
    has_fp8=True,
    # Hopper dropped INT4 tensor-core support: the PTX still compiles,
    # but to CUDA-core integer MACs (Table VI's IMAD row).
    int4_mma_emulated=True,
    mma=MmaCalibration(
        latency_clk={1: 16.0, 2: 24.1},
        # The paper's headline mma finding: Hopper's legacy path cannot
        # saturate 4th-gen tensor cores, sparse even less so.
        efficiency={
            False: {1: 0.487, 2: 0.651},
            True: {1: 0.324, 2: 0.477},
        },
    ),
    wgmma=WgmmaCalibration(
        min_latency_clk=13.0,
        sparse_rs_floor_clk=17.0,
        chain_stretch=1.12,
        compute_eff=0.965,
    ),
    power=PowerCalibration(
        idle_watts=60.0,
        mma_energy_pj={
            ("fp16", "f16", False): 0.520, ("fp16", "f16", True): 0.704,
            ("fp16", "f32", False): 0.557, ("fp16", "f32", True): 0.748,
            ("bf16", "f32", False): 0.557, ("bf16", "f32", True): 0.748,
            ("tf32", "f32", False): 1.582, ("tf32", "f32", True): 1.899,
            ("int8", "s32", False): 0.215, ("int8", "s32", True): 0.288,
        },
        # the warp-group datapath engages the full 4th-gen array and
        # differs from the legacy mma path
        wgmma_energy_pj={
            ("fp16", "f16", False): 0.721, ("fp16", "f16", True): 0.721,
            ("fp16", "f32", False): 0.771, ("fp16", "f32", True): 0.771,
            ("bf16", "f16", False): 0.721, ("bf16", "f16", True): 0.721,
            ("bf16", "f32", False): 0.771, ("bf16", "f32", True): 0.771,
            ("tf32", "f32", False): 1.420, ("tf32", "f32", True): 1.420,
            ("fp8", "f16", False): 0.300, ("fp8", "f16", True): 0.300,
            ("fp8", "f32", False): 0.306, ("fp8", "f32", True): 0.306,
            ("int8", "s32", False): 0.300, ("int8", "s32", True): 0.300,
        },
    ),
    asynccopy=AsyncCopyCalibration(step_overhead_clk={
        "SyncShare": {8: 589.0, 16: 427.0, 32: 155.0},
        "AsyncPipe": {8: 360.0, 16: 354.0, 32: 242.0},
    }),
    dsm=DsmCalibration(
        link_bytes_per_clk=18.5,
        contention_alpha=0.133,
    ),
)

BLACKWELL = ArchPack(
    name="blackwell",
    display_name="Blackwell",
    compute_capability="10.0",
    tensor_core_generation=5,
    has_dpx_hardware=True,
    has_distributed_shared_memory=True,
    # Blackwell's ISA *drops* wgmma: the 5th-gen tensor core is driven
    # through tcgen05.mma against tensor memory (tmem) instead (arXiv
    # 2507.10789).  Engines model the library path as near-peak QMMA.
    has_wgmma=False,
    has_tma=True,
    has_fp8=True,
    has_tmem=True,
    has_tcgen05=True,
    # like Hopper, no INT4 tensor-core path remains
    int4_mma_emulated=True,
    mma=MmaCalibration(
        # the legacy warp-level path saturates the 5th-gen array even
        # less than it did Hopper's 4th — tcgen05 is how you reach peak
        latency_clk={1: 15.2, 2: 22.6},
        efficiency={
            False: {1: 0.410, 2: 0.550},
            True: {1: 0.280, 2: 0.410},
        },
    ),
    power=PowerCalibration(
        idle_watts=90.0,
        mma_energy_pj={
            ("fp16", "f16", False): 0.470, ("fp16", "f16", True): 0.640,
            ("fp16", "f32", False): 0.505, ("fp16", "f32", True): 0.680,
            ("bf16", "f32", False): 0.505, ("bf16", "f32", True): 0.680,
            ("tf32", "f32", False): 1.430, ("tf32", "f32", True): 1.720,
            ("int8", "s32", False): 0.195, ("int8", "s32", True): 0.262,
        },
    ),
    # no step-overhead calibration published yet — the structural
    # fallback in the pipeline model covers B200
    dsm=DsmCalibration(
        link_bytes_per_clk=24.0,
        contention_alpha=0.110,
    ),
)


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

_PACKS: Dict[str, ArchPack] = {}


def register_pack(pack: ArchPack, *, overwrite: bool = False) -> ArchPack:
    """Validate and register a pack (third-party generations welcome)."""
    validate_pack(pack)
    if pack.name in _PACKS and not overwrite:
        raise ValueError(f"pack {pack.name!r} already registered")
    _PACKS[pack.name] = pack
    return pack


def get_pack(name: str) -> ArchPack:
    try:
        return _PACKS[name]
    except KeyError:
        raise KeyError(
            f"unknown architecture pack {name!r}; known packs: "
            f"{', '.join(sorted(_PACKS))}"
        ) from None


def list_packs() -> Tuple[str, ...]:
    return tuple(sorted(_PACKS))


for _pack in (VOLTA, AMPERE, ADA, HOPPER, BLACKWELL):
    register_pack(_pack)
del _pack
