"""Device architecture registry.

This subpackage holds the architectural ground truth the rest of the
simulator derives behaviour from: SM counts, clock domains, cache
geometry, per-unit widths and the feature matrix that distinguishes
Ampere, Ada Lovelace and Hopper (Table III of the paper).

Only *primitive* quantities live here — published spec-sheet values and
single-number microbenchmark calibrations (e.g. an L1 hit latency).
Composite results (sweep shapes, ratios, crossovers) are computed by the
subsystem models, never stored.
"""

from __future__ import annotations

from repro.arch.specs import (
    Architecture,
    CacheGeometry,
    ClockDomain,
    DeviceSpec,
    DramSpec,
    MemoryLatencies,
    MemoryWidths,
    TensorCoreSpec,
)
from repro.arch.registry import (
    get_device,
    list_devices,
    register_device,
    DEVICES,
)

__all__ = [
    "Architecture",
    "CacheGeometry",
    "ClockDomain",
    "DeviceSpec",
    "DramSpec",
    "MemoryLatencies",
    "MemoryWidths",
    "TensorCoreSpec",
    "get_device",
    "list_devices",
    "register_device",
    "DEVICES",
]
