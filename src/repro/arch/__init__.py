"""Device architecture registry.

This subpackage holds the architectural ground truth the rest of the
simulator derives behaviour from: SM counts, clock domains, cache
geometry, per-unit widths and — via :mod:`repro.arch.packs` — the
per-generation capability flags and calibration tables that
distinguish Volta, Ampere, Ada Lovelace, Hopper and Blackwell
(Table III of the paper, extended).

Only *primitive* quantities live here — published spec-sheet values and
single-number microbenchmark calibrations (e.g. an L1 hit latency).
Composite results (sweep shapes, ratios, crossovers) are computed by the
subsystem models, never stored.
"""

from __future__ import annotations

from repro.arch.packs import (
    ArchPack,
    AsyncCopyCalibration,
    DsmCalibration,
    MmaCalibration,
    PackValidationError,
    PowerCalibration,
    WgmmaCalibration,
    get_pack,
    list_packs,
    register_pack,
    validate_pack,
)
from repro.arch.specs import (
    Architecture,
    CacheGeometry,
    ClockDomain,
    DeviceSpec,
    DramSpec,
    MemoryLatencies,
    MemoryWidths,
    TensorCoreSpec,
)
from repro.arch.registry import (
    PAPER_DEVICES,
    get_device,
    list_devices,
    register_device,
    DEVICES,
)

__all__ = [
    "ArchPack",
    "Architecture",
    "AsyncCopyCalibration",
    "CacheGeometry",
    "ClockDomain",
    "DeviceSpec",
    "DramSpec",
    "DsmCalibration",
    "MemoryLatencies",
    "MemoryWidths",
    "MmaCalibration",
    "PackValidationError",
    "PowerCalibration",
    "TensorCoreSpec",
    "WgmmaCalibration",
    "PAPER_DEVICES",
    "get_device",
    "get_pack",
    "list_devices",
    "list_packs",
    "register_device",
    "register_pack",
    "validate_pack",
    "DEVICES",
]
