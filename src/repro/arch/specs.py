"""Device specification dataclasses.

A :class:`DeviceSpec` aggregates everything the simulator needs to know
about one GPU.  Fields are grouped into nested frozen dataclasses so a
subsystem can depend on exactly the slice it uses (e.g. the memory
simulator takes ``spec.cache_geometry`` and ``spec.mem_latencies``).

Units are spelled out in field names wherever ambiguity is possible:
``*_mhz``, ``*_bytes``, ``*_kib``, ``*_gib``, ``*_gbps`` (GB/s),
``*_clk`` (clock cycles of the SM domain).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.arch.packs import ArchPack, get_pack


class Architecture(enum.Enum):
    """Nvidia GPU architecture generations the registry models.

    The enum is an *identity*; every per-generation property delegates
    to the generation's :class:`~repro.arch.packs.ArchPack`, which is
    the single source of truth for capabilities and calibration.
    """

    VOLTA = "volta"
    AMPERE = "ampere"
    ADA = "ada"
    HOPPER = "hopper"
    BLACKWELL = "blackwell"

    @property
    def pack(self) -> ArchPack:
        """The generation's declarative data plane."""
        return get_pack(self.value)

    @property
    def compute_capability(self) -> str:
        return self.pack.compute_capability

    @property
    def tensor_core_generation(self) -> int:
        return self.pack.tensor_core_generation

    @property
    def has_dpx_hardware(self) -> bool:
        """DPX hardware (VIMNMX et al.) ships with Hopper."""
        return self.pack.has_dpx_hardware

    @property
    def has_distributed_shared_memory(self) -> bool:
        """Thread-block clusters + the SM-to-SM network (Hopper+)."""
        return self.pack.has_distributed_shared_memory

    @property
    def has_wgmma(self) -> bool:
        """Warp-group MMA (asynchronous tensor core path), Hopper's
        ISA only — Blackwell replaces it with tcgen05."""
        return self.pack.has_wgmma

    @property
    def has_tma(self) -> bool:
        """The Tensor Memory Accelerator ships with Hopper."""
        return self.pack.has_tma

    @property
    def has_cp_async(self) -> bool:
        """``cp.async`` (async global→shared copies) exists since
        Ampere; Volta predates it."""
        return self.pack.has_cp_async

    @property
    def has_fp8(self) -> bool:
        """FP8 tensor-core inputs exist on Ada and later."""
        return self.pack.has_fp8


@dataclass(frozen=True)
class ClockDomain:
    """SM and memory clock frequencies.

    ``observed_sm_mhz`` captures the frequency the paper actually saw
    during the benchmarks; the RTX 4090 runs above its official boost
    clock, which is why its measured tensor-core throughput exceeds the
    official peak (paper §IV-C).
    """

    base_sm_mhz: float
    boost_sm_mhz: float
    observed_sm_mhz: float
    memory_mhz: float

    def __post_init__(self) -> None:
        if self.base_sm_mhz <= 0 or self.boost_sm_mhz <= 0:
            raise ValueError("clock frequencies must be positive")
        if self.boost_sm_mhz < self.base_sm_mhz:
            raise ValueError("boost clock below base clock")

    @property
    def observed_hz(self) -> float:
        return self.observed_sm_mhz * 1e6

    @property
    def boost_hz(self) -> float:
        return self.boost_sm_mhz * 1e6


@dataclass(frozen=True)
class CacheGeometry:
    """Capacities and organisation of the on-chip memories."""

    l1_size_kib: int            # unified L1/shared per SM
    shared_max_kib: int         # max shared memory carve-out per block
    l2_size_kib: int
    line_bytes: int = 128
    sector_bytes: int = 32
    l1_associativity: int = 4
    l2_associativity: int = 16
    l2_partitions: int = 2      # A100/H800 L2 is physically split in two

    def __post_init__(self) -> None:
        if self.line_bytes % self.sector_bytes:
            raise ValueError("line size must be a multiple of sector size")
        for name in ("l1_size_kib", "shared_max_kib", "l2_size_kib"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def l1_size_bytes(self) -> int:
        return self.l1_size_kib * 1024

    @property
    def l2_size_bytes(self) -> int:
        return self.l2_size_kib * 1024


@dataclass(frozen=True)
class MemoryLatencies:
    """Hit latencies of each level, in SM clock cycles.

    These are primitive calibration numbers (the kind a P-chase
    microbenchmark measures directly, cf. Table IV); everything
    composite — e.g. the global-memory latency including a TLB miss —
    is derived by :mod:`repro.memory`.
    """

    shared_clk: float
    l1_hit_clk: float
    l2_hit_clk: float
    dram_clk: float             # additional cycles past an L2 miss
    tlb_hit_clk: float = 0.0
    tlb_miss_clk: float = 350.0
    dsm_remote_clk: float = 180.0   # SM-to-SM network (Hopper only)

    def __post_init__(self) -> None:
        if not (self.shared_clk <= self.l1_hit_clk <= self.l2_hit_clk):
            raise ValueError("expected shared <= L1 <= L2 latency")
        if self.dram_clk <= 0:
            raise ValueError("dram_clk must be positive")

    @property
    def global_clk(self) -> float:
        """Latency of a TLB-warm global load that misses both caches."""
        return self.l2_hit_clk + self.dram_clk + self.tlb_hit_clk


@dataclass(frozen=True)
class MemoryWidths:
    """Sustained data-path widths of each memory level.

    ``l1_bytes_per_clk_sm`` / ``smem_bytes_per_clk_sm`` are per-SM;
    ``l2_bytes_per_clk`` is chip-wide.  ``lsu_issue_per_clk`` models the
    load-store-unit instruction issue rate that caps *non-vectorised*
    L1 throughput (the FP32 column of Table V): one warp-level ``ld.f32``
    moves 128 B, so the achieved width is
    ``min(l1_bytes_per_clk_sm, 128 * lsu_issue_per_clk)``.
    ``fp64_add_bytes_per_clk_sm`` is the FP64 *execution unit* width that
    bottlenecks the FP64 row on consumer/nerfed parts (RTX 4090, H800).
    """

    l1_bytes_per_clk_sm: float
    smem_bytes_per_clk_sm: float
    l2_bytes_per_clk: float
    lsu_issue_per_clk: float
    fp64_add_bytes_per_clk_sm: float
    smem_banks: int = 32
    smem_bank_bytes: int = 4

    def __post_init__(self) -> None:
        for name in (
            "l1_bytes_per_clk_sm",
            "smem_bytes_per_clk_sm",
            "l2_bytes_per_clk",
            "lsu_issue_per_clk",
            "fp64_add_bytes_per_clk_sm",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class DramSpec:
    """Off-chip memory subsystem (Table III rows)."""

    size_gib: int
    mem_type: str               # "HBM2e" | "GDDR6X"
    bus_width_bits: int
    peak_bandwidth_gbps: float
    # Efficiency mechanics: refresh steals cycles; switching the bus
    # between reads and writes costs turnaround bubbles.  The achieved
    # ~90 % of peak in Table V is *derived* from these.
    refresh_overhead: float = 0.03
    rw_turnaround_penalty: float = 0.05

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise ValueError("peak bandwidth must be positive")
        if not 0 <= self.refresh_overhead < 0.5:
            raise ValueError("refresh_overhead out of range")

    def effective_bandwidth_gbps(self, read_fraction: float = 1.0) -> float:
        """Sustained bandwidth for a mixed read/write stream.

        ``read_fraction`` is the fraction of traffic that is reads; a
        mixed stream pays turnaround bubbles proportional to how often
        the bus direction flips (maximised at 50/50).
        """
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        flip_rate = 2.0 * read_fraction * (1.0 - read_fraction)
        eff = (1.0 - self.refresh_overhead) * (
            1.0 - self.rw_turnaround_penalty * 2.0 * flip_rate
        )
        return self.peak_bandwidth_gbps * eff


@dataclass(frozen=True)
class TensorCoreSpec:
    """Tensor-core complement and official dense peak rates.

    ``dense_peak_tflops`` maps precision name → official dense peak at
    boost clock (TFLOPS, or TOPS for integer precisions).  Sparse peaks
    are architecturally 2× dense.  Per-clock MAC widths are derived
    (``flops_per_clk_sm``) so the timing model scales with the actual
    simulated clock.
    """

    count: int
    generation: int
    dense_peak_tflops: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("tensor core count must be positive")
        for k, v in self.dense_peak_tflops.items():
            if v <= 0:
                raise ValueError(f"peak for {k} must be positive")

    def sparse_peak_tflops(self, precision: str) -> float:
        return 2.0 * self.dense_peak(precision)

    def dense_peak(self, precision: str) -> float:
        try:
            return self.dense_peak_tflops[precision]
        except KeyError:
            raise KeyError(
                f"precision {precision!r} is not supported by this "
                f"tensor core generation (have: "
                f"{sorted(self.dense_peak_tflops)})"
            ) from None

    def supports(self, precision: str) -> bool:
        return precision in self.dense_peak_tflops


@dataclass(frozen=True)
class DeviceSpec:
    """Complete description of one GPU (one column of Table III)."""

    name: str
    marketing_name: str
    architecture: Architecture
    num_sms: int
    cuda_cores_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    clocks: ClockDomain
    cache: CacheGeometry
    mem_latencies: MemoryLatencies
    mem_widths: MemoryWidths
    dram: DramSpec
    tensor_core: TensorCoreSpec
    power_cap_watts: float
    max_cluster_size: int = 1   # >1 only where DSM exists
    #: substitute a custom ArchPack (third-party devices whose silicon
    #: deviates from the stock generation data); None = the stock pack
    pack_override: Optional[ArchPack] = None

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if (self.max_cluster_size > 1
                and not self.pack.has_distributed_shared_memory):
            raise ValueError(
                f"{self.name}: clusters require distributed shared memory"
            )

    # -- convenience -----------------------------------------------------

    @property
    def pack(self) -> ArchPack:
        """The architecture pack this device reads capabilities and
        calibration from — the stock generation pack unless overridden
        at registration time."""
        if self.pack_override is not None:
            return self.pack_override
        return self.architecture.pack

    @property
    def compute_capability(self) -> str:
        return self.pack.compute_capability

    @property
    def total_cuda_cores(self) -> int:
        return self.num_sms * self.cuda_cores_per_sm

    @property
    def sm_clock_hz(self) -> float:
        return self.clocks.observed_hz

    def tc_flops_per_clk_sm(self, precision: str, *, sparse: bool = False,
                            use_boost: bool = True) -> float:
        """Per-SM tensor-core FLOPs (or int OPs) per cycle.

        Derived from the official peak, which is quoted at boost clock:
        ``peak = flops_per_clk_sm * num_sms * boost_hz``.
        """
        peak = self.tensor_core.dense_peak(precision)
        if sparse:
            peak *= 2.0
        clock = self.clocks.boost_hz if use_boost else self.clocks.observed_hz
        return peak * 1e12 / (self.num_sms * clock)

    def tc_peak_tflops(self, precision: str, *, sparse: bool = False,
                       at_observed_clock: bool = True) -> float:
        """Peak throughput at the clock the device actually runs at."""
        per_clk = self.tc_flops_per_clk_sm(precision, sparse=sparse)
        clock = (self.clocks.observed_hz if at_observed_clock
                 else self.clocks.boost_hz)
        return per_clk * self.num_sms * clock / 1e12

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with some top-level fields replaced.

        Used by ablation benchmarks (e.g. lifting the power cap)."""
        return replace(self, **kwargs)

    def table3_row(self) -> dict:
        """The fields Table III reports, as a flat dict."""
        return {
            "Device": self.marketing_name,
            "Comp. Capability": (
                f"{self.compute_capability} "
                f"({self.pack.display_name})"
            ),
            "SMs * cores/SM": f"{self.num_sms} * {self.cuda_cores_per_sm}",
            "Max Clock rate": f"{self.clocks.boost_sm_mhz:.0f} MHz",
            "Mem. Size": f"{self.dram.size_gib}GB",
            "Mem. Type": self.dram.mem_type,
            "Mem. Clock rate": f"{self.clocks.memory_mhz:.0f} MHz",
            "Mem. Bus": f"{self.dram.bus_width_bits}-bit",
            "Mem. Bandwidth": f"{self.dram.peak_bandwidth_gbps:.0f} GB/s",
            "Tensor Core": (
                f"{self.tensor_core.count} "
                f"({self.tensor_core.generation}th Gen.)"
            ),
            "DPX hardware": (
                "Yes" if self.pack.has_dpx_hardware else "No"
            ),
            "Distributed shared memory": (
                "Yes" if self.pack.has_distributed_shared_memory
                else "No"
            ),
        }
