"""Built-in device presets and the device registry.

The first three presets mirror the paper's testbed (Table III):

* ``A100``  — Nvidia A100 PCIe 40 GB (Ampere, sm_80)
* ``RTX4090`` — Nvidia GeForce RTX 4090 (Ada Lovelace, sm_89)
* ``H800``  — Nvidia H800 PCIe 80 GB (Hopper, sm_90)

Two lineage presets ride on the architecture packs and stress that
nothing Hopper-specific is hard-coded in the engines:

* ``V100``  — Tesla V100 PCIe 32 GB (Volta, sm_70), grounded in the
  GPU-lineage study (arXiv 2106.04979): pre-``cp.async``, 1st-gen
  FP16-only tensor cores, no wgmma/TMA/DSM/DPX/FP8.
* ``B200``  — B200 SXM 192 GB (Blackwell, sm_100), grounded in the
  Blackwell microbenchmark study (arXiv 2507.10789): 5th-gen tensor
  cores driven through tcgen05 + tensor memory, no wgmma ISA.

Primitive calibration values (hit latencies, unit widths) come from the
papers' own single-number measurements and public spec sheets; see
DESIGN.md §6 and docs/architecture-packs.md for the
parameter-vs-derived contract.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.specs import (
    Architecture,
    CacheGeometry,
    ClockDomain,
    DeviceSpec,
    DramSpec,
    MemoryLatencies,
    MemoryWidths,
    TensorCoreSpec,
)

DEVICES: Dict[str, DeviceSpec] = {}


def register_device(spec: DeviceSpec, *, overwrite: bool = False) -> None:
    """Add a device to the registry.

    Third-party code can register additional GPUs (e.g. an H100 SXM
    variant) and run every experiment against them.  The spec must be
    coherent with its architecture pack: the tensor-core generation a
    device claims has to match the generation its pack calibrates.
    """
    key = spec.name.upper()
    if key in DEVICES and not overwrite:
        raise ValueError(f"device {spec.name!r} is already registered")
    pack = spec.pack
    if spec.tensor_core.generation != pack.tensor_core_generation:
        raise ValueError(
            f"device {spec.name!r}: TensorCoreSpec.generation="
            f"{spec.tensor_core.generation} disagrees with the "
            f"{pack.name!r} pack (generation "
            f"{pack.tensor_core_generation})"
        )
    DEVICES[key] = spec


def get_device(name: str) -> DeviceSpec:
    """Look up a device by (case-insensitive) name.

    Unknown names raise a ``KeyError`` with close-match suggestions —
    the same did-you-mean convention
    :func:`~repro.core.registry.get_experiment` uses, so typos in CLI
    queries fail helpfully instead of with a bare list.
    """
    try:
        return DEVICES[name.upper()]
    except KeyError:
        import difflib

        close = difflib.get_close_matches(name.upper(),
                                          list_devices(), n=3,
                                          cutoff=0.4)
        hint = (f"; did you mean "
                f"{' or '.join(repr(c) for c in close)}?"
                if close else "")
        raise KeyError(
            f"unknown device {name!r}; known devices: "
            f"{list_devices()}{hint}"
        ) from None


def list_devices() -> List[str]:
    return sorted(DEVICES)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

_A100 = DeviceSpec(
    name="A100",
    marketing_name="A100 PCIe",
    architecture=Architecture.AMPERE,
    num_sms=108,
    cuda_cores_per_sm=64,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    clocks=ClockDomain(
        base_sm_mhz=765.0,
        boost_sm_mhz=1410.0,
        observed_sm_mhz=1410.0,
        memory_mhz=1215.0,
    ),
    cache=CacheGeometry(
        l1_size_kib=192,
        shared_max_kib=164,
        l2_size_kib=40 * 1024,
        l2_partitions=2,
    ),
    mem_latencies=MemoryLatencies(
        shared_clk=29.0,
        l1_hit_clk=37.9,
        l2_hit_clk=261.5,
        dram_clk=204.8,
    ),
    mem_widths=MemoryWidths(
        l1_bytes_per_clk_sm=128.0,
        smem_bytes_per_clk_sm=128.0,
        l2_bytes_per_clk=2050.0,
        lsu_issue_per_clk=0.78,
        # A100 keeps full-rate FP64 ALUs (1:2 of FP32) so the FP64
        # dependent-add chain never bottlenecks the cache probe.
        fp64_add_bytes_per_clk_sm=256.0,
    ),
    dram=DramSpec(
        size_gib=40,
        mem_type="HBM2e",
        bus_width_bits=5120,
        peak_bandwidth_gbps=1555.0,
        refresh_overhead=0.035,
        rw_turnaround_penalty=0.112,
    ),
    tensor_core=TensorCoreSpec(
        count=432,
        generation=3,
        dense_peak_tflops={
            "fp16": 312.0,
            "bf16": 312.0,
            "tf32": 156.0,
            "fp64": 19.5,
            "int8": 624.0,
            "int4": 1248.0,
            "binary": 4992.0,
        },
    ),
    power_cap_watts=250.0,
    max_cluster_size=1,
)

_RTX4090 = DeviceSpec(
    name="RTX4090",
    marketing_name="RTX4090",
    architecture=Architecture.ADA,
    num_sms=128,
    cuda_cores_per_sm=128,
    max_threads_per_sm=1536,
    max_blocks_per_sm=24,
    registers_per_sm=65536,
    clocks=ClockDomain(
        base_sm_mhz=2235.0,
        boost_sm_mhz=2520.0,
        # The paper observed the card clocking above its official boost,
        # which is why measured TC throughput exceeds the official peak.
        observed_sm_mhz=2730.0,
        memory_mhz=10501.0,
    ),
    cache=CacheGeometry(
        l1_size_kib=128,
        shared_max_kib=100,
        l2_size_kib=72 * 1024,
        l2_partitions=1,
    ),
    mem_latencies=MemoryLatencies(
        shared_clk=30.1,
        l1_hit_clk=43.4,
        l2_hit_clk=273.0,
        # GDDR6X round-trip adds more cycles than HBM2e.
        dram_clk=268.5,
    ),
    mem_widths=MemoryWidths(
        l1_bytes_per_clk_sm=128.0,
        smem_bytes_per_clk_sm=128.0,
        l2_bytes_per_clk=1750.0,
        lsu_issue_per_clk=0.50,
        # Consumer Ada runs FP64 at 1:64 rate → 2 FMA/clk/SM; the
        # dependent add chain moves 16 B of loaded data per clock.
        fp64_add_bytes_per_clk_sm=16.0,
    ),
    dram=DramSpec(
        size_gib=24,
        mem_type="GDDR6X",
        bus_width_bits=384,
        peak_bandwidth_gbps=1008.0,
        refresh_overhead=0.025,
        rw_turnaround_penalty=0.097,
    ),
    tensor_core=TensorCoreSpec(
        count=512,
        generation=4,
        dense_peak_tflops={
            "fp16": 330.3,
            "bf16": 330.3,
            "tf32": 82.6,
            "fp8": 660.6,
            "int8": 660.6,
            "int4": 1321.2,
            "binary": 5284.8,
        },
    ),
    power_cap_watts=450.0,
    max_cluster_size=1,
)

_H800 = DeviceSpec(
    name="H800",
    marketing_name="H800 PCIe",
    architecture=Architecture.HOPPER,
    num_sms=114,
    cuda_cores_per_sm=128,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    clocks=ClockDomain(
        base_sm_mhz=1095.0,
        boost_sm_mhz=1755.0,
        observed_sm_mhz=1755.0,
        memory_mhz=1593.0,
    ),
    cache=CacheGeometry(
        l1_size_kib=256,
        shared_max_kib=228,
        l2_size_kib=50 * 1024,
        l2_partitions=2,
    ),
    mem_latencies=MemoryLatencies(
        shared_clk=29.0,
        l1_hit_clk=40.7,
        l2_hit_clk=263.0,
        dram_clk=215.8,
        dsm_remote_clk=180.0,
    ),
    mem_widths=MemoryWidths(
        l1_bytes_per_clk_sm=128.0,
        smem_bytes_per_clk_sm=128.0,
        l2_bytes_per_clk=4520.0,
        lsu_issue_per_clk=0.98,
        # The H800 ships with FP64 throughput fused down to ~1 TFLOPS;
        # like Ada, the FP64 add chain caps the FP64 cache probe.
        fp64_add_bytes_per_clk_sm=16.0,
    ),
    dram=DramSpec(
        size_gib=80,
        mem_type="HBM2e",
        bus_width_bits=5120,
        peak_bandwidth_gbps=2039.0,
        refresh_overhead=0.03,
        rw_turnaround_penalty=0.106,
    ),
    tensor_core=TensorCoreSpec(
        count=456,
        generation=4,
        dense_peak_tflops={
            "fp16": 756.5,
            "bf16": 756.5,
            "tf32": 378.0,
            "fp8": 1513.0,
            "int8": 1513.0,
            "fp64": 1.0,
            "binary": 12104.0,
        },
    ),
    power_cap_watts=350.0,
    max_cluster_size=16,
)

_V100 = DeviceSpec(
    name="V100",
    marketing_name="Tesla V100 PCIe",
    architecture=Architecture.VOLTA,
    num_sms=80,
    cuda_cores_per_sm=64,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    clocks=ClockDomain(
        base_sm_mhz=1245.0,
        boost_sm_mhz=1380.0,
        observed_sm_mhz=1312.0,
        memory_mhz=877.0,
    ),
    cache=CacheGeometry(
        l1_size_kib=128,
        shared_max_kib=96,
        l2_size_kib=6 * 1024,
        l2_partitions=1,
    ),
    mem_latencies=MemoryLatencies(
        shared_clk=19.0,
        l1_hit_clk=28.0,
        l2_hit_clk=193.0,
        dram_clk=161.0,
    ),
    mem_widths=MemoryWidths(
        l1_bytes_per_clk_sm=128.0,
        smem_bytes_per_clk_sm=128.0,
        l2_bytes_per_clk=1600.0,
        lsu_issue_per_clk=0.45,
        # Volta keeps 1:2-rate FP64 (strong HPC part): the FP64 add
        # chain never bottlenecks the cache probe.
        fp64_add_bytes_per_clk_sm=128.0,
    ),
    dram=DramSpec(
        size_gib=32,
        mem_type="HBM2",
        bus_width_bits=4096,
        peak_bandwidth_gbps=900.0,
        refresh_overhead=0.035,
        rw_turnaround_penalty=0.112,
    ),
    tensor_core=TensorCoreSpec(
        count=640,
        generation=1,
        # 1st-gen tensor cores: FP16 inputs only — 8 TC/SM × 128
        # FLOP/clk at boost clock.
        dense_peak_tflops={
            "fp16": 113.0,
        },
    ),
    power_cap_watts=250.0,
    max_cluster_size=1,
)

_B200 = DeviceSpec(
    name="B200",
    marketing_name="B200 SXM",
    architecture=Architecture.BLACKWELL,
    num_sms=148,
    cuda_cores_per_sm=128,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    clocks=ClockDomain(
        base_sm_mhz=1125.0,
        boost_sm_mhz=1965.0,
        observed_sm_mhz=1830.0,
        memory_mhz=3200.0,
    ),
    cache=CacheGeometry(
        l1_size_kib=256,
        shared_max_kib=228,
        l2_size_kib=126 * 1024,
        l2_partitions=2,
    ),
    mem_latencies=MemoryLatencies(
        shared_clk=29.0,
        l1_hit_clk=38.9,
        l2_hit_clk=273.0,
        dram_clk=211.0,
        dsm_remote_clk=170.0,
    ),
    mem_widths=MemoryWidths(
        l1_bytes_per_clk_sm=128.0,
        smem_bytes_per_clk_sm=128.0,
        l2_bytes_per_clk=7168.0,
        lsu_issue_per_clk=0.98,
        # Datacenter Blackwell keeps FP64 de-emphasised like the H800.
        fp64_add_bytes_per_clk_sm=16.0,
    ),
    dram=DramSpec(
        size_gib=192,
        mem_type="HBM3e",
        bus_width_bits=8192,
        peak_bandwidth_gbps=8000.0,
        refresh_overhead=0.03,
        rw_turnaround_penalty=0.106,
    ),
    tensor_core=TensorCoreSpec(
        count=592,
        generation=5,
        # 5th-gen peaks (dense, per arXiv 2507.10789); binary tensor
        # ops are gone, so BMMA pairings price as unsupported.
        dense_peak_tflops={
            "fp16": 2250.0,
            "bf16": 2250.0,
            "tf32": 1120.0,
            "fp8": 4500.0,
            "fp64": 40.0,
            "int8": 4500.0,
        },
    ),
    power_cap_watts=1000.0,
    max_cluster_size=16,
)

for _spec in (_A100, _RTX4090, _H800, _V100, _B200):
    register_device(_spec)

#: The three devices the paper benchmarks, in its presentation order.
PAPER_DEVICES = ("RTX4090", "A100", "H800")
