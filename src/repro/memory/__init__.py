"""GPU memory-hierarchy simulator.

Implements the substrate beneath the paper's §III-A experiments:

* :mod:`repro.memory.cache` — sectored set-associative caches (L1, L2),
* :mod:`repro.memory.shared` — banked shared memory with a conflict
  model and real byte-addressable storage,
* :mod:`repro.memory.dram` — the off-chip channel (latency + sustained
  bandwidth derived from refresh/turnaround mechanics),
* :mod:`repro.memory.tlb` — an LRU TLB,
* :mod:`repro.memory.hierarchy` — the per-device façade that routes
  loads through L1 → L2 → DRAM honouring PTX cache operators,
* :mod:`repro.memory.chase` — the steady-state pointer-chase engine
  (periodic streams detected at a fixed point and extrapolated
  exactly),
* :mod:`repro.memory.pchase` — the pointer-chase latency benchmark
  (Table IV),
* :mod:`repro.memory.throughput` — sustained-throughput models per
  level and data type (Table V).
"""

from __future__ import annotations

from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.cache_scalar import ScalarSetAssociativeCache
from repro.memory.shared import BankConflictReport, SharedMemory
from repro.memory.dram import DramChannel
from repro.memory.tlb import Tlb
from repro.memory.hierarchy import (
    AccessResult,
    BatchAccessResult,
    MemoryHierarchy,
    MemLevel,
)
from repro.memory.chase import (
    ChaseEngine,
    ChaseStats,
    chase_total_clk,
    latency_counts,
)
from repro.memory.pchase import PChase, PChaseResult, measure_latencies
from repro.memory.throughput import (
    MemoryThroughputModel,
    ThroughputResult,
    measure_throughputs,
)
from repro.memory.cache_study import CacheProbe, DetectedParameters

__all__ = [
    "SetAssociativeCache",
    "ScalarSetAssociativeCache",
    "CacheStats",
    "SharedMemory",
    "BankConflictReport",
    "DramChannel",
    "Tlb",
    "MemoryHierarchy",
    "MemLevel",
    "AccessResult",
    "BatchAccessResult",
    "ChaseEngine",
    "ChaseStats",
    "chase_total_clk",
    "latency_counts",
    "PChase",
    "PChaseResult",
    "measure_latencies",
    "MemoryThroughputModel",
    "ThroughputResult",
    "measure_throughputs",
    "CacheProbe",
    "DetectedParameters",
]
