"""A simple LRU TLB.

The paper's global-latency benchmark initialises its buffer before
timing *"to warm up the TLB to avoid the occurrence of cold misses"*
(§III-A4).  The model exists so the P-chase driver can demonstrate both
regimes: a cold chase pays ``tlb_miss_clk`` per new page; a warmed chase
pays nothing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence, Union

import numpy as np

__all__ = ["Tlb"]


class Tlb:
    """LRU translation lookaside buffer."""

    def __init__(self, entries: int = 512,
                 page_bytes: int = 2 * 1024 * 1024) -> None:
        if entries <= 0 or page_bytes <= 0:
            raise ValueError("entries and page_bytes must be positive")
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on a TLB hit."""
        page = addr // self.page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False

    def access_many(self, addrs: Union[Sequence[int], np.ndarray]) \
            -> np.ndarray:
        """Batched :meth:`access` — per-access hit booleans, identical
        to sequential calls.

        When every touched page is already resident nothing can be
        evicted, so the whole batch hits and only the recency order
        needs fixing: each touched page moves to the MRU end in order
        of its *last* occurrence.  Otherwise runs of one page collapse
        (the first access decides, the repeats are guaranteed hits) and
        the run heads replay through :meth:`access`.
        """
        a = np.ascontiguousarray(addrs, dtype=np.int64)
        n = len(a)
        hits = np.empty(n, dtype=bool)
        if not n:
            return hits
        pages = a // self.page_bytes
        uniq = np.unique(pages)
        resident = self._pages
        if all(int(p) in resident for p in uniq):
            hits.fill(True)
            self.hits += n
            rev_uniq, rev_idx = np.unique(pages[::-1],
                                          return_index=True)
            last = n - 1 - rev_idx          # last occurrence per page
            for p in rev_uniq[np.argsort(last)].tolist():
                resident.move_to_end(p)
            return hits
        starts = np.flatnonzero(np.r_[True, pages[1:] != pages[:-1]])
        ends = np.r_[starts[1:], n]
        for s, e, page in zip(starts.tolist(), ends.tolist(),
                              pages[starts].tolist()):
            hits[s] = self.access(page * self.page_bytes)
            if e > s + 1:
                hits[s + 1:e] = True
                self.hits += e - s - 1
        return hits

    def warm(self, base: int, size: int) -> None:
        """Touch every page of [base, base+size)."""
        page = base // self.page_bytes
        last = (base + max(size - 1, 0)) // self.page_bytes
        for p in range(page, last + 1):
            self.access(p * self.page_bytes)

    def flush(self) -> None:
        self._pages.clear()
        self.hits = 0
        self.misses = 0

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def state_digest(self) -> bytes:
        """Digest of the resident pages *in recency order* — the full
        behavioural state of an LRU TLB (hit/miss counts excluded:
        they are outcomes, not state)."""
        import hashlib

        arr = np.fromiter(self._pages.keys(), dtype=np.int64,
                          count=len(self._pages))
        return hashlib.blake2b(arr.tobytes(), digest_size=16).digest()
