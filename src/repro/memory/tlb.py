"""A simple LRU TLB.

The paper's global-latency benchmark initialises its buffer before
timing *"to warm up the TLB to avoid the occurrence of cold misses"*
(§III-A4).  The model exists so the P-chase driver can demonstrate both
regimes: a cold chase pays ``tlb_miss_clk`` per new page; a warmed chase
pays nothing.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["Tlb"]


class Tlb:
    """LRU translation lookaside buffer."""

    def __init__(self, entries: int = 512,
                 page_bytes: int = 2 * 1024 * 1024) -> None:
        if entries <= 0 or page_bytes <= 0:
            raise ValueError("entries and page_bytes must be positive")
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on a TLB hit."""
        page = addr // self.page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False

    def warm(self, base: int, size: int) -> None:
        """Touch every page of [base, base+size)."""
        page = base // self.page_bytes
        last = (base + max(size - 1, 0)) // self.page_bytes
        for p in range(page, last + 1):
            self.access(p * self.page_bytes)

    def flush(self) -> None:
        self._pages.clear()
        self.hits = 0
        self.misses = 0

    @property
    def resident_pages(self) -> int:
        return len(self._pages)
