"""The per-device memory hierarchy façade.

Routes loads through L1 → L2 → DRAM honouring PTX cache operators
(``.ca`` allocates in L1+L2, ``.cg`` bypasses L1) and accumulates the
latency of the level that actually serves each request.  This is the
machine the P-chase driver (:mod:`repro.memory.pchase`) runs on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.arch import DeviceSpec
from repro.isa.memory_ops import CacheOp
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DramChannel
from repro.memory.tlb import Tlb

__all__ = ["MemLevel", "AccessResult", "MemoryHierarchy"]


class MemLevel(enum.Enum):
    """The level that served an access."""

    SHARED = "shared"
    L1 = "l1"
    L2 = "l2"
    GLOBAL = "global"


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one load through the hierarchy."""

    latency_clk: float
    level: MemLevel
    tlb_hit: bool


class MemoryHierarchy:
    """L1s (one per SM) + unified L2 + TLB + DRAM for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        geo = device.cache
        self._l1: Dict[int, SetAssociativeCache] = {}
        self.l2 = SetAssociativeCache(
            geo.l2_size_bytes,
            line_bytes=geo.line_bytes,
            sector_bytes=geo.sector_bytes,
            ways=geo.l2_associativity,
            name=f"{device.name}-L2",
        )
        self.tlb = Tlb()
        self.dram = DramChannel.for_device(device)

    # -- caches -----------------------------------------------------------

    def l1_for_sm(self, sm_id: int) -> SetAssociativeCache:
        if not 0 <= sm_id < self.device.num_sms:
            raise ValueError(
                f"sm_id {sm_id} out of range for "
                f"{self.device.name} ({self.device.num_sms} SMs)"
            )
        if sm_id not in self._l1:
            geo = self.device.cache
            self._l1[sm_id] = SetAssociativeCache(
                geo.l1_size_bytes,
                line_bytes=geo.line_bytes,
                sector_bytes=geo.sector_bytes,
                ways=geo.l1_associativity,
                name=f"{self.device.name}-L1[{sm_id}]",
            )
        return self._l1[sm_id]

    def flush(self) -> None:
        for c in self._l1.values():
            c.flush()
        self.l2.flush()
        self.tlb.flush()

    # -- the load path ------------------------------------------------------

    def load(
        self,
        addr: int,
        size: int = 4,
        *,
        sm_id: int = 0,
        cache_op: CacheOp = CacheOp.CACHE_ALL,
    ) -> AccessResult:
        """Issue one load and return where it hit and what it cost.

        Latencies are *total* from the issuing SM (the way a P-chase
        measures them), not per-hop increments: an L2 hit costs
        ``l2_hit_clk`` regardless of having missed L1 on the way.
        """
        if addr < 0:
            raise ValueError("negative address")
        lat = self.device.mem_latencies
        tlb_hit = self.tlb.access(addr)
        extra = 0.0 if tlb_hit else lat.tlb_miss_clk

        if cache_op.allocates_l1:
            if self.l1_for_sm(sm_id).access(addr, size):
                return AccessResult(lat.l1_hit_clk + extra, MemLevel.L1,
                                    tlb_hit)
            # L1 missed and will be filled below through L2.

        l2_hit = self.l2.access(addr, size,
                                allocate=cache_op.allocates_l2)
        if cache_op.allocates_l1:
            # fill L1 after the L2-side lookup (access() above already
            # allocated the line; nothing further to do — the fill
            # happened in the L1 access call).
            pass
        if l2_hit:
            return AccessResult(lat.l2_hit_clk + extra, MemLevel.L2, tlb_hit)
        return AccessResult(
            lat.l2_hit_clk + lat.dram_clk + extra, MemLevel.GLOBAL, tlb_hit
        )

    # -- warm-up helpers used by the microbenchmarks ---------------------------

    def warm_l1(self, sm_id: int, base: int, size: int) -> None:
        """The ``ld.global.ca`` warm-up pass (fills L1 and L2)."""
        self.l1_for_sm(sm_id).warm(base, size)
        self.l2.warm(base, size)
        self.tlb.warm(base, size)

    def warm_l2(self, base: int, size: int) -> None:
        """The ``ld.global.cg`` warm-up pass (fills L2 only)."""
        self.l2.warm(base, size)
        self.tlb.warm(base, size)

    def warm_tlb(self, base: int, size: int) -> None:
        self.tlb.warm(base, size)
