"""The per-device memory hierarchy façade.

Routes loads through L1 → L2 → DRAM honouring PTX cache operators
(``.ca`` allocates in L1+L2, ``.cg`` bypasses L1) and accumulates the
latency of the level that actually serves each request.  This is the
machine the P-chase driver (:mod:`repro.memory.pchase`) runs on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

from repro.arch import DeviceSpec
from repro.isa.memory_ops import CacheOp
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DramChannel
from repro.memory.tlb import Tlb
from repro.obs.session import counters_or_null

__all__ = ["MemLevel", "AccessResult", "BatchAccessResult",
           "LEVEL_CODES", "MemoryHierarchy"]


class MemLevel(enum.Enum):
    """The level that served an access."""

    SHARED = "shared"
    L1 = "l1"
    L2 = "l2"
    GLOBAL = "global"


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one load through the hierarchy."""

    latency_clk: float
    level: MemLevel
    tlb_hit: bool


@dataclass(frozen=True)
class BatchAccessResult:
    """Outcome of a batched :meth:`MemoryHierarchy.load_many`."""

    latency_clk: np.ndarray       # per-access total latency
    level_counts: Dict[MemLevel, int]
    tlb_hits: int
    #: per-access serving level as uint8 codes (index into
    #: :data:`LEVEL_CODES`) — cheap to compare/hash batch-to-batch
    levels: np.ndarray = None
    #: per-access TLB hit booleans
    tlb_hit: np.ndarray = None

    @property
    def accesses(self) -> int:
        return len(self.latency_clk)

    @property
    def mean_latency_clk(self) -> float:
        return float(self.latency_clk.mean()) if self.accesses else 0.0


#: order of the uint8 codes in :attr:`BatchAccessResult.levels`
LEVEL_CODES = (MemLevel.L1, MemLevel.L2, MemLevel.GLOBAL)


class MemoryHierarchy:
    """L1s (one per SM) + unified L2 + TLB + DRAM for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        geo = device.cache
        self._l1: Dict[int, SetAssociativeCache] = {}
        self.l2 = SetAssociativeCache(
            geo.l2_size_bytes,
            line_bytes=geo.line_bytes,
            sector_bytes=geo.sector_bytes,
            ways=geo.l2_associativity,
            name=f"{device.name}-L2",
            level="l2",
        )
        self.tlb = Tlb()
        self.dram = DramChannel.for_device(device)
        # observability sink captured at construction: the null object
        # when no session is active, so the load paths pay one flag
        # check with observability off
        self._obs = counters_or_null()

    # -- caches -----------------------------------------------------------

    def l1_for_sm(self, sm_id: int) -> SetAssociativeCache:
        if not 0 <= sm_id < self.device.num_sms:
            raise ValueError(
                f"sm_id {sm_id} out of range for "
                f"{self.device.name} ({self.device.num_sms} SMs)"
            )
        if sm_id not in self._l1:
            geo = self.device.cache
            self._l1[sm_id] = SetAssociativeCache(
                geo.l1_size_bytes,
                line_bytes=geo.line_bytes,
                sector_bytes=geo.sector_bytes,
                ways=geo.l1_associativity,
                name=f"{self.device.name}-L1[{sm_id}]",
                level="l1",
            )
        return self._l1[sm_id]

    def flush(self) -> None:
        for c in self._l1.values():
            c.flush()
        self.l2.flush()
        self.tlb.flush()

    # -- the load path ------------------------------------------------------

    def load(
        self,
        addr: int,
        size: int = 4,
        *,
        sm_id: int = 0,
        cache_op: CacheOp = CacheOp.CACHE_ALL,
    ) -> AccessResult:
        """Issue one load and return where it hit and what it cost.

        Latencies are *total* from the issuing SM (the way a P-chase
        measures them), not per-hop increments: an L2 hit costs
        ``l2_hit_clk`` regardless of having missed L1 on the way.
        """
        if addr < 0:
            raise ValueError("negative address")
        lat = self.device.mem_latencies
        tlb_hit = self.tlb.access(addr)
        extra = 0.0 if tlb_hit else lat.tlb_miss_clk

        if cache_op.allocates_l1 and self.l1_for_sm(sm_id).access(
                addr, size):
            result = AccessResult(lat.l1_hit_clk + extra, MemLevel.L1,
                                  tlb_hit)
        elif self.l2.access(addr, size, allocate=cache_op.allocates_l2):
            # (an L1 miss is filled through L2 on the way)
            result = AccessResult(lat.l2_hit_clk + extra, MemLevel.L2,
                                  tlb_hit)
        else:
            result = AccessResult(lat.l2_hit_clk + lat.dram_clk + extra,
                                  MemLevel.GLOBAL, tlb_hit)
        obs = self._obs
        if obs.enabled:
            level = result.level.value
            obs.add("mem.loads")
            obs.add(f"mem.bytes.{level}", size)
            obs.add("mem.tlb.hits" if tlb_hit else "mem.tlb.misses")
            obs.observe(f"mem.latency.{level}", result.latency_clk)
        return result

    def load_many(
        self,
        addrs: Union[Sequence[int], np.ndarray],
        size: int = 4,
        *,
        sm_id: int = 0,
        cache_op: CacheOp = CacheOp.CACHE_ALL,
    ) -> BatchAccessResult:
        """Batched :meth:`load` — semantically identical to issuing the
        loads one by one in order, but resolved through the caches'
        vectorized ``access_many`` path.  Used by the P-chase
        initialisation passes, which stream megabytes of addresses
        whose outcomes are independent of one another.
        """
        a = np.ascontiguousarray(addrs, dtype=np.int64)
        if a.ndim != 1:
            raise ValueError("addrs must be one-dimensional")
        n = len(a)
        if n and int(a.min()) < 0:
            raise ValueError("negative address")
        if 0 < n < 32:
            # tiny batches (conflict-ladder laps): a loop of scalar
            # loads costs less than the vectorized set-up and is the
            # batch semantics by definition
            return self._load_small(a, size, sm_id=sm_id,
                                    cache_op=cache_op)
        lat = self.device.mem_latencies
        tlb_hit = self._tlb_access_many(a)
        extra = np.where(tlb_hit, 0.0, lat.tlb_miss_clk)
        l1_hit = np.zeros(n, dtype=bool)
        if cache_op.allocates_l1 and n:
            l1_hit = self.l1_for_sm(sm_id).access_many(a, size)
        l2_hit = np.zeros(n, dtype=bool)
        miss = np.flatnonzero(~l1_hit)
        if len(miss):
            l2_hit[miss] = self.l2.access_many(
                a[miss], size, allocate=cache_op.allocates_l2)
        latency = np.where(
            l1_hit, lat.l1_hit_clk,
            np.where(l2_hit, lat.l2_hit_clk,
                     lat.l2_hit_clk + lat.dram_clk),
        ) + extra
        n_l1 = int(l1_hit.sum())
        n_l2 = int(l2_hit.sum())
        n_tlb = int(tlb_hit.sum())
        obs = self._obs
        if obs.enabled and n:
            counts = {MemLevel.L1: n_l1, MemLevel.L2: n_l2,
                      MemLevel.GLOBAL: n - n_l1 - n_l2}
            obs.add("mem.loads", n)
            if n_tlb:
                obs.add("mem.tlb.hits", n_tlb)
            if n - n_tlb:
                obs.add("mem.tlb.misses", n - n_tlb)
            served = {MemLevel.L1: l1_hit,
                      MemLevel.L2: l2_hit & ~l1_hit,
                      MemLevel.GLOBAL: ~(l1_hit | l2_hit)}
            for lvl, cnt in counts.items():
                if cnt:
                    obs.add(f"mem.bytes.{lvl.value}", cnt * size)
                    obs.observe_many(f"mem.latency.{lvl.value}",
                                     latency[served[lvl]])
        levels = np.full(n, 2, dtype=np.uint8)
        levels[l2_hit] = 1
        levels[l1_hit] = 0
        return BatchAccessResult(
            latency_clk=latency,
            level_counts={MemLevel.L1: n_l1, MemLevel.L2: n_l2,
                          MemLevel.GLOBAL: n - n_l1 - n_l2},
            tlb_hits=n_tlb,
            levels=levels,
            tlb_hit=tlb_hit,
        )

    def _load_small(self, a: np.ndarray, size: int, *, sm_id: int,
                    cache_op: CacheOp) -> BatchAccessResult:
        """Scalar-loop body of :meth:`load_many` for tiny batches."""
        n = len(a)
        latency = np.empty(n, dtype=np.float64)
        levels = np.empty(n, dtype=np.uint8)
        tlb_hit = np.empty(n, dtype=bool)
        counts = {lvl: 0 for lvl in LEVEL_CODES}
        load = self.load
        for i, addr in enumerate(a.tolist()):
            r = load(addr, size, sm_id=sm_id, cache_op=cache_op)
            latency[i] = r.latency_clk
            levels[i] = LEVEL_CODES.index(r.level)
            tlb_hit[i] = r.tlb_hit
            counts[r.level] += 1
        return BatchAccessResult(
            latency_clk=latency,
            level_counts=counts,
            tlb_hits=int(tlb_hit.sum()),
            levels=levels,
            tlb_hit=tlb_hit,
        )

    def _tlb_access_many(self, addrs: np.ndarray) -> np.ndarray:
        """Per-access TLB hit booleans — see :meth:`Tlb.access_many`."""
        return self.tlb.access_many(addrs)

    # -- warm-up helpers used by the microbenchmarks ---------------------------

    def warm_l1(self, sm_id: int, base: int, size: int) -> None:
        """The ``ld.global.ca`` warm-up pass (fills L1 and L2)."""
        self.l1_for_sm(sm_id).warm(base, size)
        self.l2.warm(base, size)
        self.tlb.warm(base, size)

    def warm_l2(self, base: int, size: int) -> None:
        """The ``ld.global.cg`` warm-up pass (fills L2 only)."""
        self.l2.warm(base, size)
        self.tlb.warm(base, size)

    def warm_tlb(self, base: int, size: int) -> None:
        self.tlb.warm(base, size)
