"""Cache-parameter detection via P-chase sweeps.

The classic dissection methodology (Saavedra-Barrera; Mei & Chu, which
the paper builds on): infer cache *capacity*, *line size* and
*associativity* purely from latency measurements —

* **capacity**: chase arrays of growing size; the mean latency steps up
  when the array stops fitting,
* **line size**: chase at growing strides inside a larger-than-cache
  array; per-access miss cost stays flat until the stride exceeds the
  fill granularity (every access its own sector/line),
* **associativity**: chase ``w`` addresses that map to one set; latency
  jumps when ``w`` exceeds the way count.

Running these against the simulator recovers the configured geometry —
the self-consistency check that the measurement methodology and the
model agree.

Each point of the capacity and stride sweeps is an independent chase
through its own :class:`MemoryHierarchy`, so the sweeps fan out over
the :func:`repro.perf.parallel_map` process pool (``jobs > 1``).  The
chase *inside* a point is inherently serial — every load depends on
the previous one; that is the whole point of P-chase — and stays so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch import DeviceSpec
from repro.isa.memory_ops import CacheOp
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import session as _obs

__all__ = ["CacheProbe", "DetectedParameters", "PROBE_BUDGETS",
           "capacity_sweep_sizes"]

#: per-fidelity probe budgets: ``full`` buys longer chases and extra
#: steady-state warmup passes before the measured loop — real
#: precision, not a different code path
PROBE_BUDGETS: Dict[str, Dict[str, int]] = {
    "fast": {"capacity_iters": 512, "warmup_passes": 0,
             "stride_iters": 512, "conflict_iters": 256},
    "full": {"capacity_iters": 2048, "warmup_passes": 2,
             "stride_iters": 1024, "conflict_iters": 1024},
}


def capacity_sweep_sizes(lo_kib: int = 16,
                         hi_kib: int = 1024) -> List[int]:
    """Mixed power-of-two **and** 1.5×power-of-two sizes (KiB):
    16, 24, 32, 48, 64, 96, 128, 192, …

    The 1.5× points are what make non-pow2 L1 capacities detectable —
    A100's 192 KiB sits exactly on one — where a pure pow2 walk jumps
    straight from 128 to 256 and can only bound it.
    """
    sizes = []
    kib = lo_kib
    while kib <= hi_kib:
        sizes.append(kib)
        half = kib + kib // 2
        if half <= hi_kib:
            sizes.append(half)
        kib *= 2
    return sizes


def _capacity_point(task: Tuple[DeviceSpec, int, int, int]) \
        -> Tuple[int, float]:
    """One capacity-sweep point (module-level: pool workers pickle it)."""
    device, kib, iters, warmup = task
    mh = MemoryHierarchy(device)
    size = kib * 1024
    mh.warm_l1(0, 0, size)
    mh.warm_tlb(0, size)
    n = size // 128
    for _ in range(warmup):        # extra steady-state chase passes
        for i in range(n):
            mh.load(i * 128, 32, sm_id=0)
    total = 0.0
    idx = 0
    for _ in range(iters):
        total += mh.load(idx * 128, 32, sm_id=0).latency_clk
        idx = (idx + 1) % n
    return kib, total / iters


def _stride_point(task: Tuple[DeviceSpec, int, int, int]) \
        -> Tuple[int, float]:
    """One stride-sweep point (module-level: pool workers pickle it)."""
    device, stride, array_kib, iters = task
    size = array_kib * 1024
    mh = MemoryHierarchy(device)
    mh.warm_tlb(0, size)
    mh.warm_l2(0, size)
    n = size // stride
    total = 0.0
    for i in range(iters):
        addr = (i % n) * stride
        total += mh.load(addr, 4, sm_id=0,
                         cache_op=CacheOp.CACHE_ALL).latency_clk
    return stride, total / iters


@dataclass(frozen=True)
class DetectedParameters:
    """What the sweeps inferred."""

    l1_capacity_bytes: int
    l1_sector_bytes: int
    l1_ways: int


class CacheProbe:
    """P-chase-style parameter detection bound to one device.

    ``jobs`` is the default process fan-out of the point sweeps; each
    sweep also takes an explicit ``jobs`` override.  ``fidelity``
    selects a :data:`PROBE_BUDGETS` tier — ``full`` runs longer chases
    with steady-state warmup passes before every measured loop.
    """

    def __init__(self, device: DeviceSpec, *, jobs: int = 1,
                 fidelity: str = "fast") -> None:
        if fidelity not in PROBE_BUDGETS:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; "
                f"expected one of {sorted(PROBE_BUDGETS)}")
        self.device = device
        self.jobs = max(1, jobs)
        self.fidelity = fidelity
        self.budget = PROBE_BUDGETS[fidelity]

    def _map(self, fn, tasks, jobs: int):
        # lazy import: repro.perf imports repro.core, which imports the
        # experiment modules, which import this one
        from repro.perf.runner import parallel_map

        jobs = self.jobs if jobs is None else jobs
        if _obs.ACTIVE is not None:
            # pool workers have no session, so their loads would drop
            # out of the counter bank and serial/parallel dumps would
            # diverge; under observability the sweeps stay in-process
            jobs = 1
        return parallel_map(fn, tasks, jobs=jobs)

    def _span(self, name: str, points: int, iters: int):
        """A wall-clock trace span around one sweep (or a null
        context when tracing is off)."""
        from contextlib import nullcontext

        tracer = _obs.ACTIVE.tracer if _obs.ACTIVE is not None \
            else None
        if tracer is None:
            return nullcontext()
        return tracer.span(
            f"{name} {self.device.name}", cat="probe",
            args={"device": self.device.name,
                  "fidelity": self.fidelity,
                  "points": points, "iters": iters,
                  "warmup_passes": self.budget["warmup_passes"]})

    # -- capacity ------------------------------------------------------------

    def capacity_sweep(self, sizes_kib: List[int],
                       iters: Optional[int] = None, *,
                       jobs: Optional[int] = None) -> Dict[int, float]:
        """Mean chase latency vs array size (KiB)."""
        if iters is None:
            iters = self.budget["capacity_iters"]
        warmup = self.budget["warmup_passes"]
        tasks = [(self.device, kib, iters, warmup)
                 for kib in sizes_kib]
        with self._span("capacity_sweep", len(tasks), iters):
            return dict(self._map(_capacity_point, tasks, jobs))

    def detect_l1_capacity(self, *, lo_kib: int = 16,
                           hi_kib: int = 1024) -> int:
        """Largest array (bytes) that still chases at L1 latency.

        The sweep walks :func:`capacity_sweep_sizes` — powers of two
        plus the 1.5× midpoints — so 192 KiB-class capacities resolve
        exactly instead of rounding down to 128.
        """
        l1_lat = self.device.mem_latencies.l1_hit_clk
        sizes = capacity_sweep_sizes(lo_kib, hi_kib)
        sweep = self.capacity_sweep(sizes)
        best = 0
        for kib, lat in sweep.items():
            if lat <= l1_lat * 1.05:
                best = max(best, kib * 1024)
        return best

    # -- fill granularity -----------------------------------------------------

    def stride_sweep(self, strides: List[int],
                     array_kib: int = 512,
                     iters: Optional[int] = None, *,
                     jobs: Optional[int] = None) -> Dict[int, float]:
        """Mean latency of a strided chase through a >L1 array that is
        re-walked after one warming pass (misses dominate).  Latency
        per *byte* falls as the stride shrinks below the sector size
        (several accesses share one fill); per-access latency is flat
        above it."""
        if iters is None:
            iters = self.budget["stride_iters"]
        tasks = [(self.device, stride, array_kib, iters)
                 for stride in strides]
        with self._span("stride_sweep", len(tasks), iters):
            return dict(self._map(_stride_point, tasks, jobs))

    def detect_sector_bytes(self) -> int:
        """Smallest stride at which every access misses L1 on first
        touch (= the fill granularity)."""
        sweep = self.stride_sweep([4, 8, 16, 32, 64, 128])
        l2_lat = self.device.mem_latencies.l2_hit_clk
        for stride in sorted(sweep):
            # all-miss ⇒ mean ≈ L2-hit latency (L2 was pre-warmed)
            if sweep[stride] >= 0.95 * l2_lat:
                return stride
        return max(sweep)

    # -- associativity ------------------------------------------------------------

    def conflict_sweep(self, ways_range: List[int],
                       iters: Optional[int] = None) -> Dict[int, float]:
        """Chase ``w`` same-set addresses repeatedly."""
        if iters is None:
            iters = self.budget["conflict_iters"]
        warmup = 1 + self.budget["warmup_passes"]
        geo = self.device.cache
        l1_lines = geo.l1_size_bytes // geo.line_bytes
        num_sets = l1_lines // geo.l1_associativity
        set_stride = num_sets * geo.line_bytes
        out = {}
        with self._span("conflict_sweep", len(ways_range), iters):
            for w in ways_range:
                mh = MemoryHierarchy(self.device)
                addrs = [i * set_stride for i in range(w)]
                mh.warm_tlb(0, addrs[-1] + 128)
                for _ in range(warmup):      # warm pass(es)
                    for a in addrs:
                        mh.load(a, 32, sm_id=0)
                total = 0.0
                for i in range(iters):
                    total += mh.load(addrs[i % w], 32,
                                     sm_id=0).latency_clk
                out[w] = total / iters
        return out

    def detect_l1_ways(self, max_ways: int = 16) -> int:
        """Largest same-set working set that still hits in L1."""
        sweep = self.conflict_sweep(list(range(1, max_ways + 1)))
        l1_lat = self.device.mem_latencies.l1_hit_clk
        detected = 0
        for w in sorted(sweep):
            if sweep[w] <= l1_lat * 1.05:
                detected = w
        return detected

    # -- all together ---------------------------------------------------------------

    def detect(self) -> DetectedParameters:
        return DetectedParameters(
            l1_capacity_bytes=self.detect_l1_capacity(),
            l1_sector_bytes=self.detect_sector_bytes(),
            l1_ways=self.detect_l1_ways(),
        )
