"""Cache-parameter detection via P-chase sweeps.

The classic dissection methodology (Saavedra-Barrera; Mei & Chu, which
the paper builds on): infer cache *capacity*, *line size* and
*associativity* purely from latency measurements —

* **capacity**: chase arrays of growing size; the mean latency steps up
  when the array stops fitting,
* **line size**: chase at growing strides inside a larger-than-cache
  array; per-access miss cost stays flat until the stride exceeds the
  fill granularity (every access its own sector/line),
* **associativity**: chase ``w`` addresses that map to one set; latency
  jumps when ``w`` exceeds the way count.

Running these against the simulator recovers the configured geometry —
the self-consistency check that the measurement methodology and the
model agree.

Each point of the capacity and stride sweeps is an independent chase
through its own :class:`MemoryHierarchy`, so the sweeps fan out over
the :func:`repro.perf.parallel_map` process pool (``jobs > 1``).  The
chase *inside* a point is inherently serial — every load depends on
the previous one; that is the whole point of P-chase — and stays so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch import DeviceSpec
from repro.isa.memory_ops import CacheOp
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["CacheProbe", "DetectedParameters"]


def _capacity_point(task: Tuple[DeviceSpec, int, int]) \
        -> Tuple[int, float]:
    """One capacity-sweep point (module-level: pool workers pickle it)."""
    device, kib, iters = task
    mh = MemoryHierarchy(device)
    size = kib * 1024
    mh.warm_l1(0, 0, size)
    mh.warm_tlb(0, size)
    n = size // 128
    total = 0.0
    idx = 0
    for _ in range(iters):
        total += mh.load(idx * 128, 32, sm_id=0).latency_clk
        idx = (idx + 1) % n
    return kib, total / iters


def _stride_point(task: Tuple[DeviceSpec, int, int, int]) \
        -> Tuple[int, float]:
    """One stride-sweep point (module-level: pool workers pickle it)."""
    device, stride, array_kib, iters = task
    size = array_kib * 1024
    mh = MemoryHierarchy(device)
    mh.warm_tlb(0, size)
    mh.warm_l2(0, size)
    n = size // stride
    total = 0.0
    for i in range(iters):
        addr = (i % n) * stride
        total += mh.load(addr, 4, sm_id=0,
                         cache_op=CacheOp.CACHE_ALL).latency_clk
    return stride, total / iters


@dataclass(frozen=True)
class DetectedParameters:
    """What the sweeps inferred."""

    l1_capacity_bytes: int
    l1_sector_bytes: int
    l1_ways: int


class CacheProbe:
    """P-chase-style parameter detection bound to one device.

    ``jobs`` is the default process fan-out of the point sweeps; each
    sweep also takes an explicit ``jobs`` override.
    """

    def __init__(self, device: DeviceSpec, *, jobs: int = 1) -> None:
        self.device = device
        self.jobs = max(1, jobs)

    def _map(self, fn, tasks, jobs: int):
        # lazy import: repro.perf imports repro.core, which imports the
        # experiment modules, which import this one
        from repro.perf.runner import parallel_map

        return parallel_map(fn, tasks,
                            jobs=self.jobs if jobs is None else jobs)

    # -- capacity ------------------------------------------------------------

    def capacity_sweep(self, sizes_kib: List[int],
                       iters: int = 1024, *,
                       jobs: Optional[int] = None) -> Dict[int, float]:
        """Mean chase latency vs array size (KiB)."""
        tasks = [(self.device, kib, iters) for kib in sizes_kib]
        return dict(self._map(_capacity_point, tasks, jobs))

    def detect_l1_capacity(self, *, lo_kib: int = 16,
                           hi_kib: int = 1024) -> int:
        """Largest power-of-two array (bytes) that still chases at L1
        latency."""
        l1_lat = self.device.mem_latencies.l1_hit_clk
        sizes = []
        kib = lo_kib
        while kib <= hi_kib:
            sizes.append(kib)
            kib *= 2
        sweep = self.capacity_sweep(sizes, iters=512)
        best = 0
        for kib, lat in sweep.items():
            if lat <= l1_lat * 1.05:
                best = max(best, kib * 1024)
        return best

    # -- fill granularity -----------------------------------------------------

    def stride_sweep(self, strides: List[int],
                     array_kib: int = 512,
                     iters: int = 512, *,
                     jobs: Optional[int] = None) -> Dict[int, float]:
        """Mean latency of a strided chase through a >L1 array that is
        re-walked after one warming pass (misses dominate).  Latency
        per *byte* falls as the stride shrinks below the sector size
        (several accesses share one fill); per-access latency is flat
        above it."""
        tasks = [(self.device, stride, array_kib, iters)
                 for stride in strides]
        return dict(self._map(_stride_point, tasks, jobs))

    def detect_sector_bytes(self) -> int:
        """Smallest stride at which every access misses L1 on first
        touch (= the fill granularity)."""
        sweep = self.stride_sweep([4, 8, 16, 32, 64, 128])
        l2_lat = self.device.mem_latencies.l2_hit_clk
        for stride in sorted(sweep):
            # all-miss ⇒ mean ≈ L2-hit latency (L2 was pre-warmed)
            if sweep[stride] >= 0.95 * l2_lat:
                return stride
        return max(sweep)

    # -- associativity ------------------------------------------------------------

    def conflict_sweep(self, ways_range: List[int],
                       iters: int = 256) -> Dict[int, float]:
        """Chase ``w`` same-set addresses repeatedly."""
        geo = self.device.cache
        l1_lines = geo.l1_size_bytes // geo.line_bytes
        num_sets = l1_lines // geo.l1_associativity
        set_stride = num_sets * geo.line_bytes
        out = {}
        for w in ways_range:
            mh = MemoryHierarchy(self.device)
            addrs = [i * set_stride for i in range(w)]
            mh.warm_tlb(0, addrs[-1] + 128)
            for a in addrs:              # warm pass
                mh.load(a, 32, sm_id=0)
            total = 0.0
            for i in range(iters):
                total += mh.load(addrs[i % w], 32,
                                 sm_id=0).latency_clk
            out[w] = total / iters
        return out

    def detect_l1_ways(self, max_ways: int = 16) -> int:
        """Largest same-set working set that still hits in L1."""
        sweep = self.conflict_sweep(list(range(1, max_ways + 1)))
        l1_lat = self.device.mem_latencies.l1_hit_clk
        detected = 0
        for w in sorted(sweep):
            if sweep[w] <= l1_lat * 1.05:
                detected = w
        return detected

    # -- all together ---------------------------------------------------------------

    def detect(self) -> DetectedParameters:
        return DetectedParameters(
            l1_capacity_bytes=self.detect_l1_capacity(),
            l1_sector_bytes=self.detect_sector_bytes(),
            l1_ways=self.detect_l1_ways(),
        )
