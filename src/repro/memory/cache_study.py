"""Cache-parameter detection via P-chase sweeps.

The classic dissection methodology (Saavedra-Barrera; Mei & Chu, which
the paper builds on): infer cache *capacity*, *line size* and
*associativity* purely from latency measurements —

* **capacity**: chase arrays of growing size; the mean latency steps up
  when the array stops fitting,
* **line size**: chase at growing strides inside a larger-than-cache
  array; per-access miss cost stays flat until the stride exceeds the
  fill granularity (every access its own sector/line),
* **associativity**: chase ``w`` addresses that map to one set; latency
  jumps when ``w`` exceeds the way count.

Running these against the simulator recovers the configured geometry —
the self-consistency check that the measurement methodology and the
model agree.

Each point of the capacity and stride sweeps is an independent chase
through its own :class:`MemoryHierarchy`.  The chase *inside* a point
is logically serial — every load depends on the previous one; that is
the whole point of P-chase — but the default ``engine="vectorized"``
resolves it on the steady-state
:class:`~repro.memory.chase.ChaseEngine`: whole periods run through
the batched cache paths and repeated periods are accounted
analytically, with results exactly equal (cycles and counters) to the
scalar reference loops preserved as ``*_scalar``.  A vectorized point
is cheap enough that the :func:`repro.perf.parallel_map` process-pool
fan-out (``jobs > 1``) is now an option rather than a necessity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch import DeviceSpec
from repro.isa.memory_ops import CacheOp
from repro.memory.chase import (ChaseEngine, chase_total_clk,
                                latency_counts)
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import session as _obs

__all__ = ["CacheProbe", "DetectedParameters", "PROBE_BUDGETS",
           "capacity_sweep_sizes"]

#: per-fidelity probe budgets: ``full`` buys longer chases and extra
#: steady-state warmup passes before the measured loop — real
#: precision, not a different code path
PROBE_BUDGETS: Dict[str, Dict[str, int]] = {
    "fast": {"capacity_iters": 512, "warmup_passes": 0,
             "stride_iters": 512, "conflict_iters": 256},
    "full": {"capacity_iters": 2048, "warmup_passes": 2,
             "stride_iters": 1024, "conflict_iters": 1024},
}


def capacity_sweep_sizes(lo_kib: int = 16,
                         hi_kib: int = 1024) -> List[int]:
    """Mixed power-of-two **and** 1.5×power-of-two sizes (KiB):
    16, 24, 32, 48, 64, 96, 128, 192, …

    The 1.5× points are what make non-pow2 L1 capacities detectable —
    A100's 192 KiB sits exactly on one — where a pure pow2 walk jumps
    straight from 128 to 256 and can only bound it.
    """
    sizes = []
    kib = lo_kib
    while kib <= hi_kib:
        sizes.append(kib)
        half = kib + kib // 2
        if half <= hi_kib:
            sizes.append(half)
        kib *= 2
    return sizes


def _capacity_point(task: Tuple[DeviceSpec, int, int, int],
                    mh: Optional[MemoryHierarchy] = None) \
        -> Tuple[int, float]:
    """One capacity-sweep point (module-level: pool workers pickle it),
    resolved on the steady-state engine.  ``mh`` lets a serial caller
    reuse one flushed hierarchy across points (a flush is behaviourally
    a fresh hierarchy but keeps the grown cache matrices)."""
    device, kib, iters, warmup = task
    if mh is None:
        mh = MemoryHierarchy(device)
    else:
        mh.flush()
    size = kib * 1024
    mh.warm_l1(0, 0, size)
    mh.warm_tlb(0, size)
    n = size // 128
    seq = np.arange(n, dtype=np.int64) * 128
    eng = ChaseEngine(mh, size=32)
    if warmup:                     # extra steady-state chase passes
        eng.run(seq, warmup * n)
    return kib, eng.run(seq, iters).mean_latency_clk


def _capacity_point_scalar(task: Tuple[DeviceSpec, int, int, int]) \
        -> Tuple[int, float]:
    """Scalar reference for :func:`_capacity_point` — the original
    one-load-per-step chase (the executable spec)."""
    device, kib, iters, warmup = task
    mh = MemoryHierarchy(device)
    size = kib * 1024
    mh.warm_l1(0, 0, size)
    mh.warm_tlb(0, size)
    n = size // 128
    for _ in range(warmup):        # extra steady-state chase passes
        for i in range(n):
            mh.load(i * 128, 32, sm_id=0)
    lats = np.empty(iters)
    idx = 0
    for i in range(iters):
        lats[i] = mh.load(idx * 128, 32, sm_id=0).latency_clk
        idx = (idx + 1) % n
    return kib, chase_total_clk(latency_counts(lats)) / iters


def _stride_point(task: Tuple[DeviceSpec, int, int, int],
                  mh: Optional[MemoryHierarchy] = None) \
        -> Tuple[int, float]:
    """One stride-sweep point (module-level: pool workers pickle it),
    resolved on the steady-state engine.  ``mh`` as in
    :func:`_capacity_point`."""
    device, stride, array_kib, iters = task
    size = array_kib * 1024
    if mh is None:
        mh = MemoryHierarchy(device)
    else:
        mh.flush()
    mh.warm_tlb(0, size)
    mh.warm_l2(0, size)
    n = size // stride
    seq = np.arange(n, dtype=np.int64) * stride
    eng = ChaseEngine(mh, size=4, cache_op=CacheOp.CACHE_ALL)
    return stride, eng.run(seq, iters).mean_latency_clk


def _stride_point_scalar(task: Tuple[DeviceSpec, int, int, int]) \
        -> Tuple[int, float]:
    """Scalar reference for :func:`_stride_point` (the executable
    spec)."""
    device, stride, array_kib, iters = task
    size = array_kib * 1024
    mh = MemoryHierarchy(device)
    mh.warm_tlb(0, size)
    mh.warm_l2(0, size)
    n = size // stride
    lats = np.empty(iters)
    for i in range(iters):
        addr = (i % n) * stride
        lats[i] = mh.load(addr, 4, sm_id=0,
                          cache_op=CacheOp.CACHE_ALL).latency_clk
    return stride, chase_total_clk(latency_counts(lats)) / iters


@dataclass(frozen=True)
class DetectedParameters:
    """What the sweeps inferred."""

    l1_capacity_bytes: int
    l1_sector_bytes: int
    l1_ways: int


class CacheProbe:
    """P-chase-style parameter detection bound to one device.

    ``jobs`` is the default process fan-out of the point sweeps; each
    sweep also takes an explicit ``jobs`` override.  ``fidelity``
    selects a :data:`PROBE_BUDGETS` tier — ``full`` runs longer chases
    with steady-state warmup passes before every measured loop.
    ``engine`` picks the steady-state chase engine (default) or the
    scalar reference loops; both produce identical sweeps.
    """

    _ENGINES = ("vectorized", "scalar")

    def __init__(self, device: DeviceSpec, *, jobs: int = 1,
                 fidelity: str = "fast",
                 engine: str = "vectorized") -> None:
        if fidelity not in PROBE_BUDGETS:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; "
                f"expected one of {sorted(PROBE_BUDGETS)}")
        if engine not in self._ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {self._ENGINES}")
        self.device = device
        self.jobs = max(1, jobs)
        self.fidelity = fidelity
        self.engine = engine
        self.budget = PROBE_BUDGETS[fidelity]
        self._mh: Optional[MemoryHierarchy] = None

    def _hierarchy(self) -> MemoryHierarchy:
        """One reusable hierarchy for serial in-process sweeps.
        Rebuilt if the observability sink changed (a session started
        or ended since it was made) so counters land in the right
        bank."""
        from repro.obs.session import counters_or_null

        sink = counters_or_null()
        if self._mh is None or self._mh._obs is not sink:
            self._mh = MemoryHierarchy(self.device)
        return self._mh

    def _map(self, fn, tasks, jobs: int):
        # lazy import: repro.perf imports repro.core, which imports the
        # experiment modules, which import this one
        from repro.perf.runner import parallel_map

        jobs = self.jobs if jobs is None else jobs
        if _obs.ACTIVE is not None:
            # pool workers have no session, so their loads would drop
            # out of the counter bank and serial/parallel dumps would
            # diverge; under observability the sweeps stay in-process
            jobs = 1
        if jobs == 1 and self.engine == "vectorized":
            # serial in-process: run the points against one flushed
            # hierarchy — the retained matrix allocation makes each
            # point's warm-up passes cheap
            mh = self._hierarchy()
            return [fn(t, mh=mh) for t in tasks]
        return parallel_map(fn, tasks, jobs=jobs)

    def _span(self, name: str, points: int, iters: int):
        """A wall-clock trace span around one sweep (or a null
        context when tracing is off)."""
        from contextlib import nullcontext

        tracer = _obs.ACTIVE.tracer if _obs.ACTIVE is not None \
            else None
        if tracer is None:
            return nullcontext()
        return tracer.span(
            f"{name} {self.device.name}", cat="probe",
            args={"device": self.device.name,
                  "fidelity": self.fidelity,
                  "points": points, "iters": iters,
                  "warmup_passes": self.budget["warmup_passes"]})

    # -- capacity ------------------------------------------------------------

    def capacity_sweep(self, sizes_kib: List[int],
                       iters: Optional[int] = None, *,
                       jobs: Optional[int] = None) -> Dict[int, float]:
        """Mean chase latency vs array size (KiB)."""
        if iters is None:
            iters = self.budget["capacity_iters"]
        warmup = self.budget["warmup_passes"]
        tasks = [(self.device, kib, iters, warmup)
                 for kib in sizes_kib]
        fn = _capacity_point if self.engine == "vectorized" \
            else _capacity_point_scalar
        if self.engine == "vectorized" and sizes_kib:
            # size the reusable hierarchy for the largest point up
            # front instead of re-growing through the sweep
            mh = self._hierarchy()
            span = max(sizes_kib) * 1024
            mh.l1_for_sm(0).reserve_span(span)
            mh.l2.reserve_span(span)
        with self._span("capacity_sweep", len(tasks), iters):
            return dict(self._map(fn, tasks, jobs))

    def detect_l1_capacity(self, *, lo_kib: int = 16,
                           hi_kib: int = 1024) -> int:
        """Largest array (bytes) that still chases at L1 latency.

        The sweep walks :func:`capacity_sweep_sizes` — powers of two
        plus the 1.5× midpoints — so 192 KiB-class capacities resolve
        exactly instead of rounding down to 128.
        """
        l1_lat = self.device.mem_latencies.l1_hit_clk
        sizes = capacity_sweep_sizes(lo_kib, hi_kib)
        sweep = self.capacity_sweep(sizes)
        best = 0
        for kib, lat in sweep.items():
            if lat <= l1_lat * 1.05:
                best = max(best, kib * 1024)
        return best

    # -- fill granularity -----------------------------------------------------

    def stride_sweep(self, strides: List[int],
                     array_kib: int = 512,
                     iters: Optional[int] = None, *,
                     jobs: Optional[int] = None) -> Dict[int, float]:
        """Mean latency of a strided chase through a >L1 array that is
        re-walked after one warming pass (misses dominate).  Latency
        per *byte* falls as the stride shrinks below the sector size
        (several accesses share one fill); per-access latency is flat
        above it."""
        if iters is None:
            iters = self.budget["stride_iters"]
        tasks = [(self.device, stride, array_kib, iters)
                 for stride in strides]
        fn = _stride_point if self.engine == "vectorized" \
            else _stride_point_scalar
        if self.engine == "vectorized":
            mh = self._hierarchy()
            mh.l1_for_sm(0).reserve_span(array_kib * 1024)
            mh.l2.reserve_span(array_kib * 1024)
        with self._span("stride_sweep", len(tasks), iters):
            return dict(self._map(fn, tasks, jobs))

    def detect_sector_bytes(self) -> int:
        """Smallest stride at which every access misses L1 on first
        touch (= the fill granularity)."""
        sweep = self.stride_sweep([4, 8, 16, 32, 64, 128])
        l2_lat = self.device.mem_latencies.l2_hit_clk
        for stride in sorted(sweep):
            # all-miss ⇒ mean ≈ L2-hit latency (L2 was pre-warmed)
            if sweep[stride] >= 0.95 * l2_lat:
                return stride
        return max(sweep)

    # -- associativity ------------------------------------------------------------

    def conflict_sweep(self, ways_range: List[int],
                       iters: Optional[int] = None) -> Dict[int, float]:
        """Chase ``w`` same-set addresses repeatedly.

        The working set is tiny (≤ ``max_ways`` lines) but the chase
        is long, which is exactly the steady-state engine's best
        case: a lap is ``w`` accesses and the latency/state fixed
        point arrives within a few laps, so almost the whole budget
        is accounted analytically.
        """
        if self.engine == "scalar":
            return self.conflict_sweep_scalar(ways_range, iters)
        if iters is None:
            iters = self.budget["conflict_iters"]
        warmup = 1 + self.budget["warmup_passes"]
        set_stride = self._conflict_set_stride()
        out = {}
        mh = self._hierarchy()
        if ways_range:
            span = max(ways_range) * set_stride
            mh.l1_for_sm(0).reserve_span(span)
            mh.l2.reserve_span(span)
        with self._span("conflict_sweep", len(ways_range), iters):
            for w in ways_range:
                mh.flush()
                seq = np.arange(w, dtype=np.int64) * set_stride
                mh.warm_tlb(0, int(seq[-1]) + 128)
                eng = ChaseEngine(mh, size=32)
                eng.run(seq, warmup * w)     # warm pass(es)
                out[w] = eng.run(seq, iters).mean_latency_clk
        return out

    def conflict_sweep_scalar(self, ways_range: List[int],
                              iters: Optional[int] = None) \
            -> Dict[int, float]:
        """Scalar reference for :meth:`conflict_sweep` (the
        executable spec)."""
        if iters is None:
            iters = self.budget["conflict_iters"]
        warmup = 1 + self.budget["warmup_passes"]
        set_stride = self._conflict_set_stride()
        out = {}
        with self._span("conflict_sweep", len(ways_range), iters):
            for w in ways_range:
                mh = MemoryHierarchy(self.device)
                addrs = [i * set_stride for i in range(w)]
                mh.warm_tlb(0, addrs[-1] + 128)
                for _ in range(warmup):      # warm pass(es)
                    for a in addrs:
                        mh.load(a, 32, sm_id=0)
                lats = np.empty(iters)
                for i in range(iters):
                    lats[i] = mh.load(addrs[i % w], 32,
                                      sm_id=0).latency_clk
                out[w] = chase_total_clk(latency_counts(lats)) / iters
        return out

    def _conflict_set_stride(self) -> int:
        geo = self.device.cache
        l1_lines = geo.l1_size_bytes // geo.line_bytes
        num_sets = l1_lines // geo.l1_associativity
        return num_sets * geo.line_bytes

    def detect_l1_ways(self, max_ways: int = 16) -> int:
        """Largest same-set working set that still hits in L1."""
        sweep = self.conflict_sweep(list(range(1, max_ways + 1)))
        l1_lat = self.device.mem_latencies.l1_hit_clk
        detected = 0
        for w in sorted(sweep):
            if sweep[w] <= l1_lat * 1.05:
                detected = w
        return detected

    # -- all together ---------------------------------------------------------------

    def detect(self) -> DetectedParameters:
        return DetectedParameters(
            l1_capacity_bytes=self.detect_l1_capacity(),
            l1_sector_bytes=self.detect_sector_bytes(),
            l1_ways=self.detect_l1_ways(),
        )
