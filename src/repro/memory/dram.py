"""Off-chip DRAM channel model.

Latency comes straight from the device calibration
(:class:`repro.arch.MemoryLatencies.dram_clk`); *sustained bandwidth*
is derived from the channel's peak rate minus refresh and read/write
turnaround overheads — which is how the paper's ~90–92 %-of-peak global
throughput (Table V) emerges rather than being stored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import DeviceSpec, DramSpec

__all__ = ["DramChannel"]


@dataclass
class DramChannel:
    """A device's aggregate DRAM subsystem."""

    spec: DramSpec

    @classmethod
    def for_device(cls, device: DeviceSpec) -> "DramChannel":
        return cls(device.dram)

    @property
    def capacity_bytes(self) -> int:
        return self.spec.size_gib * (1 << 30)

    @property
    def peak_bandwidth_gbps(self) -> float:
        return self.spec.peak_bandwidth_gbps

    def sustained_bandwidth_gbps(self, *, read_fraction: float = 1.0) -> float:
        """Sustained bandwidth for a given read share of traffic."""
        return self.spec.effective_bandwidth_gbps(read_fraction)

    def transfer_time_s(self, nbytes: float, *,
                        read_fraction: float = 1.0) -> float:
        """Time to stream ``nbytes`` at sustained bandwidth."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bw = self.sustained_bandwidth_gbps(read_fraction=read_fraction)
        return nbytes / (bw * 1e9)

    def fits(self, nbytes: float) -> bool:
        """Capacity check — the OOM verdicts of Table XII use this."""
        return nbytes <= self.capacity_bytes
