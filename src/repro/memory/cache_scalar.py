"""Reference scalar implementation of the sectored cache.

This is the original pure-Python :class:`SetAssociativeCache` (per-set
``_Line`` lists, linear tag scans, ``min()`` LRU selection), preserved
verbatim in behaviour as the executable specification for the
vectorized implementation in :mod:`repro.memory.cache`.  The property
tests in ``tests/test_memory_cache.py`` drive both models with the
same random access streams and assert access-for-access equivalence.

Do not use this class on hot paths — it exists to be obviously
correct, not fast.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.memory.cache import CacheStats

__all__ = ["ScalarSetAssociativeCache"]


class _Line:
    """One cache line: tag + per-sector valid bits + LRU stamp."""

    __slots__ = ("tag", "valid_sectors", "stamp")

    def __init__(self, tag: int, stamp: int,
                 valid_sectors: int = 0) -> None:
        self.tag = tag
        self.valid_sectors = valid_sectors  # bitmask over sectors
        self.stamp = stamp


class ScalarSetAssociativeCache:
    """The original sectored, true-LRU, set-associative cache model.

    Interface-compatible with
    :class:`repro.memory.cache.SetAssociativeCache` for ``access``,
    ``probe``, ``warm``, ``flush`` and ``resident_bytes``.
    """

    def __init__(
        self,
        size_bytes: int,
        *,
        line_bytes: int = 128,
        sector_bytes: int = 32,
        ways: int = 4,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or size_bytes % line_bytes:
            raise ValueError("size must be a positive multiple of the line")
        if line_bytes % sector_bytes:
            raise ValueError("line must be a multiple of the sector")
        num_lines = size_bytes // line_bytes
        if num_lines % ways:
            raise ValueError("line count must be divisible by ways")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        self.sectors_per_line = line_bytes // sector_bytes
        self.stats = CacheStats()
        self._clock = 0
        # sets[set_index] -> list of _Line (size <= ways)
        self._sets: List[List[_Line]] = [[] for _ in range(self.num_sets)]

    # -- address helpers ----------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int, int]:
        line_addr = addr // self.line_bytes
        set_idx = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        sector = (addr % self.line_bytes) // self.sector_bytes
        return set_idx, tag, sector

    def _sector_span(self, addr: int, size: int) -> List[Tuple[int, int, int]]:
        out = []
        a = addr
        end = addr + max(size, 1)
        while a < end:
            out.append(self._locate(a))
            a = (a // self.sector_bytes + 1) * self.sector_bytes
        return out

    # -- main interface -------------------------------------------------------

    def access(self, addr: int, size: int = 4, *, write: bool = False,
               allocate: bool = True) -> bool:
        """Probe the cache; returns True iff *all* touched sectors hit."""
        self._clock += 1
        self.stats.accesses += 1
        all_hit = True
        touched = self._sector_span(addr, size)
        for set_idx, tag, sector in touched:
            line = self._find(set_idx, tag)
            bit = 1 << sector
            if line is not None and line.valid_sectors & bit:
                line.stamp = self._clock
                continue
            all_hit = False
            if line is not None:
                self.stats.sector_misses += 1
                if allocate:
                    line.valid_sectors |= bit
                    line.stamp = self._clock
            else:
                self.stats.tag_misses += 1
                if allocate:
                    self._fill(set_idx, tag, bit)
        if all_hit:
            self.stats.hits += 1
        return all_hit

    def probe(self, addr: int, size: int = 4) -> bool:
        """Non-destructive lookup (no fill, no LRU update, no stats)."""
        for set_idx, tag, sector in self._sector_span(addr, size):
            line = self._find(set_idx, tag)
            if line is None or not (line.valid_sectors & (1 << sector)):
                return False
        return True

    def warm(self, base: int, size: int) -> None:
        """Fill an address range (the ``ld.ca`` warm-up pass)."""
        addr = (base // self.sector_bytes) * self.sector_bytes
        end = base + size
        while addr < end:
            self.access(addr, self.sector_bytes)
            addr += self.sector_bytes

    def flush(self) -> None:
        for s in self._sets:
            s.clear()
        self.stats.reset()

    # -- internals --------------------------------------------------------------

    def _find(self, set_idx: int, tag: int) -> Optional[_Line]:
        for line in self._sets[set_idx]:
            if line.tag == tag:
                return line
        return None

    def _fill(self, set_idx: int, tag: int, sector_bits: int) -> None:
        lines = self._sets[set_idx]
        if len(lines) >= self.ways:
            victim = min(lines, key=lambda l: l.stamp)
            lines.remove(victim)
            self.stats.evictions += 1
        lines.append(_Line(tag, self._clock, sector_bits))

    # -- introspection -------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        total = 0
        for s in self._sets:
            for line in s:
                total += bin(line.valid_sectors).count("1")
        return total * self.sector_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<scalar {self.name}: {self.size_bytes // 1024} KiB, "
            f"{self.ways}-way, {self.num_sets} sets>"
        )
