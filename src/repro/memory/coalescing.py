"""Warp memory-access coalescing analysis.

Global loads are serviced in 32-byte sectors: the hardware coalesces a
warp's 32 lane addresses into the minimal set of sector transactions.
This analyser computes that set — the tool one uses to explain why a
strided or misaligned kernel sees a fraction of Table V's streaming
bandwidth.

The efficiency definition matches the profiler's
``gld_efficiency``: requested bytes over transferred bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CoalescingReport", "analyze_warp_access",
           "strided_access", "efficiency_vs_stride"]

SECTOR_BYTES = 32


@dataclass(frozen=True)
class CoalescingReport:
    """Transactions one warp access generates."""

    lanes: int
    bytes_per_lane: int
    sectors: int
    requested_bytes: int

    @property
    def transferred_bytes(self) -> int:
        return self.sectors * SECTOR_BYTES

    @property
    def efficiency(self) -> float:
        """Requested / transferred (1.0 = perfectly coalesced)."""
        if not self.transferred_bytes:
            return 0.0
        return self.requested_bytes / self.transferred_bytes

    @property
    def perfectly_coalesced(self) -> bool:
        return self.efficiency >= 1.0 - 1e-12


def analyze_warp_access(addresses: Sequence[int],
                        bytes_per_lane: int = 4) -> CoalescingReport:
    """Coalesce one warp's lane byte-addresses into sectors."""
    if len(addresses) > 32:
        raise ValueError("a warp has at most 32 lanes")
    if bytes_per_lane not in (1, 2, 4, 8, 16):
        raise ValueError("bytes_per_lane must be 1/2/4/8/16")
    if any(a < 0 for a in addresses):
        raise ValueError("addresses must be non-negative")
    sectors = set()
    for a in addresses:
        first = a // SECTOR_BYTES
        last = (a + bytes_per_lane - 1) // SECTOR_BYTES
        sectors.update(range(first, last + 1))
    return CoalescingReport(
        lanes=len(addresses),
        bytes_per_lane=bytes_per_lane,
        sectors=len(sectors),
        requested_bytes=len(addresses) * bytes_per_lane,
    )


def strided_access(stride_bytes: int, *, base: int = 0,
                   bytes_per_lane: int = 4,
                   lanes: int = 32) -> CoalescingReport:
    """The canonical probe: lane i accesses ``base + i·stride``."""
    if stride_bytes < 0:
        raise ValueError("stride must be non-negative")
    return analyze_warp_access(
        [base + i * stride_bytes for i in range(lanes)],
        bytes_per_lane=bytes_per_lane,
    )


def efficiency_vs_stride(strides: Sequence[int],
                         bytes_per_lane: int = 4) -> dict:
    """Efficiency curve over strides — unit stride is perfect, the
    curve decays to ``bytes_per_lane / 32`` once every lane owns a
    sector."""
    return {
        s: strided_access(s, bytes_per_lane=bytes_per_lane).efficiency
        for s in strides
    }
