"""Sustained memory throughput per level (paper §III-A, Table V).

Each level's sustained rate is the minimum over the mechanisms that can
bottleneck it:

* **data-path width** (``l1_bytes_per_clk_sm``, ``l2_bytes_per_clk``,
  shared-memory banks × bank width),
* **LSU instruction issue** — a warp-level scalar ``ld.f32`` moves only
  128 B, so when the LSU cannot issue one load per clock the achieved
  width drops below the data path's (the FP32 column; vectorised
  ``float4`` loads move 512 B per instruction and saturate the width),
* **the FP64 execution unit** — the benchmark must *consume* loaded
  FP64 values with adds to defeat dead-code elimination, so on parts
  with fused-down FP64 (RTX 4090 at 1:64, H800) the FP64 row measures
  the ALU, not the cache — the paper calls this out explicitly,
* **DRAM sustained bandwidth** for global memory (refresh + read/write
  turnaround mechanics in :class:`repro.arch.DramSpec`), with the
  paper's 5-reads-1-write vectorised stream.

``_ACCESS_EFFICIENCY`` holds small per-(device, pattern) calibration
factors (0.83–0.99) capturing crossbar/ECC effects the structural model
does not resolve; they are calibration constants in the same sense a
validated simulator (e.g. Accel-Sim) carries per-SKU efficiency tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.arch import DeviceSpec

__all__ = ["ThroughputResult", "MemoryThroughputModel", "measure_throughputs"]

#: access patterns of Table V
PATTERNS = ("FP32", "FP64", "FP32.v4")

#: bytes one warp-level load instruction moves, per pattern
_BYTES_PER_INSTR = {"FP32": 128, "FP64": 256, "FP32.v4": 512}

#: per-(device, level, pattern) residual efficiency calibration
_ACCESS_EFFICIENCY: Mapping[Tuple[str, str, str], float] = {
    ("RTX4090", "l1", "FP32.v4"): 0.947,
    ("RTX4090", "l1", "FP64"): 0.83,
    ("A100", "l1", "FP32.v4"): 0.835,
    ("A100", "l1", "FP64"): 0.94,
    ("H800", "l1", "FP32.v4"): 0.97,
    ("RTX4090", "l2", "FP32"): 0.927,
    ("RTX4090", "l2", "FP64"): 0.858,
    ("RTX4090", "l2", "FP32.v4"): 0.976,
    ("A100", "l2", "FP32"): 0.904,
    ("A100", "l2", "FP64"): 0.971,
    ("A100", "l2", "FP32.v4"): 0.979,
    ("H800", "l2", "FP32"): 0.99,
    ("H800", "l2", "FP32.v4"): 0.872,
}


def _eff(device: DeviceSpec, level: str, pattern: str) -> float:
    return _ACCESS_EFFICIENCY.get((device.name, level, pattern), 1.0)


@dataclass(frozen=True)
class ThroughputResult:
    """One cell of Table V, with the limiting mechanism identified."""

    level: str
    pattern: str
    value: float
    unit: str
    limiter: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.level}[{self.pattern}] = {self.value:.1f} {self.unit} "
            f"(limited by {self.limiter})"
        )


class MemoryThroughputModel:
    """Per-device sustained-throughput calculator."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # -- L1 ------------------------------------------------------------------

    def l1(self, pattern: str = "FP32.v4") -> ThroughputResult:
        """L1 throughput in bytes/clk/SM for one access pattern.

        A single 1024-thread block hammers an L1-resident buffer (the
        paper's method); the achieved rate is the min of path width,
        LSU issue and — for FP64 — the consuming ALU.
        """
        self._check_pattern(pattern)
        w = self.device.mem_widths
        candidates = {
            "L1 width": w.l1_bytes_per_clk_sm,
            "LSU issue": w.lsu_issue_per_clk * _BYTES_PER_INSTR[pattern],
        }
        if pattern == "FP64":
            candidates["FP64 unit"] = w.fp64_add_bytes_per_clk_sm
        limiter = min(candidates, key=candidates.get)
        value = candidates[limiter] * _eff(self.device, "l1", pattern)
        return ThroughputResult("L1 Cache", pattern, value,
                                "byte/clk/SM", limiter)

    # -- shared ----------------------------------------------------------------

    def shared(self) -> ThroughputResult:
        """Shared-memory throughput: 32 banks × 4 B, conflict-free."""
        w = self.device.mem_widths
        value = min(
            w.smem_bytes_per_clk_sm,
            w.smem_banks * w.smem_bank_bytes,
        )
        return ThroughputResult("Shared Memory", "FP32", float(value),
                                "byte/clk/SM", "bank width")

    # -- L2 --------------------------------------------------------------------

    def l2(self, pattern: str = "FP32.v4") -> ThroughputResult:
        """Chip-wide L2 throughput in bytes/clk.

        Many blocks across all SMs stream an L2-resident buffer; the
        rate is the L2 crossbar width unless the per-SM FP64 ALUs (the
        consuming adds) saturate first: ``fp64_add_bytes_per_clk_sm ×
        num_sms`` — which is exactly why the H800's FP64 L2 number in
        Table V collapses to ~1.8 kB/clk.
        """
        self._check_pattern(pattern)
        w = self.device.mem_widths
        candidates = {"L2 width": w.l2_bytes_per_clk}
        if pattern == "FP64":
            candidates["FP64 units"] = (
                w.fp64_add_bytes_per_clk_sm * self.device.num_sms
            )
        limiter = min(candidates, key=candidates.get)
        value = candidates[limiter] * _eff(self.device, "l2", pattern)
        return ThroughputResult("L2 Cache", pattern, value,
                                "byte/clk", limiter)

    # -- global -------------------------------------------------------------------

    def global_memory(self, *, reads_per_write: int = 5) -> ThroughputResult:
        """Global-memory streaming bandwidth in GB/s.

        The paper's kernel reads five ``float4`` values and writes one
        per thread; the read share sets the bus-turnaround overhead in
        the DRAM model.
        """
        rf = reads_per_write / (reads_per_write + 1)
        bw = self.device.dram.effective_bandwidth_gbps(rf)
        return ThroughputResult("Global Memory", "FP32.v4", bw, "GB/s",
                                "DRAM sustained")

    # -- composite ------------------------------------------------------------------

    def l2_vs_global_ratio(self) -> float:
        """The "L2 vs. Global" row: best-pattern L2 bytes/s over DRAM.

        L2 bytes/clk are converted with the boost clock, matching how
        the paper compares the two quantities.
        """
        best_l2 = max(self.l2(p).value for p in PATTERNS)
        l2_gbps = best_l2 * self.device.clocks.boost_hz / 1e9
        return l2_gbps / self.global_memory().value

    def theoretical_fraction(self) -> float:
        """Achieved global bandwidth over the spec-sheet peak."""
        return self.global_memory().value / self.device.dram.peak_bandwidth_gbps

    @staticmethod
    def _check_pattern(pattern: str) -> None:
        if pattern not in PATTERNS:
            raise ValueError(
                f"unknown access pattern {pattern!r}; choose from {PATTERNS}"
            )


def measure_throughputs(device: DeviceSpec) -> Dict[str, float]:
    """One device's column of Table V as a flat dict."""
    m = MemoryThroughputModel(device)
    out: Dict[str, float] = {}
    for p in PATTERNS:
        out[f"L1 {p} (byte/clk/SM)"] = m.l1(p).value
    for p in PATTERNS:
        out[f"L2 {p} (byte/clk)"] = m.l2(p).value
    out["Shared (byte/clk/SM)"] = m.shared().value
    out["Global (GB/s)"] = m.global_memory().value
    out["L2 vs. Global"] = m.l2_vs_global_ratio()
    out["% of peak"] = 100.0 * m.theoretical_fraction()
    return out
