"""Banked shared memory with real storage.

Shared memory on all three architectures is organised as 32 banks of
4-byte words; a warp access that maps two lanes onto different words of
the same bank serialises (bank conflict).  The model provides

* real byte-addressable storage (NumPy-backed) — the DSM histogram
  application stores actual counts in it,
* a conflict analyser for a warp's 32 addresses,
* atomics (``atomicAdd`` on 4-byte words) with conflict accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["SharedMemory", "BankConflictReport"]


@dataclass(frozen=True)
class BankConflictReport:
    """Conflict analysis of one warp-wide shared-memory access."""

    degree: int          # max ways any bank is hit with distinct words
    conflicting_banks: int
    broadcast: bool      # all lanes read the same word

    @property
    def serialized_passes(self) -> int:
        """Hardware replays the access once per conflict way."""
        return max(self.degree, 1)


class SharedMemory:
    """One thread block's shared-memory allocation.

    Parameters
    ----------
    size_bytes:
        Allocation size (≤ the device's per-block carve-out).
    banks / bank_bytes:
        Banking geometry (32 × 4 B on every device modelled).
    """

    def __init__(self, size_bytes: int, *, banks: int = 32,
                 bank_bytes: int = 4) -> None:
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        self.size_bytes = int(size_bytes)
        self.banks = banks
        self.bank_bytes = bank_bytes
        self._data = np.zeros(self.size_bytes, dtype=np.uint8)
        self.atomic_ops = 0
        self.accesses = 0

    # -- storage -----------------------------------------------------------

    def write(self, offset: int, payload: np.ndarray | bytes) -> None:
        buf = np.frombuffer(bytes(payload), dtype=np.uint8) \
            if isinstance(payload, (bytes, bytearray)) \
            else np.asarray(payload).view(np.uint8).ravel()
        self._bounds(offset, buf.size)
        self._data[offset:offset + buf.size] = buf
        self.accesses += 1

    def read(self, offset: int, size: int) -> np.ndarray:
        self._bounds(offset, size)
        self.accesses += 1
        return self._data[offset:offset + size].copy()

    def read_u32(self, offset: int) -> int:
        return int(self.read(offset, 4).view(np.uint32)[0])

    def write_u32(self, offset: int, value: int) -> None:
        self.write(offset, np.array([value], dtype=np.uint32))

    def atomic_add_u32(self, offset: int, value: int = 1) -> int:
        """``atomicAdd`` on a 4-byte word; returns the old value."""
        self._bounds(offset, 4)
        old = self.read_u32(offset)
        self.write_u32(offset, (old + value) & 0xFFFFFFFF)
        self.atomic_ops += 1
        return old

    def fill(self, value: int = 0) -> None:
        self._data[:] = value

    def _bounds(self, offset: int, size: int) -> None:
        if offset < 0 or offset + size > self.size_bytes:
            raise IndexError(
                f"shared-memory access [{offset}, {offset + size}) out of "
                f"bounds for allocation of {self.size_bytes} B"
            )

    # -- bank conflicts -------------------------------------------------------

    def conflict_report(
        self, lane_addresses: Sequence[int]
    ) -> BankConflictReport:
        """Analyse one warp access (≤32 lane byte-addresses)."""
        if len(lane_addresses) > 32:
            raise ValueError("a warp has at most 32 lanes")
        words = [a // self.bank_bytes for a in lane_addresses]
        if not words:
            return BankConflictReport(1, 0, False)
        if len(set(words)) == 1:
            return BankConflictReport(1, 0, True)
        per_bank: dict[int, set[int]] = {}
        for w in words:
            per_bank.setdefault(w % self.banks, set()).add(w)
        degree = max(len(ws) for ws in per_bank.values())
        conflicting = sum(1 for ws in per_bank.values() if len(ws) > 1)
        return BankConflictReport(degree, conflicting, False)

    def access_cycles(self, lane_addresses: Sequence[int],
                      base_latency: float) -> float:
        """Latency of a warp access including conflict replays."""
        rep = self.conflict_report(lane_addresses)
        return base_latency + (rep.serialized_passes - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SharedMemory {self.size_bytes} B, {self.banks} banks>"
