"""Steady-state pointer-chase engine.

Every chase the paper's methodology runs — capacity sweeps, stride
sweeps, conflict ladders, the Table IV per-level probes — walks a
*periodic* address stream: a pointer chain (or modular walk) of period
``P`` replayed for ``iters`` accesses.  The driving loop used to step
the hierarchy one scalar ``load()`` at a time, which made the chase
the last Python-rate hot loop in the simulator.

:class:`ChaseEngine` exploits the periodicity instead of paying for
it.  It simulates whole periods through the batched
:meth:`~repro.memory.hierarchy.MemoryHierarchy.load_many` path —
grouped into "superlaps" of several periods so short chains still
move in efficiently sized batches (any multiple of the period is
itself a period) — and fingerprints each superlap with

* the per-access latency vector and serving levels,
* the per-access TLB hit bits, and
* a canonical digest of every piece of state the stream can see:
  the touched L1/L2 sets (resident lines, sector masks, relative LRU
  rank — see :meth:`SetAssociativeCache.state_digest`) and the TLB's
  recency order.

When two consecutive laps fingerprint equal, the chase has reached a
fixed point: the digest captures all behaviour-relevant state
ordinally (LRU decisions compare stamps, never read them), so every
future lap must repeat the confirming lap's outcomes *and* its
counter increments exactly.  The engine then accounts the remaining
whole laps analytically — outcome counts, ``CacheStats`` fields,
TLB hit/miss totals and the active :class:`ObsSession` counter bank
all advance by ``k ×`` the confirming lap's delta — and simulates
only the final partial lap, which by the same equivalence argument
is exact.  Nothing about the result is approximate; the scalar chase
loops are preserved as executable specs (``*_scalar``) and property
tests assert exact cycle totals and counter-bank equality.

Summed cycles are computed with :func:`chase_total_clk` — a
count-weighted sum over the distinct latency values in ascending
order — on the engine *and* spec paths, so totals compare bit-equal
regardless of how many laps were extrapolated.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.isa.memory_ops import CacheOp
from repro.memory.hierarchy import (BatchAccessResult, MemLevel,
                                    MemoryHierarchy)
from repro.obs.session import active_tracer
from repro.obs.trace import SIM_TRACK

__all__ = ["ChaseEngine", "ChaseStats", "chase_total_clk",
           "latency_counts"]

#: target accesses per simulated batch: laps are grouped into
#: "superlaps" of ``ceil(_BATCH_TARGET / period)`` periods so short
#: chains still move through ``load_many`` in efficiently sized calls.
#: Any multiple of the period is itself a period, so fixed-point
#: detection on superlap signatures is exactly as sound as on single
#: laps — it just confirms after at most two superlaps instead of two
#: laps.
_BATCH_TARGET = 512


def latency_counts(latencies: Union[Sequence[float], np.ndarray]) \
        -> Dict[float, int]:
    """Histogram a latency stream into ``{value: count}``."""
    values, counts = np.unique(np.asarray(latencies, dtype=np.float64),
                               return_counts=True)
    return dict(zip(values.tolist(), counts.tolist()))


def chase_total_clk(counts: Mapping[float, int]) -> float:
    """Total cycles of a chase from its latency histogram.

    Summation order is fixed (ascending latency value, one multiply
    per distinct value), so any two paths that agree on the histogram
    — e.g. a scalar loop and an engine that extrapolated most of its
    laps — produce bit-identical totals.
    """
    total = 0.0
    for value in sorted(counts):
        total += value * counts[value]
    return total


@dataclass(frozen=True)
class ChaseStats:
    """Outcome of one engine chase, exact in every count."""

    iters: int
    latency_counts: Dict[float, int]
    level_counts: Dict[MemLevel, int]
    tlb_hits: int
    #: accesses resolved by simulation vs accounted analytically
    simulated: int = 0
    extrapolated: int = 0

    @property
    def total_latency_clk(self) -> float:
        return chase_total_clk(self.latency_counts)

    @property
    def mean_latency_clk(self) -> float:
        return self.total_latency_clk / self.iters if self.iters \
            else 0.0

    def at_level(self, level: MemLevel) -> float:
        """Fraction of accesses served at ``level``."""
        if not self.iters:
            return 0.0
        return self.level_counts.get(level, 0) / self.iters


class ChaseEngine:
    """Runs periodic chase workloads on one
    :class:`MemoryHierarchy` (see module docstring).

    Parameters mirror the scalar chase loops: ``size`` is the access
    width, ``cache_op`` the PTX cache operator, ``sm_id`` the issuing
    SM.  The engine shares the hierarchy's observability sink, so a
    chase fires exactly the counters the equivalent scalar loop
    would.
    """

    def __init__(self, hierarchy: MemoryHierarchy, *, size: int = 32,
                 sm_id: int = 0,
                 cache_op: CacheOp = CacheOp.CACHE_ALL) -> None:
        self.hierarchy = hierarchy
        self.size = size
        self.sm_id = sm_id
        self.cache_op = cache_op

    # -- the drive loop -----------------------------------------------------

    def run(self, seq: Union[Sequence[int], np.ndarray],
            iters: int) -> ChaseStats:
        """Chase ``iters`` accesses through the periodic address
        stream ``seq`` (access ``i`` goes to ``seq[i % len(seq)]``),
        exactly as a scalar loop would."""
        seq = np.ascontiguousarray(seq, dtype=np.int64)
        period = len(seq)
        if period == 0:
            raise ValueError("need a non-empty address sequence")
        if iters < 0:
            raise ValueError("iters must be non-negative")

        h = self.hierarchy
        l1 = h.l1_for_sm(self.sm_id) if self.cache_op.allocates_l1 \
            else None
        l2 = h.l2
        # touched-set lists are only needed to take a signature; many
        # chases (short budgets relative to the period) never take one
        l1_sets = l2_sets = None

        # a superlap = ``batch`` whole periods, simulated in one
        # load_many call; the stream is periodic in it too.  Short
        # chains (conflict ladders) stay at batch=1: their laps are
        # too concentrated for the caches' lockstep path, and per-lap
        # signatures reach the fixed point after a handful of
        # simulated accesses instead of hundreds.
        if period >= 32:
            batch = max(1, -(-_BATCH_TARGET // period))
        else:
            batch = 1
        superlap = batch * period
        if batch > 1:
            stream = np.tile(seq, batch)
        else:
            stream = seq

        counts: Dict[float, int] = {}
        levels: Dict[MemLevel, int] = {}
        tlb_hits = 0
        simulated = extrapolated = 0

        obs = h._obs
        # Sampled tracing: the trace stays small no matter how long
        # the chase is — one span for the steady-state (confirming)
        # superlap plus one fixed-point instant, on the sim-cycle
        # clock, instead of an event per access or per lap.
        tracer = active_tracer()
        cycle_cursor = 0.0
        prev_sig: Optional[bytes] = None
        done = 0
        while done < iters:
            remaining = iters - done
            if remaining < superlap:
                # tail: fewer accesses than one superlap.  Outcome
                # histograms don't care about lap boundaries, so the
                # whole tail is one batched call.  When it follows a
                # detected fixed point this is still exact — the
                # steady state is digest-equivalent to the state the
                # true tail would have started from.
                res = self._lap(stream[:remaining])
                self._absorb(res, counts, levels)
                tlb_hits += res.tlb_hits
                simulated += remaining
                done = iters
                break
            obs_snap = obs.as_dict() if obs.enabled else None
            stat_snap = self._stats_snapshot(l1, l2)
            res = self._lap(stream)
            self._absorb(res, counts, levels)
            tlb_hits += res.tlb_hits
            simulated += superlap
            done += superlap
            if tracer is not None:
                lap_clk = float(res.latency_clk.sum())
                cycle_cursor += lap_clk
            # A signature only pays if a comparison can still save
            # work: comparing needs a *next* full superlap (whose own
            # signature requires ``done + superlap <= iters`` then),
            # and a first-of-a-pair signature additionally needs ≥ 1
            # extrapolatable lap beyond that comparison point.  Both
            # conditions are monotone in ``done``, so skipping never
            # breaks the consecutive-lap invariant — once skipped,
            # no later lap takes a signature either.
            if done + superlap <= iters and \
                    (prev_sig is not None
                     or done + 2 * superlap <= iters):
                if l2_sets is None:
                    l1_sets = np.unique(
                        (seq // l1.line_bytes) % l1.num_sets) \
                        if l1 is not None else None
                    l2_sets = np.unique(
                        (seq // l2.line_bytes) % l2.num_sets)
                sig = self._signature(res, l1, l1_sets, l2, l2_sets)
                if sig == prev_sig:
                    # fixed point: account the remaining whole
                    # superlaps analytically from the confirming
                    # superlap's deltas
                    k = (iters - done) // superlap
                    if tracer is not None:
                        tracer.complete(
                            "chase steady-state lap",
                            cycle_cursor - lap_clk, lap_clk,
                            cat="chase", pid=SIM_TRACK,
                            tid=f"chase sm{self.sm_id}",
                            args={"period": period,
                                  "superlap": superlap,
                                  "lap_clk": lap_clk})
                        tracer.instant(
                            "chase fixed point",
                            ts=cycle_cursor,
                            cat="chase", pid=SIM_TRACK,
                            tid=f"chase sm{self.sm_id}",
                            args={"iters": iters,
                                  "simulated": simulated,
                                  "extrapolated_laps": k,
                                  "extrapolated": k * superlap})
                    if k:
                        self._absorb(res, counts, levels, scale=k)
                        tlb_hits += res.tlb_hits * k
                        self._scale_stats(l1, l2, stat_snap, k)
                        if obs.enabled:
                            obs.add_scaled(obs.delta_since(obs_snap),
                                           k)
                        extrapolated += k * superlap
                        done += k * superlap
                        if tracer is not None:
                            cycle_cursor += k * lap_clk
                prev_sig = sig
        return ChaseStats(iters=iters, latency_counts=counts,
                          level_counts=levels, tlb_hits=tlb_hits,
                          simulated=simulated,
                          extrapolated=extrapolated)

    # -- internals ----------------------------------------------------------

    def _lap(self, addrs: np.ndarray) -> BatchAccessResult:
        return self.hierarchy.load_many(addrs, self.size,
                                        sm_id=self.sm_id,
                                        cache_op=self.cache_op)

    @staticmethod
    def _absorb(res: BatchAccessResult, counts: Dict[float, int],
                levels: Dict[MemLevel, int], scale: int = 1) -> None:
        values, n = np.unique(res.latency_clk, return_counts=True)
        for v, c in zip(values.tolist(), n.tolist()):
            counts[v] = counts.get(v, 0) + c * scale
        for lvl, c in res.level_counts.items():
            if c:
                levels[lvl] = levels.get(lvl, 0) + c * scale

    def _signature(self, res: BatchAccessResult, l1, l1_sets, l2,
                   l2_sets) -> bytes:
        """Fingerprint of one lap: its outcomes plus the canonical
        digest of all state the stream can observe afterwards."""
        h = hashlib.blake2b(digest_size=16)
        h.update(res.latency_clk.tobytes())
        h.update(res.levels.tobytes())
        h.update(res.tlb_hit.tobytes())
        if l1 is not None:
            h.update(l1.state_digest(l1_sets))
        h.update(l2.state_digest(l2_sets))
        h.update(self.hierarchy.tlb.state_digest())
        return h.digest()

    def _stats_snapshot(self, l1, l2):
        def cache_fields(c):
            s = c.stats
            return (s.accesses, s.hits, s.sector_misses, s.tag_misses,
                    s.evictions)

        tlb = self.hierarchy.tlb
        return (cache_fields(l1) if l1 is not None else None,
                cache_fields(l2), (tlb.hits, tlb.misses))

    def _scale_stats(self, l1, l2, snap, k: int) -> None:
        """Advance ``CacheStats`` / TLB totals by ``k`` laps' worth of
        the deltas recorded since ``snap``."""
        l1_snap, l2_snap, tlb_snap = snap

        def bump(c, before):
            s = c.stats
            now = (s.accesses, s.hits, s.sector_misses, s.tag_misses,
                   s.evictions)
            s.accesses += (now[0] - before[0]) * k
            s.hits += (now[1] - before[1]) * k
            s.sector_misses += (now[2] - before[2]) * k
            s.tag_misses += (now[3] - before[3]) * k
            s.evictions += (now[4] - before[4]) * k

        if l1 is not None:
            bump(l1, l1_snap)
        bump(l2, l2_snap)
        tlb = self.hierarchy.tlb
        tlb.hits += (tlb.hits - tlb_snap[0]) * k
        tlb.misses += (tlb.misses - tlb_snap[1]) * k
