"""Sectored set-associative cache model (vectorized).

Nvidia caches are organised as 128-byte lines split into 32-byte
sectors: a tag covers the whole line but data is filled per sector, so
a strided stream that touches one word per line still transfers only
the sectors it needs.  The model tracks tags + per-sector validity with
true-LRU replacement, which is sufficient for every access pattern the
paper's microbenchmarks generate (sequential warm-up passes followed by
pointer chases).

The state lives in NumPy matrices of shape ``(num_sets, ways)`` —
``_lines`` (resident line address), ``_valid`` (per-sector valid
bitmask) and ``_stamp`` (LRU timestamp) — with a flat
``line address → way`` dict as the lookup index, so a scalar
:meth:`access` is O(1) in the associativity instead of a linear way
scan, and constructing a cache is O(1) in its capacity (the matrices
are callocated, never eagerly initialised).  The batched
:meth:`access_many` additionally recognises the dominant warm-up
pattern (monotonically ascending, single-sector accesses into an empty
cache — what :meth:`warm` and the P-chase initialisation passes emit)
and computes the final state matrices in closed form with array
operations, skipping the per-access loop entirely.

Behaviour is access-for-access identical to the original scalar
implementation, preserved as
:class:`repro.memory.cache_scalar.ScalarSetAssociativeCache` and
enforced by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.counters import NULL_COUNTERS
from repro.obs.session import counters_or_null

__all__ = ["SetAssociativeCache", "CacheStats"]


@dataclass
class CacheStats:
    """Running hit/miss counters."""

    accesses: int = 0
    hits: int = 0
    sector_misses: int = 0   # tag hit but sector not yet filled
    tag_misses: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.sector_misses + self.tag_misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = 0
        self.sector_misses = self.tag_misses = self.evictions = 0


class SetAssociativeCache:
    """A sectored, true-LRU, set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    line_bytes:
        Tag granularity (128 B on all three devices).
    sector_bytes:
        Fill granularity (32 B).
    ways:
        Associativity.
    name:
        For diagnostics only.
    level:
        Observability label (``"l1"``/``"l2"``).  When set *and* an
        :class:`~repro.obs.session.ObsSession` is active at
        construction, recorded accesses additionally feed the
        session's ``cache.<level>.*`` counters; otherwise the cache
        holds the null sink and instrumentation costs one flag check.
    """

    def __init__(
        self,
        size_bytes: int,
        *,
        line_bytes: int = 128,
        sector_bytes: int = 32,
        ways: int = 4,
        name: str = "cache",
        level: Optional[str] = None,
    ) -> None:
        if size_bytes <= 0 or size_bytes % line_bytes:
            raise ValueError("size must be a positive multiple of the line")
        if line_bytes % sector_bytes:
            raise ValueError("line must be a multiple of the sector")
        num_lines = size_bytes // line_bytes
        if num_lines % ways:
            raise ValueError("line count must be divisible by ways")
        if line_bytes // sector_bytes > 63:
            raise ValueError("at most 63 sectors per line (int64 bitmask)")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        self.sectors_per_line = line_bytes // sector_bytes
        self.stats = CacheStats()
        self.level = level
        self._obs = counters_or_null() if level else NULL_COUNTERS
        self._k_acc = f"cache.{level}.accesses"
        self._k_hit = f"cache.{level}.hits"
        self._k_sector = f"cache.{level}.sector_misses"
        self._k_tag = f"cache.{level}.tag_misses"
        self._k_evict = f"cache.{level}.evictions"
        self._clock = 0
        self._ins_counter = 0   # global insertion sequence (LRU tie-break)
        self._alloc_state()

    def _alloc_state(self) -> None:
        # Occupied ways of a set are always 0.._set_fill[set]-1, so the
        # zero-initialised matrices are never read before being written.
        shape = (self.num_sets, self.ways)
        self._lines = np.zeros(shape, dtype=np.int64)   # line addresses
        self._valid = np.zeros(shape, dtype=np.int64)   # sector bitmasks
        self._stamp = np.zeros(shape, dtype=np.int64)   # LRU timestamps
        self._ins = np.zeros(shape, dtype=np.int64)     # insertion seq
        self._set_fill = np.zeros(self.num_sets, dtype=np.int64)
        self._where: Dict[int, int] = {}                # line addr → way

    # -- address helpers ----------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int, int]:
        line_addr = addr // self.line_bytes
        set_idx = line_addr % self.num_sets
        sector = (addr % self.line_bytes) // self.sector_bytes
        return line_addr, set_idx, sector

    def _sector_span(self, addr: int, size: int) -> List[Tuple[int, int, int]]:
        """All (line, set, sector) triples a [addr, addr+size) access
        touches.  Accesses are at most a line in practice."""
        out = []
        a = addr
        end = addr + max(size, 1)
        while a < end:
            out.append(self._locate(a))
            a = (a // self.sector_bytes + 1) * self.sector_bytes
        return out

    # -- main interface -------------------------------------------------------

    def access(self, addr: int, size: int = 4, *, write: bool = False,
               allocate: bool = True, record: bool = True) -> bool:
        """Probe the cache; returns True iff *all* touched sectors hit.

        Misses fill the touched sectors (when ``allocate``), evicting
        the LRU line of the set if the set is full.  Write policy is
        write-allocate (both L1 and L2 on these parts are
        write-allocate for the access sizes we model).

        ``record=False`` updates the cache state (fills, LRU stamps)
        without touching :attr:`stats` — the warm-up path, so reported
        hit rates cover only the measured phase.
        """
        self._clock += 1
        clock = self._clock
        obs = self._obs if record else NULL_COUNTERS
        if record:
            self.stats.accesses += 1
            if obs.enabled:
                obs.add(self._k_acc)
        all_hit = True
        valid = self._valid
        stamp = self._stamp
        where = self._where
        for line_addr, set_idx, sector in self._sector_span(addr, size):
            way = where.get(line_addr)
            bit = 1 << sector
            if way is not None and int(valid[set_idx, way]) & bit:
                stamp[set_idx, way] = clock
                continue
            all_hit = False
            if way is not None:
                if record:
                    self.stats.sector_misses += 1
                    if obs.enabled:
                        obs.add(self._k_sector)
                if allocate:
                    valid[set_idx, way] |= bit
                    stamp[set_idx, way] = clock
            else:
                if record:
                    self.stats.tag_misses += 1
                    if obs.enabled:
                        obs.add(self._k_tag)
                if allocate:
                    self._insert(line_addr, set_idx, bit, record)
        if all_hit and record:
            self.stats.hits += 1
            if obs.enabled:
                obs.add(self._k_hit)
        return all_hit

    def access_many(self, addrs: Union[Sequence[int], np.ndarray],
                    size: int = 4, *, write: bool = False,
                    allocate: bool = True,
                    record: bool = True) -> np.ndarray:
        """Batched :meth:`access` — semantically identical to calling
        ``access`` once per address in order; returns the per-access
        hit booleans.

        Ascending single-sector streams into an empty cache (the
        ``warm()`` / initialisation-pass pattern) are resolved in
        closed form without a per-access loop; anything else falls
        back to the exact scalar path.
        """
        a = np.ascontiguousarray(addrs, dtype=np.int64)
        if a.ndim != 1:
            raise ValueError("addrs must be one-dimensional")
        n = len(a)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if allocate and not self._where and self._bulk_ok(a, size):
            return self._bulk_fill(a, record)
        out = np.empty(n, dtype=bool)
        acc = self.access
        for i, addr in enumerate(a.tolist()):
            out[i] = acc(addr, size, write=write, allocate=allocate,
                         record=record)
        return out

    def probe(self, addr: int, size: int = 4) -> bool:
        """Non-destructive lookup (no fill, no LRU update, no stats)."""
        for line_addr, set_idx, sector in self._sector_span(addr, size):
            way = self._where.get(line_addr)
            if way is None or not (int(self._valid[set_idx, way])
                                   & (1 << sector)):
                return False
        return True

    def warm(self, base: int, size: int, *, record: bool = False) -> None:
        """Fill an address range (the ``ld.ca`` warm-up pass).

        Warm-up accesses advance the LRU clock exactly like measured
        ones but by default leave :attr:`stats` untouched, matching
        the paper's warm-up-then-measure protocol.
        """
        start = (base // self.sector_bytes) * self.sector_bytes
        end = base + size
        if start >= end:
            return
        addrs = np.arange(start, end, self.sector_bytes, dtype=np.int64)
        self.access_many(addrs, self.sector_bytes, record=record)

    def flush(self) -> None:
        self._alloc_state()
        self.stats.reset()

    # -- internals --------------------------------------------------------------

    def _insert(self, line_addr: int, set_idx: int, sector_bits: int,
                record: bool) -> None:
        fill = int(self._set_fill[set_idx])
        if fill >= self.ways:
            # true LRU: smallest stamp; ties (multi-line accesses share
            # one clock) broken by insertion order, like the scalar
            # model's list scan.
            row = self._stamp[set_idx]
            ties = np.flatnonzero(row == row.min())
            if len(ties) == 1:
                way = int(ties[0])
            else:
                way = int(ties[np.argmin(self._ins[set_idx, ties])])
            del self._where[int(self._lines[set_idx, way])]
            if record:
                self.stats.evictions += 1
                if self._obs.enabled:
                    self._obs.add(self._k_evict)
        else:
            way = fill
            self._set_fill[set_idx] = fill + 1
        self._lines[set_idx, way] = line_addr
        self._valid[set_idx, way] = sector_bits
        self._stamp[set_idx, way] = self._clock
        self._ins[set_idx, way] = self._ins_counter
        self._ins_counter += 1
        self._where[line_addr] = way

    def _bulk_ok(self, addrs: np.ndarray, size: int) -> bool:
        """Is this stream eligible for the closed-form fill?"""
        if size <= 0:
            return False
        if addrs[0] < 0:
            return False
        # single sector per access …
        if np.any(addrs % self.sector_bytes + size > self.sector_bytes):
            return False
        # … and strictly ascending sectors (each touched once).
        sectors = addrs // self.sector_bytes
        return bool(np.all(np.diff(sectors) > 0)) if len(addrs) > 1 \
            else True

    def _bulk_fill(self, addrs: np.ndarray, record: bool) -> np.ndarray:
        """Closed-form fill of an empty cache from an ascending
        single-sector stream.

        Every access is a miss (first touch of its sector); a line's
        sectors arrive consecutively, so per set the lines arrive in
        ascending order and LRU keeps the last ``ways`` of them.
        Stamps and insertion sequence are assigned exactly as the
        sequential path would.
        """
        n = len(addrs)
        line = addrs // self.line_bytes
        sector = (addrs % self.line_bytes) // self.sector_bytes
        first = np.flatnonzero(np.r_[True, line[1:] != line[:-1]])
        bounds = np.r_[first[1:], n]
        lines_u = line[first]
        n_lines = len(lines_u)
        valid_u = np.bitwise_or.reduceat(np.int64(1) << sector, first)
        stamp_u = self._clock + bounds          # clock after last touch
        ins_u = self._ins_counter + np.arange(n_lines)
        set_u = lines_u % self.num_sets

        # keep the newest `ways` lines of every set
        order = np.argsort(set_u, kind="stable")
        ss = set_u[order]
        grp_first = np.flatnonzero(np.r_[True, ss[1:] != ss[:-1]])
        grp_sizes = np.r_[grp_first[1:], n_lines] - grp_first
        sizes_rep = np.repeat(grp_sizes, grp_sizes)
        cum = np.arange(n_lines) - np.repeat(grp_first, grp_sizes)
        keep = cum >= sizes_rep - self.ways
        way_sorted = cum - np.maximum(sizes_rep - self.ways, 0)

        kept = order[keep]
        set_k = set_u[kept]
        way_k = way_sorted[keep]
        line_k = lines_u[kept]
        self._lines[set_k, way_k] = line_k
        self._valid[set_k, way_k] = valid_u[kept]
        self._stamp[set_k, way_k] = stamp_u[kept]
        self._ins[set_k, way_k] = ins_u[kept]
        self._set_fill[ss[grp_first]] = np.minimum(grp_sizes, self.ways)
        self._where.update(zip(line_k.tolist(), way_k.tolist()))

        self._clock += n
        self._ins_counter += n_lines
        if record:
            evicted = int(np.maximum(grp_sizes - self.ways, 0).sum())
            self.stats.accesses += n
            self.stats.tag_misses += n_lines
            self.stats.sector_misses += n - n_lines
            self.stats.evictions += evicted
            obs = self._obs
            if obs.enabled:
                obs.add(self._k_acc, n)
                obs.add(self._k_tag, n_lines)
                obs.add(self._k_sector, n - n_lines)
                obs.add(self._k_evict, evicted)
        return np.zeros(n, dtype=bool)

    # -- introspection -------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes of valid sectors currently cached."""
        if not self._where:
            return 0
        if hasattr(np, "bitwise_count"):
            sectors = int(np.bitwise_count(self._valid).sum())
        else:  # pragma: no cover - numpy < 2.0
            sectors = int(np.unpackbits(
                self._valid.astype(np.uint64).view(np.uint8)).sum())
        return sectors * self.sector_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.name}: {self.size_bytes // 1024} KiB, "
            f"{self.ways}-way, {self.num_sets} sets>"
        )
