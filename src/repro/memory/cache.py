"""Sectored set-associative cache model.

Nvidia caches are organised as 128-byte lines split into 32-byte
sectors: a tag covers the whole line but data is filled per sector, so
a strided stream that touches one word per line still transfers only
the sectors it needs.  The model tracks tags + per-sector validity with
true-LRU replacement, which is sufficient for every access pattern the
paper's microbenchmarks generate (sequential warm-up passes followed by
pointer chases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SetAssociativeCache", "CacheStats"]


@dataclass
class CacheStats:
    """Running hit/miss counters."""

    accesses: int = 0
    hits: int = 0
    sector_misses: int = 0   # tag hit but sector not yet filled
    tag_misses: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.sector_misses + self.tag_misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = 0
        self.sector_misses = self.tag_misses = self.evictions = 0


class _Line:
    """One cache line: tag + per-sector valid bits + LRU stamp."""

    __slots__ = ("tag", "valid_sectors", "stamp")

    def __init__(self, tag: int, sectors: int, stamp: int) -> None:
        self.tag = tag
        self.valid_sectors = 0  # bitmask over sectors
        self.stamp = stamp


class SetAssociativeCache:
    """A sectored, true-LRU, set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    line_bytes:
        Tag granularity (128 B on all three devices).
    sector_bytes:
        Fill granularity (32 B).
    ways:
        Associativity.
    name:
        For diagnostics only.
    """

    def __init__(
        self,
        size_bytes: int,
        *,
        line_bytes: int = 128,
        sector_bytes: int = 32,
        ways: int = 4,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or size_bytes % line_bytes:
            raise ValueError("size must be a positive multiple of the line")
        if line_bytes % sector_bytes:
            raise ValueError("line must be a multiple of the sector")
        num_lines = size_bytes // line_bytes
        if num_lines % ways:
            raise ValueError("line count must be divisible by ways")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        self.sectors_per_line = line_bytes // sector_bytes
        self.stats = CacheStats()
        self._clock = 0
        # sets[set_index] -> list of _Line (size <= ways)
        self._sets: List[List[_Line]] = [[] for _ in range(self.num_sets)]

    # -- address helpers ----------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int, int]:
        line_addr = addr // self.line_bytes
        set_idx = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        sector = (addr % self.line_bytes) // self.sector_bytes
        return set_idx, tag, sector

    def _sector_span(self, addr: int, size: int) -> List[Tuple[int, int, int]]:
        """All (set, tag, sector) triples a [addr, addr+size) access
        touches.  Accesses are at most a line in practice."""
        out = []
        a = addr
        end = addr + max(size, 1)
        while a < end:
            out.append(self._locate(a))
            a = (a // self.sector_bytes + 1) * self.sector_bytes
        return out

    # -- main interface -------------------------------------------------------

    def access(self, addr: int, size: int = 4, *, write: bool = False,
               allocate: bool = True) -> bool:
        """Probe the cache; returns True iff *all* touched sectors hit.

        Misses fill the touched sectors (when ``allocate``), evicting
        the LRU line of the set if the set is full.  Write policy is
        write-allocate (both L1 and L2 on these parts are
        write-allocate for the access sizes we model).
        """
        self._clock += 1
        self.stats.accesses += 1
        all_hit = True
        touched = self._sector_span(addr, size)
        for set_idx, tag, sector in touched:
            line = self._find(set_idx, tag)
            bit = 1 << sector
            if line is not None and line.valid_sectors & bit:
                line.stamp = self._clock
                continue
            all_hit = False
            if line is not None:
                self.stats.sector_misses += 1
                if allocate:
                    line.valid_sectors |= bit
                    line.stamp = self._clock
            else:
                self.stats.tag_misses += 1
                if allocate:
                    self._fill(set_idx, tag, bit)
        if all_hit:
            self.stats.hits += 1
        return all_hit

    def probe(self, addr: int, size: int = 4) -> bool:
        """Non-destructive lookup (no fill, no LRU update, no stats)."""
        for set_idx, tag, sector in self._sector_span(addr, size):
            line = self._find(set_idx, tag)
            if line is None or not (line.valid_sectors & (1 << sector)):
                return False
        return True

    def warm(self, base: int, size: int) -> None:
        """Fill an address range (the ``ld.ca`` warm-up pass)."""
        addr = (base // self.sector_bytes) * self.sector_bytes
        end = base + size
        while addr < end:
            self.access(addr, self.sector_bytes)
            addr += self.sector_bytes

    def flush(self) -> None:
        for s in self._sets:
            s.clear()
        self.stats.reset()

    # -- internals --------------------------------------------------------------

    def _find(self, set_idx: int, tag: int) -> Optional[_Line]:
        for line in self._sets[set_idx]:
            if line.tag == tag:
                return line
        return None

    def _fill(self, set_idx: int, tag: int, sector_bits: int) -> None:
        lines = self._sets[set_idx]
        if len(lines) >= self.ways:
            victim = min(lines, key=lambda l: l.stamp)
            lines.remove(victim)
            self.stats.evictions += 1
        line = _Line(tag, self.sectors_per_line, self._clock)
        line.valid_sectors = sector_bits
        line.stamp = self._clock
        lines.append(line)

    # -- introspection -------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes of valid sectors currently cached."""
        total = 0
        for s in self._sets:
            for line in s:
                total += bin(line.valid_sectors).count("1")
        return total * self.sector_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.name}: {self.size_bytes // 1024} KiB, "
            f"{self.ways}-way, {self.num_sets} sets>"
        )
