"""Sectored set-associative cache model (vectorized).

Nvidia caches are organised as 128-byte lines split into 32-byte
sectors: a tag covers the whole line but data is filled per sector, so
a strided stream that touches one word per line still transfers only
the sectors it needs.  The model tracks tags + per-sector validity with
true-LRU replacement, which is sufficient for every access pattern the
paper's microbenchmarks generate (sequential warm-up passes followed by
pointer chases).

The state lives in NumPy matrices of shape ``(num_sets, ways)`` —
``_lines`` (resident line address), ``_valid`` (per-sector valid
bitmask) and ``_stamp`` (LRU timestamp) — with a flat
``line address → way`` dict as the lookup index, so a scalar
:meth:`access` is O(1) in the associativity instead of a linear way
scan, and constructing a cache is O(1) in its capacity (the matrices
are callocated, never eagerly initialised).  The batched
:meth:`access_many` additionally recognises the dominant warm-up
pattern (monotonically ascending, single-sector accesses into an empty
cache — what :meth:`warm` and the P-chase initialisation passes emit)
and computes the final state matrices in closed form with array
operations, skipping the per-access loop entirely.

Behaviour is access-for-access identical to the original scalar
implementation, preserved as
:class:`repro.memory.cache_scalar.ScalarSetAssociativeCache` and
enforced by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.counters import NULL_COUNTERS
from repro.obs.session import counters_or_null

__all__ = ["SetAssociativeCache", "CacheStats"]

#: below this batch size the per-access loop beats the lockstep setup
_LOCKSTEP_MIN = 32

#: initial row count of the state matrices (grown on demand)
_INIT_SETS = 512

_I64_MAX = np.iinfo(np.int64).max


@dataclass
class CacheStats:
    """Running hit/miss counters."""

    accesses: int = 0
    hits: int = 0
    sector_misses: int = 0   # tag hit but sector not yet filled
    tag_misses: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.sector_misses + self.tag_misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = 0
        self.sector_misses = self.tag_misses = self.evictions = 0


class SetAssociativeCache:
    """A sectored, true-LRU, set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    line_bytes:
        Tag granularity (128 B on all three devices).
    sector_bytes:
        Fill granularity (32 B).
    ways:
        Associativity.
    name:
        For diagnostics only.
    level:
        Observability label (``"l1"``/``"l2"``).  When set *and* an
        :class:`~repro.obs.session.ObsSession` is active at
        construction, recorded accesses additionally feed the
        session's ``cache.<level>.*`` counters; otherwise the cache
        holds the null sink and instrumentation costs one flag check.
    """

    def __init__(
        self,
        size_bytes: int,
        *,
        line_bytes: int = 128,
        sector_bytes: int = 32,
        ways: int = 4,
        name: str = "cache",
        level: Optional[str] = None,
    ) -> None:
        if size_bytes <= 0 or size_bytes % line_bytes:
            raise ValueError("size must be a positive multiple of the line")
        if line_bytes % sector_bytes:
            raise ValueError("line must be a multiple of the sector")
        num_lines = size_bytes // line_bytes
        if num_lines % ways:
            raise ValueError("line count must be divisible by ways")
        if line_bytes // sector_bytes > 63:
            raise ValueError("at most 63 sectors per line (int64 bitmask)")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        self.sectors_per_line = line_bytes // sector_bytes
        self.stats = CacheStats()
        self.level = level
        self._obs = counters_or_null() if level else NULL_COUNTERS
        self._k_acc = f"cache.{level}.accesses"
        self._k_hit = f"cache.{level}.hits"
        self._k_sector = f"cache.{level}.sector_misses"
        self._k_tag = f"cache.{level}.tag_misses"
        self._k_evict = f"cache.{level}.evictions"
        self._clock = 0
        self._ins_counter = 0   # global insertion sequence (LRU tie-break)
        self._alloc_state()

    def _alloc_state(self) -> None:
        # Occupied ways of a set are always 0.._set_fill[set]-1, so the
        # zero-initialised matrices are never read before being written.
        # Rows are allocated for a *prefix* of the sets and grown on
        # demand (_ensure_sets): a multi-MB L2 costs real milliseconds
        # to calloc in full, yet the microbenchmarks touch a small
        # fraction of its sets — an untouched set has no state to
        # store, so the short matrices are indistinguishable from
        # full-size ones.
        self._alloc_sets = min(self.num_sets, _INIT_SETS)
        shape = (self._alloc_sets, self.ways)
        self._lines = np.zeros(shape, dtype=np.int64)   # line addresses
        self._valid = np.zeros(shape, dtype=np.int64)   # sector bitmasks
        self._stamp = np.zeros(shape, dtype=np.int64)   # LRU timestamps
        self._ins = np.zeros(shape, dtype=np.int64)     # insertion seq
        self._set_fill = np.zeros(self._alloc_sets, dtype=np.int64)
        # line addr → way lookup index for the scalar path.  Lazy:
        # the batched paths maintain residency in the matrices alone
        # and set this to None; _index() rebuilds it on the next
        # scalar access.  Keeping it eagerly in sync cost more than
        # the whole closed-form fill for warm-up-sized streams.
        self._where: Optional[Dict[int, int]] = {}
        self._empty = True                   # no line inserted yet

    def _ensure_sets(self, hi: int) -> None:
        """Grow the state matrices to cover set indices ``< hi``."""
        cur = self._alloc_sets
        if hi <= cur:
            return
        new = min(self.num_sets, max(hi, 2 * cur))

        def grown(m: np.ndarray) -> np.ndarray:
            g = np.zeros((new,) + m.shape[1:], dtype=m.dtype)
            g[:cur] = m
            return g

        self._lines = grown(self._lines)
        self._valid = grown(self._valid)
        self._stamp = grown(self._stamp)
        self._ins = grown(self._ins)
        self._set_fill = grown(self._set_fill)
        self._alloc_sets = new

    def reserve_span(self, nbytes: int) -> None:
        """Pre-grow the state matrices for accesses inside
        ``[0, nbytes)`` — an allocation hint (one growth instead of a
        doubling cascade); cache state is unchanged."""
        if nbytes > 0:
            self._ensure_sets(min(-(-nbytes // self.line_bytes),
                                  self.num_sets))

    def _index(self) -> Dict[int, int]:
        """The line→way dict, rebuilt from the matrices if a batched
        path invalidated it (cost ∝ resident lines)."""
        w = self._where
        if w is None:
            occ = (np.arange(self.ways, dtype=np.int64)[None, :]
                   < self._set_fill[:, None])
            r, c = np.nonzero(occ)
            w = self._where = dict(zip(self._lines[r, c].tolist(),
                                       c.tolist()))
        return w

    # -- address helpers ----------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int, int]:
        line_addr = addr // self.line_bytes
        set_idx = line_addr % self.num_sets
        sector = (addr % self.line_bytes) // self.sector_bytes
        return line_addr, set_idx, sector

    def _sector_span(self, addr: int, size: int) -> List[Tuple[int, int, int]]:
        """All (line, set, sector) triples a [addr, addr+size) access
        touches.  Accesses are at most a line in practice."""
        out = []
        a = addr
        end = addr + max(size, 1)
        while a < end:
            out.append(self._locate(a))
            a = (a // self.sector_bytes + 1) * self.sector_bytes
        return out

    # -- main interface -------------------------------------------------------

    def access(self, addr: int, size: int = 4, *, write: bool = False,
               allocate: bool = True, record: bool = True) -> bool:
        """Probe the cache; returns True iff *all* touched sectors hit.

        Misses fill the touched sectors (when ``allocate``), evicting
        the LRU line of the set if the set is full.  Write policy is
        write-allocate (both L1 and L2 on these parts are
        write-allocate for the access sizes we model).

        ``record=False`` updates the cache state (fills, LRU stamps)
        without touching :attr:`stats` — the warm-up path, so reported
        hit rates cover only the measured phase.
        """
        self._clock += 1
        clock = self._clock
        obs = self._obs if record else NULL_COUNTERS
        if record:
            self.stats.accesses += 1
            if obs.enabled:
                obs.add(self._k_acc)
        all_hit = True
        if 0 < size <= self.sector_bytes - addr % self.sector_bytes:
            # single-sector fast path — the overwhelmingly common
            # shape (4–32 B aligned loads); same transitions as the
            # loop below, minus the span bookkeeping
            span = (self._locate(addr),)
            hi = span[0][1] + 1
        else:
            span = self._sector_span(addr, size)
            hi = max(s for _, s, _ in span) + 1
        if hi > self._alloc_sets:
            self._ensure_sets(hi)
        valid = self._valid
        stamp = self._stamp
        where = self._index()
        for line_addr, set_idx, sector in span:
            way = where.get(line_addr)
            bit = 1 << sector
            if way is not None and int(valid[set_idx, way]) & bit:
                stamp[set_idx, way] = clock
                continue
            all_hit = False
            if way is not None:
                if record:
                    self.stats.sector_misses += 1
                    if obs.enabled:
                        obs.add(self._k_sector)
                if allocate:
                    valid[set_idx, way] |= bit
                    stamp[set_idx, way] = clock
            else:
                if record:
                    self.stats.tag_misses += 1
                    if obs.enabled:
                        obs.add(self._k_tag)
                if allocate:
                    self._insert(line_addr, set_idx, bit, record)
        if all_hit and record:
            self.stats.hits += 1
            if obs.enabled:
                obs.add(self._k_hit)
        return all_hit

    def access_many(self, addrs: Union[Sequence[int], np.ndarray],
                    size: int = 4, *, write: bool = False,
                    allocate: bool = True,
                    record: bool = True) -> np.ndarray:
        """Batched :meth:`access` — semantically identical to calling
        ``access`` once per address in order; returns the per-access
        hit booleans.

        Ascending single-sector streams into an empty cache (the
        ``warm()`` / initialisation-pass pattern) are resolved in
        closed form without a per-access loop.  General single-sector
        streams — pointer chases — run on the lockstep path: sets are
        independent, so the stream is split per set and one matrix
        step resolves the *i*-th access of every touched set at once
        (see :meth:`_lockstep_access`).  Anything else falls back to
        the exact scalar path.
        """
        a = np.ascontiguousarray(addrs, dtype=np.int64)
        if a.ndim != 1:
            raise ValueError("addrs must be one-dimensional")
        n = len(a)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if allocate and self._empty and self._bulk_ok(a, size):
            return self._bulk_fill(a, record)
        if n >= _LOCKSTEP_MIN and self._lockstep_ok(a, size):
            hit = self._all_hit_fast(a, record=record)
            if hit is not None:
                return hit
            return self._lockstep_access(a, size, allocate=allocate,
                                         record=record)
        return self._access_loop(a, size, write=write, allocate=allocate,
                                 record=record)

    def _access_loop(self, a: np.ndarray, size: int, *, write: bool,
                     allocate: bool, record: bool) -> np.ndarray:
        """The exact per-access fallback of :meth:`access_many`."""
        out = np.empty(len(a), dtype=bool)
        acc = self.access
        for i, addr in enumerate(a.tolist()):
            out[i] = acc(addr, size, write=write, allocate=allocate,
                         record=record)
        return out

    def probe(self, addr: int, size: int = 4) -> bool:
        """Non-destructive lookup (no fill, no LRU update, no stats)."""
        where = self._index()
        for line_addr, set_idx, sector in self._sector_span(addr, size):
            way = where.get(line_addr)
            if way is None or not (int(self._valid[set_idx, way])
                                   & (1 << sector)):
                return False
        return True

    def warm(self, base: int, size: int, *, record: bool = False) -> None:
        """Fill an address range (the ``ld.ca`` warm-up pass).

        Warm-up accesses advance the LRU clock exactly like measured
        ones but by default leave :attr:`stats` untouched, matching
        the paper's warm-up-then-measure protocol.
        """
        start = (base // self.sector_bytes) * self.sector_bytes
        end = base + size
        if start >= end:
            return
        if self._empty and start >= 0:
            # the stream below is exactly the closed-form fill's
            # eligible pattern; resolve it at line granularity without
            # materialising the per-sector address array
            self._warm_fill(start, end, record)
            return
        addrs = np.arange(start, end, self.sector_bytes, dtype=np.int64)
        self.access_many(addrs, self.sector_bytes, record=record)

    def flush(self) -> None:
        # Retains the (possibly grown) matrices: occupied ways are
        # always 0.._set_fill[set]-1, so zeroing the fill vector alone
        # empties the cache — stale rows are never consulted.  The
        # clocks keep running, exactly as before a flush; LRU is
        # ordinal so no outcome can tell.  Reusing the allocation
        # makes flush-and-rewarm loops (parameter sweeps) cheap.
        self._set_fill[:] = 0
        self._where = {}
        self._empty = True
        self.stats.reset()

    # -- internals --------------------------------------------------------------

    def _insert(self, line_addr: int, set_idx: int, sector_bits: int,
                record: bool) -> None:
        fill = int(self._set_fill[set_idx])
        if fill >= self.ways:
            # true LRU: smallest stamp; ties (multi-line accesses share
            # one clock) broken by insertion order, like the scalar
            # model's list scan.  Rows are at most `ways` wide, where
            # a plain list scan beats any array reduction.
            row = self._stamp[set_idx].tolist()
            lo = min(row)
            if row.count(lo) == 1:
                way = row.index(lo)
            else:
                ins = self._ins[set_idx].tolist()
                way = min((i for i, s in enumerate(row) if s == lo),
                          key=ins.__getitem__)
            del self._where[int(self._lines[set_idx, way])]
            if record:
                self.stats.evictions += 1
                if self._obs.enabled:
                    self._obs.add(self._k_evict)
        else:
            way = fill
            self._set_fill[set_idx] = fill + 1
        self._lines[set_idx, way] = line_addr
        self._valid[set_idx, way] = sector_bits
        self._stamp[set_idx, way] = self._clock
        self._ins[set_idx, way] = self._ins_counter
        self._ins_counter += 1
        self._where[line_addr] = way     # access() built it via _index
        self._empty = False

    def _bulk_ok(self, addrs: np.ndarray, size: int) -> bool:
        """Is this stream eligible for the closed-form fill?"""
        if size <= 0:
            return False
        if addrs[0] < 0:
            return False
        # single sector per access …
        if np.any(addrs % self.sector_bytes + size > self.sector_bytes):
            return False
        # … and strictly ascending sectors (each touched once).
        sectors = addrs // self.sector_bytes
        return bool(np.all(np.diff(sectors) > 0)) if len(addrs) > 1 \
            else True

    def _bulk_fill(self, addrs: np.ndarray, record: bool) -> np.ndarray:
        """Closed-form fill of an empty cache from an ascending
        single-sector stream.

        Every access is a miss (first touch of its sector); a line's
        sectors arrive consecutively, so per set the lines arrive in
        ascending order and LRU keeps the last ``ways`` of them.
        Stamps and insertion sequence are assigned exactly as the
        sequential path would.
        """
        n = len(addrs)
        line = addrs // self.line_bytes
        sector = (addrs % self.line_bytes) // self.sector_bytes
        first = np.flatnonzero(np.r_[True, line[1:] != line[:-1]])
        bounds = np.r_[first[1:], n]
        lines_u = line[first]
        n_lines = len(lines_u)
        valid_u = np.bitwise_or.reduceat(np.int64(1) << sector, first)
        stamp_u = self._clock + bounds          # clock after last touch
        ins_u = self._ins_counter + np.arange(n_lines)
        set_u = lines_u % self.num_sets
        self._ensure_sets(int(set_u.max()) + 1)

        # keep the newest `ways` lines of every set
        order = np.argsort(set_u, kind="stable")
        ss = set_u[order]
        grp_first = np.flatnonzero(np.r_[True, ss[1:] != ss[:-1]])
        grp_sizes = np.r_[grp_first[1:], n_lines] - grp_first
        sizes_rep = np.repeat(grp_sizes, grp_sizes)
        cum = np.arange(n_lines) - np.repeat(grp_first, grp_sizes)
        keep = cum >= sizes_rep - self.ways
        way_sorted = cum - np.maximum(sizes_rep - self.ways, 0)

        kept = order[keep]
        set_k = set_u[kept]
        way_k = way_sorted[keep]
        line_k = lines_u[kept]
        self._lines[set_k, way_k] = line_k
        self._valid[set_k, way_k] = valid_u[kept]
        self._stamp[set_k, way_k] = stamp_u[kept]
        self._ins[set_k, way_k] = ins_u[kept]
        self._set_fill[ss[grp_first]] = np.minimum(grp_sizes, self.ways)
        self._where = None               # index rebuilt lazily
        self._empty = False

        self._clock += n
        self._ins_counter += n_lines
        if record:
            evicted = int(np.maximum(grp_sizes - self.ways, 0).sum())
            self.stats.accesses += n
            self.stats.tag_misses += n_lines
            self.stats.sector_misses += n - n_lines
            self.stats.evictions += evicted
            obs = self._obs
            if obs.enabled:
                obs.add(self._k_acc, n)
                obs.add(self._k_tag, n_lines)
                if n - n_lines:
                    obs.add(self._k_sector, n - n_lines)
                if evicted:
                    obs.add(self._k_evict, evicted)
        return np.zeros(n, dtype=bool)

    def _warm_fill(self, start: int, end: int, record: bool) -> None:
        """:meth:`warm` into an empty cache, in closed form at *line*
        granularity.

        The warm stream is one sector-ascending pass over
        ``[start, end)``, so its :meth:`_bulk_fill` outcome is fully
        determined by the touched line range: per set, consecutive
        lines arrive in ascending order and LRU keeps the last
        ``min(count, ways)``; a line's final stamp is the clock after
        its last sector and its insertion number is its rank.  State,
        stats and clocks land bit-identical to streaming the
        addresses through :meth:`access_many` — pinned by tests —
        without ever materialising per-sector arrays.
        """
        spl = self.sectors_per_line
        sb = self.sector_bytes
        s0 = start // sb
        s1 = -(-end // sb)
        n = s1 - s0                                   # sector accesses
        l0 = s0 // spl
        l1 = (s1 - 1) // spl + 1
        m = l1 - l0                                   # lines touched
        S = self.num_sets
        W = self.ways
        clock = self._clock
        full = (np.int64(1) << spl) - np.int64(1)

        def stamps(lines: np.ndarray) -> np.ndarray:
            return clock + np.minimum((lines + 1) * spl, s1) - s0

        def fix_edges(lines: np.ndarray, valid: np.ndarray) -> None:
            # the first / last line of the range may be partial
            if s0 % spl:
                valid[lines == l0] &= full & ~((np.int64(1)
                                                << (s0 % spl)) - 1)
            if s1 % spl:
                valid[lines == l1 - 1] &= \
                    (np.int64(1) << (s1 - (l1 - 1) * spl)) - 1

        evicted = 0
        if m <= S:
            # every touched set holds exactly one line, in way 0; the
            # row indices are consecutive mod S, i.e. at most two
            # contiguous slices — scatter with slice assignments
            lines = np.arange(l0, l1, dtype=np.int64)
            valid = np.full(m, full, dtype=np.int64)
            if s0 % spl:
                valid[0] &= full & ~((np.int64(1)
                                      << (s0 % spl)) - 1)
            if s1 % spl:
                valid[-1] &= (np.int64(1)
                              << (s1 - (l1 - 1) * spl)) - 1
            st = clock + (lines + 1) * spl - s0
            st[-1] = clock + n            # last line: clamp to range
            ins = self._ins_counter + np.arange(m, dtype=np.int64)
            r0 = l0 % S
            first = min(m, S - r0)
            self._ensure_sets(S if first < m else r0 + m)
            for dst, src, ln in ((r0, 0, first),
                                 (0, first, m - first)):
                if ln <= 0:
                    continue
                d = slice(dst, dst + ln)
                s_ = slice(src, src + ln)
                self._lines[d, 0] = lines[s_]
                self._valid[d, 0] = valid[s_]
                self._stamp[d, 0] = st[s_]
                self._ins[d, 0] = ins[s_]
                self._set_fill[d] = 1
        else:
            # per set s: first line f = l0+i (i = rank of s in the
            # touch order), count c, kept = the last K = min(c, W)
            # lines f + (c-K..c-1)·S in ways 0..K-1
            i = np.arange(S, dtype=np.int64)
            f = l0 + i
            rows = f % S
            self._ensure_sets(S)
            c = 1 + (l1 - 1 - f) // S
            K = np.minimum(c, W)
            evicted = int((c - K).sum())
            grid = ((f + (c - K) * S)[:, None]
                    + np.arange(W, dtype=np.int64)[None, :] * S)
            occ = np.arange(W, dtype=np.int64)[None, :] < K[:, None]
            valid = np.where(occ, full, np.int64(0))
            fix_edges(grid, valid)
            self._lines[rows] = grid
            self._valid[rows] = valid
            self._stamp[rows] = np.where(occ, stamps(grid), 0)
            self._ins[rows] = np.where(
                occ, self._ins_counter + grid - l0, 0)
            self._set_fill[rows] = K

        self._where = None
        self._empty = False
        self._clock += n
        self._ins_counter += m
        if record:
            self.stats.accesses += n
            self.stats.tag_misses += m
            self.stats.sector_misses += n - m
            self.stats.evictions += evicted
            obs = self._obs
            if obs.enabled:
                obs.add(self._k_acc, n)
                obs.add(self._k_tag, m)
                if n - m:
                    obs.add(self._k_sector, n - m)
                if evicted:
                    obs.add(self._k_evict, evicted)

    def _all_hit_fast(self, a: np.ndarray, *,
                      record: bool) -> Optional[np.ndarray]:
        """Resolve a single-sector stream consisting entirely of hits.

        A steady-state chase over a resident footprint — the measured
        phase of every under-capacity P-chase point — only ever bumps
        LRU stamps: no fills, no evictions, no state beyond the
        clock.  Residency of the whole batch is decided by one
        gather; on the first non-hit the caller falls back to the
        exact general paths, having mutated nothing.

        Stamps are position-based (``clock0 + i + 1``) exactly as on
        the scalar and lockstep paths, and a line accessed several
        times in the batch keeps its *last* occurrence's stamp —
        fancy assignment applies values in order, so repeated
        ``(set, way)`` indices end on the final one.
        """
        if self._empty:
            return None
        line = a // self.line_bytes
        set_idx = line % self.num_sets
        hi = int(set_idx.max()) + 1
        if hi > self._alloc_sets:
            return None        # an untouched set means a sure miss
        rows = self._lines[set_idx]
        occ = (np.arange(self.ways, dtype=np.int64)[None, :]
               < self._set_fill[set_idx][:, None])
        match = (rows == line[:, None]) & occ
        tag_hit = match.any(axis=1)
        if not tag_hit.all():
            return None
        way = match.argmax(axis=1)
        bits = np.int64(1) << ((a % self.line_bytes)
                               // self.sector_bytes)
        if np.any(self._valid[set_idx, way] & bits == 0):
            return None
        n = len(a)
        self._stamp[set_idx, way] = \
            self._clock + 1 + np.arange(n, dtype=np.int64)
        self._clock += n
        if record:
            self.stats.accesses += n
            self.stats.hits += n
            obs = self._obs
            if obs.enabled:
                obs.add(self._k_acc, n)
                obs.add(self._k_hit, n)
        return np.ones(n, dtype=bool)

    def _lockstep_ok(self, addrs: np.ndarray, size: int) -> bool:
        """Is this stream eligible for the lockstep path?  Single
        sector per access is the only hard requirement (multi-sector
        accesses would interleave within one clock tick)."""
        if size <= 0:
            return False
        return not bool(np.any(addrs % self.sector_bytes + size
                               > self.sector_bytes))

    def _lockstep_access(self, a: np.ndarray, size: int, *,
                         allocate: bool, record: bool) -> np.ndarray:
        """Exact vectorized replay of a single-sector access stream.

        Sets are fully independent state machines, so the stream is
        split into per-set sub-streams (a stable argsort keeps each in
        issue order) and processed in *lockstep*: step ``i`` resolves
        the ``i``-th access of every touched set simultaneously with
        matrix operations.  The step count is the deepest sub-stream,
        not the batch length — a chase spread over S sets runs in
        ~n/S steps.

        Exactness relies on two invariants of the scalar path:

        * per-access clocks are position-based (``c0 + i + 1``), so
          LRU stamps can be computed up front;
        * stamps assigned within this call are distinct and larger
          than every pre-existing stamp, so the ``(stamp, _ins)``
          LRU tie-break can only involve pre-call lines — insertion
          sequence numbers are therefore assigned *after* the loop,
          in global access order, without affecting any victim choice
          made during it.
        """
        n = len(a)
        line = a // self.line_bytes
        set_idx = line % self.num_sets
        order = np.argsort(set_idx, kind="stable")
        gs = set_idx[order]
        starts = np.flatnonzero(np.r_[True, gs[1:] != gs[:-1]])
        counts = np.r_[starts[1:], n] - starts
        depth = int(counts.max())
        if depth * 8 > n:
            # concentrated in few sets: lockstep degenerates to ~n tiny
            # matrix steps — the scalar loop is cheaper and exact
            return self._access_loop(a, size, write=False,
                                     allocate=allocate, record=record)
        us = gs[starts]                       # touched sets, ascending
        self._ensure_sets(int(us[-1]) + 1)
        ways = self.ways

        # local copies of the touched rows (fancy indexing copies);
        # written back once at the end
        L = self._lines[us]
        V = self._valid[us]
        S = self._stamp[us]
        Ins = self._ins[us]
        F = self._set_fill[us]

        line_s = line[order]
        bits_s = np.int64(1) << ((a[order] % self.line_bytes)
                                 // self.sector_bytes)
        clk_s = self._clock + order + 1       # position-based clocks
        pos_s = order

        out = np.empty(n, dtype=bool)
        way_col = np.arange(ways, dtype=np.int64)
        n_hit = n_sector = n_tag = n_evict = 0
        v_changed = False
        ins_pos: List[np.ndarray] = []
        ins_row: List[np.ndarray] = []
        ins_way: List[np.ndarray] = []
        ins_line: List[np.ndarray] = []
        ev_pos: List[np.ndarray] = []
        ev_line: List[np.ndarray] = []

        for step in range(depth):
            rows = np.flatnonzero(counts > step)   # one access per set
            idx = starts[rows] + step
            li = line_s[idx]
            bi = bits_s[idx]
            ck = clk_s[idx]
            po = pos_s[idx]

            occ = way_col < F[rows, None]
            match = (L[rows] == li[:, None]) & occ
            tag_hit = match.any(axis=1)
            w = match.argmax(axis=1)

            hit = np.zeros(len(rows), dtype=bool)
            th = np.flatnonzero(tag_hit)
            if len(th):
                hit[th] = (V[rows[th], w[th]] & bi[th]) != 0
            out[po] = hit

            h = np.flatnonzero(hit)
            sm = np.flatnonzero(tag_hit & ~hit)
            tm = np.flatnonzero(~tag_hit)
            if record:
                n_hit += len(h)
                n_sector += len(sm)
                n_tag += len(tm)
            if len(h):
                S[rows[h], w[h]] = ck[h]
            if allocate:
                if len(sm):
                    V[rows[sm], w[sm]] |= bi[sm]
                    S[rows[sm], w[sm]] = ck[sm]
                    v_changed = True
                if len(tm):
                    r = rows[tm]
                    fill = F[r]
                    wn = fill.copy()              # fresh way when not full
                    full = np.flatnonzero(fill >= ways)
                    if len(full):
                        rr = r[full]
                        Sr = S[rr]
                        key = np.where(Sr == Sr.min(axis=1)[:, None],
                                       Ins[rr], _I64_MAX)
                        wv = key.argmin(axis=1)   # LRU, ties by _ins
                        wn[full] = wv
                        ev_pos.append(po[tm][full])
                        ev_line.append(L[rr, wv].copy())
                        n_evict += len(full)
                    F[r] = np.minimum(fill + 1, ways)
                    L[r, wn] = li[tm]
                    V[r, wn] = bi[tm]
                    S[r, wn] = ck[tm]
                    ins_pos.append(po[tm])
                    ins_row.append(r)
                    ins_way.append(wn)
                    ins_line.append(li[tm])

        # insertion sequence numbers, assigned in global access order;
        # for a (set, way) slot filled several times only the last
        # insertion survives (the earlier ones were evicted)
        if ins_pos:
            ip = np.concatenate(ins_pos)
            ir = np.concatenate(ins_row)
            iw = np.concatenate(ins_way)
            o2 = np.argsort(ip)               # positions are unique
            slot = ir[o2] * ways + iw[o2]
            _, first_rev = np.unique(slot[::-1], return_index=True)
            keep = len(slot) - 1 - first_rev
            Ins[ir[o2][keep], iw[o2][keep]] = \
                self._ins_counter + keep
            self._ins_counter += len(ip)

        # write back only what could have changed: stamps move on
        # every access, the rest only on misses that allocated
        self._stamp[us] = S
        if ins_pos:
            self._lines[us] = L
            self._ins[us] = Ins
            self._set_fill[us] = F
        if v_changed or ins_pos:
            self._valid[us] = V

        if ins_pos:
            self._empty = False
        # replay eviction/insertion events into the line→way index —
        # unless it is already invalidated, in which case the matrices
        # alone carry residency and _index() rebuilds on demand
        if self._where is not None and (ins_pos or ev_pos):
            ep = np.concatenate(ev_pos + ins_pos) if ev_pos \
                else np.concatenate(ins_pos)
            el = np.concatenate(ev_line + ins_line) if ev_pos \
                else np.concatenate(ins_line)
            ew = np.concatenate(
                [np.full(sum(map(len, ev_pos)), -1, dtype=np.int64)]
                + ins_way) if ev_pos else np.concatenate(ins_way)
            o3 = np.argsort(ep)
            el_s = el[o3]
            ew_s = ew[o3]
            _, first_rev = np.unique(el_s[::-1], return_index=True)
            last = len(el_s) - 1 - first_rev
            final_line = el_s[last]
            final_way = ew_s[last]
            dead = final_way < 0
            where = self._where
            for lk in final_line[dead].tolist():
                where.pop(lk, None)     # inserted-then-evicted in-call
            where.update(zip(final_line[~dead].tolist(),
                             final_way[~dead].tolist()))

        self._clock += n
        if record:
            st = self.stats
            st.accesses += n
            st.hits += n_hit
            st.sector_misses += n_sector
            st.tag_misses += n_tag
            st.evictions += n_evict
            obs = self._obs
            if obs.enabled:
                obs.add(self._k_acc, n)
                if n_hit:
                    obs.add(self._k_hit, n_hit)
                if n_sector:
                    obs.add(self._k_sector, n_sector)
                if n_tag:
                    obs.add(self._k_tag, n_tag)
                if n_evict:
                    obs.add(self._k_evict, n_evict)
        return out

    # -- introspection -------------------------------------------------------------

    def state_digest(self, sets: Union[Sequence[int], np.ndarray]) \
            -> bytes:
        """Canonical digest of the state of ``sets`` as it affects any
        future access stream confined to them: per set, the resident
        line addresses and sector-valid masks in LRU→MRU order (the
        lexicographic ``(stamp, _ins)`` rank), plus occupancy.
        Absolute clock values and physical way positions are
        deliberately excluded — LRU decisions are ordinal, and no
        outcome depends on *which* way holds a line — so two states
        one steady-state chase period apart digest equal even when
        the resident lines have rotated through the ways (as LRU
        thrash patterns make them do).
        """
        import hashlib

        rows = np.ascontiguousarray(sets, dtype=np.int64)
        if len(rows):
            self._ensure_sets(int(rows.max()) + 1)
        if len(rows) <= 32:
            # tiny set lists (conflict ladders): plain-Python sort of
            # a few ways per set beats the vectorized lexsort setup
            h = hashlib.blake2b(digest_size=16)
            payload = []
            for r in rows.tolist():
                fill = int(self._set_fill[r])
                payload.append(fill)
                occ = sorted(
                    zip(self._stamp[r, :fill].tolist(),
                        self._ins[r, :fill].tolist(),
                        self._lines[r, :fill].tolist(),
                        self._valid[r, :fill].tolist()))
                for _, _, ln, vd in occ:
                    payload.append(ln)
                    payload.append(vd)
            h.update(repr(payload).encode())
            return h.digest()
        L = self._lines[rows]
        V = self._valid[rows]
        S = self._stamp[rows]
        Ins = self._ins[rows]
        F = self._set_fill[rows]
        occ = np.arange(self.ways)[None, :] < F[:, None]
        # list each set's lines in LRU-to-MRU order; unoccupied ways
        # sort last and are masked to sentinels
        order = np.lexsort((np.where(occ, Ins, _I64_MAX),
                            np.where(occ, S, _I64_MAX)), axis=-1)
        h = hashlib.blake2b(digest_size=16)
        h.update(F.tobytes())
        h.update(np.where(occ, np.take_along_axis(L, order, axis=1),
                          -1).tobytes())
        h.update(np.where(occ, np.take_along_axis(V, order, axis=1),
                          0).tobytes())
        return h.digest()

    @property
    def resident_bytes(self) -> int:
        """Bytes of valid sectors currently cached."""
        if self._empty:
            return 0
        # mask to occupied ways: flush() leaves stale bits behind
        occ = (np.arange(self.ways, dtype=np.int64)[None, :]
               < self._set_fill[:, None])
        valid = np.where(occ, self._valid, 0)
        if hasattr(np, "bitwise_count"):
            sectors = int(np.bitwise_count(valid).sum())
        else:  # pragma: no cover - numpy < 2.0
            sectors = int(np.unpackbits(
                valid.astype(np.uint64).view(np.uint8)).sum())
        return sectors * self.sector_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.name}: {self.size_bytes // 1024} KiB, "
            f"{self.ways}-way, {self.num_sets} sets>"
        )
