"""The P-chase latency microbenchmark (paper §III-A, Table IV).

Follows Saavedra-Barrera-style pointer chasing exactly as the paper
describes it per level:

* **L1** — warm the array into L1 with ``ld.global.ca``-equivalent
  fills, then chase with one thread; every access hits L1.
* **Shared** — chase a pointer chain stored in real
  :class:`~repro.memory.shared.SharedMemory`.
* **L2** — warm with ``.cg`` (bypassing L1) and chase with ``.cg``.
* **Global** — allocate a buffer *larger than L2* so capacity misses
  persist, initialise it (which warms the TLB, as the paper notes),
  then chase; every access goes to DRAM.

The chase itself is serial and data-dependent, so the average per-hop
cost equals the service latency of the level being probed — the same
argument the original microbenchmark makes on silicon.

The driver runs on the steady-state
:class:`~repro.memory.chase.ChaseEngine` by default: the chain is
periodic, so whole periods are simulated through the batched hierarchy
paths and repeated periods are accounted analytically once the engine
detects a fixed point — exact on summed cycles and on every counter.
``engine="scalar"`` selects the original one-``load()``-at-a-time
loops (``_run_scalar`` / ``shared_latency_scalar``), preserved as the
executable specification the equivalence suite pins the engine
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, Optional

import numpy as np

from repro.arch import DeviceSpec
from repro.isa.memory_ops import CacheOp
from repro.memory.chase import (ChaseEngine, chase_total_clk,
                                latency_counts)
from repro.memory.hierarchy import MemLevel, MemoryHierarchy
from repro.memory.shared import SharedMemory

__all__ = ["PChase", "PChaseResult", "measure_latencies"]

_ENGINES = ("vectorized", "scalar")


@dataclass(frozen=True)
class PChaseResult:
    """Average latency of one P-chase run."""

    level: str
    mean_latency_clk: float
    accesses: int
    hits_at_level: float     # fraction served at the intended level

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.level}: {self.mean_latency_clk:.1f} clk "
            f"({self.accesses} accesses, "
            f"{100 * self.hits_at_level:.1f}% at level)"
        )


def _coprime_stride(n_entries: int, stride_entries: int) -> int:
    """The stride actually used for a modular walk over ``n_entries``.

    A stride sharing a factor with ``n_entries`` would visit only
    ``n / gcd`` entries; the old code silently fell back to a
    sequential walk, losing the requested stride entirely.  Instead,
    adjust to the *nearest* coprime stride (preferring the smaller on
    a tie) so the walk keeps its intended character and still visits
    every entry.
    """
    if stride_entries < 1:
        raise ValueError("stride_entries must be >= 1")
    for d in range(stride_entries + n_entries):
        for cand in (stride_entries - d, stride_entries + d):
            if cand >= 1 and gcd(cand, n_entries) == 1:
                return cand
    raise AssertionError("unreachable: stride 1 is always coprime")


def _chain_order(n_entries: int, stride_entries: int = 1,
                 seed: Optional[int] = None) -> np.ndarray:
    """The visit order of the chain built by :func:`_chain`, starting
    from entry 0 — i.e. ``order[i]`` is the entry the ``i``-th hop
    lands on.  This is the periodic address stream (in entry units)
    the :class:`ChaseEngine` replays."""
    if n_entries <= 1:
        raise ValueError("need at least 2 chain entries")
    if seed is None:
        stride = _coprime_stride(n_entries, stride_entries)
        return (np.arange(n_entries) * stride) % n_entries
    order = np.random.default_rng(seed).permutation(n_entries)
    # the chain cycle is the same; hop 0 starts wherever entry 0 sits
    return np.roll(order, -int(np.flatnonzero(order == 0)[0]))


def _chain(n_entries: int, stride_entries: int = 1,
           seed: Optional[int] = None) -> np.ndarray:
    """Build a pointer chain visiting all entries.

    With ``stride_entries == 1`` the chain walks sequentially with
    wraparound; larger strides walk modularly (adjusted to the
    nearest coprime stride when ``stride_entries`` shares a factor
    with ``n_entries`` — see :func:`_coprime_stride`).  A random
    permutation (``seed`` given) defeats any streaming prefetch
    assumption.
    """
    order = _chain_order(n_entries, stride_entries, seed)
    nxt = np.empty(n_entries, dtype=np.int64)
    nxt[order] = np.roll(order, -1)
    return nxt


class PChase:
    """P-chase driver bound to one device's memory hierarchy.

    ``seed`` randomises the chain order (``None`` keeps the
    sequential-with-wraparound walk); the measured per-level
    latencies are order-independent, so Table IV is unchanged either
    way.  ``engine`` selects the steady-state engine (default) or the
    scalar reference loops.
    """

    #: element stride in bytes — one pointer per 128 B line, matching the
    #: paper's fixed-stride initialisation.
    STRIDE_BYTES = 128

    def __init__(self, device: DeviceSpec, *,
                 seed: Optional[int] = None,
                 engine: str = "vectorized") -> None:
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {_ENGINES}")
        self.device = device
        self.seed = seed
        self.engine = engine
        self.hierarchy = MemoryHierarchy(device)

    # -- per-level measurements -------------------------------------------------

    def l1_latency(self, *, array_kib: int = 32,
                   iters: int = 2048) -> PChaseResult:
        """Chase an L1-resident array warmed with ``.ca`` loads."""
        self.hierarchy.flush()
        size = array_kib * 1024
        n = size // self.STRIDE_BYTES
        self.hierarchy.warm_l1(0, 0, size)
        return self._run(n, iters, CacheOp.CACHE_ALL, MemLevel.L1, "L1 Cache")

    def l2_latency(self, *, array_kib: int = 4096,
                   iters: int = 4096) -> PChaseResult:
        """Chase an L2-resident array warmed with ``.cg`` loads."""
        self.hierarchy.flush()
        size = array_kib * 1024
        if size > self.device.cache.l2_size_bytes:
            raise ValueError("L2 probe array must fit in L2")
        n = size // self.STRIDE_BYTES
        self.hierarchy.warm_l2(0, size)
        return self._run(n, iters, CacheOp.CACHE_GLOBAL, MemLevel.L2,
                         "L2 Cache")

    def shared_latency(self, *, array_kib: int = 16,
                       iters: int = 2048) -> PChaseResult:
        """Chase a chain stored in real shared memory (one thread)."""
        if self.engine == "scalar":
            return self.shared_latency_scalar(array_kib=array_kib,
                                              iters=iters)
        size = array_kib * 1024
        n = size // 8
        smem = SharedMemory(size)
        chain = _chain(n, seed=self.seed)
        smem.write(0, chain.astype(np.int64))
        base = self.device.mem_latencies.shared_clk
        # One lane can never conflict, so every hop costs the same as
        # the first regardless of where the stored chain points; one
        # bulk read-back replays the chain, and the access counter
        # advances by the same `iters` reads the scalar loop issues.
        stored = smem.read(0, n * 8).view(np.int64)
        per_hop = smem.access_cycles([int(stored[0]) * 8], base)
        smem.accesses += iters - 1
        total = chase_total_clk({per_hop: iters})
        return PChaseResult("Shared", total / iters, iters, 1.0)

    def shared_latency_scalar(self, *, array_kib: int = 16,
                              iters: int = 2048) -> PChaseResult:
        """Scalar reference for :meth:`shared_latency` — the original
        hop-by-hop loop through real storage (the executable spec)."""
        size = array_kib * 1024
        n = size // 8
        smem = SharedMemory(size)
        chain = _chain(n, seed=self.seed)
        smem.write(0, chain.astype(np.int64))
        base = self.device.mem_latencies.shared_clk
        idx = 0
        lats = np.empty(iters)
        for i in range(iters):
            # one thread, one 8-byte word: never a bank conflict
            lats[i] = smem.access_cycles([idx * 8], base)
            idx = int(np.frombuffer(
                smem.read(idx * 8, 8).tobytes(), dtype=np.int64
            )[0])
        total = chase_total_clk(latency_counts(lats))
        return PChaseResult("Shared", total / iters, iters, 1.0)

    def global_latency(self, *, overfill: float = 1.25,
                       iters: int = 8192) -> PChaseResult:
        """Chase a buffer larger than L2; TLB warmed at initialisation.

        A full initialisation pass streams the buffer once (filling the
        TLB and transiently the caches); because the buffer exceeds L2
        capacity, LRU guarantees every subsequent chase access misses
        both caches — the paper's "avoid L2 prefetching" condition.
        """
        self.hierarchy.flush()
        size = int(self.device.cache.l2_size_bytes * overfill)
        n = size // self.STRIDE_BYTES
        # Initialisation pass: streams the array once (warms TLB; the
        # cache contents it leaves behind are self-evicting).
        self.hierarchy.warm_tlb(0, size)
        self.hierarchy.load_many(
            np.arange(n, dtype=np.int64) * self.STRIDE_BYTES, 32,
            cache_op=CacheOp.CACHE_ALL,
        )
        return self._run(n, iters, CacheOp.CACHE_ALL, MemLevel.GLOBAL,
                         "Global")

    def global_latency_cold_tlb(self, *, iters: int = 2048) -> PChaseResult:
        """Variant without the init pass — shows the TLB-miss penalty
        the paper's warm-up exists to avoid."""
        self.hierarchy.flush()
        size = int(self.device.cache.l2_size_bytes * 1.25)
        n = size // self.STRIDE_BYTES
        return self._run(n, iters, CacheOp.CACHE_ALL, MemLevel.GLOBAL,
                         "Global (cold TLB)", stride_pages=True)

    # -- internals ------------------------------------------------------------------

    def _run(self, n_entries: int, iters: int, op: CacheOp,
             expect: MemLevel, label: str,
             stride_pages: bool = False) -> PChaseResult:
        if self.engine == "scalar":
            return self._run_scalar(n_entries, iters, op, expect,
                                    label, stride_pages)
        order = _chain_order(n_entries, seed=self.seed)
        stride = (self.hierarchy.tlb.page_bytes if stride_pages
                  else self.STRIDE_BYTES)
        stats = ChaseEngine(self.hierarchy, size=32,
                            cache_op=op).run(order * stride, iters)
        return PChaseResult(label, stats.mean_latency_clk, iters,
                            stats.at_level(expect))

    def _run_scalar(self, n_entries: int, iters: int, op: CacheOp,
                    expect: MemLevel, label: str,
                    stride_pages: bool = False) -> PChaseResult:
        """Scalar reference for :meth:`_run` — the original
        hop-by-hop chase loop (the executable spec)."""
        chain = _chain(n_entries, seed=self.seed)
        stride = (self.hierarchy.tlb.page_bytes if stride_pages
                  else self.STRIDE_BYTES)
        idx, at_level = 0, 0
        lats = np.empty(iters)
        for i in range(iters):
            res = self.hierarchy.load(idx * stride, 32, cache_op=op)
            lats[i] = res.latency_clk
            at_level += res.level is expect
            idx = int(chain[idx])
        total = chase_total_clk(latency_counts(lats))
        return PChaseResult(label, total / iters, iters,
                            at_level / iters)


def measure_latencies(device: DeviceSpec, *, fast: bool = False,
                      seed: Optional[int] = None,
                      engine: str = "vectorized") -> Dict[str, float]:
    """Run all four P-chase measurements — one Table IV column.

    ``fast`` shrinks iteration counts for test suites.  ``seed``
    randomises the chain orders (per-level means are unchanged: each
    probe is constant-latency at its level whatever the visit
    order).
    """
    it = 256 if fast else 2048
    if fast:
        # Shrink the L2 so the over-L2 global probe stays cheap; the
        # capacity-miss mechanism (and thus the measured latency) is
        # unchanged because per-level latencies are size-independent.
        from dataclasses import replace
        device = device.with_overrides(
            cache=replace(device.cache, l2_size_kib=2048)
        )
    p = PChase(device, seed=seed, engine=engine)
    l2_kib = min(4096, device.cache.l2_size_kib // 2)
    return {
        "L1 Cache": p.l1_latency(iters=it).mean_latency_clk,
        "Shared": p.shared_latency(iters=it).mean_latency_clk,
        "L2 Cache": p.l2_latency(array_kib=l2_kib,
                                 iters=it).mean_latency_clk,
        "Global": p.global_latency(
            iters=it, overfill=1.25 if not fast else 1.1
        ).mean_latency_clk,
    }
