"""Shared Hypothesis strategies for the property-test suites.

Factored out of ``tests/test_vectorized_equivalence.py`` and
``tests/test_memory_chase.py`` so every suite (and any future
property test) draws from one definition of "a random mma
instruction" / "a random chase".  The strategies are *structurally
identical* to the inline originals, so the derandomized ``ci``
profile replays the exact example sequences the suites were pinned
under.

This module imports :mod:`hypothesis` and therefore lives outside the
runtime fuzzer's import graph — ``repro.fuzz`` proper (generator,
oracle, shrinking, driver) is plain ``random`` and never loads it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.isa.dtypes import DType, accumulator_types
from repro.isa.memory_ops import CacheOp
from repro.isa.mma import (
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
    mma_shapes,
    valid_wgmma_n,
)

__all__ = [
    "CHASE_STRIDES",
    "MMA_AB_DTYPES",
    "WGMMA_AB_DTYPES",
    "cache_ops",
    "chain_lengths",
    "chase_iters",
    "chase_seeds",
    "chase_strides",
    "mma_instructions",
    "query_payloads",
    "token_arrays",
    "wgmma_instructions",
]

#: input types with a PTX mma shape table
MMA_AB_DTYPES = tuple(d for d in DType if d in
                      (DType.FP16, DType.BF16, DType.TF32, DType.FP64,
                       DType.INT8, DType.INT4, DType.BIN1))

#: input types wgmma accepts (FP8 variants included)
WGMMA_AB_DTYPES = (DType.FP16, DType.BF16, DType.TF32, DType.E4M3,
                   DType.E5M2, DType.INT8, DType.BIN1)


@st.composite
def mma_instructions(draw) -> MmaInstruction:
    ab = draw(st.sampled_from(MMA_AB_DTYPES))
    cd = draw(st.sampled_from(sorted(accumulator_types(ab),
                                     key=lambda d: d.name)))
    shape = draw(st.sampled_from(mma_shapes(ab)))
    sparse = (draw(st.booleans())
              and ab not in (DType.BIN1, DType.FP64))
    return MmaInstruction(ab, cd, shape, sparse=sparse)


@st.composite
def wgmma_instructions(draw) -> WgmmaInstruction:
    ab = draw(st.sampled_from(WGMMA_AB_DTYPES))
    cd = draw(st.sampled_from(sorted(accumulator_types(ab),
                                     key=lambda d: d.name)))
    n = draw(st.sampled_from(valid_wgmma_n()))
    sparse = draw(st.booleans()) and ab is not DType.BIN1
    src = draw(st.sampled_from((OperandSource.SHARED,
                                OperandSource.REGISTER)))
    return WgmmaInstruction(ab, cd, n, sparse=sparse, a_source=src)


#: random token-count arrays for the TE module grid walks
token_arrays = st.lists(st.integers(min_value=1, max_value=1 << 20),
                        min_size=1, max_size=6).map(np.asarray)


# -- pointer-chase shapes ----------------------------------------------------

#: strides giving line-grained, page-straddling and page-per-entry walks
CHASE_STRIDES = (128, 4096, 2 * 1024 * 1024)


def chain_lengths(max_n: int) -> st.SearchStrategy:
    """Chase-chain period lengths (at least two distinct entries)."""
    return st.integers(min_value=2, max_value=max_n)


def chase_iters(max_iters: int) -> st.SearchStrategy:
    """Chase iteration budgets, zero included."""
    return st.integers(min_value=0, max_value=max_iters)


#: seeded and sequential chain orders alike
chase_seeds = st.sampled_from((None, 0, 7))

chase_strides = st.sampled_from(CHASE_STRIDES)

cache_ops = st.sampled_from((CacheOp.CACHE_ALL, CacheOp.CACHE_GLOBAL))


# -- serve-schema payloads ---------------------------------------------------


@st.composite
def query_payloads(draw, kind=None) -> dict:
    """A well-formed wire payload for one serve query, params drawn
    in random key order and defaults sometimes spelled explicitly —
    the raw material of the canonicalization properties."""
    from repro.serve.schema import KIND_PARAMS, KINDS

    if kind is None:
        kind = draw(st.sampled_from(KINDS))
    spec = KIND_PARAMS[kind]
    params = {}
    for name, (required, default, _check) in spec.items():
        include = required or (default is not None
                               and draw(st.booleans()))
        if not include:
            continue
        if name in ("m", "n", "k") and kind == "mma":
            params[name] = draw(st.integers(1, 256))
        elif name == "n" and kind == "wgmma":
            params[name] = draw(st.sampled_from(valid_wgmma_n()))
        elif name in ("m", "n", "k"):
            params[name] = draw(st.integers(1, 20000))
        elif name in ("ab", "cd"):
            params[name] = draw(st.sampled_from(
                ("fp16", "bf16", "fp32", "int8")))
        elif name == "sparse":
            params[name] = draw(st.booleans())
        elif name == "a_source":
            params[name] = draw(st.sampled_from(("ss", "rs", "SS")))
        elif name == "model":
            params[name] = draw(st.sampled_from(
                ("llama-3B", "llama-2-7B", "llama-2-13B")))
        elif name in ("batch", "input_len", "output_len"):
            params[name] = draw(st.integers(1, 4096))
        elif name == "footprint_kib":
            params[name] = draw(st.integers(1, 4096))
        elif name == "stride_bytes":
            params[name] = draw(st.sampled_from((4, 128, 4096)))
        elif name == "cluster_size":
            params[name] = draw(st.integers(1, 16))
        elif name == "name":
            params[name] = draw(st.sampled_from(
                ("table07_mma", "fig04_te_linear")))
        elif name == "fidelity":
            params[name] = draw(st.sampled_from(("fast", "full")))
        elif name == "seed":
            params[name] = draw(st.integers(0, 31))
        else:  # pragma: no cover - future params default to ints
            params[name] = draw(st.integers(1, 64))
    payload = {"kind": kind, "params": params}
    if kind != "experiment":
        payload["device"] = draw(st.sampled_from(
            ("A100", "a100", "H800", "RTX4090")))
    if kind in ("te.linear", "llm.generate"):
        payload["precision"] = draw(st.sampled_from(
            ("fp32", "fp16", "bf16", "fp8", "FP16")))
    if draw(st.booleans()):
        payload["id"] = draw(st.sampled_from(("q1", "tag-2")))
    return payload
