"""The invariant oracle — what makes a random scenario *checkable*.

Each scenario's answer stream is tested against declared properties
instead of golden values, following the cross-generation observation
(K80→A100→Hopper→Blackwell lineage studies) that *more resource is
never slower*:

``no_raise``
    Answering a well-formed batch never raises — unsupported
    capabilities are structured ``status="unsupported"`` answers.
``status.wellformed``
    Every status is one of ``ok/unsupported/oom/error``, and a
    generator-built (in-domain) query is never answered ``error``.
``batch_sequential_equiv``
    One ``answer_batch`` over the scenario renders byte-identically
    to a one-``answer()``-at-a-time loop on a fresh service.
``warm_equiv``
    Asking the same batch twice on one service (cold compute, then
    warm memo tier) renders byte-identically.
``linear_monotone``
    At fixed (device, precision, n, k), te.linear ``seconds`` is
    non-decreasing in ``m`` — more work is never faster.
``latency_monotone``
    At fixed (device, stride), mean chase latency is non-decreasing
    in footprint — a bigger working set never hits closer.
``wgmma_monotone``
    At fixed (device, ab, cd, sparse, a_source), wgmma ``tflops`` is
    non-decreasing in ``n`` — wider warpgroup tiles amortize issue.
``dsm_contention_monotone``
    Per-SM fabric contention never *helps*: ``aggregate_tbps`` is 0
    at cluster size 1 (no remote traffic) and non-increasing across
    cluster sizes ≥ 2.
``lineage_peaks``
    Across the HBM lineage V100→A100→H800→B200, FP16 dense peak,
    DRAM bandwidth and L2 capacity never regress.
``fraction_of_peak_bound``
    No modeled kernel exceeds its device's peak.

Monotone chains are *re-derived* from the queries themselves (group
by the fixed params, sort by the swept one), so a shrunk subset of a
scenario is checked by exactly the code that convicted the original.

Comparisons use the same ``1.0001`` relative slack the model
invariant suite uses — rounding at the 12th significant digit must
never convict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.schema import Prediction, Query

__all__ = ["INVARIANTS", "ScenarioReport", "Violation",
           "check_scenario"]

#: relative slack for "never slower/faster" comparisons
_TOL = 1.0001

#: fixed HBM lineage, oldest first (mirrors test_model_invariants)
_HBM_LINEAGE = ("V100", "A100", "H800", "B200")

_STATUSES = frozenset(("ok", "unsupported", "oom", "error"))

INVARIANTS: Tuple[str, ...] = (
    "no_raise",
    "status.wellformed",
    "batch_sequential_equiv",
    "warm_equiv",
    "linear_monotone",
    "latency_monotone",
    "wgmma_monotone",
    "dsm_contention_monotone",
    "lineage_peaks",
    "fraction_of_peak_bound",
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, pinned to its scenario and queries."""

    invariant: str
    scenario_index: int
    seed: int
    message: str
    #: canonical forms of the smallest query set the message is about
    queries: Tuple[str, ...] = ()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "scenario_index": self.scenario_index,
            "seed": self.seed,
            "message": self.message,
            "queries": list(self.queries),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Violation":
        return cls(
            invariant=str(payload["invariant"]),
            scenario_index=int(payload["scenario_index"]),
            seed=int(payload["seed"]),
            message=str(payload["message"]),
            queries=tuple(payload.get("queries", ())),
        )


@dataclass
class ScenarioReport:
    """One checked scenario, reduced to what the aggregator streams."""

    index: int
    n_queries: int
    n_checks: int = 0
    status_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "n_queries": self.n_queries,
            "n_checks": self.n_checks,
            "status_counts": dict(self.status_counts),
            "violations": [v.to_payload() for v in self.violations],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ScenarioReport":
        return cls(
            index=int(payload["index"]),
            n_queries=int(payload["n_queries"]),
            n_checks=int(payload["n_checks"]),
            status_counts=dict(payload["status_counts"]),
            violations=[Violation.from_payload(v)
                        for v in payload["violations"]],
        )


class _Checker:
    def __init__(self, scenario) -> None:
        self.scenario = scenario
        self.report = ScenarioReport(index=scenario.index,
                                     n_queries=len(scenario.queries))

    def _fail(self, invariant: str, message: str,
              queries: Sequence[Query] = ()) -> None:
        self.report.violations.append(Violation(
            invariant=invariant,
            scenario_index=self.scenario.index,
            seed=self.scenario.seed,
            message=message,
            queries=tuple(q.canonical() for q in queries),
        ))

    def _check(self) -> None:
        self.report.n_checks += 1

    # -- service passes -----------------------------------------------------

    def _fresh_service(self):
        from repro.serve import QueryService

        # no persistent cache: the fuzzer must convict the *model*,
        # never a stale blob, and a fresh service per pass keeps
        # cold/warm tiers exactly where each invariant expects them
        return QueryService(cache=None)

    def run(self, *, deep: bool) -> ScenarioReport:
        queries = list(self.scenario.queries)
        service = self._fresh_service()
        self._check()
        try:
            predictions = service.answer_batch(queries)
        except Exception as exc:  # noqa: BLE001 - the invariant
            self._fail("no_raise",
                       f"answer_batch raised {type(exc).__name__}: "
                       f"{exc}", queries)
            return self.report

        self._statuses(queries, predictions)
        if deep:
            self._sequential(queries, predictions)
        self._warm(service, queries, predictions)
        self._linear_monotone(queries, predictions)
        self._latency_monotone(queries, predictions)
        self._wgmma_monotone(queries, predictions)
        self._dsm_monotone(queries, predictions)
        self._lineage()
        self._peak_bound(queries, predictions)
        return self.report

    # -- invariants ---------------------------------------------------------

    def _statuses(self, queries: List[Query],
                  predictions: List[Prediction]) -> None:
        self._check()
        counts = self.report.status_counts
        for q, p in zip(queries, predictions):
            counts[p.status] = counts.get(p.status, 0) + 1
            if p.status not in _STATUSES:
                self._fail("status.wellformed",
                           f"illegal status {p.status!r}", [q])
            elif p.status == "error":
                self._fail("status.wellformed",
                           "in-domain query answered status=error: "
                           f"{p.reason}", [q])

    def _sequential(self, queries: List[Query],
                    predictions: List[Prediction]) -> None:
        self._check()
        service = self._fresh_service()
        solo = [service.answer(q) for q in queries]
        for q, batched, single in zip(queries, predictions, solo):
            if batched.to_line() != single.to_line():
                self._fail(
                    "batch_sequential_equiv",
                    f"batched {batched.to_line()} != sequential "
                    f"{single.to_line()}", [q])

    def _warm(self, service, queries: List[Query],
              cold: List[Prediction]) -> None:
        self._check()
        warm = service.answer_batch(queries)
        for q, c, w in zip(queries, cold, warm):
            if c.to_line() != w.to_line():
                self._fail("warm_equiv",
                           f"cold {c.to_line()} != warm "
                           f"{w.to_line()}", [q])

    def _monotone(self, invariant: str, chains: Dict[Any, list],
                  metric: str, *, decreasing: bool = False) -> None:
        """``chains`` maps a fixed-param key to [(swept_value, query,
        prediction)]; the metric must move one way along each chain."""
        self._check()
        for chain in chains.values():
            chain.sort(key=lambda item: item[0])
            kept = [(x, q, p) for x, q, p in chain if p.ok]
            for (x0, q0, p0), (x1, q1, p1) in zip(kept, kept[1:]):
                lo, hi = p0.metric(metric), p1.metric(metric)
                bad = (hi > lo * _TOL) if decreasing \
                    else (hi * _TOL < lo)
                if bad:
                    direction = "increased" if decreasing else "dropped"
                    self._fail(
                        invariant,
                        f"{metric} {direction} along the chain: "
                        f"{lo!r} at {x0} -> {hi!r} at {x1}",
                        [q0, q1])

    def _linear_monotone(self, queries, predictions) -> None:
        chains: Dict[Any, list] = {}
        for q, p in zip(queries, predictions):
            if q.kind == "te.linear":
                key = (q.device, q.precision, q.param("n"),
                       q.param("k"))
                chains.setdefault(key, []).append(
                    (q.param("m"), q, p))
        self._monotone("linear_monotone", chains, "seconds")

    def _latency_monotone(self, queries, predictions) -> None:
        chains: Dict[Any, list] = {}
        for q, p in zip(queries, predictions):
            if q.kind == "memory.latency":
                key = (q.device, q.param("stride_bytes"))
                chains.setdefault(key, []).append(
                    (q.param("footprint_kib"), q, p))
        self._monotone("latency_monotone", chains, "mean_latency_clk")

    def _wgmma_monotone(self, queries, predictions) -> None:
        chains: Dict[Any, list] = {}
        for q, p in zip(queries, predictions):
            if q.kind == "wgmma":
                key = (q.device, q.param("ab"), q.param("cd"),
                       q.param("sparse"), q.param("a_source"))
                chains.setdefault(key, []).append(
                    (q.param("n"), q, p))
        self._monotone("wgmma_monotone", chains, "tflops")

    def _dsm_monotone(self, queries, predictions) -> None:
        chains: Dict[Any, list] = {}
        self._check()
        for q, p in zip(queries, predictions):
            if q.kind != "dsm.bandwidth" or not p.ok:
                continue
            cs = q.param("cluster_size")
            tbps = p.metric("aggregate_tbps")
            if cs == 1 and tbps != 0.0:
                self._fail("dsm_contention_monotone",
                           f"cluster size 1 has no remote traffic "
                           f"but aggregate_tbps={tbps!r}", [q])
            if cs >= 2:
                chains.setdefault(q.device, []).append((cs, q, p))
        self._monotone("dsm_contention_monotone", chains,
                       "aggregate_tbps", decreasing=True)

    def _lineage(self) -> None:
        from repro.arch import get_device

        self._check()
        lineup = [d for d in _HBM_LINEAGE
                  if d in self.scenario.devices]
        specs = [get_device(d) for d in lineup]
        axes = (
            ("fp16 dense peak",
             lambda s: s.tensor_core.dense_peak_tflops.get("fp16",
                                                           0.0)),
            ("dram bandwidth",
             lambda s: s.dram.peak_bandwidth_gbps),
            ("l2 capacity",
             lambda s: s.cache.l2_size_kib),
        )
        for older, newer in zip(specs, specs[1:]):
            for label, axis in axes:
                if axis(newer) * _TOL < axis(older):
                    self._fail(
                        "lineage_peaks",
                        f"{label} regressed {older.name}->"
                        f"{newer.name}: {axis(older)!r} -> "
                        f"{axis(newer)!r}")

    def _peak_bound(self, queries, predictions) -> None:
        self._check()
        for q, p in zip(queries, predictions):
            if q.kind in ("mma", "wgmma") and p.ok:
                frac = p.metric("fraction_of_peak", 0.0)
                if frac > _TOL:
                    self._fail("fraction_of_peak_bound",
                               f"fraction_of_peak={frac!r} exceeds "
                               "the device peak", [q])


def check_scenario(scenario, *, deep: Optional[bool] = None) \
        -> ScenarioReport:
    """Answer ``scenario`` and test every applicable invariant.

    ``deep`` turns on the (costly) batch-vs-sequential recompute; by
    default every fourth scenario gets it — a deterministic function
    of the scenario index, so serial and fanned runs sample the same
    cases.
    """
    if deep is None:
        deep = scenario.index % 4 == 0
    return _Checker(scenario).run(deep=deep)
