"""Seeded scenario generation.

A :class:`Scenario` is one fuzz case: a device lineup plus a batch of
:class:`~repro.serve.schema.Query` objects mixing kernel sweeps,
(batch, seq) grids, precisions, cluster sizes and deliberate
capability gaps.  :class:`ScenarioGenerator` derives every scenario
from ``(seed, index)`` alone via :class:`random.Random` — no
Hypothesis at runtime, no global RNG state — so scenario *i* of seed
*S* is identical across runs, platforms and ``--jobs`` fan-outs, and
a shrunk repro can name its origin exactly.

The generator plants *structured* families on purpose: monotone
chains (a te.linear ``m``-chain, a memory-latency footprint chain, a
wgmma ``n``-chain, a DSM cluster-size ladder) give the oracle
something to check beyond "did it crash", and queries for
capabilities the device lacks (wgmma on Volta, FP8 on Ampere) pin the
"always ``unsupported``, never a raise" contract.  Chains carry no
side-channel metadata — the oracle re-derives them by grouping
queries on their fixed parameters, which is what keeps a shrunk
subset checkable by the same code path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.arch import get_device, list_devices
from repro.serve.schema import Query, parse_query

__all__ = ["Scenario", "ScenarioGenerator"]

_PRECISIONS = ("fp32", "fp16", "bf16", "fp8")
_LLM_MODELS = ("llama-3B", "llama-2-7B", "llama-2-13B")
_STRIDES = (128, 4096)
_MMA_AB = ("fp16", "bf16", "tf32", "int8")
_WGMMA_AB = ("fp16", "bf16", "tf32", "e4m3", "int8")
_ACCUM = {"fp16": ("fp16", "fp32"), "bf16": ("fp32",),
          "tf32": ("fp32",), "int8": ("int32",),
          "e4m3": ("fp16", "fp32")}
_WGMMA_N = (8, 16, 32, 64, 128, 256)
#: legal PTX mma shapes per input dtype (paper Table VII grid)
_MMA_SHAPES = {
    "fp16": ((16, 8, 8), (16, 8, 16)),
    "bf16": ((16, 8, 8), (16, 8, 16)),
    "tf32": ((16, 8, 4), (16, 8, 8)),
    "int8": ((16, 8, 16), (16, 8, 32)),
}


@dataclass(frozen=True)
class Scenario:
    """One reproducible fuzz case."""

    index: int
    seed: int
    devices: Tuple[str, ...]
    queries: Tuple[Query, ...]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "seed": self.seed,
            "devices": list(self.devices),
            "queries": [q.to_payload() for q in self.queries],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Scenario":
        return cls(
            index=int(payload["index"]),
            seed=int(payload["seed"]),
            devices=tuple(payload["devices"]),
            queries=tuple(parse_query(p)
                          for p in payload["queries"]),
        )


class ScenarioGenerator:
    """Derives scenarios from ``(seed, index)``; nothing else."""

    def __init__(self, seed: int,
                 devices: Optional[Sequence[str]] = None) -> None:
        self.seed = int(seed)
        names = tuple(devices) if devices else tuple(list_devices())
        self.devices = tuple(get_device(n).name for n in names)
        if not self.devices:
            raise ValueError("fuzz needs at least one device")

    # -- per-scenario RNG ---------------------------------------------------

    def _rng(self, index: int) -> random.Random:
        # string seeding hashes with sha512 (seed version 2):
        # deterministic across processes and platforms, unlike
        # hash()-based tuple seeding under PYTHONHASHSEED
        return random.Random(f"hopperdissect.fuzz:{self.seed}:{index}")

    # -- query families -----------------------------------------------------

    def _linear_chain(self, rng: random.Random, dev: str) -> List[Query]:
        prec = rng.choice(_PRECISIONS)
        n = rng.choice((256, 1024, 4096))
        k = rng.choice((256, 1024, 4096))
        base = rng.randrange(1, 2048)
        ms = sorted({base * (i + 1) for i in range(rng.randrange(3, 6))})
        return [Query(kind="te.linear", device=dev, precision=prec,
                      params=(("m", m), ("n", n), ("k", k)))
                for m in ms]

    def _latency_chain(self, rng: random.Random, dev: str) -> List[Query]:
        stride = rng.choice(_STRIDES)
        lo = rng.randrange(1, 64)
        foots = sorted({lo * (1 << i)
                        for i in range(rng.randrange(3, 6))
                        if lo * (1 << i) <= 1024})
        return [Query(kind="memory.latency", device=dev,
                      params=(("footprint_kib", f),
                              ("stride_bytes", stride)))
                for f in foots]

    def _wgmma_chain(self, rng: random.Random, dev: str) -> List[Query]:
        ab = rng.choice(_WGMMA_AB)
        cd = rng.choice(_ACCUM[ab])
        src = rng.choice(("ss", "rs"))
        ns = sorted(rng.sample(_WGMMA_N, rng.randrange(2, 5)))
        return [Query(kind="wgmma", device=dev,
                      params=(("ab", ab), ("cd", cd), ("n", n),
                              ("a_source", src)))
                for n in ns]

    def _dsm_ladder(self, rng: random.Random, dev: str) -> List[Query]:
        top = get_device(dev).max_cluster_size
        sizes = sorted({cs for cs in (1, 2, 4, 8, 16) if cs <= top})
        if len(sizes) > 2:
            sizes = sorted(rng.sample(sizes, rng.randrange(2, len(sizes) + 1)))
        return [Query(kind="dsm.bandwidth", device=dev,
                      params=(("cluster_size", cs),))
                for cs in sizes]

    def _mma_points(self, rng: random.Random, dev: str) -> List[Query]:
        out = []
        for _ in range(rng.randrange(1, 4)):
            ab = rng.choice(_MMA_AB)
            cd = rng.choice(_ACCUM[ab])
            m, n, k = rng.choice(_MMA_SHAPES[ab])
            out.append(Query(kind="mma", device=dev,
                             params=(("ab", ab), ("cd", cd),
                                     ("m", m), ("n", n), ("k", k))))
        return out

    def _llm_points(self, rng: random.Random, dev: str) -> List[Query]:
        model = rng.choice(_LLM_MODELS)
        prec = rng.choice(_PRECISIONS)
        batch = rng.choice((1, 4, 8, 16, 64))
        seq = rng.choice((128, 512, 2048))
        return [Query(kind="llm.generate", device=dev, precision=prec,
                      params=(("model", model), ("batch", batch),
                              ("input_len", seq),
                              ("output_len", seq)))]

    def _capability_gaps(self, rng: random.Random, dev: str) -> List[Query]:
        """Questions the device may have to decline — the oracle pins
        that declining is a structured answer, never an exception."""
        out = [Query(kind="wgmma", device=dev,
                     params=(("ab", "fp16"), ("cd", "fp32"),
                             ("n", rng.choice(_WGMMA_N))))]
        if rng.random() < 0.5:
            out.append(Query(kind="te.linear", device=dev,
                             precision="fp8",
                             params=(("m", 1024), ("n", 1024),
                                     ("k", 1024))))
        if rng.random() < 0.5:
            out.append(Query(kind="dsm.bandwidth", device=dev,
                             params=(("cluster_size", 2),)))
        return out

    _FAMILIES = ("linear", "latency", "wgmma", "dsm", "mma", "llm",
                 "gaps")

    def scenario(self, index: int) -> Scenario:
        rng = self._rng(index)
        k = min(len(self.devices), rng.randrange(1, 4))
        lineup = tuple(sorted(rng.sample(self.devices, k)))
        queries: List[Query] = []
        families = rng.sample(self._FAMILIES,
                              rng.randrange(2, len(self._FAMILIES) + 1))
        for fam in sorted(families):
            dev = rng.choice(lineup)
            fn = {
                "linear": self._linear_chain,
                "latency": self._latency_chain,
                "wgmma": self._wgmma_chain,
                "dsm": self._dsm_ladder,
                "mma": self._mma_points,
                "llm": self._llm_points,
                "gaps": self._capability_gaps,
            }[fam]
            queries.extend(fn(rng, dev))
        return Scenario(index=index, seed=self.seed, devices=lineup,
                        queries=tuple(queries))

    def generate(self, budget: int) -> Iterator[Scenario]:
        """The first ``budget`` scenarios of this seed, in order."""
        for index in range(budget):
            yield self.scenario(index)
