"""repro.fuzz — fleet-scale scenario fuzzing for the cost models.

The fuzzer drives thousands of randomized *scenarios* — kernel mixes,
(batch, seq) grids, precisions, cluster sizes, device lineups —
through the :mod:`repro.serve` query service and checks every answer
stream against declared **invariants** (monotonicity, lineage,
batch-vs-sequential equivalence, capability gating).  A violating
scenario is *shrunk* to a smallest reproducing case and written as a
replayable JSONL repro file.

Layout:

* :mod:`repro.fuzz.generator` — seeded scenario generator
  (``random.Random`` only; deterministic across platforms)
* :mod:`repro.fuzz.oracle` — the invariant oracle
* :mod:`repro.fuzz.shrink` — ddmin-style minimization + repro files
* :mod:`repro.fuzz.driver` — the streaming fuzz loop
  (work-stealing pool dispatch, deterministic re-merge)
* :mod:`repro.fuzz.strategies` — shared Hypothesis strategies for the
  property-test suites.  **Not** imported here: Hypothesis is a
  dev-only dependency, and everything the runtime fuzzer needs is
  plain ``random``.
"""

from repro.fuzz.driver import FuzzReport, run_fuzz
from repro.fuzz.generator import Scenario, ScenarioGenerator
from repro.fuzz.oracle import (
    INVARIANTS,
    ScenarioReport,
    Violation,
    check_scenario,
)
from repro.fuzz.shrink import (
    REPRO_SCHEMA,
    load_repro,
    replay_repro,
    shrink_scenario,
    write_repro,
)

__all__ = [
    "FuzzReport",
    "INVARIANTS",
    "REPRO_SCHEMA",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioReport",
    "Violation",
    "check_scenario",
    "load_repro",
    "replay_repro",
    "run_fuzz",
    "shrink_scenario",
    "write_repro",
]
