"""Shrinking — minimize a violating scenario to a replayable repro.

A thousand-query scenario that trips one invariant is a bad bug
report.  :func:`shrink_scenario` runs a greedy delta-debugging pass
(ddmin over the query list, then over the device lineup) that keeps
removing pieces as long as the *same invariant* still fires, then
writes the survivor as a JSONL repro file::

    {"schema": "hopperdissect.fuzz.repro/v1", "invariant": ..., ...}
    {query payload}
    ...

The header carries the origin (seed, scenario index, lineup) and the
convicting invariant; every following line is one canonical query
payload.  :func:`replay_repro` rebuilds the scenario and re-runs the
oracle — ``hopperdissect fuzz --replay FILE`` is exactly that.

Because the oracle re-derives monotone chains by grouping queries, a
shrunk subset is checked by the same code path that convicted the
full scenario — no chain metadata needs to survive shrinking.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from repro.fuzz.generator import Scenario
from repro.fuzz.oracle import ScenarioReport, Violation, check_scenario
from repro.serve.schema import Query, parse_query

__all__ = ["REPRO_SCHEMA", "load_repro", "replay_repro",
           "shrink_scenario", "write_repro"]

REPRO_SCHEMA = "hopperdissect.fuzz.repro/v1"


def _violates(scenario: Scenario, invariant: str) \
        -> Optional[Violation]:
    """The first violation of ``invariant`` this candidate still
    produces (deep pass forced on, so sampling never hides one)."""
    report = check_scenario(scenario, deep=True)
    for v in report.violations:
        if v.invariant == invariant:
            return v
    return None


def _with(scenario: Scenario, queries: List[Query],
          devices: Optional[Tuple[str, ...]] = None) -> Scenario:
    return Scenario(index=scenario.index, seed=scenario.seed,
                    devices=devices or scenario.devices,
                    queries=tuple(queries))


def _ddmin_queries(scenario: Scenario, invariant: str) -> Scenario:
    """Classic ddmin: drop ever-smaller chunks while the invariant
    still fires."""
    queries = list(scenario.queries)
    chunk = max(1, len(queries) // 2)
    while chunk >= 1:
        i, shrunk = 0, False
        while i < len(queries) and len(queries) > 1:
            candidate = queries[:i] + queries[i + chunk:]
            if candidate and _violates(_with(scenario, candidate),
                                       invariant) is not None:
                queries = candidate
                shrunk = True
            else:
                i += chunk
        if chunk == 1 and not shrunk:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if shrunk else 0)
    return _with(scenario, queries)


def _ddmin_devices(scenario: Scenario, invariant: str) -> Scenario:
    """Prune the lineup to the devices the violation needs (query
    targets always stay; lineage violations may need a spec pair
    with no query at all)."""
    devices = list(scenario.devices)
    for name in list(devices):
        if len(devices) == 1:
            break
        candidate = tuple(d for d in devices if d != name)
        trial = _with(scenario, list(scenario.queries), candidate)
        if _violates(trial, invariant) is not None:
            devices = list(candidate)
    return _with(scenario, list(scenario.queries), tuple(devices))


def shrink_scenario(scenario: Scenario, violation: Violation) \
        -> Tuple[Scenario, Violation]:
    """The smallest (queries, lineup) still violating the same
    invariant, plus the violation it produces.  Falls back to the
    original scenario if the violation is flaky under re-check (it
    never is for the declared invariants — they are pure functions
    of the scenario — but a shrinker must not *lose* a repro)."""
    if _violates(scenario, violation.invariant) is None:
        return scenario, violation
    small = _ddmin_queries(scenario, violation.invariant)
    small = _ddmin_devices(small, violation.invariant)
    final = _violates(small, violation.invariant)
    assert final is not None   # ddmin only keeps violating candidates
    return small, final


# -- repro files -------------------------------------------------------------


def write_repro(path, scenario: Scenario, violation: Violation) -> str:
    """Write the shrunk scenario as a replayable JSONL repro file."""
    header = {
        "schema": REPRO_SCHEMA,
        "invariant": violation.invariant,
        "message": violation.message,
        "seed": scenario.seed,
        "scenario": scenario.index,
        "devices": list(scenario.devices),
    }
    lines = [json.dumps(header, sort_keys=True,
                        separators=(",", ":"))]
    lines += [q.canonical() for q in scenario.queries]
    text = "\n".join(lines) + "\n"
    with open(path, "w") as fh:
        fh.write(text)
    return str(path)


def load_repro(path) -> Tuple[Scenario, str]:
    """Rebuild (scenario, invariant) from a repro file.

    Raises ``ValueError`` on a wrong schema tag and lets query
    validation errors propagate — a repro that names an unregistered
    device (e.g. a test-only injected pack) must be replayed in a
    process that registers it first.
    """
    with open(path) as fh:
        lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    if not lines:
        raise ValueError(f"{path}: empty repro file")
    header = json.loads(lines[0])
    if header.get("schema") != REPRO_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {REPRO_SCHEMA!r}, got "
            f"{header.get('schema')!r}")
    queries = tuple(parse_query(json.loads(ln)) for ln in lines[1:])
    scenario = Scenario(
        index=int(header.get("scenario", 0)),
        seed=int(header.get("seed", 0)),
        devices=tuple(header.get("devices", ())),
        queries=queries,
    )
    return scenario, str(header["invariant"])


def replay_repro(path) -> ScenarioReport:
    """Re-run the oracle over a repro file's scenario (deep pass
    forced on, exactly as the shrinker checked it)."""
    scenario, _invariant = load_repro(path)
    return check_scenario(scenario, deep=True)
