"""The streaming fuzz loop.

``run_fuzz`` generates scenarios from ``(seed, index)``, fans the
checks over a work-stealing pool
(:func:`repro.perf.runner.parallel_imap` — ``imap_unordered`` under
the hood, so thousands of small scenario checks saturate the workers
regardless of per-scenario cost skew), and **streams** the results:
violations and ``fuzz.*`` counters accumulate incrementally through a
bounded reorder window instead of materializing every result object.

Determinism is the point, so the recipe mirrors the experiment
runner's: each scenario is checked under a fresh nested
:class:`~repro.obs.ObsSession` (in-process for serial runs, in the
worker otherwise) and ships its counter delta back; the parent merges
deltas — and fires its own ``fuzz.*`` aggregates — strictly in
scenario-index order no matter which worker finished first.  A serial
run and a ``--jobs N`` run therefore produce byte-identical violation
lists *and* counter dumps.

Violating scenarios are shrunk (in the parent, after the sweep — the
violation list is already deterministic by then) and written as
replayable repro files.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.generator import Scenario, ScenarioGenerator
from repro.fuzz.oracle import ScenarioReport, Violation, check_scenario
from repro.fuzz.shrink import shrink_scenario, write_repro
from repro.obs import session as _obs
from repro.obs.session import ObsSession

__all__ = ["FuzzReport", "run_fuzz"]

#: one scenario check's transport form: (scenario payload, obs?)
_Task = Tuple[Dict[str, Any], Optional[Dict[str, Any]]]


def _check_one(task: _Task) \
        -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Worker entry point — must stay module-level for pickling.

    Rebuilds the scenario from its wire form, checks it under a fresh
    nested session (when observability is on) and ships the report
    payload + counter delta back.  The serial path runs this same
    function in-process, which is what keeps the two modes
    byte-identical.
    """
    payload, obs_cfg = task
    scenario = Scenario.from_payload(payload)
    if obs_cfg is not None:
        session = ObsSession(trace=bool(obs_cfg.get("trace")))
        with session.activate():
            report = check_scenario(scenario)
        dump = session.dump()
    else:
        report = check_scenario(scenario)
        dump = None
    return report.to_payload(), dump


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` sweep."""

    seed: int
    budget: int
    devices: Tuple[str, ...]
    scenarios: int = 0
    queries: int = 0
    checks: int = 0
    status_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        statuses = ", ".join(
            f"{k}={v}" for k, v in sorted(self.status_counts.items()))
        lines = [
            f"fuzz seed={self.seed}: {self.scenarios} scenarios, "
            f"{self.queries} queries, {self.checks} checks "
            f"({statuses or 'no answers'})",
            f"violations: {len(self.violations)}",
        ]
        for v in self.violations:
            lines.append(f"  [{v.invariant}] scenario "
                         f"{v.scenario_index}: {v.message}")
        for path in self.repro_paths:
            lines.append(f"  repro written: {path}")
        return "\n".join(lines)


class _Aggregator:
    """Streams per-scenario reports into totals + ``fuzz.*`` counters,
    strictly in scenario-index order."""

    def __init__(self, report: FuzzReport, sess) -> None:
        self.report = report
        self.sess = sess
        self.by_index: Dict[int, ScenarioReport] = {}

    def consume(self, scenario_report: ScenarioReport,
                dump: Optional[Dict[str, Any]]) -> None:
        rep, agg = scenario_report, self.report
        agg.scenarios += 1
        agg.queries += rep.n_queries
        agg.checks += rep.n_checks
        for status, n in rep.status_counts.items():
            agg.status_counts[status] = \
                agg.status_counts.get(status, 0) + n
        agg.violations.extend(rep.violations)
        if rep.violations:
            self.by_index[rep.index] = rep
        if self.sess is not None:
            c = self.sess.counters
            c.add("fuzz.scenarios")
            c.add("fuzz.queries", rep.n_queries)
            c.add("fuzz.checks", rep.n_checks)
            if rep.violations:
                c.add("fuzz.violations", len(rep.violations))
            for status, n in sorted(rep.status_counts.items()):
                c.add(f"fuzz.status.{status}", n)
            c.observe("fuzz.scenario.queries", rep.n_queries)
            self.sess.merge(dump)


def run_fuzz(
    seed: int,
    budget: int,
    *,
    jobs: int = 1,
    devices: Optional[Sequence[str]] = None,
    repro_dir=None,
    max_repros: int = 5,
    shrink: bool = True,
) -> FuzzReport:
    """Check ``budget`` scenarios of ``seed``; shrink what violates.

    ``repro_dir`` (optional) receives one
    ``repro-<scenario>-<invariant>.jsonl`` file per violating
    scenario, up to ``max_repros``.  The returned report — and the
    active session's counter bank — is identical for ``jobs=1`` and
    ``jobs=N``.
    """
    from repro.perf.runner import parallel_imap

    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    gen = ScenarioGenerator(seed, devices=devices)
    report = FuzzReport(seed=gen.seed, budget=budget,
                        devices=gen.devices)
    sess = _obs.ACTIVE
    tracer = sess.tracer if sess is not None else None

    def _span(label: str, **args):
        if tracer is None:
            return nullcontext()
        return tracer.span(label, cat="fuzz", tid="fuzz",
                           args=args or None)

    obs_cfg = ({"trace": tracer is not None}
               if sess is not None else None)
    with _span("fuzz.generate", budget=budget):
        tasks: List[_Task] = [
            (gen.scenario(i).to_payload(), obs_cfg)
            for i in range(budget)
        ]

    agg = _Aggregator(report, sess)
    # bounded reorder window: results stream in completion order from
    # the work-stealing pool and are consumed in index order, holding
    # back only what arrived early
    pending: Dict[int, Tuple[Dict[str, Any],
                             Optional[Dict[str, Any]]]] = {}
    next_index = 0
    with _span("fuzz.dispatch", jobs=max(1, jobs),
               scenarios=len(tasks)):
        for index, outcome in parallel_imap(_check_one, tasks,
                                            jobs=jobs):
            pending[index] = outcome
            while next_index in pending:
                payload, dump = pending.pop(next_index)
                agg.consume(ScenarioReport.from_payload(payload),
                            dump)
                next_index += 1
    assert not pending and next_index == len(tasks)

    if report.violations and (shrink or repro_dir is not None):
        with _span("fuzz.shrink",
                   violating=len(agg.by_index)):
            _write_repros(gen, agg, report, repro_dir, max_repros,
                          shrink)
    return report


def _write_repros(gen: ScenarioGenerator, agg: _Aggregator,
                  report: FuzzReport, repro_dir,
                  max_repros: int, shrink: bool) -> None:
    """Shrink the first violation of each violating scenario and
    (when asked) write it as a repro file, lowest index first."""
    sess = _obs.ACTIVE
    for index in sorted(agg.by_index)[:max(0, max_repros)]:
        violation = agg.by_index[index].violations[0]
        scenario = gen.scenario(index)
        if shrink:
            scenario, violation = shrink_scenario(scenario, violation)
        if sess is not None:
            sess.counters.add("fuzz.repros")
            sess.counters.observe("fuzz.repro.queries",
                                  len(scenario.queries))
        if repro_dir is not None:
            directory = Path(repro_dir)
            directory.mkdir(parents=True, exist_ok=True)
            slug = violation.invariant.replace(".", "_")
            path = directory / (f"repro-{scenario.index:06d}-"
                                f"{slug}.jsonl")
            report.repro_paths.append(
                write_repro(path, scenario, violation))
