"""Trace-driven SM timing simulation.

The paper motivates instruction-level dissection partly as input for
*"creating GPU simulators"* (§II).  This subpackage is that consumer:
a small cycle-approximate simulator of one SM — four schedulers, a
scoreboard, per-unit issue pipes — driven by instruction traces whose
latency/II signatures come from the calibrated models in the rest of
the library.

* :mod:`repro.trace.isa` — trace instructions (register deps, unit,
  latency, initiation interval) and trace builders for common kernels.
* :mod:`repro.trace.engine` — the cycle loop: greedy oldest-first
  scheduling per sub-partition, scoreboard-tracked dependencies, pipe
  occupancy, per-unit utilisation statistics.

The test suite validates it against closed forms (dependent chains,
issue-bound streams) and against the analytical tensor-core timing
model — the consistency a calibrated simulator owes its calibration
source.
"""

from __future__ import annotations

from repro.trace.isa import TraceInstr, TraceBuilder, WarpTrace
from repro.trace.engine import SmSimulator, SimResult

__all__ = [
    "TraceInstr",
    "WarpTrace",
    "TraceBuilder",
    "SmSimulator",
    "SimResult",
]
