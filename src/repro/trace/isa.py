"""Trace instructions and builders.

A :class:`TraceInstr` is one warp-level instruction with explicit
register dependencies and a timing signature (completion latency +
pipe initiation interval).  Builders produce the traces the paper's
microbenchmarks correspond to: dependent chains (latency probes),
independent streams (throughput probes), and mma accumulation loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.arch import DeviceSpec
from repro.isa.lowering import FunctionalUnit
from repro.isa.mma import MmaInstruction
from repro.tensorcore.timing import MmaTiming

__all__ = ["TraceInstr", "WarpTrace", "TraceBuilder"]


@dataclass(frozen=True)
class TraceInstr:
    """One warp instruction in a trace."""

    opcode: str
    unit: FunctionalUnit
    latency_clk: float
    ii_clk: float
    srcs: Tuple[int, ...] = ()
    dst: int = -1            # -1: no register written

    def __post_init__(self) -> None:
        if self.latency_clk <= 0 or self.ii_clk <= 0:
            raise ValueError("latency and II must be positive")
        if self.ii_clk > self.latency_clk:
            raise ValueError("II cannot exceed latency")


@dataclass
class WarpTrace:
    """One warp's instruction stream."""

    instrs: List[TraceInstr] = field(default_factory=list)

    def append(self, instr: TraceInstr) -> None:
        self.instrs.append(instr)

    def __len__(self) -> int:
        return len(self.instrs)


class TraceBuilder:
    """Builders for microbenchmark-shaped traces."""

    #: default integer-ALU signature (IMNMX/IADD3 class)
    ALU_LATENCY = 4.5
    ALU_II = 1.0

    @staticmethod
    def dependent_chain(n: int, *, latency: float = ALU_LATENCY,
                        ii: float = ALU_II,
                        unit: FunctionalUnit =
                        FunctionalUnit.CUDA_CORE_INT) -> WarpTrace:
        """``r1 = f(r1)`` repeated — the latency microbenchmark."""
        t = WarpTrace()
        for _ in range(n):
            t.append(TraceInstr("op", unit, latency, ii,
                                srcs=(1,), dst=1))
        return t

    @staticmethod
    def independent_stream(n: int, *, latency: float = ALU_LATENCY,
                           ii: float = ALU_II,
                           unit: FunctionalUnit =
                           FunctionalUnit.CUDA_CORE_INT,
                           regs: int = 8) -> WarpTrace:
        """``r_i = f(r_i)`` round-robin over ``regs`` registers —
        the throughput microbenchmark (ILP = regs)."""
        t = WarpTrace()
        for i in range(n):
            r = 1 + (i % regs)
            t.append(TraceInstr("op", unit, latency, ii,
                                srcs=(r,), dst=r))
        return t

    @staticmethod
    def mma_accumulate_loop(device: DeviceSpec, instr: MmaInstruction,
                            n: int) -> WarpTrace:
        """``D += A×B`` n times — the tensor-core benchmark loop, with
        the timing signature taken from the calibrated model."""
        timing = MmaTiming(device, instr)
        t = WarpTrace()
        for _ in range(n):
            t.append(TraceInstr(
                instr.opcode, FunctionalUnit.TENSOR_CORE,
                timing.latency_clk,
                min(timing.issue_interval_clk, timing.latency_clk),
                srcs=(1,), dst=1,     # accumulator dependency
            ))
        return t

    @staticmethod
    def mma_independent(device: DeviceSpec, instr: MmaInstruction,
                        n: int, *, accumulators: int = 4) -> WarpTrace:
        """mma over several accumulators (ILP across D registers)."""
        timing = MmaTiming(device, instr)
        t = WarpTrace()
        for i in range(n):
            r = 1 + (i % accumulators)
            t.append(TraceInstr(
                instr.opcode, FunctionalUnit.TENSOR_CORE,
                timing.latency_clk,
                min(timing.issue_interval_clk, timing.latency_clk),
                srcs=(r,), dst=r,
            ))
        return t

    @staticmethod
    def load_compute(n_pairs: int, *, load_latency: float,
                     compute_latency: float = ALU_LATENCY) -> WarpTrace:
        """ld → dependent FMA pairs — a memory-latency-exposed loop."""
        t = WarpTrace()
        for _ in range(n_pairs):
            t.append(TraceInstr("ld", FunctionalUnit.LSU,
                                load_latency, 1.0, srcs=(), dst=2))
            t.append(TraceInstr("fma", FunctionalUnit.CUDA_CORE_FP32,
                                compute_latency, 1.0, srcs=(2,),
                                dst=3))
        return t
