"""The cycle-approximate SM engine.

One SM = four scheduler sub-partitions.  Warps are assigned to
schedulers round-robin; every cycle each scheduler issues at most one
instruction from the least-recently-issued ready warp (loose
round-robin, the documented GTO-ish policy's fair cousin).  An
instruction is ready when its source registers' values have landed
(scoreboard) and its unit's pipe has drained its initiation interval.

Time advances with event skipping: when no scheduler can issue, the
clock jumps to the next time anything changes, so sparse traces don't
cost wall-time per idle cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.lowering import FunctionalUnit
from repro.trace.isa import TraceInstr, WarpTrace

__all__ = ["SmSimulator", "SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation."""

    cycles: float
    instructions: int
    unit_issue_counts: Dict[FunctionalUnit, int]
    unit_busy_clk: Dict[FunctionalUnit, float]
    warp_finish_clk: List[float]

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def unit_utilization(self, unit: FunctionalUnit) -> float:
        if not self.cycles:
            return 0.0
        return self.unit_busy_clk.get(unit, 0.0) / self.cycles


class _WarpState:
    __slots__ = ("trace", "pc", "regs", "last_issue")

    def __init__(self, trace: WarpTrace) -> None:
        self.trace = trace
        self.pc = 0
        self.regs: Dict[int, float] = {}
        self.last_issue = -1.0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.trace)

    def current(self) -> TraceInstr:
        return self.trace.instrs[self.pc]

    def ready_at(self) -> float:
        """Earliest cycle the current instruction's operands allow."""
        instr = self.current()
        return max((self.regs.get(r, 0.0) for r in instr.srcs),
                   default=0.0)


class SmSimulator:
    """One SM with ``num_schedulers`` sub-partitions."""

    def __init__(self, *, num_schedulers: int = 4,
                 shared_lsu: bool = True) -> None:
        if num_schedulers < 1:
            raise ValueError("need at least one scheduler")
        self.num_schedulers = num_schedulers
        self.shared_lsu = shared_lsu

    def run(self, warps: List[WarpTrace],
            *, max_cycles: float = 10_000_000.0) -> SimResult:
        if not warps:
            raise ValueError("need at least one warp")
        states = [_WarpState(w) for w in warps]
        # round-robin warp → scheduler assignment
        owners: List[List[_WarpState]] = [
            [] for _ in range(self.num_schedulers)
        ]
        for i, s in enumerate(states):
            owners[i % self.num_schedulers].append(s)

        # per-(scheduler, unit) pipe free time; the LSU is optionally
        # one SM-wide pipe
        pipe_free: Dict[object, float] = {}

        def pipe_key(sched: int, unit: FunctionalUnit):
            if unit is FunctionalUnit.LSU and self.shared_lsu:
                return unit
            return (sched, unit)

        issue_counts: Dict[FunctionalUnit, int] = {}
        busy: Dict[FunctionalUnit, float] = {}
        finish = [0.0] * len(states)
        total = sum(len(w) for w in warps)
        issued = 0
        now = 0.0

        while issued < total:
            if now > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({issued}/{total} instructions issued)"
                )
            progressed = False
            next_event = math.inf
            for sched_id, sched_warps in enumerate(owners):
                # oldest-issue-first among ready warps
                candidates = sorted(
                    (s for s in sched_warps if not s.done),
                    key=lambda s: s.last_issue,
                )
                issued_here = False
                for s in candidates:
                    instr = s.current()
                    key = pipe_key(sched_id, instr.unit)
                    avail = max(s.ready_at(), pipe_free.get(key, 0.0))
                    if avail <= now and not issued_here:
                        # issue
                        pipe_free[key] = now + instr.ii_clk
                        if instr.dst >= 0:
                            s.regs[instr.dst] = now + instr.latency_clk
                        s.pc += 1
                        s.last_issue = now
                        idx = states.index(s)
                        finish[idx] = max(finish[idx],
                                          now + instr.latency_clk)
                        issue_counts[instr.unit] = \
                            issue_counts.get(instr.unit, 0) + 1
                        busy[instr.unit] = \
                            busy.get(instr.unit, 0.0) + instr.ii_clk
                        issued += 1
                        issued_here = True
                        progressed = True
                    else:
                        next_event = min(next_event, max(avail,
                                                         now + 1.0))
                if issued_here:
                    next_event = min(next_event, now + 1.0)
            if not progressed:
                if not math.isfinite(next_event):
                    raise RuntimeError("deadlock: no instruction can "
                                       "ever become ready")
                now = next_event
            else:
                now += 1.0

        return SimResult(
            cycles=max(finish) if finish else 0.0,
            instructions=issued,
            unit_issue_counts=issue_counts,
            unit_busy_clk=busy,
            warp_finish_clk=finish,
        )
