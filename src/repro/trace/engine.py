"""The cycle-approximate SM engine.

One SM = four scheduler sub-partitions.  Warps are assigned to
schedulers round-robin; every cycle each scheduler issues at most one
instruction from the least-recently-issued ready warp (loose
round-robin, the documented GTO-ish policy's fair cousin).  An
instruction is ready when its source registers' values have landed
(scoreboard) and its unit's pipe has drained its initiation interval.

Time advances exactly as in the reference cycle-stepping loop — +1
cycle after any issue, else a jump to the next cycle anything can
change — but the per-cycle work is driven by an event heap of
``(wake-up cycle, scheduler)`` entries instead of a scan over every
warp: each scheduler carries the exact earliest cycle it could next
issue, so a cycle only scans the schedulers whose wake-up has come due
and an idle skip costs O(log schedulers) instead of O(warps).  The one
cross-scheduler coupling — the optionally SM-wide LSU pipe — is
handled by marking the other schedulers' wake-ups stale when an LSU
instruction issues and refreshing them before the next time jump, so
wake-ups are never optimistically late and the issue schedule is
bit-identical to the reference scan.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List

from repro.isa.lowering import FunctionalUnit
from repro.obs import session as _obs
from repro.obs.trace import SIM_TRACK
from repro.trace.isa import TraceInstr, WarpTrace

__all__ = ["SmSimulator", "SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation."""

    cycles: float
    instructions: int
    unit_issue_counts: Dict[FunctionalUnit, int]
    unit_busy_clk: Dict[FunctionalUnit, float]
    warp_finish_clk: List[float]

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def unit_utilization(self, unit: FunctionalUnit) -> float:
        if not self.cycles:
            return 0.0
        return self.unit_busy_clk.get(unit, 0.0) / self.cycles


class _WarpState:
    __slots__ = ("trace", "pc", "regs", "last_issue", "index")

    def __init__(self, trace: WarpTrace, index: int) -> None:
        self.trace = trace
        self.pc = 0
        self.regs: Dict[int, float] = {}
        self.last_issue = -1.0
        self.index = index

    @property
    def done(self) -> bool:
        return self.pc >= len(self.trace)

    def current(self) -> TraceInstr:
        return self.trace.instrs[self.pc]

    def ready_at(self) -> float:
        """Earliest cycle the current instruction's operands allow."""
        instr = self.current()
        return max((self.regs.get(r, 0.0) for r in instr.srcs),
                   default=0.0)


class SmSimulator:
    """One SM with ``num_schedulers`` sub-partitions."""

    def __init__(self, *, num_schedulers: int = 4,
                 shared_lsu: bool = True) -> None:
        if num_schedulers < 1:
            raise ValueError("need at least one scheduler")
        self.num_schedulers = num_schedulers
        self.shared_lsu = shared_lsu

    def run(self, warps: List[WarpTrace],
            *, max_cycles: float = 10_000_000.0) -> SimResult:
        if not warps:
            raise ValueError("need at least one warp")
        # observability (None when off): issue/stall counters and
        # per-issue events on the cycle-timestamped sim track
        sess = _obs.ACTIVE
        counters = sess.counters if sess is not None else None
        tracer = sess.tracer if sess is not None else None
        stall_scoreboard = 0
        stall_pipe = 0
        states = [_WarpState(w, i) for i, w in enumerate(warps)]
        # round-robin warp → scheduler assignment
        owners: List[List[_WarpState]] = [
            [] for _ in range(self.num_schedulers)
        ]
        for i, s in enumerate(states):
            owners[i % self.num_schedulers].append(s)

        # per-(scheduler, unit) pipe free time; the LSU is optionally
        # one SM-wide pipe
        pipe_free: Dict[object, float] = {}
        shared_lsu = self.shared_lsu

        def pipe_key(sched: int, unit: FunctionalUnit):
            if unit is FunctionalUnit.LSU and shared_lsu:
                return unit
            return (sched, unit)

        issue_counts: Dict[FunctionalUnit, int] = {}
        busy: Dict[FunctionalUnit, float] = {}
        finish = [0.0] * len(states)
        total = sum(len(w) for w in warps)
        issued = 0
        now = 0.0

        # Wake-up events: at most one live (cycle, sched, version)
        # entry per scheduler; `version` invalidates superseded pushes.
        heap: List = []
        version = [0] * self.num_schedulers
        stale: set = set()   # wake-ups possibly early (shared-LSU issue)

        def arm(sid: int, when: float) -> None:
            version[sid] += 1
            heapq.heappush(heap, (when, sid, version[sid]))

        def drop_dead() -> None:
            while heap and heap[0][2] != version[heap[0][1]]:
                heapq.heappop(heap)

        def scan(sid: int) -> bool:
            """One scheduler-cycle at `now`; re-arms the wake-up with
            the exact earliest cycle this scheduler can issue next."""
            nonlocal issued, stall_scoreboard, stall_pipe
            candidates = sorted(
                (s for s in owners[sid] if not s.done),
                key=lambda s: s.last_issue,
            )
            issued_here = False
            next_avail = math.inf
            for s in candidates:
                instr = s.current()
                key = pipe_key(sid, instr.unit)
                avail = max(s.ready_at(), pipe_free.get(key, 0.0))
                if avail <= now and not issued_here:
                    # issue
                    pipe_free[key] = now + instr.ii_clk
                    if instr.dst >= 0:
                        s.regs[instr.dst] = now + instr.latency_clk
                    s.pc += 1
                    s.last_issue = now
                    finish[s.index] = max(finish[s.index],
                                          now + instr.latency_clk)
                    issue_counts[instr.unit] = \
                        issue_counts.get(instr.unit, 0) + 1
                    busy[instr.unit] = \
                        busy.get(instr.unit, 0.0) + instr.ii_clk
                    issued += 1
                    issued_here = True
                    if tracer is not None:
                        tracer.complete(
                            instr.opcode, now, instr.ii_clk,
                            cat="issue", pid=SIM_TRACK,
                            tid=f"sched{sid}",
                            args={"warp": s.index,
                                  "unit": instr.unit.name,
                                  "latency_clk": instr.latency_clk})
                    if key is instr.unit:   # booked the SM-wide LSU
                        stale.update(o for o in
                                     range(self.num_schedulers)
                                     if o != sid)
                else:
                    next_avail = min(next_avail, avail)
            if counters is not None and not issued_here and candidates:
                # a scheduler slot went empty: blame the least-recently
                # issued warp — scoreboard (operands in flight) or a
                # busy pipe (II not yet drained)
                top = candidates[0]
                if top.ready_at() > now:
                    stall_scoreboard += 1
                else:
                    stall_pipe += 1
            stale.discard(sid)
            if issued_here:
                if any(not s.done for s in owners[sid]):
                    arm(sid, now + 1.0)
            elif math.isfinite(next_avail):
                arm(sid, next_avail)
            return issued_here

        for sid in range(self.num_schedulers):
            if owners[sid]:
                arm(sid, 0.0)

        while issued < total:
            if now > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({issued}/{total} instructions issued)"
                )
            # schedulers due at `now`, in scheduler order like the
            # reference scan (a due wake-up may be pessimistically
            # early; its scan then just re-arms it)
            due = []
            drop_dead()
            while heap and heap[0][0] <= now:
                entry = heapq.heappop(heap)
                due.append(entry[1])
                drop_dead()
            progressed = False
            for sid in sorted(due):
                progressed |= scan(sid)
            if progressed:
                now += 1.0
                continue
            # nothing issued: refresh any stale wake-ups, then jump to
            # the next cycle anything can change
            for sid in sorted(stale):
                drop_dead()
                scan(sid)   # cannot issue (wake-up not due) — re-arms
            drop_dead()
            if not heap:
                raise RuntimeError("deadlock: no instruction can "
                                   "ever become ready")
            now = max(heap[0][0], now + 1.0)

        result = SimResult(
            cycles=max(finish) if finish else 0.0,
            instructions=issued,
            unit_issue_counts=issue_counts,
            unit_busy_clk=busy,
            warp_finish_clk=finish,
        )
        if counters is not None:
            counters.add("sm.sim.runs")
            counters.add("sm.sim.warps", len(states))
            counters.add("sm.sim.instructions", issued)
            counters.add("sm.sim.cycles", int(round(result.cycles)))
            counters.add("sm.stall.scoreboard", stall_scoreboard)
            counters.add("sm.stall.pipe_busy", stall_pipe)
            for unit in sorted(issue_counts, key=lambda u: u.name):
                label = unit.name.lower()
                counters.add(f"sm.issue.{label}", issue_counts[unit])
                counters.add(f"sm.busy_clk.{label}",
                             int(round(busy[unit])))
        return result
