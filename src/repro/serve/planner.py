"""The batching planner — from a query stream to vectorized shards.

The service's unit of dispatch is the **shard**: all unique queries of
one kind against one device, in first-appearance order.  Coalescing by
``(device, kind)`` is what lets the oracle route a shard onto a single
vectorized engine call (one ``linear_seconds_batch``, one
:class:`~repro.tensorcore.timing.MmaSweep`) instead of N point calls,
and partitioning by device is what lets the dispatch layer fan shards
out across the process pool with no shared state.

De-duplication happens here, against the whole batch: queries with
equal :meth:`~repro.serve.schema.Query.canonical` forms collapse onto
one computation, and the plan's ``expansion`` maps every input
position back to its (shard, slot) so the answer stream comes back in
input order with each caller's own ``id`` tag re-attached.

Everything is deterministic in the input stream alone: shard order is
(kind, device) sorted, slot order is first appearance.  Two runs over
the same JSONL batch therefore build byte-identical plans — the
foundation under the serial-vs-parallel and cold-vs-warm tripwires.

Family-level queries (``kind == "experiment"``) do not shard per
device; they group by their derived run-context parameters instead and
fall back to the experiment runner (see
:mod:`repro.serve.service`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.serve.schema import Query

__all__ = ["Shard", "Plan", "plan_queries"]


@dataclass
class Shard:
    """All unique queries of one (kind, device) — one dispatch unit."""

    kind: str
    device: str
    queries: List[Query] = field(default_factory=list)
    _seen: Dict[str, int] = field(default_factory=dict, repr=False)

    def slot_for(self, query: Query) -> int:
        """The slot answering ``query``, appending it when new."""
        key = query.canonical()
        slot = self._seen.get(key)
        if slot is None:
            slot = self._seen[key] = len(self.queries)
            self.queries.append(query)
        return slot

    def content_key(self) -> str:
        """Content digest of the shard's question set — the identity
        the prediction-cache tier stores shard answers under.  Covers
        the unique canonical queries in slot order (slot order matters:
        cached counter deltas replay against it)."""
        h = hashlib.sha256()
        h.update(f"{self.kind}@{self.device}\n".encode())
        for q in self.queries:
            h.update(q.canonical().encode())
            h.update(b"\n")
        return h.hexdigest()


@dataclass
class Plan:
    """The batch's execution shape.

    ``shards`` in deterministic (kind, device) order; ``expansion``
    maps each input position to ``(shard_index, slot)``; ``errors``
    holds per-position parse/validation failures answered in-stream
    (position → reason) so one bad line never aborts a batch.
    """

    shards: List[Shard]
    expansion: List[Tuple[int, int]]
    n_queries: int
    n_duplicates: int


def plan_queries(queries: Sequence[Query]) -> Plan:
    """Group ``queries`` into deduplicated per-(kind, device) shards."""
    shards: Dict[Tuple[str, str], Shard] = {}
    placements: List[Tuple[Tuple[str, str], int]] = []
    duplicates = 0
    for q in queries:
        group = (q.kind, q.device)
        shard = shards.get(group)
        if shard is None:
            shard = shards[group] = Shard(kind=q.kind, device=q.device)
        before = len(shard.queries)
        slot = shard.slot_for(q)
        if len(shard.queries) == before:
            duplicates += 1
        placements.append((group, slot))
    ordered = sorted(shards)
    index_of = {group: i for i, group in enumerate(ordered)}
    return Plan(
        shards=[shards[g] for g in ordered],
        expansion=[(index_of[g], slot) for g, slot in placements],
        n_queries=len(queries),
        n_duplicates=duplicates,
    )
