"""Sharded dispatch — shards onto the process pool, merged in order.

Mirrors the experiment runner's determinism recipe
(:mod:`repro.perf.runner`): every shard is answered under a **fresh
nested** :class:`~repro.obs.ObsSession` — on the serial path and in
pool workers alike — and ships its counter delta back with the
prediction payloads.  The parent merges deltas in plan order no matter
which worker finished first, and builds a fresh
:class:`~repro.serve.oracle.CostOracle` per shard on both paths, so a
``--jobs N`` run and a serial run fire byte-identical counter banks.

Point-query shards route through the oracle's vectorized group calls.
Family-level shards (``kind == "experiment"``) fall back to
:func:`~repro.perf.runner.run_experiments` under the query's *derived*
context (:meth:`~repro.core.context.RunContext.derive`), with the
experiment-tier cache deliberately off inside the worker — the
service's shard-level prediction cache is the caching layer on this
path, and keeping ``result_cache.*`` probes out of the dumps is what
lets a cached dump replay byte-identically on warm hits.

Workers receive plain payload dicts (queries are rebuilt from their
wire form; the oracle is rebuilt from the registry), so nothing
unpicklable crosses the process boundary and spawn-style start methods
work from a blank interpreter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.context import RunContext
from repro.obs import session as _obs
from repro.obs.session import ObsSession
from repro.serve.planner import Shard
from repro.serve.schema import Prediction, Query, parse_query

__all__ = ["ShardResult", "answer_shard", "dispatch_shards",
           "shard_label"]

#: one shard's transport form:
#: (kind, device, [query payloads], obs?, base-context payload)
_Task = Tuple[str, str, List[Dict[str, Any]], bool, Dict[str, Any]]


def shard_label(kind: str, device: str) -> str:
    """The per-experiment bank label a shard's counters merge under —
    one labeled OpenMetrics series per (kind, device)."""
    return f"serve:{kind}@{device or '*'}"


def _experiment_predictions(queries: List[Query],
                            base: RunContext) -> List[Prediction]:
    """Family-level fallback: each query runs its whole registered
    experiment under a context derived from the base, one at a time
    (these are heavyweight by construction — the grid path is for
    point queries)."""
    import repro.core  # noqa: F401  (registers experiments)
    from repro.core.context import DeviceNotInContext
    from repro.core.registry import get_experiment
    from repro.perf.runner import run_experiments

    out: List[Prediction] = []
    for q in queries:
        name = q.param("name")
        try:
            exp = get_experiment(name)
        except KeyError as exc:
            # the registry's did-you-mean message, answered in-stream
            out.append(Prediction.error(
                str(exc).strip('"\''), kind=q.kind, device=q.device,
                qid=q.qid))
            continue
        try:
            ctx = base.derive(
                devices=(q.device,) if q.device else None,
                seed=q.param("seed"),
                fidelity=q.param("fidelity"))
        except (KeyError, ValueError) as exc:
            # KeyError str() wraps its message in quotes — unwrap
            msg = exc.args[0] if isinstance(exc, KeyError) \
                and exc.args else str(exc)
            out.append(Prediction.error(
                msg, kind=q.kind, device=q.device, qid=q.qid))
            continue
        if not exp.supports(ctx):
            out.append(Prediction.unsupported(
                q, f"experiment {name!r} cannot run under "
                   f"devices={list(ctx.devices)} ({exp.pin_note()})"))
            continue
        try:
            report = run_experiments([name], context=ctx, jobs=1)
        except DeviceNotInContext as exc:
            out.append(Prediction.unsupported(q, str(exc)))
            continue
        result = report.results[name]
        checks = result.checks
        out.append(Prediction(
            status="ok", kind=q.kind, device=q.device, qid=q.qid,
            metrics=(
                ("checks_passed",
                 float(sum(1 for c in checks if c.passed))),
                ("checks_total", float(len(checks))),
                ("rows", float(len(result.table.rows))),
            ),
        ))
    return out


def _answer_queries(kind: str, device: str, queries: List[Query],
                    obs: bool, base: RunContext) \
        -> Tuple[List[Prediction], Optional[Dict[str, Any]]]:
    """Answer one shard's queries: fresh oracle (or the experiment
    runner, for family shards) under a fresh nested session when
    observability is on.  Shared by the in-process fast path and the
    pool worker, so both produce identical predictions and deltas."""
    from repro.serve.oracle import CostOracle

    def compute() -> List[Prediction]:
        if kind == "experiment":
            return _experiment_predictions(queries, base)
        return CostOracle(device).answer_group(kind, queries)

    if obs:
        session = ObsSession()
        with session.activate():
            predictions = compute()
        dump = session.dump()
    else:
        predictions = compute()
        dump = None
    return predictions, dump


def answer_shard(task: _Task) \
        -> Tuple[List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Worker entry point — must stay module-level for pickling.

    Rebuilds the shard's queries and context from their wire forms,
    answers them, and ships prediction payloads + counter delta back.
    """
    kind, device, query_payloads, obs, ctx_payload = task
    queries = [parse_query(p) for p in query_payloads]
    base = RunContext.from_payload(ctx_payload)
    predictions, dump = _answer_queries(kind, device, queries, obs,
                                        base)
    return [p.to_payload() for p in predictions], dump


class ShardResult:
    """One answered shard: predictions in slot order + counter delta."""

    def __init__(self, shard: Shard,
                 predictions: List[Prediction],
                 dump: Optional[Dict[str, Any]]) -> None:
        self.shard = shard
        self.predictions = predictions
        self.dump = dump

    @property
    def label(self) -> str:
        return shard_label(self.shard.kind, self.shard.device)


def dispatch_shards(shards: List[Shard], *, jobs: int = 1,
                    context: Optional[RunContext] = None) \
        -> List[ShardResult]:
    """Answer every shard, fanned out when asked to, results in plan
    order.  Counter deltas are **not** merged here — the service
    merges them (or replays cached ones) in plan order so cache hits
    and fresh computes interleave deterministically."""
    from repro.core.context import DEFAULT_CONTEXT
    from repro.perf.runner import parallel_map

    base = DEFAULT_CONTEXT if context is None else context
    obs = _obs.ACTIVE is not None

    if jobs == 1:
        # in-process fast path: same compute, no wire round-trip
        # (payload encode/parse is the identity on canonical queries
        # and predictions, so this stays byte-identical to --jobs N)
        return [
            ShardResult(s, *_answer_queries(
                s.kind, s.device, list(s.queries), obs, base))
            for s in shards
        ]

    ctx_payload = base.to_payload()
    tasks: List[_Task] = [
        (s.kind, s.device,
         [q.to_payload() for q in s.queries], obs, ctx_payload)
        for s in shards
    ]
    # work-stealing dispatch: shards of very different weights (one
    # heavy memory chase vs many light sweep shards) no longer strand
    # a worker; parallel_map re-merges by index so plan order — and
    # with it the deterministic counter merge — is preserved
    outcomes = parallel_map(answer_shard, tasks, jobs=jobs,
                            unordered=True)
    results = []
    for shard, (payloads, dump) in zip(shards, outcomes):
        results.append(ShardResult(
            shard,
            [Prediction.from_payload(p) for p in payloads],
            dump,
        ))
    return results
