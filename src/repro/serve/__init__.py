"""``repro.serve`` — the simulator as an interactive cost oracle.

The experiment stack answers *families* of questions (build Table VII,
sweep the memory hierarchy); this package answers *point* questions —
"how long does this GEMM take on an H800 at FP8?" — interactively and
in bulk, over the same device models, without running any experiment
builder.

Layers, bottom up:

* :mod:`~repro.serve.schema` — the typed, canonically-serializable
  :class:`Query`/:class:`Prediction` wire format;
* :mod:`~repro.serve.oracle` — warm per-device models answering
  ordered groups of same-kind queries through the vectorized engines;
* :mod:`~repro.serve.planner` — de-duplication and coalescing of a
  batch into per-(kind, device) shards;
* :mod:`~repro.serve.dispatch` — shards onto the process pool, fresh
  nested observability session per shard, deltas merged in plan order;
* :mod:`~repro.serve.service` — the cache tiers (in-process memo +
  persistent blob tier with counter-delta replay) and the JSONL
  request loop behind ``hopperdissect serve`` / ``query``.

Everything here is *read-only* over the architecture packs: a query
can never change what an experiment would compute, and the
serial-vs-parallel / cold-vs-warm determinism tests pin that the
service's caching and fan-out change wall time only.
"""

from repro.serve.oracle import CostOracle
from repro.serve.planner import Plan, Shard, plan_queries
from repro.serve.schema import (
    KINDS,
    Prediction,
    Query,
    QueryError,
    parse_query,
    parse_query_line,
)
from repro.serve.service import QueryService

__all__ = [
    "KINDS",
    "CostOracle",
    "Plan",
    "Shard",
    "Prediction",
    "Query",
    "QueryError",
    "QueryService",
    "parse_query",
    "parse_query_line",
    "plan_queries",
]
