"""The cost oracle — warm per-device models answering point queries.

One :class:`CostOracle` holds the in-process device models for a
single registered device: the Transformer-Engine
:class:`~repro.te.cost.CostModel`, the
:class:`~repro.te.llm.LlmInferenceModel`, the batched
:class:`~repro.tensorcore.timing.TensorCoreTimingModel` and (per
query, because chases mutate cache state) a fresh
:class:`~repro.memory.MemoryHierarchy` driven by the steady-state
:class:`~repro.memory.chase.ChaseEngine`.  Models are built lazily and
reused across queries, so a warm oracle answers a point query without
re-deriving calibration — the "interactive latency" half of the
service contract.

Routing is **grid-first**: a group of compatible queries is priced
through the already-vectorized batch calls
(:meth:`~repro.te.cost.CostModel.linear_seconds_batch`,
:class:`~repro.tensorcore.timing.MmaSweep` /
:class:`~repro.tensorcore.timing.WgmmaSweep`) in one pass, never
through per-query experiment builders.  Capability gates come straight
from the device's :class:`~repro.arch.packs.ArchPack` flags and the
sweeps' ``supported`` entries, so an impossible combination (wgmma on
Volta, FP8 on Ampere) is answered with a structured
``Prediction(status="unsupported", reason=...)`` — the service never
raises on a well-formed query.

Determinism contract: answering the same ordered group of queries
fires the same observability counters no matter how warm the oracle
is.  The one stateful cache (the TE GEMM-rate memo) is pre-warmed at
oracle construction for every supported precision, so the ``tc.*``
pricing counters it fires land at a fixed, group-independent point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch import DeviceSpec, get_device
from repro.isa.dtypes import DType
from repro.obs import session as _obs
from repro.serve.schema import Prediction, Query

__all__ = ["CostOracle", "PRECISION_DTYPES"]

#: dtype spellings accepted in mma/wgmma query params
PRECISION_DTYPES: Dict[str, DType] = {
    "fp64": DType.FP64, "f64": DType.FP64,
    "fp32": DType.FP32, "f32": DType.FP32,
    "tf32": DType.TF32,
    "fp16": DType.FP16, "f16": DType.FP16,
    "bf16": DType.BF16,
    "fp8": DType.E4M3, "e4m3": DType.E4M3, "e5m2": DType.E5M2,
    "int8": DType.INT8, "s8": DType.INT8,
    "int4": DType.INT4, "s4": DType.INT4,
    "bin1": DType.BIN1, "b1": DType.BIN1,
    "int32": DType.INT32, "s32": DType.INT32,
}

#: footprint cap on memory.latency chases — one pass over the period
#: plus a short steady tail keeps a point query interactive even at
#: the largest legal footprint
_CHASE_TAIL_ITERS = 256


def _round(value: float) -> float:
    """Canonical metric rounding: 12 significant digits — enough to
    be lossless for every model output scale in play, while keeping
    the serialized form independent of accumulated float formatting
    noise."""
    if value != value or value in (float("inf"), float("-inf")):
        return value
    return float(f"{value:.12g}")


def _observe(histogram: str, value: float) -> None:
    sess = _obs.ACTIVE
    if sess is not None and value > 0:
        sess.counters.observe(histogram, value)


class CostOracle:
    """Warm in-process cost models for one device."""

    def __init__(self, device_name: str) -> None:
        self.device: DeviceSpec = get_device(device_name)
        self._cost = None
        self._llm = None
        self._tc = None
        self._supports: dict = {}

    # -- lazy model construction --------------------------------------------

    @property
    def cost(self):
        if self._cost is None:
            from repro.te.cost import CostModel, Precision

            self._cost = CostModel(self.device)
            # pre-warm the GEMM-rate memo for every supported
            # precision so its tc.* pricing counters fire here, at a
            # fixed point, not data-dependently mid-group
            for prec in Precision:
                if self._cost.supports(prec):
                    self._cost.gemm_tflops(prec)
        return self._cost

    @property
    def llm(self):
        if self._llm is None:
            from repro.te.llm import LlmInferenceModel

            _ = self.cost  # shared pre-warm point
            self._llm = LlmInferenceModel(self.device)
            self._llm.cost = self.cost
        return self._llm

    @property
    def tc(self):
        if self._tc is None:
            from repro.tensorcore.timing import TensorCoreTimingModel

            self._tc = TensorCoreTimingModel(self.device)
        return self._tc

    # -- group answering ----------------------------------------------------

    def answer_group(self, kind: str, queries: Sequence[Query]) \
            -> List[Prediction]:
        """Answer an ordered group of same-kind queries for this
        device, routing onto one vectorized sweep where the engine
        offers one."""
        handler = {
            "te.linear": self._te_linear_group,
            "llm.generate": self._llm_group,
            "mma": self._mma_group,
            "wgmma": self._wgmma_group,
            "memory.latency": self._memory_group,
            "dsm.bandwidth": self._dsm_group,
        }.get(kind)
        if handler is None:
            raise ValueError(f"oracle cannot answer kind {kind!r}")
        return handler(list(queries))

    def answer(self, query: Query) -> Prediction:
        """Point-query convenience: a group of one."""
        return self.answer_group(query.kind, [query])[0]

    # -- te.linear ----------------------------------------------------------

    def _precision(self, query: Query):
        from repro.te.cost import Precision

        return Precision(query.precision)

    def _supported(self, precision) -> bool:
        """Per-precision memo over :meth:`CostModel.supports` — the
        group handlers gate every query through it."""
        hit = self._supports.get(precision)
        if hit is None:
            hit = self._supports[precision] = \
                self.cost.supports(precision)
        return hit

    def _unsupported_precision(self, query: Query) -> Prediction:
        pack = self.device.pack
        prec = query.precision
        if prec == "fp8" and not pack.has_fp8:
            why = (f"{self.device.name} ({pack.display_name}) has no "
                   "FP8 tensor cores (pack gate has_fp8)")
        else:
            ab, _ = self._precision(query).gemm_types
            why = (f"{self.device.name} ({pack.display_name}) tensor "
                   f"cores do not support the {ab.peak_key} path "
                   f"{prec} rides")
        return Prediction.unsupported(query, why)

    def _te_linear_group(self, queries: List[Query]) \
            -> List[Prediction]:
        out: List[Optional[Prediction]] = [None] * len(queries)
        by_prec: Dict[str, List[int]] = {}
        for i, q in enumerate(queries):
            if not self._supported(self._precision(q)):
                out[i] = self._unsupported_precision(q)
            else:
                by_prec.setdefault(q.precision, []).append(i)
        for prec_name in sorted(by_prec):
            idx = by_prec[prec_name]
            prec = self._precision(queries[idx[0]])
            m = np.array([queries[i].param("m") for i in idx],
                         dtype=np.float64)
            n = np.array([queries[i].param("n") for i in idx],
                         dtype=np.float64)
            k = np.array([queries[i].param("k") for i in idx],
                         dtype=np.float64)
            seconds = self.cost.linear_seconds_batch(m, n, k, prec)
            tflops = 2.0 * m * n * k / seconds / 1e12
            for j, i in enumerate(idx):
                q = queries[i]
                sec = float(seconds[j])
                _observe("serve.predicted.ns", sec * 1e9)
                out[i] = Prediction(
                    status="ok", kind=q.kind, device=q.device,
                    qid=q.qid,
                    metrics=(("seconds", _round(sec)),
                             ("tflops", _round(float(tflops[j])))),
                )
        return [p for p in out if p is not None]

    # -- llm.generate -------------------------------------------------------

    def _llm_group(self, queries: List[Query]) -> List[Prediction]:
        from repro.te.llm import LLAMA_MODELS

        out: List[Prediction] = []
        for q in queries:
            model_name = q.param("model")
            spec = LLAMA_MODELS.get(model_name)
            if spec is None:
                out.append(Prediction.error(
                    f"unknown LLM model {model_name!r}; known models: "
                    f"{sorted(LLAMA_MODELS)}",
                    kind=q.kind, device=q.device, qid=q.qid))
                continue
            prec = self._precision(q)
            if not self._supported(prec):
                out.append(self._unsupported_precision(q))
                continue
            est = self.llm.estimate(
                spec, prec, batch=q.param("batch"),
                input_len=q.param("input_len"),
                output_len=q.param("output_len"))
            if est.status == "OOM":
                need = self.llm.memory_required_bytes(
                    spec, prec, batch=q.param("batch"),
                    max_seq=q.param("input_len") + q.param("output_len"))
                out.append(Prediction(
                    status="oom", kind=q.kind, device=q.device,
                    qid=q.qid,
                    reason=(f"{model_name} {q.precision} needs "
                            f"{need / 2**30:.1f} GiB; "
                            f"{self.device.name} has "
                            f"{self.device.dram.size_gib} GiB"),
                ))
                continue
            _observe("serve.predicted.ns", est.decode_step_s * 1e9)
            out.append(Prediction(
                status="ok", kind=q.kind, device=q.device, qid=q.qid,
                metrics=(
                    ("decode_step_s", _round(est.decode_step_s)),
                    ("prefill_s", _round(est.prefill_s)),
                    ("tokens_per_second",
                     _round(est.tokens_per_second)),
                ),
            ))
        return out

    # -- mma / wgmma --------------------------------------------------------

    def _dtype(self, q: Query, param: str) -> DType:
        from repro.serve.schema import QueryError

        spelling = str(q.param(param)).lower()
        try:
            return PRECISION_DTYPES[spelling]
        except KeyError:
            raise QueryError(
                f"unknown dtype {q.param(param)!r} for param "
                f"{param!r}; known: {sorted(PRECISION_DTYPES)}"
            ) from None

    def _mma_group(self, queries: List[Query]) -> List[Prediction]:
        from repro.isa.mma import MatrixShape, MmaInstruction
        from repro.serve.schema import QueryError

        out: List[Optional[Prediction]] = [None] * len(queries)
        instrs: List[MmaInstruction] = []
        idx: List[int] = []
        for i, q in enumerate(queries):
            try:
                instr = MmaInstruction(
                    ab_type=self._dtype(q, "ab"),
                    cd_type=self._dtype(q, "cd"),
                    shape=MatrixShape(q.param("m"), q.param("n"),
                                      q.param("k")),
                    sparse=bool(q.param("sparse", False)),
                )
            except (QueryError, ValueError) as exc:
                out[i] = Prediction.error(str(exc), kind=q.kind,
                                          device=q.device, qid=q.qid)
                continue
            instrs.append(instr)
            idx.append(i)
        if instrs:
            sweep = self.tc.mma_sweep(instrs)
            for j, i in enumerate(idx):
                out[i] = self._sweep_prediction(queries[i], sweep[j])
        return [p for p in out if p is not None]

    def _wgmma_group(self, queries: List[Query]) -> List[Prediction]:
        from repro.isa.mma import (OperandSource, WgmmaInstruction,
                                   valid_wgmma_n)
        from repro.serve.schema import QueryError

        pack = self.device.pack
        if not pack.has_wgmma:
            why = (f"{self.device.name} ({pack.display_name}) has no "
                   "wgmma instructions (pack gate has_wgmma)")
            return [Prediction.unsupported(q, why) for q in queries]
        out: List[Optional[Prediction]] = [None] * len(queries)
        instrs: List[WgmmaInstruction] = []
        idx: List[int] = []
        for i, q in enumerate(queries):
            try:
                if q.param("n") not in valid_wgmma_n():
                    raise QueryError(
                        f"wgmma n={q.param('n')} is not a multiple "
                        "of 8 in [8, 256]")
                instr = WgmmaInstruction(
                    ab_type=self._dtype(q, "ab"),
                    cd_type=self._dtype(q, "cd"),
                    n=q.param("n"),
                    sparse=bool(q.param("sparse", False)),
                    a_source=(OperandSource.SHARED
                              if q.param("a_source", "ss") == "ss"
                              else OperandSource.REGISTER),
                )
            except (QueryError, ValueError) as exc:
                out[i] = Prediction.error(str(exc), kind=q.kind,
                                          device=q.device, qid=q.qid)
                continue
            instrs.append(instr)
            idx.append(i)
        if instrs:
            sweep = self.tc.wgmma_sweep(instrs)
            for j, i in enumerate(idx):
                out[i] = self._sweep_prediction(queries[i], sweep[j])
        return [p for p in out if p is not None]

    def _sweep_prediction(self, q: Query, entry) -> Prediction:
        """One SweepEntry → Prediction, honouring its ``supported``
        gate (the "×" cells of the paper's tables)."""
        if not entry.supported:
            ab = str(q.param("ab")).lower()
            return Prediction.unsupported(
                q, f"{self.device.name} "
                   f"({self.device.pack.display_name}) has no "
                   f"{q.kind} instruction for {ab} inputs "
                   "(SweepEntry.supported gate)")
        _observe("serve.predicted.clk", entry.latency_clk)
        return Prediction(
            status="ok", kind=q.kind, device=q.device, qid=q.qid,
            metrics=(
                ("latency_clk", _round(entry.latency_clk)),
                ("issue_interval_clk",
                 _round(entry.issue_interval_clk)),
                ("tflops", _round(entry.throughput_tflops("rand"))),
                ("fraction_of_peak",
                 _round(entry.fraction_of_peak("rand"))),
            ),
        )

    # -- memory.latency -----------------------------------------------------

    def _memory_group(self, queries: List[Query]) -> List[Prediction]:
        from repro.memory import MemoryHierarchy
        from repro.memory.chase import ChaseEngine

        out: List[Prediction] = []
        for q in queries:
            footprint = q.param("footprint_kib") * 1024
            stride = q.param("stride_bytes")
            n = max(1, footprint // stride)
            seq = np.arange(n, dtype=np.int64) * stride
            # a fresh hierarchy per query: chases mutate cache state,
            # and order-independence is what makes dedup/batching safe
            mh = MemoryHierarchy(self.device)
            mh.warm_tlb(0, footprint)
            stats = ChaseEngine(mh, size=32).run(
                seq, n + _CHASE_TAIL_ITERS)
            mean = stats.mean_latency_clk
            _observe("serve.predicted.clk", mean)
            out.append(Prediction(
                status="ok", kind=q.kind, device=q.device, qid=q.qid,
                metrics=(
                    ("mean_latency_clk", _round(mean)),
                    ("mean_latency_ns",
                     _round(mean / self.device.clocks.observed_hz
                            * 1e9)),
                ),
            ))
        return out

    # -- dsm.bandwidth ------------------------------------------------------

    def _dsm_group(self, queries: List[Query]) -> List[Prediction]:
        from repro.dsm.network import SmToSmNetwork
        from repro.isa.lowering import UnsupportedInstruction

        pack = self.device.pack
        if not pack.has_distributed_shared_memory:
            why = (f"{self.device.name} ({pack.display_name}) has no "
                   "SM-to-SM network (pack gate "
                   "has_distributed_shared_memory)")
            return [Prediction.unsupported(q, why) for q in queries]
        try:
            net = SmToSmNetwork(self.device)
        except UnsupportedInstruction as exc:  # pragma: no cover
            return [Prediction.unsupported(q, str(exc))
                    for q in queries]
        out: List[Prediction] = []
        for q in queries:
            cs = q.param("cluster_size")
            if cs > self.device.max_cluster_size:
                out.append(Prediction.error(
                    f"cluster size {cs} exceeds {self.device.name}'s "
                    f"max {self.device.max_cluster_size}",
                    kind=q.kind, device=q.device, qid=q.qid))
                continue
            tbps = net.aggregate_bandwidth_tbps(cs)
            _observe("serve.predicted.clk", net.latency_clk)
            out.append(Prediction(
                status="ok", kind=q.kind, device=q.device, qid=q.qid,
                metrics=(
                    ("aggregate_tbps", _round(tbps)),
                    ("remote_latency_clk", _round(net.latency_clk)),
                ),
            ))
        return out
