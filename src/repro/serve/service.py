"""The query service — plan, cache, dispatch, merge, expand.

:class:`QueryService` is the long-lived object behind ``hopperdissect
serve``/``query``: it takes a batch of :class:`~repro.serve.schema.Query`
objects (or raw JSONL lines), coalesces them into per-(kind, device)
shards (:mod:`repro.serve.planner`), answers each shard once
(:mod:`repro.serve.dispatch`) and expands the answers back to input
order with each caller's ``id`` tag re-attached.

Two cache tiers sit between planning and dispatch, both addressed by a
**storage key** layered over the shard's content digest (package
version, base-context token, device-spec digest, observability mode,
and — for family shards — the experiment tier's full dependency-cut
keys, so editing an experiment module invalidates exactly its
entries):

* an in-process **memo** — the warm-service fast path;
* the persistent blob tier of the shared content-addressed
  :class:`~repro.perf.cache.ResultCache` — what makes a cold process
  warm-start from a previous run's answers.

A cached entry stores the prediction payloads *and* the shard's
counter delta; warm hits **replay** the stored delta into the live
session exactly where a fresh compute would have merged its own.
That — plus keeping the cache probes themselves out of the session
(they run under a muted session, tallied in the service's private
``stats`` bank instead, because hit/miss sequences are precisely what
cold and warm runs do *not* share) — is why cold-vs-warm and
serial-vs-parallel runs of one batch produce byte-identical prediction
streams *and* counter dumps.

The session bank only ever receives values that are pure functions of
the input stream (``serve.queries``, ``serve.batch.size``, the per-shard
model counters); wall-clock stage latencies (``serve.wall.*``) and
cache-tier tallies live in the private ``stats`` bank, surfaced via
:meth:`QueryService.stats_payload` (CLI ``--stats-json``) — the same
wall-time-never-enters-counter-banks rule the rest of the repo holds.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.context import DEFAULT_CONTEXT, RunContext
from repro.obs import session as _obs
from repro.obs.counters import CounterSet
from repro.serve.dispatch import dispatch_shards, shard_label
from repro.serve.planner import Plan, Shard, plan_queries
from repro.serve.schema import (
    Prediction,
    Query,
    QueryError,
    parse_query_line,
)

__all__ = ["QueryService", "STATS_SCHEMA", "default_memo_entries"]

#: schema tag of the ``--stats-json`` payload
STATS_SCHEMA = "hopperdissect.serve.stats/v1"

#: default bound of the in-process memo (shard entries, LRU) — an
#: always-on service must not grow either cache tier without limit
_MEMO_DEFAULT = 512


def default_memo_entries() -> Optional[int]:
    """``$HOPPERDISSECT_SERVE_MEMO_MAX_ENTRIES`` as an int — the
    warm-tier sibling of the on-disk tier's
    ``$HOPPERDISSECT_CACHE_MAX_ENTRIES``.  Unset means the bounded
    default; ``0`` means unbounded (an explicit opt-out)."""
    raw = os.environ.get("HOPPERDISSECT_SERVE_MEMO_MAX_ENTRIES", "")
    if not raw.strip():
        return _MEMO_DEFAULT
    value = int(raw)
    return value if value > 0 else None

#: blob-tier namespace of shard-level prediction entries
_BLOB_KIND = "serve-shard"

#: one resolved entry: (predictions in slot order, counter delta).
#: The blob tier stores the payload form of the same pair; payload
#: encode/decode is the identity on canonical predictions, so memo
#: hits, blob hits and fresh computes expand identically.
_Entry = Tuple[List[Prediction], Optional[Dict[str, Any]]]


@contextmanager
def _muted():
    """Run with no active session — cache probes under here reach the
    service's private stats only, never the deterministic bank."""
    previous = _obs.ACTIVE
    _obs.ACTIVE = None
    try:
        yield
    finally:
        _obs.ACTIVE = previous


class QueryService:
    """A warm batch-answering front end over the device models.

    ``cache=None`` disables the persistent tier (the in-process memo
    still dedups repeat batches); ``jobs`` fans un-cached shards over
    the process pool.  ``context`` is the base
    :class:`~repro.core.context.RunContext` family-level queries
    derive from (hook dropped — the service owns observability).
    """

    def __init__(self, *, context: Optional[RunContext] = None,
                 cache: Optional[Any] = None, jobs: int = 1,
                 memo_entries: Optional[int] = None) -> None:
        self.context = (DEFAULT_CONTEXT if context is None
                        else context).without_hook()
        self.cache = cache
        self.jobs = max(1, int(jobs))
        if memo_entries is None:
            memo_entries = default_memo_entries()
        elif memo_entries <= 0:
            memo_entries = None
        self.memo_entries = memo_entries
        #: private bank: cache-tier tallies + wall-stage histograms.
        #: Deliberately not the session's — see the module docstring.
        self.stats = CounterSet()
        self._memo: "OrderedDict[str, _Entry]" = OrderedDict()

    # -- the memo tier ------------------------------------------------------

    def _memo_get(self, key: str) -> Optional[_Entry]:
        entry = self._memo.get(key)
        if entry is not None:
            self._memo.move_to_end(key)
        return entry

    def _memo_put(self, key: str, entry: _Entry) -> _Entry:
        """Insert under the LRU bound; evictions only drop warm-start
        state, never answers, so the bound cannot affect output."""
        self._memo[key] = entry
        self._memo.move_to_end(key)
        if self.memo_entries is not None:
            while len(self._memo) > self.memo_entries:
                self._memo.popitem(last=False)
                self.stats.add("serve.memo.evictions")
        return entry

    # -- storage keys -------------------------------------------------------

    def _storage_key(self, shard: Shard, obs: bool) -> str:
        """The cache identity of one shard's answers.

        Layers everything that can change a prediction *or* its
        counter delta over the shard's content digest; ``obs`` is part
        of the key because entries cached with observability off carry
        no delta to replay.
        """
        import repro
        from repro.perf.cache import device_digest

        devices = (shard.device,) if shard.device \
            else self.context.devices
        h = hashlib.sha256()
        h.update(f"version={repro.__version__}\n".encode())
        h.update(f"context={self.context.token()}\n".encode())
        try:
            h.update(f"devices={device_digest(devices)}\n".encode())
        except KeyError:
            # unknown device on an experiment-kind shard (point-query
            # devices are validated at construction): key on the raw
            # names so the shard still dispatches and the in-stream
            # error path answers it
            h.update(f"devices=unknown:{','.join(devices)}\n"
                     .encode())
        h.update(f"obs={int(obs)}\n".encode())
        h.update(f"content={shard.content_key()}\n".encode())
        if shard.kind == "experiment":
            # family answers depend on experiment source: reuse the
            # experiment tier's dependency-cut keys so edits invalidate
            # exactly the families they touch
            for q in shard.queries:
                h.update(self._experiment_key(q).encode())
                h.update(b"\n")
        return h.hexdigest()

    def _experiment_key(self, query: Query) -> str:
        from repro.core.registry import get_experiment

        name = query.param("name")
        try:
            get_experiment(name)
        except KeyError:
            return f"unknown={name}"
        try:
            ctx = self.context.derive(
                devices=(query.device,) if query.device else None,
                seed=query.param("seed"),
                fidelity=query.param("fidelity"))
        except (KeyError, ValueError) as exc:
            # underivable context (unknown device — experiment-kind
            # queries skip device validation at construction): a
            # stable sentinel keeps the shard dispatchable so the
            # in-stream error path answers the query
            return f"badctx={exc}"
        return f"experiment={self._keyer.key_for(name, ctx)}"

    @property
    def _keyer(self):
        """A :class:`~repro.perf.cache.ResultCache` used purely for
        :meth:`~repro.perf.cache.ResultCache.key_for` (dependency-cut
        digests are memoised on the instance; nothing is read or
        written through it unless it *is* the service cache)."""
        from repro.perf.cache import ResultCache

        if isinstance(self.cache, ResultCache):
            return self.cache
        if getattr(self, "_key_cache", None) is None:
            self._key_cache = ResultCache(root="_serve_keys_unused")
        return self._key_cache

    # -- the batch path -----------------------------------------------------

    def answer_batch(self, queries: Sequence[Query]) \
            -> List[Prediction]:
        """Answer ``queries`` in input order (tags re-attached)."""
        t_total = time.perf_counter()
        sess = _obs.ACTIVE
        queries = list(queries)
        plan = self._plan(queries, sess)
        entries = self._resolve(plan, sess is not None)
        predictions = self._merge_and_expand(plan, entries, queries,
                                             sess)
        self._wall("serve.wall.total_us", t_total)
        return predictions

    def answer(self, query: Query) -> Prediction:
        """Point-query convenience: a batch of one."""
        return self.answer_batch([query])[0]

    def _plan(self, queries: List[Query], sess) -> Plan:
        t0 = time.perf_counter()
        plan = plan_queries(queries)
        if sess is not None:
            # functions of the input stream alone — deterministic
            sess.counters.add("serve.queries", len(queries))
            sess.counters.add("serve.batches")
            sess.counters.observe("serve.batch.size",
                                  float(len(queries)))
            sess.counters.add("serve.shards", len(plan.shards))
            if plan.n_duplicates:
                sess.counters.add("serve.dedup", plan.n_duplicates)
        self._wall("serve.wall.plan_us", t0)
        return plan

    def _resolve(self, plan: Plan, obs: bool) -> List[_Entry]:
        """Each shard's entry, via memo → blob tier → dispatch."""
        entries: List[Optional[_Entry]] = [None] * len(plan.shards)
        keys = [self._storage_key(s, obs) for s in plan.shards]
        missing: List[int] = []
        for i, key in enumerate(keys):
            entry = self._memo_get(key)
            if entry is not None:
                self.stats.add("serve.cache.memo_hits")
                entries[i] = entry
                continue
            if self.cache is not None:
                with _muted():
                    blob = self.cache.get_blob(_BLOB_KIND, key)
                if blob is not None:
                    self.stats.add("serve.cache.blob_hits")
                    entries[i] = self._memo_put(key, (
                        [Prediction.from_payload(p) for p in blob[0]],
                        blob[1],
                    ))
                    continue
            self.stats.add("serve.cache.shard_misses")
            missing.append(i)
        if missing:
            t0 = time.perf_counter()
            results = dispatch_shards(
                [plan.shards[i] for i in missing],
                jobs=self.jobs, context=self.context)
            self._wall("serve.wall.dispatch_us", t0)
            for i, result in zip(missing, results):
                entry: _Entry = (result.predictions, result.dump)
                entries[i] = self._memo_put(keys[i], entry)
                if self.cache is not None:
                    before = self.cache.stats.evictions
                    with _muted():
                        self.cache.put_blob(
                            _BLOB_KIND, keys[i],
                            [[p.to_payload()
                              for p in result.predictions],
                             result.dump])
                    evicted = self.cache.stats.evictions - before
                    if evicted:
                        self.stats.add("serve.cache.evictions",
                                       evicted)
        return [e for e in entries if e is not None]

    def _merge_and_expand(self, plan: Plan, entries: List[_Entry],
                          queries: List[Query], sess) \
            -> List[Prediction]:
        t0 = time.perf_counter()
        shard_predictions: List[List[Prediction]] = []
        for shard, (predictions, dump) in zip(plan.shards, entries):
            shard_predictions.append(predictions)
            if sess is not None and dump is not None:
                # replayed cached deltas and fresh computes merge at
                # the same point, in the same plan order — the
                # cold-vs-warm / serial-vs-parallel byte-identity hinge
                sess.merge(dump,
                           experiment=shard_label(shard.kind,
                                                  shard.device))
        out = [
            shard_predictions[si][slot].with_qid(queries[pos].qid)
            for pos, (si, slot) in enumerate(plan.expansion)
        ]
        self._wall("serve.wall.expand_us", t0)
        return out

    # -- the JSONL path -----------------------------------------------------

    def answer_lines(self, lines: Iterable[str]) -> List[Prediction]:
        """Answer a JSONL request stream in line order.

        Malformed lines become in-stream ``status="error"``
        predictions (tag preserved when the line parsed far enough to
        carry one); blank lines are skipped; one bad line never aborts
        the batch.
        """
        slots: List[Tuple[str, Any]] = []
        queries: List[Query] = []
        n_errors = 0
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                queries.append(parse_query_line(stripped))
                slots.append(("query", len(queries) - 1))
            except QueryError as exc:
                n_errors += 1
                slots.append(("error", Prediction.error(
                    str(exc), qid=_line_qid(stripped))))
        sess = _obs.ACTIVE
        if sess is not None and n_errors:
            sess.counters.add("serve.errors", n_errors)
        answers = self.answer_batch(queries) if queries else []
        return [answers[ref] if tag == "query" else ref
                for tag, ref in slots]

    def answer_lines_text(self, lines: Iterable[str]) -> str:
        """The canonical JSONL response text for a request stream."""
        out = [p.to_line() for p in self.answer_lines(lines)]
        return "\n".join(out) + ("\n" if out else "")

    # -- private stats ------------------------------------------------------

    def _wall(self, histogram: str, t0: float) -> None:
        micros = (time.perf_counter() - t0) * 1e6
        self.stats.observe(histogram, max(micros, 1.0))

    def stats_payload(self) -> Dict[str, Any]:
        """The ``--stats-json`` document: private service stats,
        canonical shape, never part of the deterministic bank."""
        return {
            "schema": STATS_SCHEMA,
            "context": self.context.token(),
            "stats": self.stats.as_dict(),
        }

    def write_stats_json(self, path) -> str:
        path = str(path)
        with open(path, "w") as fh:
            json.dump(self.stats_payload(), fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")
        return path


def _line_qid(line: str) -> Optional[str]:
    """Best-effort client tag recovery from a rejected request line."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None
    if isinstance(obj, dict) and isinstance(obj.get("id"), str):
        return obj["id"]
    return None
