"""The typed query/prediction schema of the cost-oracle service.

A :class:`Query` is one *what-if* question against the simulator:
"on this device, at this precision, how fast is this kernel / LLM
config / experiment family?".  Queries are frozen, validated at
construction, and **canonically serializable** — :meth:`Query.canonical`
renders the same question to the same bytes no matter how the caller
spelled it (key order, case of the device name, int-vs-float of a
size), which is what makes query de-duplication and content-addressed
caching sound.

A :class:`Prediction` is the answer: a status (``ok`` /
``unsupported`` / ``oom`` / ``error``), a flat ``metrics`` map of
named floats, and a human-readable ``reason`` when the status is not
``ok``.  Unsupported *capability* combinations (wgmma on Volta, FP8 on
Ampere) are first-class answers, never exceptions — the service keeps
streaming.  Predictions serialize to canonical JSONL lines, so
identical query batches produce byte-identical prediction streams
(the property the serial-vs-parallel and cold-vs-warm determinism
tests pin).

The schema is deliberately flat: ``params`` is a string→scalar map
whose legal keys are declared per kind in :data:`KIND_PARAMS`.  That
keeps the JSONL wire format trivial (one object per line) while the
per-kind validators reject typos and out-of-domain values up front
with a :class:`QueryError` naming the field.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "KINDS",
    "KIND_PARAMS",
    "Query",
    "Prediction",
    "QueryError",
    "parse_query",
    "parse_query_line",
]

#: schema tag stamped into serialized predictions; bump on breaking
#: shape changes (mirrors the ``hopperdissect.counters/vN`` convention)
PREDICTION_SCHEMA = "hopperdissect.prediction/v1"


class QueryError(ValueError):
    """A malformed query: unknown kind, bad field, out-of-domain value.

    Raised at parse/validation time only — a well-formed query for an
    *unsupported capability* is answered with a structured
    ``Prediction(status="unsupported")`` instead.
    """


def _pos_int(name: str, lo: int = 1, hi: int = 2 ** 24):
    def check(v):
        if not isinstance(v, int) or isinstance(v, bool) \
                or not lo <= v <= hi:
            raise QueryError(
                f"param {name!r} must be an integer in "
                f"[{lo}, {hi}], got {v!r}")
        return v
    return check


def _choice(name: str, *options: str):
    def check(v):
        if not isinstance(v, str) or v.lower() not in options:
            raise QueryError(
                f"param {name!r} must be one of {sorted(options)}, "
                f"got {v!r}")
        return v.lower()
    return check


def _flag(name: str):
    def check(v):
        if not isinstance(v, bool):
            raise QueryError(
                f"param {name!r} must be a boolean, got {v!r}")
        return v
    return check


def _ident(name: str):
    def check(v):
        if not isinstance(v, str) or not v:
            raise QueryError(
                f"param {name!r} must be a non-empty string, "
                f"got {v!r}")
        return v
    return check


#: per-kind parameter spec: name -> (required, default, validator).
#: Validators normalise (lower-case choices) as well as check, so the
#: canonical form of a query is spelling-independent.
KIND_PARAMS: Dict[str, Dict[str, Tuple[bool, Any, Any]]] = {
    # one te.Linear GEMM (m x k) @ (k x n) at a precision
    "te.linear": {
        "m": (True, None, _pos_int("m")),
        "n": (True, None, _pos_int("n")),
        "k": (True, None, _pos_int("k")),
    },
    # decode-only LLM generation throughput (paper Table XII shape)
    "llm.generate": {
        "model": (True, None, _ident("model")),
        "batch": (False, 8, _pos_int("batch", 1, 4096)),
        "input_len": (False, 128, _pos_int("input_len", 1, 65536)),
        "output_len": (False, 128, _pos_int("output_len", 1, 65536)),
    },
    # one warp-level mma instruction (paper Table VII shape grid)
    "mma": {
        "ab": (True, None, _ident("ab")),
        "cd": (True, None, _ident("cd")),
        "m": (True, None, _pos_int("m", 1, 256)),
        "n": (True, None, _pos_int("n", 1, 256)),
        "k": (True, None, _pos_int("k", 1, 256)),
        "sparse": (False, False, _flag("sparse")),
    },
    # one warp-group wgmma instruction (paper Tables VIII-X)
    "wgmma": {
        "ab": (True, None, _ident("ab")),
        "cd": (True, None, _ident("cd")),
        "n": (True, None, _pos_int("n", 8, 256)),
        "sparse": (False, False, _flag("sparse")),
        "a_source": (False, "ss", _choice("a_source", "ss", "rs")),
    },
    # pointer-chase latency of a footprint at a stride
    "memory.latency": {
        "footprint_kib": (True, None,
                          _pos_int("footprint_kib", 1, 4096)),
        "stride_bytes": (False, 128,
                         _pos_int("stride_bytes", 4, 65536)),
    },
    # SM-to-SM fabric bandwidth/latency at a cluster size
    "dsm.bandwidth": {
        "cluster_size": (True, None, _pos_int("cluster_size", 1, 64)),
    },
    # a whole registered experiment family (falls back to the
    # experiment runner + result cache, not the point-query grid path)
    "experiment": {
        "name": (True, None, _ident("name")),
        "fidelity": (False, None, _choice("fidelity", "fast", "full")),
        "seed": (False, None, _pos_int("seed", 0, 2 ** 31)),
    },
}

KINDS: Tuple[str, ...] = tuple(sorted(KIND_PARAMS))


def _validated_params(kind: str, params: Mapping[str, Any]) \
        -> Tuple[Tuple[str, Any], ...]:
    spec = KIND_PARAMS[kind]
    unknown = sorted(set(params) - set(spec))
    if unknown:
        raise QueryError(
            f"unknown param(s) {unknown} for kind {kind!r}; "
            f"legal params: {sorted(spec)}")
    out = []
    for name in sorted(spec):
        required, default, check = spec[name]
        if name in params:
            out.append((name, check(params[name])))
        elif required:
            raise QueryError(
                f"kind {kind!r} requires param {name!r}")
        elif default is not None:
            # None defaults mean "inherit from the service context"
            # (experiment fidelity/seed) and stay out of the canonical
            # form so an explicit default and an omission differ only
            # when they should
            out.append((name, default))
    return tuple(out)


@dataclass(frozen=True)
class Query:
    """One typed what-if question.

    ``device`` is a registered device name (canonicalised to upper
    case); ``precision`` applies to the compute kinds and is one of
    ``fp32/fp16/bf16/fp8`` (te/llm) or ignored for kinds that carry
    dtypes in ``params``.  ``qid`` is an opaque client tag echoed on
    the prediction — excluded from identity, so two clients asking the
    same question under different tags share one computation.
    """

    kind: str
    device: str = ""
    precision: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    qid: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KIND_PARAMS:
            raise QueryError(
                f"unknown query kind {self.kind!r}; legal kinds: "
                f"{list(KINDS)}")
        if self.kind != "experiment":
            if not self.device:
                raise QueryError(
                    f"kind {self.kind!r} requires a device")
            from repro.arch import get_device

            try:
                get_device(self.device)
            except KeyError as exc:
                # the registry's did-you-mean message, re-raised as a
                # parse error so answer_lines keeps it in-stream
                raise QueryError(
                    exc.args[0] if exc.args else str(exc)) from None
            object.__setattr__(self, "device", self.device.upper())
        elif self.device:
            object.__setattr__(self, "device", self.device.upper())
        if self.precision is not None:
            p = str(self.precision).lower()
            if p not in ("fp32", "fp16", "bf16", "fp8"):
                raise QueryError(
                    f"unknown precision {self.precision!r}; expected "
                    "fp32/fp16/bf16/fp8")
            object.__setattr__(self, "precision", p)
        elif self.kind in ("te.linear", "llm.generate"):
            raise QueryError(
                f"kind {self.kind!r} requires a precision")
        object.__setattr__(
            self, "params",
            _validated_params(self.kind, dict(self.params)))

    # -- convenience access -------------------------------------------------

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    # -- canonical identity -------------------------------------------------

    def to_payload(self, *, with_qid: bool = True) -> Dict[str, Any]:
        """The JSONL wire form (plain dict, canonical field values)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.device:
            payload["device"] = self.device
        if self.precision is not None:
            payload["precision"] = self.precision
        if self.params:
            payload["params"] = dict(self.params)
        if with_qid and self.qid is not None:
            payload["id"] = self.qid
        return payload

    def canonical(self) -> str:
        """Canonical serialization: sorted keys, compact separators,
        the client tag excluded — equal questions render to equal
        bytes.  Memoized: the fields are frozen, and the planner and
        storage-key layers each render every query."""
        cached = self.__dict__.get("_canonical")
        if cached is None:
            cached = json.dumps(self.to_payload(with_qid=False),
                                sort_keys=True, separators=(",", ":"))
            object.__setattr__(self, "_canonical", cached)
        return cached

    def key(self) -> str:
        """Content digest of the canonical form — the dedup/cache
        identity of the question itself (the service layers version
        and device-spec digests on top for storage keys)."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()


def parse_query(obj: Any) -> Query:
    """Build a :class:`Query` from a decoded JSON object."""
    if not isinstance(obj, dict):
        raise QueryError(f"query must be a JSON object, got "
                         f"{type(obj).__name__}")
    known = {"kind", "device", "precision", "params", "id"}
    unknown = sorted(set(obj) - known)
    if unknown:
        raise QueryError(
            f"unknown query field(s) {unknown}; legal fields: "
            f"{sorted(known)}")
    if "kind" not in obj:
        raise QueryError("query needs a 'kind' field")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise QueryError("'params' must be an object")
    qid = obj.get("id")
    if qid is not None and not isinstance(qid, str):
        raise QueryError("'id' must be a string")
    return Query(
        kind=str(obj["kind"]),
        device=str(obj.get("device", "") or ""),
        precision=obj.get("precision"),
        params=tuple(params.items()),
        qid=qid,
    )


def parse_query_line(line: str) -> Query:
    """Parse one JSONL request line."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise QueryError(f"bad JSON: {exc}") from None
    return parse_query(obj)


@dataclass(frozen=True)
class Prediction:
    """The service's answer to one :class:`Query`.

    ``metrics`` maps metric name → float (already-rounded model
    outputs; canonical JSON float repr keeps equal values
    byte-identical).  ``status`` is ``ok``, ``unsupported`` (the
    device lacks the capability — the reason names the gate),
    ``oom`` (the LLM config exceeds device memory) or ``error``
    (malformed request answered in-stream).
    """

    status: str
    kind: str = ""
    device: str = ""
    metrics: Tuple[Tuple[str, float], ...] = ()
    reason: Optional[str] = None
    qid: Optional[str] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def metric(self, name: str, default: float = float("nan")) -> float:
        for key, value in self.metrics:
            if key == name:
                return value
        return default

    def with_qid(self, qid: Optional[str]) -> "Prediction":
        from dataclasses import replace

        return replace(self, qid=qid)

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": PREDICTION_SCHEMA,
            "status": self.status,
            "kind": self.kind,
        }
        if self.device:
            payload["device"] = self.device
        if self.metrics:
            payload["metrics"] = dict(self.metrics)
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.qid is not None:
            payload["id"] = self.qid
        return payload

    def to_line(self) -> str:
        """The canonical JSONL response line (sorted keys, compact) —
        equal predictions serialize byte-identically."""
        return json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Prediction":
        return cls(
            status=str(payload["status"]),
            kind=str(payload.get("kind", "")),
            device=str(payload.get("device", "")),
            metrics=tuple(payload.get("metrics", {}).items()),
            reason=payload.get("reason"),
            qid=payload.get("id"),
        )

    @classmethod
    def unsupported(cls, query: Query, reason: str) -> "Prediction":
        return cls(status="unsupported", kind=query.kind,
                   device=query.device, reason=reason, qid=query.qid)

    @classmethod
    def error(cls, reason: str, *, kind: str = "",
              device: str = "", qid: Optional[str] = None) \
            -> "Prediction":
        return cls(status="error", kind=kind, device=device,
                   reason=reason, qid=qid)
