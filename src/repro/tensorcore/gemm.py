"""Tiled GEMM over tensor-core instructions.

Drives a full ``D = A × B`` through the functional engine tile by tile
and accounts for the instructions issued — the bridge between the
instruction-level models and the library-level Transformer-Engine
analogue (whose FP8 ``Linear`` runs its matmuls here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch import DeviceSpec
from repro.isa.dtypes import DType
from repro.isa.mma import MmaInstruction, WgmmaInstruction, mma_shapes
from repro.tensorcore.functional import matmul_quantized
from repro.tensorcore.timing import TensorCoreTimingModel

__all__ = ["TiledGemm", "GemmReport"]


@dataclass(frozen=True)
class GemmReport:
    """Result + cost accounting of one tiled GEMM."""

    result: np.ndarray
    m: int
    n: int
    k: int
    instructions: int
    flops: int
    est_seconds: float

    @property
    def est_tflops(self) -> float:
        return self.flops / self.est_seconds / 1e12 if self.est_seconds \
            else float("inf")


class TiledGemm:
    """GEMM executor bound to one device's best tensor-core path."""

    def __init__(self, device: DeviceSpec, ab_type: DType,
                 cd_type: DType) -> None:
        self.device = device
        self.ab_type = ab_type
        self.cd_type = cd_type
        self.timing = TensorCoreTimingModel(device)
        if device.pack.has_wgmma:
            self._tile = WgmmaInstruction(ab_type, cd_type, n=256)
        else:
            self._tile = MmaInstruction(
                ab_type, cd_type, mma_shapes(ab_type)[-1]
            )
        self._tile_tflops: Optional[float] = None

    @property
    def tile_shape(self):
        return self._tile.shape

    def run(self, a: np.ndarray, b: np.ndarray,
            c: Optional[np.ndarray] = None) -> GemmReport:
        """Compute ``D = A×B (+C)`` with the device's tile numerics.

        Matrices are zero-padded up to tile multiples, exactly as a
        real kernel pads its boundary tiles.
        """
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dims differ: {a.shape} × {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        ts = self._tile.shape
        mp = math.ceil(m / ts.m) * ts.m
        np_ = math.ceil(n / ts.n) * ts.n
        kp = math.ceil(k / ts.k) * ts.k

        # The functional engine operates on whole matrices with the
        # same numerics the per-tile loop would produce (products are
        # exact; accumulation order along k matches because we
        # accumulate in FP32+ precision for FP32 accumulators).
        d = matmul_quantized(
            a, b, ab_type=self.ab_type, cd_type=self.cd_type, c=c
        )

        n_instr = (mp // ts.m) * (np_ // ts.n) * (kp // ts.k)
        flops = 2 * m * n * k
        tflops = self._best_tflops()
        est = flops / (tflops * 1e12)
        return GemmReport(
            result=d, m=m, n=n, k=k,
            instructions=n_instr, flops=flops, est_seconds=est,
        )

    def _best_tflops(self) -> float:
        # The tile instruction is fixed at construction; price it once
        # and reuse across run() calls (the TE Linear path issues many
        # GEMMs through one executor).
        if self._tile_tflops is None:
            if isinstance(self._tile, WgmmaInstruction):
                t = self.timing.wgmma(self._tile)
            else:
                t = self.timing.mma(self._tile)
            self._tile_tflops = t.throughput_tflops("rand")
        return self._tile_tflops
