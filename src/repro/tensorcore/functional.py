"""Functional (value-level) tensor-core execution.

Models what the silicon computes, independent of how fast:

* A and B are quantised to the instruction's input format (this is a
  no-op if the caller already provides representable values — e.g.
  data loaded from an FP16 buffer),
* each product ``a·b`` is formed *exactly* (tensor cores compute
  full-precision products; Fasi et al. 2021 verify this),
* accumulation happens stepwise in the accumulator precision with
  round-to-nearest-even after every addition — the behaviour that
  separates ``f16``-accumulate from ``f32``-accumulate numerically,
* integer variants accumulate exactly in INT32 with wrap-around,
* binary (b1) variants compute AND + population count.

Everything operates on float64/int64 NumPy carriers; the *values* are
exactly those of the modelled precisions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.dtypes import DType
from repro.isa.mma import MmaInstruction, WgmmaInstruction
from repro.numerics.integers import INT32, IntFormat, INT4, INT8

__all__ = ["mma_functional", "wgmma_functional", "matmul_quantized"]


def _quantize_input(x: np.ndarray, dt: DType) -> np.ndarray:
    """Round an operand tensor onto its format's grid."""
    arr = np.asarray(x, dtype=np.float64)
    if dt.is_float:
        return dt.float_format.quantize(arr)
    if dt in (DType.INT8, DType.INT4):
        fmt: IntFormat = INT8 if dt is DType.INT8 else INT4
        q = np.round(arr)
        if np.any(q < fmt.min_value) or np.any(q > fmt.max_value):
            raise ValueError(
                f"operand values exceed the {dt.name} range "
                f"[{fmt.min_value}, {fmt.max_value}]"
            )
        return q
    if dt is DType.BIN1:
        if not np.all((arr == 0) | (arr == 1)):
            raise ValueError("binary operands must contain only 0/1")
        return arr
    raise ValueError(f"unsupported input type {dt}")


def matmul_quantized(
    a: np.ndarray,
    b: np.ndarray,
    *,
    ab_type: DType,
    cd_type: DType,
    c: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``D = A × B + C`` with tensor-core numerics.

    ``a`` is (m, k) and ``b`` is (k, n).  Works for any sizes — the
    instruction wrappers below add shape validation.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} × {b.shape}")

    aq = _quantize_input(a, ab_type)
    bq = _quantize_input(b, ab_type)

    if ab_type is DType.BIN1:
        # AND + POPC accumulate: with 0/1 operands AND is the product.
        d = (aq.astype(np.int64) @ bq.astype(np.int64))
        if c is not None:
            d = d + np.asarray(c, dtype=np.int64)
        return INT32.wrap(d).astype(np.float64)

    if not ab_type.is_float:
        d = aq.astype(np.int64) @ bq.astype(np.int64)
        if c is not None:
            d = d + np.round(np.asarray(c, dtype=np.float64)).astype(np.int64)
        return INT32.wrap(d).astype(np.float64)

    acc_fmt = cd_type.float_format
    k = a.shape[1]
    if cd_type in (DType.FP32, DType.FP64):
        # FP32 accumulators hold every intermediate of our modelled
        # input formats exactly enough that stepwise rounding matters
        # only at the last bit; accumulate exactly and round once.
        d = aq @ bq
        if c is not None:
            d = d + acc_fmt.quantize(np.asarray(c, dtype=np.float64))
        return acc_fmt.quantize(d)

    # Narrow accumulators (FP16): round after every k-step addition —
    # the numeric behaviour that distinguishes f16-accumulate mode.
    d = (acc_fmt.quantize(np.asarray(c, dtype=np.float64))
         if c is not None else np.zeros((a.shape[0], b.shape[1])))
    for i in range(k):
        d = acc_fmt.quantize(d + np.outer(aq[:, i], bq[i, :]))
    return d


def mma_functional(
    instr: MmaInstruction,
    a: np.ndarray,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Execute one warp-level ``mma`` tile: ``D = A×B + C``.

    Shapes must match the instruction's *effective* shape (sparse
    callers pass the decompressed A — see
    :func:`repro.tensorcore.sparse.decompress_2_4`).
    """
    eff = instr.effective_shape
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (eff.m, eff.k):
        raise ValueError(f"A must be {(eff.m, eff.k)}, got {a.shape}")
    if b.shape != (eff.k, eff.n):
        raise ValueError(f"B must be {(eff.k, eff.n)}, got {b.shape}")
    if c is not None and np.shape(c) != (eff.m, eff.n):
        raise ValueError(f"C must be {(eff.m, eff.n)}, got {np.shape(c)}")
    return matmul_quantized(
        a, b, ab_type=instr.ab_type, cd_type=instr.cd_type, c=c
    )


def wgmma_functional(
    instr: WgmmaInstruction,
    a: np.ndarray,
    b: np.ndarray,
    d: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Execute one warp-group ``wgmma`` tile: ``D = A×B + D``.

    Note the asymmetry with ``mma``: the accumulator is D itself (the
    paper highlights this difference in Fig 2).
    """
    eff = instr.effective_shape
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (eff.m, eff.k):
        raise ValueError(f"A must be {(eff.m, eff.k)}, got {a.shape}")
    if b.shape != (eff.k, eff.n):
        raise ValueError(f"B must be {(eff.k, eff.n)}, got {b.shape}")
    if d is not None and np.shape(d) != (eff.m, eff.n):
        raise ValueError(f"D must be {(eff.m, eff.n)}, got {np.shape(d)}")
    return matmul_quantized(
        a, b, ab_type=instr.ab_type, cd_type=instr.cd_type, c=d
    )
