"""2:4 structured sparsity (the ``mma.sp`` / ``wgmma.sp`` data path).

Sparse tensor cores require matrix A in *2:4 structured-sparse* form:
in every group of four consecutive elements along k, at most two are
non-zero.  The operand is stored compressed — the two surviving values
plus 2-bit metadata indices per value — and the hardware expands it
against B on the fly.

This module provides magnitude-based pruning (the standard recipe),
compression/decompression, and pattern validation; the functional
sparse MMA is "decompress + dense MMA", which is numerically exactly
what the silicon computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "prune_2_4",
    "compress_2_4",
    "decompress_2_4",
    "SparseOperand",
    "sparsity_pattern_valid",
]

GROUP = 4       #: elements per sparsity group along k
KEEP = 2        #: survivors per group


def _check_k(a: np.ndarray) -> None:
    if a.ndim != 2:
        raise ValueError("operand must be 2-D (m × k)")
    if a.shape[1] % GROUP:
        raise ValueError(
            f"k dimension ({a.shape[1]}) must be a multiple of {GROUP}"
        )


def prune_2_4(a: np.ndarray) -> np.ndarray:
    """Zero the two smallest-magnitude elements of every group of 4.

    Ties break toward keeping the earlier element, matching cuSPARSELt's
    deterministic behaviour.
    """
    a = np.asarray(a, dtype=np.float64)
    _check_k(a)
    m, k = a.shape
    groups = a.reshape(m, k // GROUP, GROUP)
    # argsort is stable; take the KEEP largest magnitudes per group.
    order = np.argsort(-np.abs(groups), axis=2, kind="stable")
    keep_idx = np.sort(order[:, :, :KEEP], axis=2)
    mask = np.zeros_like(groups, dtype=bool)
    np.put_along_axis(mask, keep_idx, True, axis=2)
    return np.where(mask, groups, 0.0).reshape(m, k)


def sparsity_pattern_valid(a: np.ndarray) -> bool:
    """True iff every group of 4 along k has ≤ 2 non-zeros."""
    a = np.asarray(a, dtype=np.float64)
    _check_k(a)
    m, k = a.shape
    nz = (a.reshape(m, k // GROUP, GROUP) != 0.0).sum(axis=2)
    return bool(np.all(nz <= KEEP))


@dataclass(frozen=True)
class SparseOperand:
    """Compressed 2:4 operand: values (m × k/2) + metadata indices.

    ``metadata`` holds, per kept value, its 2-bit position within the
    group — 2 bits × (k/2) per row, matching the hardware layout the
    instruction's ``operand_bytes()['meta']`` accounts for.
    """

    values: np.ndarray      # (m, k // 2) float64
    metadata: np.ndarray    # (m, k // 2) uint8, entries in [0, 4)
    k: int                  # original (uncompressed) k

    def __post_init__(self) -> None:
        if self.values.shape != self.metadata.shape:
            raise ValueError("values and metadata shapes differ")
        if self.values.shape[1] * 2 != self.k:
            raise ValueError("compressed width must be k/2")
        if np.any(self.metadata >= GROUP):
            raise ValueError("metadata indices must be in [0, 4)")

    @property
    def m(self) -> int:
        return self.values.shape[0]

    @property
    def compressed_bytes(self) -> float:
        """Storage: values at the element width are counted by callers;
        metadata is 2 bits per kept element."""
        return self.values.size * 2 / 8.0


def compress_2_4(a: np.ndarray) -> SparseOperand:
    """Compress a (possibly unpruned) matrix to 2:4 form.

    Prunes first if the pattern is not already valid.
    """
    a = np.asarray(a, dtype=np.float64)
    _check_k(a)
    if not sparsity_pattern_valid(a):
        a = prune_2_4(a)
    m, k = a.shape
    groups = a.reshape(m, k // GROUP, GROUP)
    order = np.argsort(-np.abs(groups), axis=2, kind="stable")
    keep_idx = np.sort(order[:, :, :KEEP], axis=2)       # (m, k/4, 2)
    vals = np.take_along_axis(groups, keep_idx, axis=2)  # (m, k/4, 2)
    return SparseOperand(
        values=vals.reshape(m, k // 2),
        metadata=keep_idx.reshape(m, k // 2).astype(np.uint8),
        k=k,
    )


def decompress_2_4(op: SparseOperand) -> np.ndarray:
    """Expand a compressed operand back to dense (m × k)."""
    m = op.m
    groups = np.zeros((m, op.k // GROUP, GROUP), dtype=np.float64)
    vals = op.values.reshape(m, op.k // GROUP, KEEP)
    idx = op.metadata.reshape(m, op.k // GROUP, KEEP).astype(np.int64)
    np.put_along_axis(groups, idx, vals, axis=2)
    return groups.reshape(m, op.k)
