"""Tensor-core numeric-behaviour probes (Fasi et al. style).

The paper cites the numeric-behaviour dissection of tensor cores
(rounding modes, subnormal support, accumulation order).  This module
implements those probes against the functional engine, so the modelled
numerics can be audited the same way the silicon was:

* products are formed exactly (no rounding before accumulation),
* FP32 accumulation preserves addends FP16 accumulation swallows,
* FP16 accumulation rounds to nearest even after every step,
* subnormal inputs and outputs are honoured (no flush-to-zero),
* TF32 truncates FP32 inputs to 10 mantissa bits,
* FP8 E4M3 saturates while E5M2 overflows to infinity.

Each probe returns a :class:`ProbeResult` so the behaviours can be
tabulated (see ``examples/numerics_probe.py``) and asserted in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.isa.dtypes import DType
from repro.numerics import E4M3, E5M2, FP16
from repro.tensorcore.functional import matmul_quantized

__all__ = ["ProbeResult", "run_all_probes"]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one numeric probe."""

    name: str
    behaviour: str
    passed: bool
    detail: str = ""


def _dot(a_vals, b_vals, ab: DType, cd: DType) -> float:
    a = np.array([a_vals], dtype=np.float64)
    b = np.array(b_vals, dtype=np.float64).reshape(-1, 1)
    return float(matmul_quantized(a, b, ab_type=ab, cd_type=cd)[0, 0])


def probe_exact_products() -> ProbeResult:
    """Products of representable FP16 values enter the accumulator
    unrounded: (1+2^-10)² has a 2^-20 term only an exact multiplier
    keeps."""
    v = 1.0 + 2.0 ** -10
    got = _dot([v], [v], DType.FP16, DType.FP32)
    exact = v * v
    return ProbeResult(
        "exact products", "full-precision multiply",
        got == float(np.float32(exact)),
        f"got {got!r}, exact {exact!r}",
    )


def probe_fp32_accumulation_keeps_small_addends() -> ProbeResult:
    k = 16
    a = [1.0] + [2.0 ** -11] * (k - 1)
    b = [1.0] * k
    got = _dot(a, b, DType.FP16, DType.FP32)
    return ProbeResult(
        "FP32 accumulation", "small addends preserved",
        got > 1.0,
        f"1 + 15·2^-11 -> {got!r}",
    )


def probe_fp16_accumulation_swallows() -> ProbeResult:
    k = 16
    a = [1.0] + [2.0 ** -12] * (k - 1)
    b = [1.0] * k
    got = _dot(a, b, DType.FP16, DType.FP16)
    return ProbeResult(
        "FP16 accumulation", "sub-ulp addends rounded away each step",
        got == 1.0,
        f"1 + 15·2^-12 -> {got!r}",
    )


def probe_fp16_rne_each_step() -> ProbeResult:
    """Ties round to even: a half-ulp addend stays at 1.0 (even
    mantissa below), a 1.5-ulp addend jumps TWO ulps to the even
    neighbour 1+2^-9 rather than the odd 1+2^-10."""
    half_ulp = 2.0 ** -11
    stay = _dot([1.0, half_ulp], [1.0, 1.0], DType.FP16, DType.FP16)
    jump = _dot([1.0, 3 * half_ulp], [1.0, 1.0], DType.FP16,
                DType.FP16)
    return ProbeResult(
        "round-to-nearest-even", "ties to even per accumulation step",
        stay == 1.0 and jump == 1.0 + 2.0 ** -9,
        f"half-ulp -> {stay!r}, 1.5 ulp -> {jump!r}",
    )


def probe_subnormals_supported() -> ProbeResult:
    sub = FP16.min_subnormal * 4
    got = _dot([sub], [1.0], DType.FP16, DType.FP32)
    return ProbeResult(
        "subnormal inputs", "no flush-to-zero",
        got == sub,
        f"{sub!r} · 1.0 -> {got!r}",
    )


def probe_tf32_truncation() -> ProbeResult:
    v = 1.0 + 2.0 ** -11       # needs 11 mantissa bits
    got = _dot([v], [1.0], DType.TF32, DType.FP32)
    return ProbeResult(
        "TF32 input precision", "10 explicit mantissa bits",
        got == 1.0,
        f"(1+2^-11) as TF32 -> {got!r}",
    )


def probe_fp8_overflow_split() -> ProbeResult:
    sat = float(E4M3.quantize(1e4))
    inf = float(E5M2.quantize(1e6))
    return ProbeResult(
        "FP8 overflow", "E4M3 saturates, E5M2 -> inf",
        sat == 448.0 and math.isinf(inf),
        f"E4M3(1e4)={sat}, E5M2(1e6)={inf}",
    )


def probe_int32_wraparound() -> ProbeResult:
    k = 300
    got = _dot([127.0] * k, [127.0] * k, DType.INT8, DType.INT32)
    expect = (127 * 127 * k + 2 ** 31) % 2 ** 32 - 2 ** 31
    return ProbeResult(
        "INT32 accumulator", "two's-complement wraparound",
        got == expect,
        f"sum 300·127² -> {got}",
    )


_PROBES: List[Callable[[], ProbeResult]] = [
    probe_exact_products,
    probe_fp32_accumulation_keeps_small_addends,
    probe_fp16_accumulation_swallows,
    probe_fp16_rne_each_step,
    probe_subnormals_supported,
    probe_tf32_truncation,
    probe_fp8_overflow_split,
    probe_int32_wraparound,
]


def run_all_probes() -> List[ProbeResult]:
    """Execute every numeric probe."""
    return [p() for p in _PROBES]
