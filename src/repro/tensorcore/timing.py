"""Tensor-core latency and throughput timing model (Tables VII–X).

Three mechanisms, composed:

1. **Pipe tables** (``mma``).  Each architecture has a characteristic
   completion latency and issue efficiency per instruction "depth"
   (``steps`` = k / min-k, i.e. whether the shape is the short or the
   long variant).  Efficiencies are calibrated from microbenchmarks the
   way validated simulators calibrate pipe tables — and they *are* the
   paper's finding: Hopper's legacy warp-level ``mma`` path reaches
   only ≈49 %/65 % of the 4th-gen tensor core's issue rate, so the
   H800 averages ~63 % of peak through ``mma`` while A100/RTX 4090
   saturate theirs.

2. **The dependent-accumulator chain** (``wgmma``).  The benchmark (and
   any real GEMM inner loop) chains ``D = A×B + D``, so a new wgmma
   cannot complete before its predecessor's D is ready: the sustained
   issue interval tracks the *completion latency* (times a small
   pipeline-bubble stretch), and latency itself scales as N/2 cycles.
   Throughput therefore saturates for N ≥ 64 and collapses with small
   N — Table X's shape, derived.

3. **Shared-memory port pressure**.  wgmma operands stream from shared
   memory at the SM's 128 B/clk.  Dense SS and RS tie (B traffic fits
   under the compute time).  *Sparse* SS mode must fetch the unpruned
   m×2k A tile and prune on the fly: the extra m×k·sizeof(elem) bytes
   cost exactly ``2048 B / 128 B/clk = 16`` cycles — which is
   precisely the 144-vs-128 cycle latency split of Table IX, for every
   data type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Sequence

import numpy as np

from repro.arch import DeviceSpec
from repro.isa.dtypes import DType
from repro.isa.lowering import UnsupportedInstruction, lower
from repro.isa.mma import (
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
    mma_shapes,
)
from repro.obs import session as _obs


def _tc_instant(tracer, kind: str, device: DeviceSpec, instr) -> None:
    tracer.instant(
        f"{kind}.{instr.shape.modifier}", cat="tensorcore",
        args={"device": device.name,
              "ab": instr.ab_type.name,
              "cd": instr.cd_type.name,
              "sparse": instr.sparse,
              "flops": int(instr.flops)})


def _record_tc_instruction(kind: str, device: DeviceSpec,
                           instr) -> None:
    """Feed the active observability session one tensor-core
    instruction event (MAC counts + a per-instruction issue marker)."""
    sess = _obs.ACTIVE
    if sess is None:
        return
    c = sess.counters
    c.add(f"tc.{kind}.instructions")
    c.add(f"tc.{kind}.macs", int(instr.flops) // 2)
    if sess.tracer is not None:
        _tc_instant(sess.tracer, kind, device, instr)


def _record_tc_batch(kind: str, device: DeviceSpec,
                     instrs: Sequence) -> None:
    """Batched :func:`_record_tc_instruction`: one counter update per
    sweep, per-instruction trace instants only when a tracer is live.
    Counter totals are integer sums, so a sweep and the equivalent
    per-instruction loop produce identical deltas."""
    sess = _obs.ACTIVE
    if sess is None or not instrs:
        return
    c = sess.counters
    c.add(f"tc.{kind}.instructions", len(instrs))
    c.add(f"tc.{kind}.macs",
          sum(int(i.flops) // 2 for i in instrs))
    if sess.tracer is not None:
        for instr in instrs:
            _tc_instant(sess.tracer, kind, device, instr)

__all__ = [
    "MmaTiming",
    "WgmmaTiming",
    "SweepEntry",
    "MmaSweep",
    "WgmmaSweep",
    "ScalarTensorCoreTimingModel",
    "TensorCoreTimingModel",
]

InitKind = Literal["zero", "rand"]

# --------------------------------------------------------------------------
# calibration
# --------------------------------------------------------------------------
#
# All per-generation numbers (mma pipe tables, the steps = k/min-k
# latency/efficiency grids, wgmma floors and chain stretch) live in the
# architecture packs — ``device.pack.mma`` / ``device.pack.wgmma`` —
# so new generations plug in as data.  Only *structural* laws that hold
# on every architecture stay here (the small-N SS stall shape below and
# the 5-cycle IMAD latency of the CUDA-core fallback).


def _wgmma_ss_stall(n: int) -> float:
    """Extra dense-SS latency (cycles) when N is too small to hide the
    A-tile shared-memory fetch under compute.  Vanishes for N ≥ 64."""
    if n >= 64:
        return 0.0
    if n <= 32:
        return min(4.0 + n / 8.0, 8.0)
    return 8.0 * (64 - n) / 32.0


@dataclass(frozen=True)
class MmaTiming:
    """Latency/throughput of one ``mma`` instruction on one device."""

    device: DeviceSpec
    instr: MmaInstruction

    def __post_init__(self) -> None:
        lowered = lower(self.instr, self.device.pack)
        object.__setattr__(self, "_lowered", lowered)
        _record_tc_instruction("mma", self.device, self.instr)

    # -- helpers ---------------------------------------------------------

    @property
    def steps(self) -> int:
        shapes = mma_shapes(self.instr.ab_type)
        min_k = shapes[0].k
        return self.instr.shape.k // min_k

    @property
    def _f32acc_half_rate(self) -> bool:
        """Generations whose pack declares ``f32acc_rate < 1`` (Ada's
        consumer parts) run FP16/BF16→FP32 accumulation at a reduced
        rate."""
        return (
            self.device.pack.mma.f32acc_rate != 1.0
            and self.instr.ab_type in (DType.FP16, DType.BF16)
            and self.instr.cd_type is DType.FP32
        )

    @property
    def _f32acc_slow_latency(self) -> bool:
        """All FP32-accumulate mma takes the deeper pipe where the pack
        calibrates one (the paper measures 19.2/33.4 for TF32 and
        18.8/33.0 for FP16→FP32 vs 17.7/24.6 for FP16→FP16 on Ada)."""
        return (
            self.device.pack.mma.f32acc_latency_clk is not None
            and self.instr.cd_type is DType.FP32
        )

    @property
    def on_tensor_core(self) -> bool:
        return self._lowered.uses_tensor_core

    # -- latency --------------------------------------------------------------

    @property
    def latency_clk(self) -> float:
        """Completion latency of a single dependent instruction."""
        cal = self.device.pack.mma
        if not self.on_tensor_core:
            # CUDA-core fallback (Hopper INT4): a serial IMAD sequence.
            imad_latency = 5.0
            return imad_latency * self._lowered.instruction_count
        if self._f32acc_slow_latency:
            return cal.f32acc_latency_clk[self.steps]
        return cal.latency_clk[self.steps]

    # -- throughput ------------------------------------------------------------

    @property
    def issue_efficiency(self) -> float:
        cal = self.device.pack.mma
        return cal.efficiency[self.instr.sparse][self.steps]

    @property
    def throughput_flops_per_clk_sm(self) -> float:
        """Sustained per-SM FLOPs (or int-ops) per cycle."""
        cal = self.device.pack.mma
        if not self.on_tensor_core:
            # INT4-on-Hopper path: 32-lane IMAD per scheduler, one
            # scheduler per pipe, 2 ops (mul+add) per MAC, II of 2.
            return cal.pipes_per_sm * 32 * 2 / 2.0
        peak = self.device.tc_flops_per_clk_sm(
            self.instr.ab_type.peak_key, sparse=self.instr.sparse
        )
        rate = peak * self.issue_efficiency
        if self._f32acc_half_rate:
            rate *= cal.f32acc_rate
        return rate

    @property
    def issue_interval_clk(self) -> float:
        """Cycles between back-to-back independent issues per pipe."""
        per_pipe = (self.throughput_flops_per_clk_sm
                    / self.device.pack.mma.pipes_per_sm)
        return self.instr.flops / per_pipe

    def throughput_tflops(self, init: InitKind = "zero") -> float:
        """Device-wide sustained throughput in TFLOPS (TOPS for ints).

        ``init='rand'`` applies the power model's frequency throttle
        for random operand data (negligible for mma — its issue rate
        keeps power under the cap on all three devices).
        """
        base = (
            self.throughput_flops_per_clk_sm
            * self.device.num_sms
            * self.device.clocks.observed_hz
            / 1e12
        )
        if init == "rand":
            base *= self._power_scale(base)
        return base

    def fraction_of_peak(self) -> float:
        peak = self.device.tc_peak_tflops(
            self.instr.ab_type.peak_key, sparse=self.instr.sparse
        )
        return self.throughput_tflops() / peak

    def _power_scale(self, tflops: float) -> float:
        from repro.power import PowerModel  # local import, no cycle
        return PowerModel(self.device).throttle_scale(
            op="mma",
            ab=self.instr.ab_type,
            cd=self.instr.cd_type,
            tflops=tflops,
            sparse=self.instr.sparse,
            operand_bytes_per_s=0.0,
        )


@dataclass(frozen=True)
class WgmmaTiming:
    """Latency/throughput of one ``wgmma`` instruction (Hopper only)."""

    device: DeviceSpec
    instr: WgmmaInstruction

    def __post_init__(self) -> None:
        if not self.device.pack.has_wgmma:
            raise UnsupportedInstruction(
                f"{self.device.name} has no wgmma instructions"
            )
        _record_tc_instruction("wgmma", self.device, self.instr)

    # -- latency ----------------------------------------------------------

    @property
    def latency_clk(self) -> float:
        """Completion latency: N/2 cycles of tensor-core work plus the
        operand-path effects described in the module docstring."""
        cal = self.device.pack.wgmma
        n = self.instr.n
        base = n / 2.0
        ss = self.instr.a_source is OperandSource.SHARED
        if not self.instr.sparse:
            lat = max(base, cal.min_latency_clk)
            if ss:
                lat += _wgmma_ss_stall(n)
            return lat
        if ss:
            # Unpruned A (m × 2k) streams from shared memory; the extra
            # m×k·elem bytes over the dense fetch take exactly this long:
            extra = (
                self.instr.m * self.instr.k * self.instr.ab_type.bytes
                / self.device.mem_widths.smem_bytes_per_clk_sm
            )
            return base + extra
        return max(base, cal.sparse_rs_floor_clk)

    # -- throughput -------------------------------------------------------------

    @property
    def compute_interval_clk(self) -> float:
        """Issue interval if only the tensor-core array limited us."""
        peak = self.device.tc_flops_per_clk_sm(
            self.instr.ab_type.peak_key, sparse=self.instr.sparse
        )
        return self.instr.flops / (peak * self.device.pack.wgmma.compute_eff)

    @property
    def smem_interval_clk(self) -> float:
        """Issue interval if only shared-memory bandwidth limited us."""
        return (
            self.instr.shared_memory_bytes()
            / self.device.mem_widths.smem_bytes_per_clk_sm
        )

    @property
    def issue_interval_clk(self) -> float:
        """Sustained interval between wgmma completions per SM.

        The dependent-accumulator chain makes the interval track the
        completion latency (which already contains every operand-path
        stall, including the sparse-SS unpruned-A fetch), unless the
        tensor-core array itself is the bottleneck.  At N = 256 sparse
        SS the two bounds coincide: latency×stretch = 161 ≈
        20480 B / 128 B/clk = 160 — the shared-memory port is exactly
        saturated, which is why Table IX's SS columns sit below RS.
        """
        return max(
            self.latency_clk * self.device.pack.wgmma.chain_stretch,
            self.compute_interval_clk,
        )

    @property
    def throughput_flops_per_clk_sm(self) -> float:
        return self.instr.flops / self.issue_interval_clk

    def throughput_tflops(self, init: InitKind = "zero") -> float:
        """Device-wide sustained throughput in TFLOPS/TOPS.

        With random data the H800-PCIe nears its 350 W cap and sheds
        frequency (paper §IV-C); zero operands barely toggle the
        datapath and run unthrottled.
        """
        base = (
            self.throughput_flops_per_clk_sm
            * self.device.num_sms
            * self.device.clocks.observed_hz
            / 1e12
        )
        if init == "rand":
            base *= self._power_scale(base)
        return base

    def fraction_of_peak(self, init: InitKind = "zero") -> float:
        peak = self.device.tc_peak_tflops(
            self.instr.ab_type.peak_key, sparse=self.instr.sparse
        )
        return self.throughput_tflops(init) / peak

    @property
    def operand_bytes_total(self) -> float:
        """Per-instruction A+B (+metadata) operand traffic, regardless
        of whether it streams from shared memory or the register file —
        delivery energy is what the power model cares about."""
        instr = self.instr
        b = instr.shared_memory_bytes()
        if instr.a_source is OperandSource.REGISTER:
            a_bytes = instr.m * instr.k * instr.ab_type.bytes
            meta = (instr.m * instr.k / 4.0) if instr.sparse else 0.0
            b += a_bytes + meta
        return b

    def _power_scale(self, tflops: float) -> float:
        from repro.power import PowerModel
        operand_rate = (
            self.operand_bytes_total / self.issue_interval_clk
            * self.device.num_sms * self.device.clocks.observed_hz
        )
        return PowerModel(self.device).throttle_scale(
            op="wgmma",
            ab=self.instr.ab_type,
            cd=self.instr.cd_type,
            tflops=tflops,
            sparse=self.instr.sparse,
            operand_bytes_per_s=operand_rate,
        )


class ScalarTensorCoreTimingModel:
    """Per-instruction reference factory.

    This is the original (pre-vectorization) implementation: every
    call prices exactly one instruction through the
    :class:`MmaTiming`/:class:`WgmmaTiming` dataclasses.  It is kept
    as the executable specification the batched
    :class:`TensorCoreTimingModel` sweeps are property-tested against
    (``tests/test_vectorized_equivalence.py``).
    """

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    def mma(self, instr: MmaInstruction) -> MmaTiming:
        return MmaTiming(self.device, instr)

    def wgmma(self, instr: WgmmaInstruction) -> WgmmaTiming:
        return WgmmaTiming(self.device, instr)

    def best_dense_tflops(self, ab: DType, cd: DType) -> float:
        """Best achievable dense throughput for a type pair on this
        device — wgmma at N=256 on Hopper, the long mma elsewhere.
        Used by the Transformer-Engine cost model."""
        if self.device.pack.has_wgmma:
            try:
                w = WgmmaInstruction(ab, cd, n=256)
                return self.wgmma(w).throughput_tflops("rand")
            except ValueError:
                pass
        try:
            shape = mma_shapes(ab)[-1]
            return self.mma(
                MmaInstruction(ab, cd, shape)
            ).throughput_tflops("rand")
        except ValueError:
            # No PTX mma exists (e.g. FP8 on Ada, Table VI) but the
            # tensor cores do support the precision through the
            # library-level QMMA path — model it at near-peak.
            if self.device.tensor_core.supports(ab.peak_key):
                return 0.95 * self.device.tc_peak_tflops(
                    ab.peak_key, at_observed_clock=True
                )
            # surface the canonical unsupported-precision error
            self.device.tensor_core.dense_peak(ab.peak_key)
            raise  # pragma: no cover - dense_peak raised above


# --------------------------------------------------------------------------
# vectorized sweeps
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepEntry:
    """One instruction's slice of a sweep — duck-compatible with the
    ``latency_clk``/``throughput_tflops``/``fraction_of_peak`` surface
    of :class:`MmaTiming`/:class:`WgmmaTiming`."""

    latency_clk: float
    issue_interval_clk: float
    tflops_zero: float
    tflops_rand: float
    frac_zero: float
    frac_rand: float
    #: False when the instruction does not exist on the device's
    #: architecture (the "×" cells of the paper's tables); the numeric
    #: fields are then nan/0 placeholders.
    supported: bool = True

    def throughput_tflops(self, init: InitKind = "zero") -> float:
        return self.tflops_rand if init == "rand" else self.tflops_zero

    def fraction_of_peak(self, init: InitKind = "zero") -> float:
        return self.frac_rand if init == "rand" else self.frac_zero


class _Sweep:
    """Array-of-struct base for batched instruction timings."""

    #: filled by subclass constructors
    latency_clk: np.ndarray
    issue_interval_clk: np.ndarray
    supported: np.ndarray
    _tflops_zero: np.ndarray
    _tflops_rand: np.ndarray
    _frac_zero: np.ndarray
    _frac_rand: np.ndarray

    def __len__(self) -> int:
        return len(self.latency_clk)

    def __getitem__(self, i: int) -> SweepEntry:
        return SweepEntry(
            latency_clk=float(self.latency_clk[i]),
            issue_interval_clk=float(self.issue_interval_clk[i]),
            tflops_zero=float(self._tflops_zero[i]),
            tflops_rand=float(self._tflops_rand[i]),
            frac_zero=float(self._frac_zero[i]),
            frac_rand=float(self._frac_rand[i]),
            supported=bool(self.supported[i]),
        )

    def throughput_tflops(self, init: InitKind = "zero") -> np.ndarray:
        return self._tflops_rand if init == "rand" else self._tflops_zero

    def fraction_of_peak(self, init: InitKind = "zero") -> np.ndarray:
        return self._frac_rand if init == "rand" else self._frac_zero


class MmaSweep(_Sweep):
    """Batched ``mma`` timings (one NumPy pass over the whole grid)."""

    def __init__(self, device: DeviceSpec,
                 instrs: Sequence[MmaInstruction]) -> None:
        from repro.power import PowerModel

        self.device = device
        self.instructions = tuple(instrs)
        cal = device.pack.mma
        n = len(self.instructions)
        pm = PowerModel(device)

        # Pack per-instruction table lookups; all arithmetic below is
        # elementwise float64 and mirrors MmaTiming op-for-op.
        # Instructions the architecture lacks entirely (Table VI "×"
        # cells, e.g. TF32 on Volta) are marked unsupported instead of
        # raising, so one grid can sweep every device.
        lat = np.zeros(n)
        eff = np.zeros(n)
        peak_rate = np.zeros(n)       # tc flops/clk/SM (0 off-TC)
        peak_tflops = np.full(n, np.nan)
        flops = np.empty(n)
        icount = np.ones(n)
        on_tc = np.zeros(n, dtype=bool)
        f32acc_half = np.zeros(n, dtype=bool)
        supported = np.ones(n, dtype=bool)
        sparse = np.zeros(n, dtype=bool)
        energy = np.zeros(n)
        peak_cache: Dict = {}
        for i, instr in enumerate(self.instructions):
            sparse[i] = instr.sparse
            flops[i] = instr.flops
            try:
                lowered = lower(instr, device.pack)
            except UnsupportedInstruction:
                supported[i] = False
                continue
            tc = lowered.uses_tensor_core
            on_tc[i] = tc
            icount[i] = lowered.instruction_count
            steps = instr.shape.k // mma_shapes(instr.ab_type)[0].k
            slow_f32acc = (cal.f32acc_latency_clk is not None
                           and instr.cd_type is DType.FP32)
            lat[i] = (cal.f32acc_latency_clk[steps] if slow_f32acc
                      else cal.latency_clk[steps]) if tc else 0.0
            eff[i] = (cal.efficiency[instr.sparse][steps]
                      if tc else 0.0)
            f32acc_half[i] = (
                cal.f32acc_rate != 1.0
                and instr.ab_type in (DType.FP16, DType.BF16)
                and instr.cd_type is DType.FP32
            )
            key = (instr.ab_type.peak_key, instr.sparse)
            if key not in peak_cache:
                try:
                    peak_cache[key] = (
                        device.tc_flops_per_clk_sm(key[0],
                                                   sparse=key[1]),
                        device.tc_peak_tflops(key[0], sparse=key[1]),
                    )
                except KeyError:
                    peak_cache[key] = (0.0, np.nan)
            if tc:
                peak_rate[i], peak_tflops[i] = peak_cache[key]
            energy[i] = pm.energy_pj("mma", instr.ab_type,
                                     instr.cd_type, instr.sparse)

        self.supported = supported
        self.latency_clk = np.where(
            supported, np.where(on_tc, lat, 5.0 * icount), np.nan)
        rate = peak_rate * eff
        rate = np.where(f32acc_half, rate * cal.f32acc_rate, rate)
        rate = np.where(on_tc, rate, cal.pipes_per_sm * 32 * 2 / 2.0)
        rate = np.where(supported, rate, 0.0)
        self.throughput_flops_per_clk_sm = rate
        with np.errstate(divide="ignore"):
            self.issue_interval_clk = flops / (rate / cal.pipes_per_sm)
        base = (rate * device.num_sms
                * device.clocks.observed_hz / 1e12)
        self._tflops_zero = base
        scale = pm.throttle_scale_many(
            energies_pj=energy, tflops=base, sparse=sparse,
            operand_bytes_per_s=np.zeros(n))
        self._tflops_rand = base * scale
        with np.errstate(invalid="ignore"):
            self._frac_zero = self._tflops_zero / peak_tflops
            self._frac_rand = self._tflops_rand / peak_tflops
        _record_tc_batch(
            "mma", device,
            [ins for ins, ok in zip(self.instructions, supported) if ok])


class WgmmaSweep(_Sweep):
    """Batched ``wgmma`` timings (Hopper only)."""

    def __init__(self, device: DeviceSpec,
                 instrs: Sequence[WgmmaInstruction]) -> None:
        from repro.power import PowerModel

        if not device.pack.has_wgmma:
            raise UnsupportedInstruction(
                f"{device.name} has no wgmma instructions"
            )
        self.device = device
        self.instructions = tuple(instrs)
        cal = device.pack.wgmma
        n = len(self.instructions)
        pm = PowerModel(device)
        smem = device.mem_widths.smem_bytes_per_clk_sm

        nn = np.empty(n)
        flops = np.empty(n)
        peak_rate = np.empty(n)
        peak_tflops = np.empty(n)
        smem_bytes = np.empty(n)
        operand_bytes = np.empty(n)
        extra_a = np.empty(n)          # sparse-SS unpruned-A cycles
        ss = np.zeros(n, dtype=bool)
        sparse = np.zeros(n, dtype=bool)
        energy = np.empty(n)
        peak_cache: Dict = {}
        for i, instr in enumerate(self.instructions):
            nn[i] = instr.n
            flops[i] = instr.flops
            is_ss = instr.a_source is OperandSource.SHARED
            ss[i] = is_ss
            sparse[i] = instr.sparse
            key = (instr.ab_type.peak_key, instr.sparse)
            if key not in peak_cache:
                peak_cache[key] = (
                    device.tc_flops_per_clk_sm(key[0], sparse=key[1]),
                    device.tc_peak_tflops(key[0], sparse=key[1]),
                )
            peak_rate[i], peak_tflops[i] = peak_cache[key]
            smem_bytes[i] = instr.shared_memory_bytes()
            b = smem_bytes[i]
            if not is_ss:
                a_bytes = instr.m * instr.k * instr.ab_type.bytes
                meta = (instr.m * instr.k / 4.0) if instr.sparse else 0.0
                b += a_bytes + meta
            operand_bytes[i] = b
            extra_a[i] = (instr.m * instr.k * instr.ab_type.bytes
                          / smem)
            energy[i] = pm.energy_pj("wgmma", instr.ab_type,
                                     instr.cd_type, instr.sparse)

        base = nn / 2.0
        dense_lat = np.maximum(base, cal.min_latency_clk) \
            + np.where(ss, _wgmma_ss_stall_array(nn), 0.0)
        sparse_lat = np.where(
            ss, base + extra_a,
            np.maximum(base, cal.sparse_rs_floor_clk))
        self.latency_clk = np.where(sparse, sparse_lat, dense_lat)
        compute_interval = flops / (peak_rate * cal.compute_eff)
        self.compute_interval_clk = compute_interval
        self.smem_interval_clk = smem_bytes / smem
        self.issue_interval_clk = np.maximum(
            self.latency_clk * cal.chain_stretch, compute_interval)
        rate = flops / self.issue_interval_clk
        self.throughput_flops_per_clk_sm = rate
        tz = (rate * device.num_sms
              * device.clocks.observed_hz / 1e12)
        self._tflops_zero = tz
        operand_rate = (operand_bytes / self.issue_interval_clk
                        * device.num_sms * device.clocks.observed_hz)
        scale = pm.throttle_scale_many(
            energies_pj=energy, tflops=tz, sparse=sparse,
            operand_bytes_per_s=operand_rate)
        self._tflops_rand = tz * scale
        self._frac_zero = tz / peak_tflops
        self._frac_rand = self._tflops_rand / peak_tflops
        self.supported = np.ones(n, dtype=bool)
        _record_tc_batch("wgmma", device, self.instructions)


def _wgmma_ss_stall_array(n: np.ndarray) -> np.ndarray:
    """Elementwise :func:`_wgmma_ss_stall` with identical arithmetic."""
    small = np.minimum(4.0 + n / 8.0, 8.0)
    mid = 8.0 * (64 - n) / 32.0
    return np.where(n >= 64, 0.0, np.where(n <= 32, small, mid))


class TensorCoreTimingModel(ScalarTensorCoreTimingModel):
    """The production timing model: per-instruction pricing plus
    NumPy-batched :meth:`mma_sweep`/:meth:`wgmma_sweep` fast paths
    that price a whole Table VII–X grid in one pass.

    The sweeps are render-identical to the scalar reference — every
    elementwise operation mirrors :class:`MmaTiming`/
    :class:`WgmmaTiming` in the same order — and feed the same
    ``tc.*`` observability counters in batched form.
    """

    def mma_sweep(self, instrs: Sequence[MmaInstruction]) -> MmaSweep:
        return MmaSweep(self.device, instrs)

    def wgmma_sweep(self,
                    instrs: Sequence[WgmmaInstruction]) -> WgmmaSweep:
        return WgmmaSweep(self.device, instrs)
