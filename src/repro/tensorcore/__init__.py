"""Tensor-core functional and timing models.

* :mod:`repro.tensorcore.functional` — bit-accurate execution of
  ``mma``/``wgmma`` tiles: operands quantised with
  :mod:`repro.numerics`, products formed exactly, accumulation rounded
  in the accumulator precision.
* :mod:`repro.tensorcore.sparse` — 2:4 structured sparsity: pruning,
  compression to values + metadata, and on-the-fly decompression.
* :mod:`repro.tensorcore.timing` — latency and sustained-throughput
  models for every instruction of Tables VII–X, built from three
  mechanisms: per-architecture issue intervals (calibrated the way
  validated GPU simulators calibrate pipe tables), the dependent-
  accumulator chain that makes wgmma throughput track its completion
  latency, and shared-memory port pressure (which penalises sparse
  "SS" mode by exactly the unpruned-A traffic).
* :mod:`repro.tensorcore.gemm` — a tiled GEMM driver over the
  functional engine (used by the Transformer-Engine analogue).
"""

from __future__ import annotations

from repro.tensorcore.functional import (
    matmul_quantized,
    mma_functional,
    wgmma_functional,
)
from repro.tensorcore.sparse import (
    SparseOperand,
    compress_2_4,
    decompress_2_4,
    prune_2_4,
    sparsity_pattern_valid,
)
from repro.tensorcore.timing import (
    MmaSweep,
    MmaTiming,
    ScalarTensorCoreTimingModel,
    SweepEntry,
    TensorCoreTimingModel,
    WgmmaSweep,
    WgmmaTiming,
)
from repro.tensorcore.gemm import TiledGemm, GemmReport

__all__ = [
    "mma_functional",
    "wgmma_functional",
    "matmul_quantized",
    "prune_2_4",
    "compress_2_4",
    "decompress_2_4",
    "SparseOperand",
    "sparsity_pattern_valid",
    "ScalarTensorCoreTimingModel",
    "TensorCoreTimingModel",
    "SweepEntry",
    "MmaSweep",
    "WgmmaSweep",
    "MmaTiming",
    "WgmmaTiming",
    "TiledGemm",
    "GemmReport",
]
