"""The parallel experiment runner.

Experiments are independent pure functions of their
:class:`~repro.core.context.RunContext`, so the suite parallelises
trivially — the only care needed is determinism (results are merged in
requested-name order no matter which worker finishes first) and
picklability (workers receive ``(name, context_payload)`` and ship
back ``(name, table, checks, wall)``; the
:class:`~repro.core.registry.ExperimentResult` is reassembled in the
parent against its own registry, because ``Experiment.builder`` is an
arbitrary callable that may not pickle, and the context hook — an
arbitrary callable too — never crosses the process boundary).

:func:`parallel_map` is the same machinery for non-experiment
workloads (the cache-study probe sweeps): a module-level worker
function fanned over a pool, results in input order.

Two dispatch disciplines coexist:

* **chunked** (``pool.map`` with a chunksize) — lowest per-item
  overhead, but a pool worker owns its chunk to completion, so a
  heavy-tailed job mix strands the light chunks behind the heavy one;
* **work-stealing** (:func:`parallel_imap` —
  ``imap_unordered`` over index-tagged items) — completion-order
  streaming where idle workers immediately pull the next item, which
  is what lets thousands of small jobs saturate the pool
  (``benchmarks/bench_fuzz.py`` gates the ≥2x claim).  Callers
  re-merge by the yielded index when they need input order —
  ``parallel_map(..., unordered=True)`` and the experiment runner do
  exactly that, so determinism is untouched.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.context import DEFAULT_CONTEXT, RunContext
from repro.core.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
)
from repro.obs import session as _obs
from repro.obs.session import ObsSession
from repro.perf.cache import ResultCache
from repro.perf.profile import Profiler

__all__ = ["RunReport", "run_experiments", "parallel_map",
           "parallel_imap"]


def _run_one(task: Tuple[str, dict, Optional[dict]]) \
        -> Tuple[str, object, tuple, float, Optional[dict]]:
    """Worker entry point — must stay module-level for pickling.

    Importing :mod:`repro.core` on the worker side (re)populates the
    registry, so this also works under spawn-style process start
    methods where the child begins with a blank interpreter.

    When observability is requested (``obs_cfg``), the experiment runs
    under a **fresh nested session** and its counter/event delta ships
    back with the result.  The same path runs in-process for serial
    runs, so the parent merges per-experiment integer deltas in
    requested-name order either way — which is what makes serial and
    ``--jobs N`` counter dumps byte-identical.
    """
    import repro.core  # noqa: F401  (registers experiments)

    name, ctx_payload, obs_cfg = task
    ctx = RunContext.from_payload(ctx_payload)
    t0 = time.perf_counter()
    if obs_cfg is not None:
        session = ObsSession(trace=bool(obs_cfg.get("trace")))
        with session.activate():
            result = get_experiment(name).run(ctx)
        dump = session.dump()
    else:
        result = get_experiment(name).run(ctx)
        dump = None
    wall = time.perf_counter() - t0
    return name, result.table, tuple(result.checks), wall, dump


@dataclass(frozen=True)
class RunReport:
    """Outcome of one :func:`run_experiments` invocation."""

    results: Dict[str, ExperimentResult]   # in requested order
    profiler: Profiler

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results.values())


def run_experiments(
    names: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    context: Optional[RunContext] = None,
) -> RunReport:
    """Run ``names`` (default: all), optionally cached and parallel.

    The returned mapping iterates in requested-name order and every
    result is identical to what a serial ``run_experiment`` loop would
    produce under the same ``context`` — parallelism and caching
    change wall time only.
    """
    ctx = DEFAULT_CONTEXT if context is None else context
    if names is None:
        names = list_experiments()
    names = list(names)
    for name in names:
        get_experiment(name)   # fail fast on unknown names

    profiler = Profiler(jobs=max(1, jobs))
    results: Dict[str, ExperimentResult] = {}
    timings: Dict[str, Tuple[float, bool]] = {}

    sess = _obs.ACTIVE
    tracer = sess.tracer if sess is not None else None

    def _span(label: str, **args):
        """A ``runner.*`` self-profiling span on the wall track —
        orchestration overhead (cache probes, serialization, dispatch,
        merge) shows up in the trace next to the experiment spans."""
        if tracer is None:
            return nullcontext()
        return tracer.span(label, cat="runner", tid="runner",
                           args=args or None)

    # 1. serve what we can from the cache
    pending: List[str] = []
    for name in names:
        hit = None
        if cache is not None:
            with _span("runner.cache_lookup", experiment=name):
                t0 = time.perf_counter()
                hit = cache.get(name, ctx)
                wall = time.perf_counter() - t0
        if hit is not None:
            results[name] = hit
            timings[name] = (wall, True)
        else:
            pending.append(name)

    # 2. run the rest, fanned out if asked to
    if pending:
        obs_cfg = ({"trace": sess.tracer is not None}
                   if sess is not None else None)
        with _span("runner.context_serialize"):
            payload = ctx.to_payload()
            tasks = [(name, payload, obs_cfg) for name in pending]
        with _span("runner.dispatch", jobs=max(1, jobs),
                   pending=len(pending)):
            # work-stealing dispatch: completion order is arbitrary,
            # so collect by index and process in requested order —
            # the merge below stays deterministic either way
            outcomes: List[Any] = [None] * len(tasks)
            for i, outcome in parallel_imap(_run_one, tasks,
                                            jobs=jobs):
                outcomes[i] = outcome
        for name, table, checks, wall, dump in outcomes:
            res = ExperimentResult(
                experiment=get_experiment(name),
                table=table,
                checks=checks,
                context=ctx.without_hook(),
            )
            results[name] = res
            timings[name] = (wall, False)
            if sess is not None and dump is not None:
                with _span("runner.merge", experiment=name):
                    sess.merge(dump, experiment=name)
            ctx.emit(name, wall)
            if cache is not None:
                with _span("runner.cache_store", experiment=name):
                    cache.put(name, res, ctx)

    # 3. deterministic merge: requested order, whatever ran where
    ordered = {name: results[name] for name in names}
    for name in names:
        wall, cached = timings[name]
        profiler.add(name, wall, cached=cached)
    if cache is not None:
        profiler.cache_hits = cache.stats.hits
        profiler.cache_misses = cache.stats.misses
    else:
        profiler.cache_misses = len(names)
    return RunReport(results=ordered, profiler=profiler)


def _indexed_call(task: Tuple[Callable[[Any], Any], int, Any]) \
        -> Tuple[int, Any]:
    """Worker shim — tags each result with its input index so the
    parent can re-merge completion-order streams deterministically.
    Must stay module-level for pickling (and so must ``fn``)."""
    fn, index, item = task
    return index, fn(item)


def parallel_imap(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int = 1,
    chunksize: int = 1,
) -> Iterator[Tuple[int, Any]]:
    """Work-stealing map: yields ``(index, fn(item))`` in
    **completion order**.

    Built on ``multiprocessing.Pool.imap_unordered`` with a small
    chunksize, so an idle worker steals the next pending item instead
    of sitting behind a pre-assigned chunk — on heavy-tailed job
    mixes this is what keeps the pool saturated.  ``jobs <= 1`` or a
    single item short-circuits to a serial generator (indices then
    arrive in input order, trivially).

    Callers needing input order re-merge by the yielded index
    (:func:`parallel_map` with ``unordered=True`` does, as do the
    experiment runner and the fuzz driver's reorder window).
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        for i, x in enumerate(items):
            yield i, fn(x)
        return
    tasks = [(fn, i, x) for i, x in enumerate(items)]
    with multiprocessing.Pool(
        processes=min(jobs, len(items))
    ) as pool:
        yield from pool.imap_unordered(_indexed_call, tasks,
                                       chunksize=max(1, chunksize))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int = 1,
    chunksize: int = 1,
    unordered: bool = False,
) -> List[Any]:
    """``[fn(x) for x in items]``, fanned over a process pool.

    ``fn`` must be a module-level (picklable) callable; results come
    back in input order regardless of completion order.  ``jobs <= 1``
    or a single item short-circuits to the serial loop, so callers can
    pass a user-controlled job count straight through.

    ``unordered=True`` switches the dispatch discipline to the
    work-stealing pool (:func:`parallel_imap`) and re-merges by index
    — same results, same order, better wall time when item costs are
    skewed.  ``chunksize`` keeps its ``pool.map`` meaning either way.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    if unordered:
        out: List[Any] = [None] * len(items)
        for i, result in parallel_imap(fn, items, jobs=jobs,
                                       chunksize=chunksize):
            out[i] = result
        return out
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items))
    ) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))
