"""Content-addressed on-disk cache for experiment results.

An experiment's output is a pure function of (a) its builder code and
everything it transitively calls, and (b) the registered device specs.
The cache key therefore hashes the experiment name together with the
package version, a digest of every :class:`~repro.arch.DeviceSpec` and
a digest of the whole ``repro`` source tree.  Any edit to any source
file — even an unrelated one — changes the key and the stale entry is
simply never looked up again, which is what makes caching safe to
leave on by default.

Entries store the pickled :class:`~repro.core.tables.Table` and
:class:`~repro.core.checks.Check` tuple, *not* the
:class:`~repro.core.registry.ExperimentResult` itself: the result
holds the experiment (whose builder is an arbitrary callable, often
unpicklable) and is re-attached from the live registry on load.
Corrupt or truncated files are treated as misses.  Writes go through a
temp file + :func:`os.replace` so concurrent runners never observe a
partial entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.registry import ExperimentResult, get_experiment

__all__ = ["ResultCache", "ResultCacheStats", "default_cache_dir",
           "source_digest", "device_digest"]

#: bump when the on-disk payload layout changes
_SCHEMA = 1


def default_cache_dir() -> Path:
    """``$HOPPERDISSECT_CACHE_DIR``, else the XDG cache location."""
    env = os.environ.get("HOPPERDISSECT_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "hopperdissect"


def source_digest() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` tree."""
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def device_digest() -> str:
    """Digest of every registered device spec."""
    from repro.arch import get_device, list_devices

    h = hashlib.sha256()
    for name in list_devices():
        h.update(repr(get_device(name)).encode())
        h.update(b"\0")
    return h.hexdigest()


@dataclass
class ResultCacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


@dataclass
class ResultCache:
    """Content-addressed store of experiment results.

    ``root=None`` resolves to :func:`default_cache_dir` at first use.
    """

    root: Optional[Path] = None
    stats: ResultCacheStats = field(default_factory=ResultCacheStats)
    _env_digest: Optional[str] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.root is None:
            self.root = default_cache_dir()
        self.root = Path(self.root)

    # -- keys ---------------------------------------------------------------

    def environment_digest(self) -> str:
        """Digest of everything a result depends on besides its name.

        Computed once per cache instance — the source tree cannot
        change under a running process in a way we could honour
        anyway.
        """
        if self._env_digest is None:
            import repro

            h = hashlib.sha256()
            h.update(f"schema={_SCHEMA}\n".encode())
            h.update(f"version={repro.__version__}\n".encode())
            h.update(f"devices={device_digest()}\n".encode())
            h.update(f"source={source_digest()}\n".encode())
            self._env_digest = h.hexdigest()
        return self._env_digest

    def path_for(self, name: str) -> Path:
        key = hashlib.sha256(
            f"{name}\n{self.environment_digest()}".encode()
        ).hexdigest()
        return self.root / f"{name}-{key[:20]}.pkl"

    # -- the cache protocol -------------------------------------------------

    def get(self, name: str) -> Optional[ExperimentResult]:
        """Return the cached result for ``name`` or ``None``."""
        path = self.path_for(name)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (payload["schema"] != _SCHEMA
                    or payload["name"] != name):
                raise ValueError("stale payload")
            result = ExperimentResult(
                experiment=get_experiment(name),
                table=payload["table"],
                checks=tuple(payload["checks"]),
            )
        except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                ValueError, AttributeError, ImportError):
            # missing, corrupt, or from an incompatible build: a miss
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, name: str, result: ExperimentResult) -> Path:
        """Store ``result`` under ``name`` (atomic)."""
        path = self.path_for(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": _SCHEMA,
            "name": name,
            "table": result.table,
            "checks": tuple(result.checks),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{name}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Delete every entry under the cache root; returns a count."""
        if not self.root.is_dir():
            return 0
        n = 0
        for p in self.root.glob("*.pkl"):
            p.unlink(missing_ok=True)
            n += 1
        return n
