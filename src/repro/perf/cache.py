"""Content-addressed on-disk cache for experiment results.

An experiment's output is a pure function of (a) its builder code and
everything it transitively calls, and (b) the :class:`RunContext` it
ran under (device sweep, seed, fidelity) plus the registered specs of
those devices.  The cache key therefore hashes the experiment name
together with the package version, the context token, a digest of the
context's :class:`~repro.arch.DeviceSpec` objects and — the part that
makes warm caches survive edits — a digest of only the ``repro``
modules the builder *transitively imports* (its **dependency cut**),
not the whole source tree.

The cut is computed statically: each module's AST is scanned for
``import``/``from`` statements (including ones nested inside
functions, which the experiment modules use liberally) and the
``repro.*`` targets are followed breadth-first.  An edit to
``repro/te/modules.py`` therefore invalidates the Transformer-Engine
experiments but leaves the memory-hierarchy entries warm.  Imports are
mapped to *submodule files*, deliberately not to the parent package's
``__init__`` — ``repro/core/__init__.py`` imports every experiment
module, so routing through it would glue all cuts together and undo
the point of the exercise.  For the same reason the orchestration
layer itself (``repro.perf``, ``repro.cli``) is excluded from the
graph: it fans work out and caches results but — by contract, and by
the parallel-equals-serial tests — never changes what an experiment
computes, while its runner imports ``repro.core`` wholesale and would
otherwise re-glue everything.  Builders living outside ``repro`` fall
back to the conservative whole-tree digest.

Entries store the pickled :class:`~repro.core.tables.Table` and
:class:`~repro.core.checks.Check` tuple, *not* the
:class:`~repro.core.registry.ExperimentResult` itself: the result
holds the experiment (whose builder is an arbitrary callable, often
unpicklable) and is re-attached from the live registry on load.
Corrupt or truncated files are treated as misses.  Writes go through a
temp file + :func:`os.replace` so concurrent runners never observe a
partial entry.  Keys embed the context token, so the same experiment
cached under different contexts coexists on disk.

Two extensions serve the long-running query service
(:mod:`repro.serve`):

* a **size guard** — ``max_entries`` (or
  ``$HOPPERDISSECT_CACHE_MAX_ENTRIES``) bounds the entry count with
  LRU eviction (reads refresh an entry's mtime; the oldest entries
  beyond the bound are deleted on store, counted by
  ``stats.evictions`` and the ``result_cache.eviction`` provenance
  counter), so an always-on service cannot grow the cache without
  bound;
* a **blob tier** — :meth:`ResultCache.get_blob` /
  :meth:`ResultCache.put_blob` store arbitrary pickled payloads under
  caller-supplied content keys with the same atomic-write, corrupt-
  entry and eviction discipline, which is how shard-level prediction
  entries share the experiment cache's content-addressed store.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.context import DEFAULT_CONTEXT, RunContext
from repro.core.registry import ExperimentResult, get_experiment
from repro.obs import session as _obs


def _record_provenance(event: str, name: str) -> None:
    """Feed the active observability session one result-cache event
    (``result_cache.hit``/``miss``/``store`` counters + a marker)."""
    sess = _obs.ACTIVE
    if sess is None:
        return
    sess.counters.add(f"result_cache.{event}")
    if sess.tracer is not None:
        sess.tracer.instant(f"result_cache {event}: {name}",
                            cat="result_cache",
                            args={"experiment": name, "event": event})

__all__ = ["ResultCache", "ResultCacheStats", "default_cache_dir",
           "source_digest", "device_digest", "dependency_cut"]

#: bump when the on-disk payload layout changes
_SCHEMA = 2

#: orchestration modules kept out of dependency graphs — they decide
#: how builders run, never what they compute (see the module docstring)
_GRAPH_EXCLUDED = ("repro.perf", "repro.cli")


def _graph_excluded(module: str) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in _GRAPH_EXCLUDED)


def default_cache_dir() -> Path:
    """``$HOPPERDISSECT_CACHE_DIR``, else the XDG cache location."""
    env = os.environ.get("HOPPERDISSECT_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "hopperdissect"


def _read_source(path: Path) -> bytes:
    """Read one module's source.  Module-level so tests can stub the
    view of the tree without touching real files."""
    return Path(path).read_bytes()


def _module_index() -> Dict[str, Path]:
    """Map every importable ``repro.*`` module name to its file."""
    import repro

    root = Path(repro.__file__).resolve().parent
    index: Dict[str, Path] = {"repro": root / "__init__.py"}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        index[".".join(["repro", *parts]) if parts else "repro"] = path
    return index


def _imported_modules(module: str, source: bytes,
                      index: Dict[str, Path]) -> List[str]:
    """The ``repro.*`` modules ``module``'s source imports.

    ``from repro.pkg import name`` resolves to ``repro.pkg`` — or to
    ``repro.pkg.name`` when that is itself a module — never to parent
    packages of an explicit submodule target.  Relative imports are
    resolved against ``module``'s package.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    package = module if index.get(module, Path("")).name \
        == "__init__.py" else module.rpartition(".")[0]
    found: List[str] = []

    def add(name: str) -> None:
        if (name in index and name not in found
                and not _graph_excluded(name)):
            found.append(name)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:                       # relative import
                base_parts = package.split(".")
                up = node.level - 1
                base_parts = base_parts[:len(base_parts) - up] \
                    if up else base_parts
                base = ".".join(base_parts)
                target = f"{base}.{node.module}" if node.module \
                    else base
            else:
                target = node.module or ""
            if not target.startswith("repro"):
                continue
            add(target)
            for alias in node.names:
                add(f"{target}.{alias.name}")
    return found


def dependency_cut(module: str) -> Tuple[str, ...]:
    """Every ``repro.*`` module transitively imported by ``module``
    (inclusive), sorted — the invalidation scope of a builder."""
    index = _module_index()
    if module not in index:
        return ()
    seen = {module}
    frontier = [module]
    while frontier:
        current = frontier.pop()
        deps = _imported_modules(current,
                                 _read_source(index[current]), index)
        for dep in deps:
            if dep not in seen:
                seen.add(dep)
                frontier.append(dep)
    return tuple(sorted(seen))


def source_digest() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` tree —
    the conservative fallback for builders outside ``repro``."""
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(_read_source(path))
        h.update(b"\0")
    return h.hexdigest()


def device_digest(devices: Optional[Tuple[str, ...]] = None) -> str:
    """Digest of the named device specs (default: all registered)."""
    from repro.arch import get_device, list_devices

    names = list(devices) if devices else list_devices()
    h = hashlib.sha256()
    for name in sorted(names):
        h.update(repr(get_device(name)).encode())
        h.update(b"\0")
    return h.hexdigest()


@dataclass
class ResultCacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


def default_max_entries() -> Optional[int]:
    """``$HOPPERDISSECT_CACHE_MAX_ENTRIES`` as an int (``0`` or unset
    meaning unbounded, the historical behaviour)."""
    raw = os.environ.get("HOPPERDISSECT_CACHE_MAX_ENTRIES", "")
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class ResultCache:
    """Content-addressed store of experiment results.

    ``root=None`` resolves to :func:`default_cache_dir` at first use.
    ``max_entries=None`` reads :func:`default_max_entries`; a positive
    bound turns on LRU eviction (see the module docstring).
    """

    root: Optional[Path] = None
    stats: ResultCacheStats = field(default_factory=ResultCacheStats)
    max_entries: Optional[int] = None
    _cut_digests: Dict[str, str] = field(default_factory=dict,
                                         repr=False)
    _fallback_digest: Optional[str] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.root is None:
            self.root = default_cache_dir()
        self.root = Path(self.root)
        if self.max_entries is None:
            self.max_entries = default_max_entries()
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be positive or None")

    # -- keys ---------------------------------------------------------------

    def _cut_digest(self, module: str) -> str:
        """Digest of ``module``'s dependency cut (memoised — source
        cannot change under a running process in a way we could
        honour anyway)."""
        if module not in self._cut_digests:
            index = _module_index()
            cut = dependency_cut(module)
            if not cut:          # builder outside repro: whole tree
                if self._fallback_digest is None:
                    self._fallback_digest = source_digest()
                self._cut_digests[module] = \
                    f"tree={self._fallback_digest}"
            else:
                h = hashlib.sha256()
                for dep in cut:
                    h.update(dep.encode())
                    h.update(b"\0")
                    h.update(_read_source(index[dep]))
                    h.update(b"\0")
                self._cut_digests[module] = f"cut={h.hexdigest()}"
        return self._cut_digests[module]

    def key_for(self, name: str,
                context: Optional[RunContext] = None) -> str:
        """The full content-address of one (experiment, context)."""
        import repro

        ctx = DEFAULT_CONTEXT if context is None else context
        module = getattr(get_experiment(name).builder, "__module__",
                         "") or ""
        h = hashlib.sha256()
        h.update(f"schema={_SCHEMA}\n".encode())
        h.update(f"version={repro.__version__}\n".encode())
        h.update(f"name={name}\n".encode())
        h.update(f"context={ctx.token()}\n".encode())
        h.update(f"devices={device_digest(ctx.devices)}\n".encode())
        h.update(f"source:{self._cut_digest(module)}\n".encode())
        return h.hexdigest()

    def path_for(self, name: str,
                 context: Optional[RunContext] = None) -> Path:
        return self.root / f"{name}-{self.key_for(name, context)[:20]}.pkl"

    # -- the cache protocol -------------------------------------------------

    def get(self, name: str,
            context: Optional[RunContext] = None) \
            -> Optional[ExperimentResult]:
        """Return the cached result for ``name`` under ``context``
        (default context when omitted), or ``None``."""
        ctx = DEFAULT_CONTEXT if context is None else context
        path = self.path_for(name, ctx)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (payload["schema"] != _SCHEMA
                    or payload["name"] != name):
                raise ValueError("stale payload")
            result = ExperimentResult(
                experiment=get_experiment(name),
                table=payload["table"],
                checks=tuple(payload["checks"]),
                context=RunContext.from_payload(payload["context"]),
            )
        except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                ValueError, AttributeError, ImportError):
            # missing, corrupt, or from an incompatible build: a miss
            self.stats.misses += 1
            _record_provenance("miss", name)
            return None
        self._touch(path)
        self.stats.hits += 1
        _record_provenance("hit", name)
        return result

    def put(self, name: str, result: ExperimentResult,
            context: Optional[RunContext] = None) -> Path:
        """Store ``result`` under ``name`` + context (atomic)."""
        ctx = context or result.context or DEFAULT_CONTEXT
        path = self.path_for(name, ctx)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": _SCHEMA,
            "name": name,
            "context": ctx.to_payload(),
            "table": result.table,
            "checks": tuple(result.checks),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{name}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        _record_provenance("store", name)
        self._enforce_bound(keep=path)
        return path

    # -- the blob tier ------------------------------------------------------

    def blob_path(self, kind: str, key: str) -> Path:
        """Where a blob of ``kind`` under content ``key`` lives — the
        same ``{name}-{key[:20]}.pkl`` layout the experiment tier uses,
        so :meth:`clear` and the LRU bound govern both tiers."""
        return self.root / f"{kind}-{key[:20]}.pkl"

    def get_blob(self, kind: str, key: str) -> Optional[Any]:
        """The payload stored under (``kind``, ``key``), or ``None``.
        Corrupt or mismatched entries are misses, like :meth:`get`."""
        path = self.blob_path(kind, key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (payload["schema"] != _SCHEMA
                    or payload["kind"] != kind
                    or payload["key"] != key):
                raise ValueError("stale payload")
            value = payload["value"]
        except (OSError, pickle.UnpicklingError, EOFError, KeyError,
                ValueError, AttributeError, ImportError):
            self.stats.misses += 1
            _record_provenance("miss", kind)
            return None
        self._touch(path)
        self.stats.hits += 1
        _record_provenance("hit", kind)
        return value

    def put_blob(self, kind: str, key: str, value: Any) -> Path:
        """Store a picklable ``value`` under (``kind``, ``key``)
        atomically, then enforce the LRU bound."""
        path = self.blob_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": _SCHEMA, "kind": kind, "key": key,
                   "value": value}
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{kind}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        _record_provenance("store", kind)
        self._enforce_bound(keep=path)
        return path

    # -- the size guard -----------------------------------------------------

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime so reads count as recent use."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _enforce_bound(self, keep: Optional[Path] = None) -> int:
        """Evict oldest-mtime entries beyond ``max_entries``.  The
        just-written ``keep`` path is never evicted, even under a
        pathological mtime tie.  Returns the eviction count."""
        if self.max_entries is None or not self.root.is_dir():
            return 0
        entries = []
        for p in self.root.glob("*.pkl"):
            try:
                entries.append((p.stat().st_mtime, str(p), p))
            except OSError:
                continue            # raced with another evictor
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return 0
        entries.sort()              # oldest first; path breaks ties
        evicted = 0
        for _, _, p in entries:
            if evicted >= excess:
                break
            if keep is not None and p == keep:
                continue
            try:
                p.unlink()
            except OSError:
                continue
            evicted += 1
            self.stats.evictions += 1
            # session side: the result_cache.eviction provenance
            # counter only — serve.* tallies belong to the service's
            # private stats bank, never the deterministic bank
            _record_provenance("eviction", p.stem)
        return evicted

    def clear(self) -> int:
        """Delete every entry under the cache root; returns a count."""
        if not self.root.is_dir():
            return 0
        n = 0
        for p in self.root.glob("*.pkl"):
            p.unlink(missing_ok=True)
            n += 1
        return n
