"""Performance plumbing for the experiment harness.

Nothing in here changes *what* an experiment computes — this package
exists so the full suite re-runs fast enough to live in an edit loop:

* :mod:`repro.perf.cache` — a content-addressed on-disk result cache.
  Keys cover the experiment name, the package version, a digest of
  every registered device spec and a digest of the ``repro`` source
  tree, so a cached :class:`~repro.core.registry.ExperimentResult` can
  only ever be returned when re-running the builder would provably
  produce the same table and checks.
* :mod:`repro.perf.profile` — per-experiment wall-clock timings, the
  ``BENCH_perf.json`` trajectory format and the regression comparator
  CI runs against the committed baseline.
* :mod:`repro.perf.runner` — the parallel experiment runner
  (:func:`~repro.perf.runner.run_experiments`) that fans builders out
  over a process pool and merges results deterministically in
  requested-name order.
"""

from __future__ import annotations

from repro.perf.cache import ResultCache, ResultCacheStats
from repro.perf.profile import (
    ExperimentTiming,
    Profiler,
    compare_bench,
    load_bench_json,
    write_bench_json,
)
from repro.perf.runner import RunReport, run_experiments

__all__ = [
    "ResultCache",
    "ResultCacheStats",
    "ExperimentTiming",
    "Profiler",
    "compare_bench",
    "load_bench_json",
    "write_bench_json",
    "RunReport",
    "run_experiments",
]
