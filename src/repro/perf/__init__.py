"""Performance plumbing for the experiment harness.

Nothing in here changes *what* an experiment computes — this package
exists so the full suite re-runs fast enough to live in an edit loop:

* :mod:`repro.perf.cache` — a content-addressed on-disk result cache.
  Keys cover the experiment name, the package version, the
  :class:`~repro.core.context.RunContext` token, a digest of the
  context's device specs and a digest of the builder's *dependency
  cut* (the ``repro`` modules it transitively imports), so a cached
  :class:`~repro.core.registry.ExperimentResult` can only ever be
  returned when re-running the builder would provably produce the
  same table and checks — while edits to unrelated modules leave warm
  entries warm.
* :mod:`repro.perf.profile` — per-experiment wall-clock timings, the
  ``BENCH_perf.json`` trajectory format, the append-only
  ``BENCH_perf_history.jsonl`` archive and the regression comparator
  CI runs against the committed baseline.
* :mod:`repro.perf.runner` — the parallel experiment runner
  (:func:`~repro.perf.runner.run_experiments`) that fans
  context-parameterized builders out over a process pool and merges
  results deterministically in requested-name order, plus the generic
  :func:`~repro.perf.runner.parallel_map` used by the probe sweeps.
"""

from __future__ import annotations

from repro.perf.cache import (
    ResultCache,
    ResultCacheStats,
    dependency_cut,
)
from repro.perf.profile import (
    ExperimentTiming,
    Profiler,
    append_bench_history,
    compare_bench,
    latest_bench_entry,
    load_bench_history,
    load_bench_json,
    write_bench_json,
)
from repro.perf.runner import (RunReport, parallel_imap, parallel_map,
                               run_experiments)

__all__ = [
    "ResultCache",
    "ResultCacheStats",
    "dependency_cut",
    "ExperimentTiming",
    "Profiler",
    "compare_bench",
    "load_bench_json",
    "write_bench_json",
    "append_bench_history",
    "load_bench_history",
    "latest_bench_entry",
    "RunReport",
    "run_experiments",
    "parallel_imap",
    "parallel_map",
]
