"""Per-experiment wall-clock accounting and the perf trajectory files.

The runner feeds a :class:`Profiler` one
:class:`ExperimentTiming` per experiment; the profiler renders the
``--profile`` table and serialises to ``BENCH_perf.json``, the
committed timing baseline CI compares fresh runs against via
:func:`compare_bench`.

``BENCH_perf.json`` is a single snapshot; the *archive* variant
``BENCH_perf_history.jsonl`` appends one timestamped snapshot per run
(:func:`append_bench_history`), so the timing trajectory across
commits survives instead of being overwritten.  The regression gate
accepts either: given a ``.jsonl`` it compares against the latest
archived entry (:func:`latest_bench_entry`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "ExperimentTiming",
    "Profiler",
    "write_bench_json",
    "load_bench_json",
    "compare_bench",
    "append_bench_history",
    "load_bench_history",
    "latest_bench_entry",
]

#: bump when the BENCH_perf.json layout changes
_BENCH_SCHEMA = 1


@dataclass(frozen=True)
class ExperimentTiming:
    """Wall time of one experiment in one run."""

    name: str
    wall_s: float
    cached: bool = False


@dataclass
class Profiler:
    """Collects per-experiment timings for one suite run."""

    timings: List[ExperimentTiming] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    def add(self, name: str, wall_s: float, *,
            cached: bool = False) -> None:
        self.timings.append(ExperimentTiming(name, wall_s, cached))

    @property
    def total_s(self) -> float:
        return sum(t.wall_s for t in self.timings)

    def render(self) -> str:
        """The ``--profile`` table, slowest first."""
        lines = [f"{'experiment':<30} {'wall':>10}  source"]
        lines.append("-" * 50)
        for t in sorted(self.timings, key=lambda t: -t.wall_s):
            src = "cache" if t.cached else "run"
            lines.append(f"{t.name:<30} {t.wall_s * 1e3:>8.1f}ms  {src}")
        lines.append("-" * 50)
        summary = f"{'total':<30} {self.total_s * 1e3:>8.1f}ms"
        if self.cache_hits or self.cache_misses:
            summary += (f"  ({self.cache_hits} cached, "
                        f"{self.cache_misses} run)")
        if self.jobs > 1:
            summary += f"  [jobs={self.jobs}]"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": _BENCH_SCHEMA,
            "jobs": self.jobs,
            "total_s": round(self.total_s, 6),
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses},
            "experiments": {
                t.name: {"wall_s": round(t.wall_s, 6),
                         "cached": t.cached}
                for t in self.timings
            },
        }


def write_bench_json(path: Union[str, Path],
                     profiler: Profiler) -> None:
    Path(path).write_text(
        json.dumps(profiler.to_dict(), indent=2, sort_keys=True) + "\n"
    )


def load_bench_json(path: Union[str, Path]) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != _BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {data.get('schema')!r}"
        )
    return data


def append_bench_history(path: Union[str, Path],
                         profiler: Profiler, *,
                         timestamp: Optional[float] = None,
                         label: Optional[str] = None) -> dict:
    """Append one timestamped snapshot to a ``.jsonl`` archive.

    Each line is a complete :meth:`Profiler.to_dict` payload plus a
    ``timestamp`` (unix seconds, ``time.time()`` when omitted) and an
    optional ``label`` (a git rev, a context token, …).  Returns the
    appended entry.
    """
    entry = profiler.to_dict()
    entry["timestamp"] = (time.time() if timestamp is None
                          else float(timestamp))
    if label is not None:
        entry["label"] = label
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_bench_history(path: Union[str, Path]) -> List[dict]:
    """Every entry of a ``.jsonl`` archive, oldest first.

    Blank lines are skipped; a malformed or wrong-schema line is an
    error (a half-written archive should fail loudly, not silently
    shorten history).
    """
    entries: List[dict] = []
    for i, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        data = json.loads(line)
        if data.get("schema") != _BENCH_SCHEMA:
            raise ValueError(
                f"{path}:{i}: unsupported bench schema "
                f"{data.get('schema')!r}"
            )
        entries.append(data)
    return entries


def latest_bench_entry(path: Union[str, Path]) -> dict:
    """The newest (highest-timestamp) entry of a ``.jsonl`` archive."""
    entries = load_bench_history(path)
    if not entries:
        raise ValueError(f"{path}: empty bench history")
    return max(enumerate(entries),
               key=lambda pair: (pair[1].get("timestamp", 0.0),
                                 pair[0]))[1]


def compare_bench(baseline: dict, current: dict, *,
                  threshold: float = 3.0,
                  floor_s: float = 0.05) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    An experiment regresses when its fresh (non-cached) wall time
    exceeds ``threshold ×`` the baseline's — with both sides clamped
    up to ``floor_s`` first, so sub-millisecond experiments can't trip
    the gate on scheduler noise.  Cached timings measure the cache,
    not the experiment, and are skipped on either side.  Experiments
    missing from ``current`` are reported too: a silently dropped
    experiment must not look like a speed-up.
    """
    problems: List[str] = []
    base_exps: Dict[str, dict] = baseline.get("experiments", {})
    cur_exps: Dict[str, dict] = current.get("experiments", {})
    for name in sorted(base_exps):
        base = base_exps[name]
        cur: Optional[dict] = cur_exps.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        if base.get("cached") or cur.get("cached"):
            continue
        base_s = max(float(base["wall_s"]), floor_s)
        cur_s = max(float(cur["wall_s"]), floor_s)
        if cur_s > threshold * base_s:
            problems.append(
                f"{name}: {cur_s:.3f}s vs baseline {base_s:.3f}s "
                f"({cur_s / base_s:.1f}x > {threshold:.1f}x)"
            )
    return problems
