"""FP8 accuracy study: quantisation error through real layers.

The paper reports FP8's throughput; the natural companion question —
*what does the precision cost?* — is answered here by running real
NumPy forwards through :mod:`repro.te.modules` at each precision and
measuring the deviation from the FP64 reference.  Used by the
``examples/numerics_probe.py`` study and the test suite's accuracy
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.te.cost import Precision
from repro.te.modules import Linear, TransformerLayer, \
    TransformerLayerConfig, fp8_autocast

__all__ = ["AccuracyReport", "linear_accuracy", "layer_accuracy"]


@dataclass(frozen=True)
class AccuracyReport:
    """Relative error of one module at one precision."""

    module: str
    precision: Precision
    rel_rms: float
    rel_max: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.module} @ {self.precision.name}: "
                f"rms {self.rel_rms:.2e}, max {self.rel_max:.2e}")


def _errors(got: np.ndarray, ref: np.ndarray) -> tuple[float, float]:
    denom = float(np.sqrt(np.mean(ref * ref))) or 1.0
    rms = float(np.sqrt(np.mean((got - ref) ** 2))) / denom
    scale = float(np.max(np.abs(ref))) or 1.0
    mx = float(np.max(np.abs(got - ref))) / scale
    return rms, mx


def linear_accuracy(
    in_features: int = 256,
    out_features: int = 256,
    batch: int = 64,
    *,
    seed: int = 0,
    precisions: Optional[List[Precision]] = None,
) -> List[AccuracyReport]:
    """Forward error of te.Linear vs the exact FP64 matmul."""
    rng = np.random.default_rng(seed)
    lin = Linear(in_features, out_features, bias=False, rng=rng)
    x = rng.normal(size=(batch, in_features))
    ref = x @ lin.weight.T
    reports = []
    for p in precisions or [Precision.FP16, Precision.BF16,
                            Precision.FP8]:
        if p is Precision.FP8:
            with fp8_autocast():
                got = lin(x)
        else:
            got = lin(x, precision=p)
        rms, mx = _errors(got, ref)
        reports.append(AccuracyReport("Linear", p, rms, mx))
    return reports


def layer_accuracy(
    hidden: int = 64,
    seq: int = 16,
    batch: int = 2,
    *,
    seed: int = 0,
) -> Dict[Precision, AccuracyReport]:
    """Forward error of a full TransformerLayer vs FP64.

    Small dimensions keep the NumPy forward cheap; error *ratios*
    between precisions are dimension-insensitive.
    """
    cfg = TransformerLayerConfig(hidden, 2 * hidden, 4)
    rng = np.random.default_rng(seed)
    layer = TransformerLayer(cfg, rng=rng)
    x = rng.normal(size=(batch, seq, hidden))
    ref = layer(x)       # default precision is FP16 for Linears
    out: Dict[Precision, AccuracyReport] = {}
    for p in (Precision.FP16, Precision.FP8):
        if p is Precision.FP8:
            with fp8_autocast():
                got = layer(x)
        else:
            got = layer(x)
        rms, mx = _errors(got, ref)
        out[p] = AccuracyReport("TransformerLayer", p, rms, mx)
    return out
