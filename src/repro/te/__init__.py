"""Transformer-Engine analogue (paper §III-C, Figs 3–5, Table XII).

A NumPy re-implementation of the Transformer Engine's module zoo with
*real* FP8 numerics (amax scaling, E4M3 quantisation, scale-back — via
:mod:`repro.numerics`) and an operator-level cost model driven by the
device's tensor-core and memory models:

* :mod:`repro.te.cost` — per-operator time: GEMMs run at the device's
  best tensor-core rate for the precision, elementwise/cast/reduction
  kernels run at DRAM bandwidth, every kernel pays a launch overhead.
  The FP8 story of Figs 3–4 (conversion overhead dominating small
  matrices, ~2× at N = 16384) is entirely emergent from this.
* :mod:`repro.te.modules` — ``Linear``, ``LayerNorm``, ``RMSNorm``,
  ``LayerNormMLP``, ``DotProductAttention`` (flash-style, not FP8 —
  matching TE), ``TransformerLayer`` and the ``fp8_autocast`` context.
* :mod:`repro.te.llm` — decode-only Llama cost model: memory-bound
  generation, host-overhead floor, and the OOM matrix of Table XII.
* :mod:`repro.te.workload` — the synthetic ShareGPT-style request
  generator (log-normal prompt/response length mixture).
"""

from __future__ import annotations

from repro.te.cost import CostModel, OpCost, Precision
from repro.te.modules import (
    DotProductAttention,
    LayerNorm,
    LayerNormMLP,
    Linear,
    Module,
    RMSNorm,
    TransformerLayer,
    TransformerLayerConfig,
    fp8_autocast,
    fp8_is_enabled,
)
from repro.te.llm import (
    LlamaSpec,
    LLAMA_MODELS,
    GenerationEstimate,
    LlmInferenceModel,
)
from repro.te.workload import ShareGptWorkload, Request
from repro.te.recipe import DelayedScaling
from repro.te.llama import TinyLlama, TinyLlamaConfig
from repro.te.accuracy import AccuracyReport, layer_accuracy, \
    linear_accuracy

__all__ = [
    "DelayedScaling",
    "TinyLlama",
    "TinyLlamaConfig",
    "AccuracyReport",
    "linear_accuracy",
    "layer_accuracy",
    "CostModel",
    "OpCost",
    "Precision",
    "Module",
    "Linear",
    "LayerNorm",
    "RMSNorm",
    "LayerNormMLP",
    "DotProductAttention",
    "TransformerLayer",
    "TransformerLayerConfig",
    "fp8_autocast",
    "fp8_is_enabled",
    "LlamaSpec",
    "LLAMA_MODELS",
    "LlmInferenceModel",
    "GenerationEstimate",
    "ShareGptWorkload",
    "Request",
]
