"""FP8 scaling recipes: just-in-time vs delayed (amax history).

Transformer Engine's production recipe does not compute the scale from
the *current* tensor (that would serialise an extra reduction before
every GEMM); it uses a **delayed** scale derived from a rolling window
of past amax observations (``amax_history_len``) backed off by
``margin`` powers of two.  The cost: when activations grow faster than
the history window adapts, values saturate.

:class:`DelayedScaling` implements the recipe; the tests quantify the
staleness effect the ``margin`` knob exists to absorb.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Literal

import numpy as np

from repro.numerics import E4M3, FloatFormat
from repro.numerics.quantize import QuantizedTensor

__all__ = ["DelayedScaling"]


@dataclass
class DelayedScaling:
    """Rolling-amax FP8 scaling state for one tensor slot."""

    fmt: FloatFormat = E4M3
    amax_history_len: int = 16
    margin: float = 0.0
    amax_compute: Literal["max", "most_recent"] = "max"
    _history: Deque[float] = field(init=False)

    def __post_init__(self) -> None:
        if self.amax_history_len < 1:
            raise ValueError("history length must be >= 1")
        if self.margin < 0:
            raise ValueError("margin must be non-negative")
        self._history = deque(maxlen=self.amax_history_len)

    # -- state ------------------------------------------------------------

    @property
    def history(self) -> list[float]:
        return list(self._history)

    def observe(self, x: np.ndarray) -> None:
        """Record a tensor's amax without quantising (warm-up step)."""
        amax = float(np.max(np.abs(x))) if np.size(x) else 0.0
        if np.isfinite(amax):
            self._history.append(amax)

    def current_scale(self) -> float:
        """Scale derived from history (1.0 before any observation)."""
        if not self._history:
            return 1.0
        if self.amax_compute == "most_recent":
            amax = self._history[-1]
        else:
            amax = max(self._history)
        if amax == 0.0:
            return 1.0
        return amax / (self.fmt.max_finite * 2.0 ** (-self.margin))

    # -- quantisation ------------------------------------------------------

    def quantize(self, x: np.ndarray) -> QuantizedTensor:
        """Quantise with the *delayed* scale, then record this
        tensor's amax for future steps — TE's exact ordering."""
        arr = np.asarray(x, dtype=np.float64)
        scale = self.current_scale()
        qt = QuantizedTensor(
            data=self.fmt.quantize(arr / scale), scale=scale,
            fmt=self.fmt,
        )
        self.observe(arr)
        return qt

    def saturation_fraction(self, x: np.ndarray) -> float:
        """Fraction of elements that would clip at the current scale —
        the observable symptom of a stale amax."""
        arr = np.asarray(x, dtype=np.float64)
        if arr.size == 0:
            return 0.0
        limit = self.current_scale() * self.fmt.max_finite
        return float(np.mean(np.abs(arr) > limit))
