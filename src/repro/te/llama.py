"""A functional decode-only Llama, end to end.

The cost model in :mod:`repro.te.llm` prices generation; this module
*performs* it (at toy scale): token embedding → a stack of
:class:`~repro.te.modules.TransformerLayer` (RMSNorm + SwiGLU, the
paper's §III-C2 configuration) with a causal mask → final norm →
tied-embedding logits → greedy decoding.  Under ``fp8_autocast`` every
Linear runs the real FP8 recipe, so the numerics of FP8 generation are
observable, not just its throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.te.modules import (
    RMSNorm,
    TransformerLayer,
    TransformerLayerConfig,
)

__all__ = ["TinyLlamaConfig", "TinyLlama"]


@dataclass(frozen=True)
class TinyLlamaConfig:
    """A scaled-down Llama architecture (same shape grammar)."""

    vocab_size: int = 256
    hidden: int = 64
    layers: int = 2
    heads: int = 4
    ffn_hidden: int = 128
    max_seq: int = 128

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ValueError("hidden must divide by heads")
        if min(self.vocab_size, self.layers, self.max_seq) < 1:
            raise ValueError("config values must be positive")

    @property
    def layer_config(self) -> TransformerLayerConfig:
        return TransformerLayerConfig(
            self.hidden, self.ffn_hidden, self.heads,
            activation="swiglu", normalization="rmsnorm",
        )

    @property
    def params(self) -> int:
        """Approximate parameter count (embeddings + layers)."""
        h, f = self.hidden, self.ffn_hidden
        per_layer = 3 * h * h + h * h + 2 * f * h + f * h + 2 * h
        return self.vocab_size * h + self.layers * per_layer + h


class TinyLlama:
    """Functional decoder-only transformer."""

    def __init__(self, config: TinyLlamaConfig, *, seed: int = 0
                 ) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(config.hidden)
        self.embedding = rng.normal(
            0.0, scale, (config.vocab_size, config.hidden))
        self.layers = [
            TransformerLayer(config.layer_config,
                             rng=np.random.default_rng(seed + 1 + i))
            for i in range(config.layers)
        ]
        self.final_norm = RMSNorm(config.hidden)

    # -- forward ------------------------------------------------------------

    def _causal_mask(self, seq: int) -> np.ndarray:
        return np.tril(np.ones((seq, seq), dtype=bool))[None, None]

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Logits over the vocabulary, shape (batch, seq, vocab)."""
        ids = np.atleast_2d(np.asarray(token_ids))
        if ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq)")
        if ids.shape[1] > self.config.max_seq:
            raise ValueError(
                f"sequence {ids.shape[1]} exceeds max_seq "
                f"{self.config.max_seq}"
            )
        if ids.min() < 0 or ids.max() >= self.config.vocab_size:
            raise ValueError("token id out of vocabulary")
        x = self.embedding[ids]                      # (b, s, h)
        mask = self._causal_mask(ids.shape[1])
        for layer in self.layers:
            x = layer(x, mask=mask)
        x = self.final_norm(x)
        return x @ self.embedding.T                  # tied lm head

    def next_token_distribution(self, token_ids: np.ndarray
                                ) -> np.ndarray:
        logits = self.forward(token_ids)[:, -1, :]
        logits = logits - logits.max(axis=-1, keepdims=True)
        p = np.exp(logits)
        return p / p.sum(axis=-1, keepdims=True)

    # -- generation -----------------------------------------------------------

    def generate(self, prompt: List[int], max_new_tokens: int,
                 *, seed: Optional[int] = None) -> List[int]:
        """Greedy (or seeded-sampled) continuation of ``prompt``."""
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        ids = list(prompt)
        rng = np.random.default_rng(seed) if seed is not None else None
        for _ in range(max_new_tokens):
            ctx = np.array([ids[-self.config.max_seq:]])
            p = self.next_token_distribution(ctx)[0]
            if rng is None:
                nxt = int(np.argmax(p))
            else:
                nxt = int(rng.choice(self.config.vocab_size, p=p))
            ids.append(nxt)
        return ids

    def log_likelihood(self, token_ids: List[int]) -> float:
        """Mean log-probability of each token given its prefix."""
        if len(token_ids) < 2:
            raise ValueError("need at least two tokens")
        ids = np.array([token_ids])
        logits = self.forward(ids)[0]
        logits = logits - logits.max(axis=-1, keepdims=True)
        logp = logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        targets = ids[0, 1:]
        return float(np.mean(logp[np.arange(len(targets)), targets]))
