"""Transformer-Engine module zoo (NumPy, functionally real).

Mirrors the TE modules the paper benchmarks: ``Linear`` (with genuine
FP8 amax-scale quantisation under ``fp8_autocast``), ``LayerNorm``,
``RMSNorm``, the fused ``LayerNormMLP``, a flash-style
``DotProductAttention`` (which TE keeps in FP16 — one reason FP8
doesn't double TransformerLayer speed), and ``TransformerLayer``
assembling the Llama-style block (RMSNorm + SwiGLU) of §III-C2.

Each module both *computes* (NumPy forward with the modelled numerics)
and *prices itself* (``op_costs`` → :class:`repro.te.cost.OpCost`
lists against a device's :class:`~repro.te.cost.CostModel`).
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.numerics import E4M3, FP16, BF16, quantize_fp8
from repro.te.cost import (
    CostModel,
    OpCost,
    OpSecondsGrid,
    Precision,
    _record_te_op,
)

__all__ = [
    "fp8_autocast",
    "fp8_is_enabled",
    "Module",
    "Linear",
    "LayerNorm",
    "RMSNorm",
    "LayerNormMLP",
    "DotProductAttention",
    "TransformerLayerConfig",
    "TransformerLayer",
]

_FP8_ENABLED = [False]


@contextlib.contextmanager
def fp8_autocast(enabled: bool = True):
    """TE's ``fp8_autocast`` context: Linear layers inside run FP8."""
    prev = _FP8_ENABLED[0]
    _FP8_ENABLED[0] = enabled
    try:
        yield
    finally:
        _FP8_ENABLED[0] = prev


def fp8_is_enabled() -> bool:
    return _FP8_ENABLED[0]


class Module:
    """Minimal module base: callable forward + cost interface."""

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def op_costs(self, cost_model: CostModel, tokens: int,
                 precision: Precision) -> List[OpCost]:
        raise NotImplementedError

    def seconds(self, cost_model: CostModel, tokens: int,
                precision: Precision) -> float:
        return sum(o.seconds for o in
                   self.op_costs(cost_model, tokens, precision))

    # -- batched pricing ----------------------------------------------------
    #
    # ``op_seconds_grid`` is the vectorized twin of ``op_costs``: the
    # same operator names in the same order, each priced over a whole
    # array of token counts in one NumPy pass.  The scalar walk above
    # stays as the reference implementation the grid is property-tested
    # against (tests/test_vectorized_equivalence.py).

    def op_seconds_grid(self, cost_model: CostModel, tokens,
                        precision: Precision, **kw) -> OpSecondsGrid:
        raise NotImplementedError

    def seconds_grid(self, cost_model: CostModel, tokens,
                     precision: Precision, **kw) -> np.ndarray:
        parts = self.op_seconds_grid(cost_model, tokens, precision,
                                     **kw)
        total = parts[0][1]
        for _, s in parts[1:]:
            # sequential, list-ordered accumulation — bit-identical to
            # the scalar sum() over op_costs
            total = total + s
        return total

    def seconds_grid_scalar(self, cost_model: CostModel, tokens,
                            precision: Precision, **kw) -> np.ndarray:
        """Reference: price every grid point through the scalar
        ``op_costs`` walk (slow; exists to cross-check the grid)."""
        tokens = np.asarray(tokens)
        flat = [sum(o.seconds for o in
                    self.op_costs(cost_model, int(t), precision, **kw))
                for t in tokens.ravel()]
        return np.array(flat).reshape(tokens.shape)


def _working_quantize(x: np.ndarray, precision: Precision) -> np.ndarray:
    if precision in (Precision.FP16,):
        return FP16.quantize(x)
    if precision is Precision.BF16:
        return BF16.quantize(x)
    return np.asarray(x, dtype=np.float64)


class Linear(Module):
    """te.Linear: ``y = x @ W.T + b``.

    Under ``fp8_autocast`` the forward follows the TE recipe exactly:
    amax-scale x and W into E4M3, multiply on the FP8 grid, scale the
    product back (§III-C1).  Otherwise operands are rounded to the
    working precision.
    """

    def __init__(self, in_features: int, out_features: int,
                 *, bias: bool = True, rng: Optional[np.random.Generator]
                 = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self._has_bias = bias
        self._rng = rng or np.random.default_rng(0)
        # Weights materialise lazily: pricing a layer with op_costs
        # must not allocate multi-GB parameter arrays.
        self._weight: Optional[np.ndarray] = None
        self._bias: Optional[np.ndarray] = None

    @property
    def weight(self) -> np.ndarray:
        if self._weight is None:
            bound = 1.0 / math.sqrt(self.in_features)
            self._weight = self._rng.uniform(
                -bound, bound, (self.out_features, self.in_features)
            )
        return self._weight

    @weight.setter
    def weight(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.out_features, self.in_features):
            raise ValueError(
                f"weight must be {(self.out_features, self.in_features)}"
            )
        self._weight = value

    @property
    def bias(self) -> Optional[np.ndarray]:
        if self._has_bias and self._bias is None:
            bound = 1.0 / math.sqrt(self.in_features)
            self._bias = self._rng.uniform(-bound, bound,
                                           self.out_features)
        return self._bias

    def forward(self, x: np.ndarray,
                precision: Optional[Precision] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        if precision is None:
            precision = (Precision.FP8 if fp8_is_enabled()
                         else Precision.FP16)
        if precision is Precision.FP8:
            qx = quantize_fp8(x, E4M3)
            qw = quantize_fp8(self.weight, E4M3)
            y = (qx.data @ qw.data.T) * (qx.scale * qw.scale)
        else:
            xq = _working_quantize(x, precision)
            wq = _working_quantize(self.weight, precision)
            y = xq @ wq.T
        if self.bias is not None:
            y = y + self.bias
        return y

    def op_costs(self, cost_model: CostModel, tokens: int,
                 precision: Precision) -> List[OpCost]:
        return cost_model.linear(tokens, self.out_features,
                                 self.in_features, precision)

    def op_seconds_grid(self, cost_model: CostModel, tokens,
                        precision: Precision) -> OpSecondsGrid:
        return cost_model.linear_breakdown_batch(
            tokens, self.out_features, self.in_features, precision)


class LayerNorm(Module):
    """Standard layer normalisation (never FP8 in TE)."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        self.features = features
        self.eps = eps
        self.gamma = np.ones(features)
        self.beta = np.zeros(features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mu) / np.sqrt(var + self.eps) * self.gamma + self.beta

    def op_costs(self, cost_model: CostModel, tokens: int,
                 precision: Precision) -> List[OpCost]:
        nbytes = tokens * self.features * 2 * precision.bytes
        return [cost_model.elementwise(nbytes, name="layernorm")]

    def op_seconds_grid(self, cost_model: CostModel, tokens,
                        precision: Precision) -> OpSecondsGrid:
        tokens = np.asarray(tokens, dtype=np.float64)
        nbytes = tokens * self.features * 2 * precision.bytes
        return [("layernorm", cost_model.elementwise_seconds_batch(
            nbytes, name="layernorm"))]


class RMSNorm(Module):
    """Root-mean-square normalisation (Llama's choice, §III-C2)."""

    def __init__(self, features: int, eps: float = 1e-6) -> None:
        self.features = features
        self.eps = eps
        self.gamma = np.ones(features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + self.eps)
        return x / rms * self.gamma

    def op_costs(self, cost_model: CostModel, tokens: int,
                 precision: Precision) -> List[OpCost]:
        nbytes = tokens * self.features * 2 * precision.bytes
        return [cost_model.elementwise(nbytes, name="rmsnorm")]

    def op_seconds_grid(self, cost_model: CostModel, tokens,
                        precision: Precision) -> OpSecondsGrid:
        tokens = np.asarray(tokens, dtype=np.float64)
        nbytes = tokens * self.features * 2 * precision.bytes
        return [("rmsnorm", cost_model.elementwise_seconds_batch(
            nbytes, name="rmsnorm"))]


def swiglu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """SwiGLU activation: ``silu(gate) * up``."""
    return gate / (1.0 + np.exp(-gate)) * up


def gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(
        math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3)
    ))


class LayerNormMLP(Module):
    """TE's fused norm + MLP.

    The fusion lets the norm output flow to fc1 already in FP8,
    removing one quantise kernel versus separate modules — the
    operator-fusion benefit §III-C2 describes.
    """

    def __init__(self, hidden: int, ffn_hidden: int, *,
                 activation: str = "swiglu",
                 normalization: str = "rmsnorm",
                 rng: Optional[np.random.Generator] = None) -> None:
        if activation not in ("swiglu", "gelu"):
            raise ValueError("activation must be 'swiglu' or 'gelu'")
        rng = rng or np.random.default_rng(1)
        self.hidden = hidden
        self.ffn_hidden = ffn_hidden
        self.activation = activation
        self.norm: Module = (RMSNorm(hidden) if normalization == "rmsnorm"
                             else LayerNorm(hidden))
        fc1_out = 2 * ffn_hidden if activation == "swiglu" else ffn_hidden
        self.fc1 = Linear(hidden, fc1_out, bias=False, rng=rng)
        self.fc2 = Linear(ffn_hidden, hidden, bias=False, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.norm(x)
        z = self.fc1(h)
        if self.activation == "swiglu":
            gate, up = np.split(z, 2, axis=-1)
            a = swiglu(gate, up)
        else:
            a = gelu(z)
        return self.fc2(a)

    def op_costs(self, cost_model: CostModel, tokens: int,
                 precision: Precision) -> List[OpCost]:
        ops = self.norm.op_costs(cost_model, tokens, precision)
        fc1 = cost_model.linear(tokens, self.fc1.out_features,
                                self.hidden, precision)
        if precision is Precision.FP8:
            # fusion: the norm emits FP8 directly → drop fc1's input
            # quantise kernel.
            fc1 = [o for o in fc1 if o.name != "quantize_input"]
        ops += fc1
        act_bytes = tokens * (self.fc1.out_features + self.ffn_hidden) \
            * precision.bytes
        ops.append(cost_model.elementwise(act_bytes,
                                          name=self.activation))
        ops += cost_model.linear(tokens, self.hidden, self.ffn_hidden,
                                 precision)
        return ops

    def op_seconds_grid(self, cost_model: CostModel, tokens,
                        precision: Precision) -> OpSecondsGrid:
        tokens = np.asarray(tokens, dtype=np.float64)
        parts = self.norm.op_seconds_grid(cost_model, tokens, precision)
        fc1 = cost_model.linear_breakdown_batch(
            tokens, self.fc1.out_features, self.hidden, precision)
        if precision is Precision.FP8:
            # fusion: the norm emits FP8 directly → drop fc1's input
            # quantise kernel.
            fc1 = [p for p in fc1 if p[0] != "quantize_input"]
        parts += fc1
        act_bytes = tokens * (self.fc1.out_features + self.ffn_hidden) \
            * precision.bytes
        parts.append((self.activation, cost_model.elementwise_seconds_batch(
            act_bytes, name=self.activation)))
        parts += cost_model.linear_breakdown_batch(
            tokens, self.hidden, self.ffn_hidden, precision)
        return parts


class DotProductAttention(Module):
    """Flash-attention-style scaled dot-product attention.

    TE keeps this operator in FP16 regardless of ``fp8_autocast`` —
    one of the reasons FP8 TransformerLayer speedups stay below 2×.
    """

    def __init__(self, num_heads: int, head_dim: int) -> None:
        if num_heads <= 0 or head_dim <= 0:
            raise ValueError("heads and head_dim must be positive")
        self.num_heads = num_heads
        self.head_dim = head_dim

    def forward(self, q: np.ndarray, k: np.ndarray,
                v: np.ndarray,
                mask: Optional[np.ndarray] = None) -> np.ndarray:
        # shapes: (batch, seq, heads, head_dim)
        q, k, v = (np.asarray(t, dtype=np.float64) for t in (q, k, v))
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = np.einsum("bshd,bthd->bhst", q, k) * scale
        if mask is not None:
            scores = np.where(mask, scores, -np.inf)
        scores -= scores.max(axis=-1, keepdims=True)
        p = np.exp(scores)
        p /= p.sum(axis=-1, keepdims=True)
        return np.einsum("bhst,bthd->bshd", p, v)

    def op_costs(self, cost_model: CostModel, tokens: int,
                 precision: Precision, *, batch: int = 1) -> List[OpCost]:
        seq = max(tokens // max(batch, 1), 1)
        h = self.num_heads * self.head_dim
        flops = 4.0 * batch * seq * seq * h
        # flash attention: IO is O(b·s·h), compute at FP16 TC rate
        gemm_rate = cost_model.gemm_tflops(Precision.FP16) * 1e12 * 0.6
        io = 4.0 * batch * seq * h * 2.0 / cost_model.membw_bytes_per_s
        _record_te_op("attention")
        return [OpCost(
            "attention",
            max(flops / gemm_rate, io) + 2 * cost_model.launch_overhead_s,
            flops=flops,
        )]

    def op_seconds_grid(self, cost_model: CostModel, tokens,
                        precision: Precision, *, batch=1) -> OpSecondsGrid:
        tokens = np.asarray(tokens, dtype=np.int64)
        batch = np.asarray(batch, dtype=np.int64)
        seq = np.maximum(tokens // np.maximum(batch, 1), 1
                         ).astype(np.float64)
        b = batch.astype(np.float64)
        h = self.num_heads * self.head_dim
        flops = 4.0 * b * seq * seq * h
        gemm_rate = cost_model.gemm_tflops(Precision.FP16) * 1e12 * 0.6
        io = 4.0 * b * seq * h * 2.0 / cost_model.membw_bytes_per_s
        secs = (np.maximum(flops / gemm_rate, io)
                + 2 * cost_model.launch_overhead_s)
        _record_te_op("attention", secs.size)
        return [("attention", secs)]


@dataclass(frozen=True)
class TransformerLayerConfig:
    """te.TransformerLayer hyper-parameters (Table II rows)."""

    hidden_size: int
    ffn_hidden_size: int
    num_attention_heads: int
    activation: str = "swiglu"
    normalization: str = "rmsnorm"

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_attention_heads:
            raise ValueError("hidden_size must divide by heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_attention_heads

    #: the paper's Table II parameterisation
    PAPER_CONFIGS = None  # populated below


TransformerLayerConfig.PAPER_CONFIGS = {
    1024: TransformerLayerConfig(1024, 2816, 8),
    2048: TransformerLayerConfig(2048, 5632, 16),
    4096: TransformerLayerConfig(4096, 11008, 32),
    5120: TransformerLayerConfig(5120, 13824, 40),
    8192: TransformerLayerConfig(8192, 22016, 64),
}


class TransformerLayer(Module):
    """One full (decoder-style) transformer layer, TE-fused."""

    def __init__(self, config: TransformerLayerConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(2)
        self.config = config
        h = config.hidden_size
        self.input_norm: Module = (
            RMSNorm(h) if config.normalization == "rmsnorm"
            else LayerNorm(h)
        )
        self.qkv = Linear(h, 3 * h, bias=False, rng=rng)
        self.attention = DotProductAttention(
            config.num_attention_heads, config.head_dim
        )
        self.proj = Linear(h, h, bias=False, rng=rng)
        self.mlp = LayerNormMLP(
            h, config.ffn_hidden_size,
            activation=config.activation,
            normalization=config.normalization, rng=rng,
        )

    def forward(self, x: np.ndarray,
                mask: Optional[np.ndarray] = None) -> np.ndarray:
        # x: (batch, seq, hidden)
        x = np.asarray(x, dtype=np.float64)
        b, s, h = x.shape
        cfg = self.config
        qkv = self.qkv(self.input_norm(x))
        q, k, v = np.split(qkv, 3, axis=-1)
        shape = (b, s, cfg.num_attention_heads, cfg.head_dim)
        attn = self.attention(q.reshape(shape), k.reshape(shape),
                              v.reshape(shape), mask)
        x = x + self.proj(attn.reshape(b, s, h))
        return x + self.mlp(x)

    def op_costs(self, cost_model: CostModel, tokens: int,
                 precision: Precision, *, batch: int = 4) -> List[OpCost]:
        ops = self.input_norm.op_costs(cost_model, tokens, precision)
        ops += self.qkv.op_costs(cost_model, tokens, precision)
        ops += self.attention.op_costs(cost_model, tokens, precision,
                                       batch=batch)
        ops += self.proj.op_costs(cost_model, tokens, precision)
        ops += self.mlp.op_costs(cost_model, tokens, precision)
        # two residual adds
        res_bytes = 2 * tokens * self.config.hidden_size \
            * 2 * precision.bytes
        ops.append(cost_model.elementwise(res_bytes, name="residual"))
        return ops

    def op_seconds_grid(self, cost_model: CostModel, tokens,
                        precision: Precision, *, batch=4) -> OpSecondsGrid:
        tokens = np.asarray(tokens)
        parts = self.input_norm.op_seconds_grid(cost_model, tokens,
                                                precision)
        parts += self.qkv.op_seconds_grid(cost_model, tokens, precision)
        parts += self.attention.op_seconds_grid(cost_model, tokens,
                                                precision, batch=batch)
        parts += self.proj.op_seconds_grid(cost_model, tokens, precision)
        parts += self.mlp.op_seconds_grid(cost_model, tokens, precision)
        res_bytes = 2 * tokens.astype(np.float64) \
            * self.config.hidden_size * 2 * precision.bytes
        parts.append(("residual", cost_model.elementwise_seconds_batch(
            res_bytes, name="residual")))
        return parts

    def latency_ms(self, cost_model: CostModel, *, batch: int = 4,
                   seq: int = 512,
                   precision: Precision = Precision.FP16) -> float:
        """Fig 5's metric: one-layer encode latency (ms)."""
        tokens = batch * seq
        return 1e3 * sum(
            o.seconds for o in self.op_costs(cost_model, tokens,
                                             precision, batch=batch)
        )

    def latency_ms_grid(self, cost_model: CostModel, *, batch=4,
                        seq=512,
                        precision: Precision = Precision.FP16
                        ) -> np.ndarray:
        """Vectorized :meth:`latency_ms` over a (batch, seq) grid —
        ``batch`` and ``seq`` broadcast against each other."""
        batch = np.asarray(batch, dtype=np.int64)
        seq = np.asarray(seq, dtype=np.int64)
        tokens = batch * seq
        return 1e3 * self.seconds_grid(cost_model, tokens, precision,
                                       batch=batch)
