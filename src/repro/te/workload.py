"""Synthetic ShareGPT-style request workload.

The paper tokenises ShareGPT conversations and synthesises client
requests from the empirical input/output length distribution, then
clips both sides to 128 tokens (§III-C3).  ShareGPT lengths are well
approximated by log-normal mixtures (short greetings, long pastes);
this generator reproduces those marginals so the LLM-inference model
sees the same *shape* of work without the proprietary dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["Request", "ShareGptWorkload"]


@dataclass(frozen=True)
class Request:
    """One synthesised client request."""

    input_len: int
    output_len: int

    @property
    def total_len(self) -> int:
        return self.input_len + self.output_len


class ShareGptWorkload:
    """Log-normal conversation-length sampler, ShareGPT-shaped.

    Parameters mirror the empirical ShareGPT statistics (median prompt
    ≈ 25 tokens with a heavy tail; responses longer, median ≈ 130),
    clipped to the paper's ``max_input``/``max_output`` of 128.
    """

    def __init__(self, *, max_input: int = 128, max_output: int = 128,
                 seed: int = 0) -> None:
        if max_input < 1 or max_output < 1:
            raise ValueError("length caps must be >= 1")
        self.max_input = max_input
        self.max_output = max_output
        self._rng = np.random.default_rng(seed)

    def sample(self, n: int) -> List[Request]:
        if n < 1:
            raise ValueError("n must be >= 1")
        # prompt: mixture of short chat turns and long pastes
        short = self._rng.lognormal(mean=3.2, sigma=0.9, size=n)
        long_ = self._rng.lognormal(mean=5.5, sigma=0.6, size=n)
        is_long = self._rng.random(n) < 0.25
        inputs = np.where(is_long, long_, short)
        outputs = self._rng.lognormal(mean=4.8, sigma=0.8, size=n)
        reqs = []
        for i, o in zip(inputs, outputs):
            reqs.append(Request(
                input_len=int(np.clip(round(i), 1, self.max_input)),
                output_len=int(np.clip(round(o), 1, self.max_output)),
            ))
        return reqs

    def batches(self, n_requests: int, batch_size: int) -> List[List[Request]]:
        """Group sampled requests into fixed-size batches (TE's
        te.Linear dimension requirement fixes batch = 8 in the paper)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        reqs = self.sample(n_requests)
        return [reqs[i:i + batch_size]
                for i in range(0, len(reqs), batch_size)]
