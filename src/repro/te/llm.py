"""Decode-only LLM inference model (paper §III-C3, Table XII).

The paper swaps ``nn.Linear``/``RMSNorm`` for their TE counterparts in
Llama-family checkpoints and measures generation throughput
``(input_len + output_len) / time`` on ShareGPT-shaped requests with
batch 8 and both lengths capped at 128.

At those lengths decode is **memory-bound with a host-overhead
floor**: every generated token streams the full weight set once, and
every layer pays framework dispatch cost (the unfused HF/TE hybrid the
paper describes).  FP8 reduces neither — weights stay in
half-precision master copies and each layer adds quantise kernels — so
FP8 shows *no* advantage at this scale, the paper's headline Table XII
finding.  The OOM entries come from the device memory-capacity model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch import DeviceSpec
from repro.te.cost import CostModel, Precision
from repro.te.workload import Request, ShareGptWorkload

__all__ = ["LlamaSpec", "LLAMA_MODELS", "GenerationEstimate",
           "LlmInferenceModel"]

#: host-side dispatch overhead per layer per decode step (seconds);
#: calibrated on the paper's HF-transformers + TE harness, with the
#: relative factors reflecting the per-dtype casting traffic of that
#: harness (FP32 = native torch path, BF16 = autocast, FP8 = TE wrappers
#: with quantise bookkeeping).
_HOST_OVERHEAD_S_PER_LAYER: Dict[str, float] = {
    "A100": 0.75e-3,
    "H800": 0.86e-3,
    "RTX4090": 1.22e-3,
}
_HOST_FACTOR = {
    Precision.FP32: 0.80,
    Precision.BF16: 1.00,
    Precision.FP16: 1.00,
    Precision.FP8: 1.15,
}
#: CUDA context + framework baseline allocation
_BASELINE_MEM_BYTES = 2.0 * 2 ** 30
#: activation workspace
_ACTIVATION_MEM_BYTES = 1.5 * 2 ** 30
#: TE FP8 keeps half-precision master weights + FP8 shadow buffers +
#: transposed copies + amax/scale state — the overhead that makes
#: llama-2-7B FP8 OOM on the 24 GB RTX 4090 (Table XII) even though
#: its BF16 version fits.
_FP8_WEIGHT_FACTOR = 1.6


@dataclass(frozen=True)
class LlamaSpec:
    """A decode-only Llama-family model."""

    name: str
    params: float            # total parameter count
    hidden: int
    layers: int
    heads: int

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    def weight_bytes(self, precision: Precision) -> float:
        per_param = {
            Precision.FP32: 4.0,
            Precision.BF16: 2.0,
            Precision.FP16: 2.0,
            # master half-precision copy + FP8 shadow + amax history
            Precision.FP8: 2.0 * _FP8_WEIGHT_FACTOR,
        }[precision]
        return self.params * per_param

    def kv_cache_bytes(self, batch: int, seq: int) -> float:
        """K and V, FP16, for every layer."""
        return 2.0 * batch * seq * self.layers * self.hidden * 2.0


LLAMA_MODELS: Dict[str, LlamaSpec] = {
    "llama-3B": LlamaSpec("llama-3B", 3.43e9, 3200, 26, 32),
    "llama-2-7B": LlamaSpec("llama-2-7B", 6.74e9, 4096, 32, 32),
    "llama-2-13B": LlamaSpec("llama-2-13B", 13.0e9, 5120, 40, 40),
}


@dataclass(frozen=True)
class GenerationEstimate:
    """Outcome of one (device, model, precision) Table XII cell."""

    tokens_per_second: Optional[float]   # None ⇒ OOM or unsupported
    status: str                          # "ok" | "OOM" | "-"
    decode_step_s: float = 0.0
    prefill_s: float = 0.0

    @property
    def cell(self) -> str:
        if self.status != "ok":
            return self.status
        return f"{self.tokens_per_second:.2f}"


class LlmInferenceModel:
    """Table XII generator for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.cost = CostModel(device)

    # -- memory ------------------------------------------------------------

    def memory_required_bytes(self, model: LlamaSpec,
                              precision: Precision, *, batch: int,
                              max_seq: int) -> float:
        return (model.weight_bytes(precision)
                + model.kv_cache_bytes(batch, max_seq)
                + _BASELINE_MEM_BYTES + _ACTIVATION_MEM_BYTES)

    def fits(self, model: LlamaSpec, precision: Precision, *,
             batch: int = 8, max_seq: int = 256) -> bool:
        from repro.memory.dram import DramChannel
        need = self.memory_required_bytes(model, precision,
                                          batch=batch, max_seq=max_seq)
        return DramChannel.for_device(self.device).fits(need)

    # -- timing ------------------------------------------------------------------

    def decode_step_seconds(self, model: LlamaSpec,
                            precision: Precision, *,
                            batch: int = 8) -> float:
        """One generated-token step: stream the weights + host floor."""
        stream_bytes = model.weight_bytes(precision)
        if precision is Precision.FP8:
            # the FP8 shadow copies are what the GEMMs read
            stream_bytes = model.params * 1.0 + model.params * 2.0 * 0.15
        bw = self.cost.membw_bytes_per_s
        host = (_HOST_OVERHEAD_S_PER_LAYER[self.device.name]
                if self.device.name in _HOST_OVERHEAD_S_PER_LAYER
                else 0.9e-3)
        host *= _HOST_FACTOR[precision] * model.layers
        return stream_bytes / bw + host

    def prefill_seconds(self, model: LlamaSpec, precision: Precision, *,
                        batch: int = 8, input_len: int = 128) -> float:
        """Prompt processing: compute-bound GEMMs over all layers."""
        flops = 2.0 * model.params * batch * input_len
        try:
            rate = self.cost.gemm_tflops(precision) * 1e12 * 0.5
        except ValueError:
            raise
        return flops / rate + model.layers * 9 \
            * self.cost.launch_overhead_s

    # -- Table XII ------------------------------------------------------------------

    def estimate(self, model: LlamaSpec, precision: Precision, *,
                 batch: int = 8, input_len: int = 128,
                 output_len: int = 128) -> GenerationEstimate:
        if not self.cost.supports(precision):
            return GenerationEstimate(None, "-")
        if not self.fits(model, precision, batch=batch,
                         max_seq=input_len + output_len):
            return GenerationEstimate(None, "OOM")
        step = self.decode_step_seconds(model, precision, batch=batch)
        prefill = self.prefill_seconds(model, precision, batch=batch,
                                       input_len=input_len)
        total = prefill + output_len * step
        text = batch * (input_len + output_len)
        return GenerationEstimate(
            tokens_per_second=text / total,
            status="ok",
            decode_step_s=step,
            prefill_s=prefill,
        )

    def estimate_workload(self, model: LlamaSpec, precision: Precision,
                          *, n_requests: int = 64, batch: int = 8,
                          seed: int = 0) -> GenerationEstimate:
        """Throughput over a synthetic ShareGPT batch stream (variable
        lengths; a batch runs until its longest response finishes).

        Per-group prefill costs are priced in one vectorized pass; the
        time accumulation stays sequential in group order so the total
        is bit-identical to :meth:`estimate_workload_scalar`.
        """
        import numpy as np

        if not self.cost.supports(precision):
            return GenerationEstimate(None, "-")
        wl = ShareGptWorkload(seed=seed)
        groups = list(wl.batches(n_requests, batch))
        sizes = [len(g) for g in groups]
        max_ins = [max(r.input_len for r in g) for g in groups]
        max_outs = [max(r.output_len for r in g) for g in groups]
        for b, mi, mo in zip(sizes, max_ins, max_outs):
            if not self.fits(model, precision, batch=b,
                             max_seq=mi + mo):
                return GenerationEstimate(None, "OOM")
        # decode cost is batch-independent; prefill vectorizes over the
        # (batch, input_len) arrays with scalar-identical arithmetic
        step = self.decode_step_seconds(model, precision, batch=batch)
        flops = (2.0 * model.params
                 * np.asarray(sizes, dtype=np.float64)
                 * np.asarray(max_ins, dtype=np.float64))
        rate = self.cost.gemm_tflops(precision) * 1e12 * 0.5
        prefills = (flops / rate
                    + model.layers * 9 * self.cost.launch_overhead_s)
        total_text = 0
        total_time = 0.0
        for g, pf, mo in zip(groups, prefills.tolist(), max_outs):
            total_text += sum(r.total_len for r in g)
            total_time += pf + mo * step
        return GenerationEstimate(
            tokens_per_second=total_text / total_time,
            status="ok",
        )

    def estimate_workload_scalar(self, model: LlamaSpec,
                                 precision: Precision, *,
                                 n_requests: int = 64, batch: int = 8,
                                 seed: int = 0) -> GenerationEstimate:
        """Reference implementation: one :meth:`estimate` per batch
        group (the pre-vectorization walk, kept for cross-checking)."""
        wl = ShareGptWorkload(seed=seed)
        total_text = 0
        total_time = 0.0
        for group in wl.batches(n_requests, batch):
            max_in = max(r.input_len for r in group)
            max_out = max(r.output_len for r in group)
            est = self.estimate(model, precision, batch=len(group),
                                input_len=max_in, output_len=max_out)
            if est.status != "ok":
                return est
            total_text += sum(r.total_len for r in group)
            total_time += est.prefill_s + max_out * est.decode_step_s
        return GenerationEstimate(
            tokens_per_second=total_text / total_time,
            status="ok",
        )

    def table12_rows(self, *, models=("llama-3B", "llama-2-7B",
                                      "llama-2-13B")) -> list[dict]:
        rows = []
        for name in models:
            model = LLAMA_MODELS[name]
            row = {"GPU": self.device.name, "Model": name}
            for prec in (Precision.FP32, Precision.BF16, Precision.FP8):
                row[prec.name] = self.estimate(model, prec).cell
            rows.append(row)
        return rows
