"""Operator-level cost model for the Transformer-Engine analogue.

Every TE operator is either

* a **GEMM** — runs at the device's best sustained tensor-core rate
  for its precision (``wgmma`` on Hopper, the long ``mma`` elsewhere;
  FP32 inputs ride the TF32 path, as cuBLAS does by default), or
* an **elementwise / reduction kernel** (casts, amax, scaling, norms,
  activations, softmax) — DRAM-bandwidth bound,

and every kernel pays a fixed launch overhead.  From these three
ingredients the FP8 behaviour of Figs 3–5 emerges: at small sizes the
quantise/amax/scale kernels (bytes ∝ N², several launches) dominate
the GEMM (∝ N³), so FP8 loses to FP16; at N = 16384 the GEMM dwarfs
the casts and FP8's 2× tensor-core rate shows through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.arch import DeviceSpec
from repro.isa.dtypes import DType
from repro.obs import session as _obs
from repro.tensorcore.timing import TensorCoreTimingModel

__all__ = ["Precision", "OpCost", "CostModel"]

#: per-kernel launch + framework dispatch overhead, seconds
_KERNEL_LAUNCH_S = 8e-6

#: an ordered operator breakdown priced over a whole grid at once
OpSecondsGrid = List[Tuple[str, np.ndarray]]


def _record_te_op(name: str, n: int = 1) -> None:
    """Count one priced TE operator (``te.op.<name>``) against the
    active observability session.  Batched pricers pass the grid size
    as ``n`` — integer counters sum commutatively, so scalar and
    vectorized walks over the same grid produce identical deltas."""
    sess = _obs.ACTIVE
    if sess is not None:
        sess.counters.add(f"te.op.{name}", n)


class Precision(enum.Enum):
    """The compute precisions te.Linear can run in."""

    FP32 = "fp32"
    FP16 = "fp16"
    BF16 = "bf16"
    FP8 = "fp8"

    @property
    def bytes(self) -> float:
        return {"fp32": 4.0, "fp16": 2.0, "bf16": 2.0, "fp8": 1.0}[
            self.value
        ]

    @property
    def gemm_types(self) -> tuple[DType, DType]:
        """(A/B type, accumulator) of the tensor-core path used."""
        # FP16 inference GEMMs accumulate in FP16 (the cuBLAS default
        # te.Linear hits) — this is what lets FP8 show its full 2× over
        # FP16 on the RTX 4090, whose FP32-accumulate path is half rate.
        return {
            Precision.FP32: (DType.TF32, DType.FP32),
            Precision.FP16: (DType.FP16, DType.FP16),
            Precision.BF16: (DType.BF16, DType.FP32),
            Precision.FP8: (DType.E4M3, DType.FP32),
        }[self]


@dataclass(frozen=True)
class OpCost:
    """One operator's cost contribution."""

    name: str
    seconds: float
    flops: float = 0.0
    bytes: float = 0.0

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            name=f"{self.name}+{other.name}",
            seconds=self.seconds + other.seconds,
            flops=self.flops + other.flops,
            bytes=self.bytes + other.bytes,
        )


class CostModel:
    """Per-device operator timing."""

    def __init__(self, device: DeviceSpec,
                 launch_overhead_s: float = _KERNEL_LAUNCH_S) -> None:
        self.device = device
        self.launch_overhead_s = launch_overhead_s
        self._tc = TensorCoreTimingModel(device)
        self._gemm_rate_cache: dict[Precision, float] = {}

    # -- primitive rates ------------------------------------------------------

    def supports(self, precision: Precision) -> bool:
        """Whether this device can run te.Linear in ``precision`` at
        all — FP8 needs the capability flag *and* FP8 tensor-core
        peaks; older generations may lack e.g. the TF32 path FP32
        rides (Volta) or BF16 accumulate."""
        ab, _cd = precision.gemm_types
        if ab.is_fp8 and not self.device.pack.has_fp8:
            return False
        return self.device.tensor_core.supports(ab.peak_key)

    def gemm_tflops(self, precision: Precision) -> float:
        """Best sustained GEMM rate for a precision on this device."""
        if precision not in self._gemm_rate_cache:
            ab, cd = precision.gemm_types
            if not self.device.tensor_core.supports(ab.peak_key):
                raise ValueError(
                    f"{self.device.name} has no {ab.peak_key} tensor "
                    "cores"
                )
            self._gemm_rate_cache[precision] = \
                self._tc.best_dense_tflops(ab, cd)
        return self._gemm_rate_cache[precision]

    @property
    def membw_bytes_per_s(self) -> float:
        return self.device.dram.effective_bandwidth_gbps(0.6) * 1e9

    # -- operator costs -----------------------------------------------------------

    def gemm(self, m: int, n: int, k: int,
             precision: Precision, *, name: str = "gemm",
             efficiency: float = 0.85) -> OpCost:
        """One GEMM kernel.  ``efficiency`` covers tile quantisation and
        epilogue overheads of a real GEMM kernel vs raw instruction
        throughput."""
        if min(m, n, k) <= 0:
            raise ValueError("GEMM dimensions must be positive")
        flops = 2.0 * m * n * k
        compute = flops / (self.gemm_tflops(precision) * 1e12 * efficiency)
        io_bytes = precision.bytes * (m * k + k * n) + 4.0 * m * n
        io = io_bytes / self.membw_bytes_per_s
        _record_te_op(name)
        return OpCost(name, max(compute, io) + self.launch_overhead_s,
                      flops=flops, bytes=io_bytes)

    def elementwise(self, nbytes: float, *, name: str = "elementwise",
                    launches: int = 1) -> OpCost:
        """A bandwidth-bound kernel moving ``nbytes`` total."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        _record_te_op(name)
        return OpCost(
            name,
            nbytes / self.membw_bytes_per_s
            + launches * self.launch_overhead_s,
            bytes=nbytes,
        )

    def cast_to_fp8(self, elements: int, src_bytes: float = 2.0,
                    *, name: str = "cast_fp8") -> OpCost:
        """amax reduction + quantise kernel: read source, write FP8."""
        nbytes = elements * (2 * src_bytes + 1.0)  # amax read + q read/write
        return self.elementwise(nbytes, name=name, launches=2)

    def scale_output(self, elements: int, out_bytes: float = 2.0,
                     *, name: str = "scale_out") -> OpCost:
        """De-scale the FP8 GEMM output back to working precision."""
        return self.elementwise(elements * 2 * out_bytes, name=name)

    # -- composite: te.Linear ---------------------------------------------------------

    def linear(self, m: int, n: int, k: int, precision: Precision,
               *, cache_weight_cast: bool = True,
               include_overheads: bool = True) -> List[OpCost]:
        """Full te.Linear cost breakdown: ``(m×k) @ (k×n)``.

        Under FP8 the input is amax-scaled and quantised, the weight
        cast is amortised when ``cache_weight_cast`` (TE caches it
        across microbatches), and the output is scaled back — the
        operator mix Fig 3 plots.  ``include_overheads=False`` is the
        ablation switch that removes every non-GEMM operator.
        """
        ops: List[OpCost] = []
        if precision is Precision.FP8 and include_overheads:
            ops.append(self.cast_to_fp8(m * k, name="quantize_input"))
            if not cache_weight_cast:
                ops.append(self.cast_to_fp8(k * n, name="quantize_weight"))
        ops.append(self.gemm(m, n, k, precision))
        if precision is Precision.FP8 and include_overheads:
            ops.append(self.scale_output(m * n))
        return ops

    def linear_seconds(self, m: int, n: int, k: int,
                       precision: Precision, **kw) -> float:
        return sum(op.seconds for op in self.linear(m, n, k, precision,
                                                    **kw))

    def linear_tflops(self, n: int, precision: Precision, **kw) -> float:
        """The Fig 4 metric: achieved GFLOPS of an N×N×N te.Linear,
        reported in TFLOPS here."""
        secs = self.linear_seconds(n, n, n, precision, **kw)
        return 2.0 * n ** 3 / secs / 1e12

    # -- batched pricing --------------------------------------------------------
    #
    # The vectorized fast paths: arrays in, arrays out, one NumPy pass
    # over a whole grid of problem sizes.  Every elementwise expression
    # mirrors its scalar counterpart operation-for-operation, so the
    # results are bit-identical to looping the scalar methods
    # (property-tested in tests/test_vectorized_equivalence.py).

    def gemm_seconds_batch(self, m, n, k, precision: Precision, *,
                           name: str = "gemm",
                           efficiency: float = 0.85) -> np.ndarray:
        """Vectorized :meth:`gemm` (seconds only) over size arrays."""
        m = np.asarray(m, dtype=np.float64)
        n = np.asarray(n, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        if np.minimum(np.minimum(m, n), k).min() <= 0:
            raise ValueError("GEMM dimensions must be positive")
        flops = 2.0 * m * n * k
        compute = flops / (self.gemm_tflops(precision) * 1e12 * efficiency)
        io_bytes = precision.bytes * (m * k + k * n) + 4.0 * m * n
        io = io_bytes / self.membw_bytes_per_s
        out = np.maximum(compute, io) + self.launch_overhead_s
        _record_te_op(name, out.size)
        return out

    def elementwise_seconds_batch(self, nbytes, *,
                                  name: str = "elementwise",
                                  launches: int = 1) -> np.ndarray:
        """Vectorized :meth:`elementwise` (seconds only)."""
        nbytes = np.asarray(nbytes, dtype=np.float64)
        if nbytes.min() < 0:
            raise ValueError("nbytes must be non-negative")
        out = (nbytes / self.membw_bytes_per_s
               + launches * self.launch_overhead_s)
        _record_te_op(name, out.size)
        return out

    def cast_to_fp8_seconds_batch(self, elements, src_bytes: float = 2.0,
                                  *, name: str = "cast_fp8") -> np.ndarray:
        elements = np.asarray(elements, dtype=np.float64)
        nbytes = elements * (2 * src_bytes + 1.0)
        return self.elementwise_seconds_batch(nbytes, name=name,
                                              launches=2)

    def scale_output_seconds_batch(self, elements, out_bytes: float = 2.0,
                                   *, name: str = "scale_out"
                                   ) -> np.ndarray:
        elements = np.asarray(elements, dtype=np.float64)
        return self.elementwise_seconds_batch(elements * 2 * out_bytes,
                                              name=name)

    def linear_breakdown_batch(self, m, n, k, precision: Precision, *,
                               cache_weight_cast: bool = True,
                               include_overheads: bool = True
                               ) -> OpSecondsGrid:
        """Vectorized :meth:`linear`: the same operator list, in the
        same order, with each operator's seconds priced over the whole
        (m, n, k) grid at once."""
        m = np.asarray(m, dtype=np.float64)
        n = np.asarray(n, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        parts: OpSecondsGrid = []
        if precision is Precision.FP8 and include_overheads:
            parts.append(("quantize_input", self.cast_to_fp8_seconds_batch(
                m * k, name="quantize_input")))
            if not cache_weight_cast:
                parts.append(("quantize_weight",
                              self.cast_to_fp8_seconds_batch(
                                  k * n, name="quantize_weight")))
        parts.append(("gemm", self.gemm_seconds_batch(m, n, k, precision)))
        if precision is Precision.FP8 and include_overheads:
            parts.append(("scale_out",
                          self.scale_output_seconds_batch(m * n)))
        return parts

    def linear_seconds_batch(self, m, n, k, precision: Precision,
                             **kw) -> np.ndarray:
        parts = self.linear_breakdown_batch(m, n, k, precision, **kw)
        total = parts[0][1]
        for _, s in parts[1:]:
            # sequential accumulation in list order — matches the
            # scalar sum() exactly (np.sum would pair-wise reorder)
            total = total + s
        return total

    def linear_tflops_batch(self, n, precision: Precision,
                            **kw) -> np.ndarray:
        """Vectorized :meth:`linear_tflops` over an array of sizes."""
        n = np.asarray(n, dtype=np.float64)
        secs = self.linear_seconds_batch(n, n, n, precision, **kw)
        return 2.0 * n ** 3 / secs / 1e12
