"""Functional thread-block clusters.

A :class:`Cluster` owns ``cluster_size`` blocks, each with a real
byte-addressable :class:`~repro.memory.shared.SharedMemory`.  Blocks
obtain handles to each other's allocations through
:meth:`Cluster.map_shared_rank` — the CUDA
``cluster.map_shared_rank(smem, rank)`` / PTX ``mapa`` primitive — and
the returned :class:`RemoteSharedHandle` performs *actual* reads,
writes and atomics against the peer block's storage while accounting
local-vs-remote access latency.

The DSM histogram application (:mod:`repro.dsm.histogram`) runs
entirely on this machinery, so its counts are real and its latency
totals come from the same network model the RBC benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.arch import DeviceSpec
from repro.dsm.network import SmToSmNetwork
from repro.memory.shared import SharedMemory
from repro.obs.session import counters_or_null

__all__ = ["Cluster", "RemoteSharedHandle"]


@dataclass
class RemoteSharedHandle:
    """A mapped view of (possibly another) block's shared memory."""

    cluster: "Cluster"
    owner_rank: int
    accessor_rank: int

    @property
    def remote(self) -> bool:
        return self.owner_rank != self.accessor_rank

    @property
    def _smem(self) -> SharedMemory:
        return self.cluster.block_smem(self.owner_rank)

    def _account(self, nbytes: int) -> float:
        if self.remote:
            lat = self.cluster.network.latency_clk
        else:
            lat = self.cluster.device.mem_latencies.shared_clk
        self.cluster.record_access(self.accessor_rank, remote=self.remote,
                                   cycles=lat, nbytes=nbytes)
        return lat

    # -- data operations ----------------------------------------------------

    def read_u32(self, offset: int) -> int:
        self._account(4)
        return self._smem.read_u32(offset)

    def write_u32(self, offset: int, value: int) -> None:
        self._account(4)
        self._smem.write_u32(offset, value)

    def atomic_add_u32(self, offset: int, value: int = 1) -> int:
        self._account(4)
        return self._smem.atomic_add_u32(offset, value)

    def read(self, offset: int, size: int) -> np.ndarray:
        self._account(size)
        return self._smem.read(offset, size)

    def write(self, offset: int, payload) -> None:
        data = np.asarray(payload)
        self._account(int(data.nbytes) if data.nbytes else 4)
        self._smem.write(offset, payload)


@dataclass
class Cluster:
    """One thread-block cluster with per-block shared memory."""

    device: DeviceSpec
    cluster_size: int
    smem_bytes_per_block: int
    network: SmToSmNetwork = field(init=False)
    _blocks: List[SharedMemory] = field(init=False)
    #: accounting: (local_accesses, remote_accesses, total_cycles)
    local_accesses: int = field(default=0, init=False)
    remote_accesses: int = field(default=0, init=False)
    access_cycles: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self._obs = counters_or_null()
        self.network = SmToSmNetwork(self.device)  # validates arch
        if not 1 <= self.cluster_size <= self.device.max_cluster_size:
            raise ValueError(
                f"cluster size must be in [1, "
                f"{self.device.max_cluster_size}]"
            )
        if self.smem_bytes_per_block <= 0:
            raise ValueError("smem_bytes_per_block must be positive")
        budget = self.device.cache.shared_max_kib * 1024
        if self.smem_bytes_per_block > budget:
            raise ValueError(
                f"per-block shared allocation {self.smem_bytes_per_block} "
                f"exceeds the device budget {budget}"
            )
        self._blocks = [
            SharedMemory(self.smem_bytes_per_block)
            for _ in range(self.cluster_size)
        ]

    def block_smem(self, rank: int) -> SharedMemory:
        if not 0 <= rank < self.cluster_size:
            raise IndexError(
                f"block rank {rank} out of range [0, {self.cluster_size})"
            )
        return self._blocks[rank]

    def map_shared_rank(self, accessor_rank: int,
                        target_rank: int) -> RemoteSharedHandle:
        """``cluster.map_shared_rank`` — a handle to ``target_rank``'s
        shared memory usable by ``accessor_rank``."""
        if not 0 <= accessor_rank < self.cluster_size:
            raise IndexError(f"bad accessor rank {accessor_rank}")
        if not 0 <= target_rank < self.cluster_size:
            raise IndexError(f"bad target rank {target_rank}")
        return RemoteSharedHandle(self, target_rank, accessor_rank)

    def record_access(self, rank: int, *, remote: bool,
                      cycles: float, nbytes: int = 4) -> None:
        if remote:
            self.remote_accesses += 1
        else:
            self.local_accesses += 1
        self.access_cycles += cycles
        obs = self._obs
        if obs.enabled:
            # a remote access is one hop across the GPC fabric; a
            # local one never leaves the SM
            kind = "remote" if remote else "local"
            if remote:
                obs.add("dsm.hops")
            else:
                obs.add("dsm.access.local")
            obs.add(f"dsm.bytes.{kind}", nbytes)
            obs.observe(f"dsm.latency.{kind}", cycles)

    @property
    def total_accesses(self) -> int:
        return self.local_accesses + self.remote_accesses

    def reset_stats(self) -> None:
        self.local_accesses = 0
        self.remote_accesses = 0
        self.access_cycles = 0.0
