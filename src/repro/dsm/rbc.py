"""Ring-based copy (RBC) DSM throughput benchmark (paper Fig 8).

One block per SM, blocks gathered into clusters; every thread of block
``R`` adds its register values into block ``(R+1) % CS``'s shared
memory, with ``ILP`` independent transfers in flight per thread.  The
achieved SM-to-SM throughput is::

    min( latency-bound injection (Little's law over warps × ILP),
         contended fabric bandwidth (network model) )

aggregated over all communicating SMs — reproducing Fig 8's three
findings: bigger blocks and more ILP help until the link saturates,
CS = 2 peaks (~3.3 TB/s on the H800), and throughput *declines* as the
cluster grows because the fabric is shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.arch import DeviceSpec
from repro.dsm.cluster import Cluster
from repro.dsm.network import SmToSmNetwork
from repro.obs.session import counters_or_null

__all__ = ["RingCopyBenchmark", "RingCopyResult"]


@dataclass(frozen=True)
class RingCopyResult:
    """One Fig 8 data point."""

    cluster_size: int
    block_threads: int
    ilp: int
    per_sm_bytes_per_clk: float
    aggregate_tbps: float
    latency_bound: bool


class RingCopyBenchmark:
    """RBC driver bound to one (Hopper) device."""

    #: bytes one warp-wide remote store moves (32 lanes × 4 B)
    BYTES_PER_INSTR = 128.0

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.network = SmToSmNetwork(device)

    # -- functional check ---------------------------------------------------

    def run_functional(self, cluster_size: int = 4,
                       threads: int = 64) -> bool:
        """Actually perform a small ring copy through real cluster
        storage and verify every value landed in the right block."""
        words = threads
        cluster = Cluster(self.device, cluster_size,
                          smem_bytes_per_block=4 * words)
        # each block writes rank-tagged values into its successor
        for rank in range(cluster_size):
            dst = cluster.map_shared_rank(rank, (rank + 1) % cluster_size)
            for t in range(words):
                dst.write_u32(4 * t, rank * 1000 + t)
        for rank in range(cluster_size):
            src = (rank - 1) % cluster_size
            own = cluster.map_shared_rank(rank, rank)
            for t in range(words):
                if own.read_u32(4 * t) != src * 1000 + t:
                    return False
        return True

    # -- timing -------------------------------------------------------------------

    def measure(self, *, cluster_size: int, block_threads: int,
                ilp: int) -> RingCopyResult:
        """Throughput of one (CS, block, ILP) configuration."""
        if block_threads < 32 or block_threads > 1024:
            raise ValueError("block_threads must be in [32, 1024]")
        warps = block_threads // 32
        lat_bw = self.network.latency_bound_bytes_per_clk(
            warps=warps, ilp=ilp, bytes_per_instr=self.BYTES_PER_INSTR
        )
        fabric_bw = self.network.effective_bytes_per_clk_sm(cluster_size)
        per_sm = min(lat_bw, fabric_bw)
        # one block per SM; every SM of every cluster communicates
        active = (self.device.num_sms // cluster_size) * cluster_size
        agg = per_sm * active * self.device.clocks.observed_hz / 1e12
        obs = counters_or_null()
        if obs.enabled:
            # per-link accounting of one modeled ring step: every
            # communicating SM drives its fabric link with one remote
            # hop of warps × ILP in-flight stores
            obs.add("dsm.rbc.configs")
            obs.add("dsm.link.active", active)
            obs.add("dsm.hops", active)
            obs.add("dsm.bytes.injected",
                    int(warps * ilp * self.BYTES_PER_INSTR) * active)
            obs.add("dsm.rbc.latency_bound" if lat_bw < fabric_bw
                    else "dsm.rbc.fabric_bound")
        return RingCopyResult(
            cluster_size=cluster_size,
            block_threads=block_threads,
            ilp=ilp,
            per_sm_bytes_per_clk=per_sm,
            aggregate_tbps=agg,
            latency_bound=lat_bw < fabric_bw,
        )

    def sweep(self, *, cluster_sizes: Iterable[int] = (2, 4, 8, 16),
              block_threads: Iterable[int] = (128, 256, 512, 1024),
              ilps: Iterable[int] = (1, 2, 4, 8)) -> List[RingCopyResult]:
        """The full Fig 8 grid."""
        out = []
        for cs in cluster_sizes:
            for bt in block_threads:
                for ilp in ilps:
                    out.append(self.measure(
                        cluster_size=cs, block_threads=bt, ilp=ilp
                    ))
        return out

    def peak_tbps(self) -> float:
        """Best configuration's aggregate throughput (Fig 8's ~3.3)."""
        return max(r.aggregate_tbps for r in self.sweep())
