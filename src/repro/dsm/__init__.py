"""Distributed shared memory / thread-block clusters (Hopper).

Models the SM-to-SM network Hopper adds inside each GPC and the CUDA
cluster programming model on top of it (paper §III-D3, Figs 8–9):

* :mod:`repro.dsm.network` — link latency (180 cycles, ~32 % below an
  L2 round trip) and the shared-fabric bandwidth contention that makes
  cluster-wide throughput *fall* as cluster size grows,
* :mod:`repro.dsm.cluster` — functional clusters: every block owns a
  real :class:`~repro.memory.shared.SharedMemory`, and
  ``map_shared_rank`` hands out remote handles whose loads/stores/
  atomics actually move bytes (and cost network cycles),
* :mod:`repro.dsm.rbc` — the paper's ring-based copy throughput
  benchmark across cluster size × block size × ILP,
* :mod:`repro.dsm.histogram` — the DSM histogram application: bins
  partitioned across the cluster, occupancy-vs-traffic trade-off.
"""

from __future__ import annotations

from repro.dsm.network import SmToSmNetwork
from repro.dsm.cluster import Cluster, RemoteSharedHandle
from repro.dsm.rbc import RingCopyBenchmark, RingCopyResult
from repro.dsm.histogram import (
    DsmHistogram,
    HistogramConfig,
    HistogramResult,
)

__all__ = [
    "SmToSmNetwork",
    "Cluster",
    "RemoteSharedHandle",
    "RingCopyBenchmark",
    "RingCopyResult",
    "DsmHistogram",
    "HistogramConfig",
    "HistogramResult",
]
