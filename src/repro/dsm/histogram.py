"""The DSM histogram application (paper §III-D3(3), Fig 9).

The redesigned CUDA histogram: bins are *partitioned across the blocks
of a cluster* — each thread loads an element, computes which block of
its cluster owns the target bin, maps that block's shared memory with
``mapa``, and atomically increments the bin.  Distributing bins

* divides the per-block shared-memory footprint by CS (each warp keeps
  a private sub-histogram to dampen conflicts, so footprint is
  ``Nbins × 4 B × warps / CS``), restoring SM occupancy when big
  ``Nbins`` would otherwise throttle resident blocks — the Fig 9 drop
  at CS = 1 from 1024 → 2048 bins, undone by CS ≥ 2;
* sends ``(CS−1)/CS`` of the increments across the SM-to-SM network,
  adding latency and contending for fabric bandwidth — why ever-larger
  clusters lose.

The model takes the min of the latency-bound rate (resident warps ×
lanes over per-element latency), the DRAM element-streaming cap and
the network cap on the remote-increment share; the functional path
really counts into cluster shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch import DeviceSpec
from repro.dsm.cluster import Cluster
from repro.dsm.network import SmToSmNetwork
from repro.obs.session import counters_or_null
from repro.sm.occupancy import BlockConfig, occupancy

__all__ = ["HistogramConfig", "HistogramResult", "DsmHistogram"]

#: limiter strings → counter slugs (``dsm.hist.limited_by.<slug>``)
_LIMITER_SLUGS = {
    "latency": "latency",
    "DRAM": "dram",
    "SM-to-SM network": "network",
    "shared memory": "shared_memory",
}

#: extra per-element issue overhead growing with cluster bookkeeping
_CLUSTER_OVERHEAD_CLK_PER_CS = 0.02
#: bytes loaded from global memory per histogram element
_ELEMENT_BYTES = 4.0


@dataclass(frozen=True)
class HistogramConfig:
    """One Fig 9 configuration."""

    nbins: int
    cluster_size: int
    block_threads: int = 128

    def __post_init__(self) -> None:
        if self.nbins < 2:
            raise ValueError("need at least 2 bins")
        if self.cluster_size < 1:
            raise ValueError("cluster size must be >= 1")
        if not 32 <= self.block_threads <= 1024:
            raise ValueError("block must have 32..1024 threads")

    @property
    def warps(self) -> int:
        return self.block_threads // 32

    @property
    def bins_per_block(self) -> int:
        return -(-self.nbins // self.cluster_size)  # ceil division

    @property
    def smem_bytes_per_block(self) -> int:
        """Per-warp sub-histograms over this block's bin slice."""
        return self.bins_per_block * 4 * self.warps

    @property
    def remote_fraction(self) -> float:
        """Share of increments landing in another block's bins
        (uniform data)."""
        return (self.cluster_size - 1) / self.cluster_size


@dataclass(frozen=True)
class HistogramResult:
    """Throughput estimate + limiting factor of one configuration."""

    config: HistogramConfig
    resident_blocks: int
    elements_per_clk_sm: float
    elements_per_second: float
    limiter: str


class DsmHistogram:
    """Functional + timing model of the cluster histogram."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self.network = SmToSmNetwork(device)

    # -- functional path -----------------------------------------------------

    def compute(self, data: np.ndarray, cfg: HistogramConfig) -> np.ndarray:
        """Histogram ``data`` (integer bin indices) through a real
        cluster; returns the merged counts and exercises remote
        atomics for every cross-block bin."""
        data = np.asarray(data)
        if data.size and (data.min() < 0 or data.max() >= cfg.nbins):
            raise ValueError("data values must be valid bin indices")
        cluster = Cluster(
            self.device, max(cfg.cluster_size, 1),
            smem_bytes_per_block=max(cfg.bins_per_block * 4, 4),
        )
        bpb = cfg.bins_per_block
        # round-robin threads over blocks, as the kernel's grid would
        for i, v in enumerate(data.ravel()):
            accessor = i % cfg.cluster_size
            owner, local_bin = divmod(int(v), bpb)
            handle = cluster.map_shared_rank(accessor, owner)
            handle.atomic_add_u32(4 * local_bin)
        counts = np.zeros(cfg.nbins, dtype=np.int64)
        for rank in range(cfg.cluster_size):
            smem = cluster.block_smem(rank)
            lo = rank * bpb
            hi = min(lo + bpb, cfg.nbins)
            if lo >= cfg.nbins:
                break
            raw = smem.read(0, 4 * (hi - lo)).view(np.uint32)
            counts[lo:hi] = raw
        return counts

    # -- timing -------------------------------------------------------------------

    def resident_blocks(self, cfg: HistogramConfig) -> int:
        occ = occupancy(
            self.device,
            BlockConfig(threads=cfg.block_threads, regs_per_thread=32,
                        smem_bytes=cfg.smem_bytes_per_block),
        )
        return occ.blocks_per_sm

    def per_element_latency_clk(self, cfg: HistogramConfig) -> float:
        lat = self.device.mem_latencies
        local = lat.shared_clk
        remote = lat.dsm_remote_clk
        atomic = ((1.0 - cfg.remote_fraction) * local
                  + cfg.remote_fraction * remote)
        overhead = _CLUSTER_OVERHEAD_CLK_PER_CS * cfg.cluster_size
        return lat.global_clk + atomic + overhead

    def measure(self, cfg: HistogramConfig) -> HistogramResult:
        obs = counters_or_null()
        nb = self.resident_blocks(cfg)
        if nb == 0:
            if obs.enabled:
                obs.add("dsm.hist.configs")
                obs.add("dsm.hist.limited_by.shared_memory")
            return HistogramResult(cfg, 0, 0.0, 0.0, "shared memory")
        candidates = {}
        inflight = nb * cfg.block_threads
        candidates["latency"] = (
            inflight / self.per_element_latency_clk(cfg)
        )
        dram_sm_clk = (
            self.device.dram.effective_bandwidth_gbps(1.0) * 1e9
            / (self.device.num_sms * self.device.clocks.observed_hz)
        )
        candidates["DRAM"] = dram_sm_clk / _ELEMENT_BYTES
        if cfg.remote_fraction > 0:
            net = self.network.effective_bytes_per_clk_sm(cfg.cluster_size)
            candidates["SM-to-SM network"] = (
                net / (4.0 * cfg.remote_fraction)
            )
        limiter = min(candidates, key=candidates.get)
        e_clk = candidates[limiter]
        if obs.enabled:
            obs.add("dsm.hist.configs")
            obs.add(f"dsm.hist.limited_by.{_LIMITER_SLUGS[limiter]}")
            obs.observe("dsm.latency.element",
                        self.per_element_latency_clk(cfg))
        return HistogramResult(
            config=cfg,
            resident_blocks=nb,
            elements_per_clk_sm=e_clk,
            elements_per_second=(
                e_clk * self.device.num_sms
                * self.device.clocks.observed_hz
            ),
            limiter=limiter,
        )

    def sweep(self, *, nbins=(256, 512, 1024, 2048, 4096),
              cluster_sizes=(1, 2, 4, 8),
              block_threads=(128, 512)):
        """The Fig 9 grid."""
        return [
            self.measure(HistogramConfig(n, cs, bt))
            for bt in block_threads
            for cs in cluster_sizes
            for n in nbins
        ]
