"""The Hopper SM-to-SM interconnect model.

Two calibrated primitives and one derived law:

* **Latency**: a remote shared-memory access completes in
  ``dsm_remote_clk`` (180 cycles on the H800) — 32 % less than the L2
  round trip, the paper's headline DSM latency result.
* **Injection bandwidth**: each SM can push the pack-calibrated
  ``link_bytes_per_clk`` into the fabric.
* **Contention** (derived): the fabric inside a GPC is shared, so with
  ``CS`` blocks of a cluster all communicating, the per-SM achieved
  bandwidth degrades as ``link / (1 + α·(CS − 1))`` — which yields the
  paper's Fig 8 ordering (peak ~3.3 TB/s at CS = 2, ~2.7 TB/s at
  CS = 4, lower beyond).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import DeviceSpec
from repro.isa.lowering import UnsupportedInstruction
from repro.obs.session import counters_or_null

__all__ = ["SmToSmNetwork"]

# The two calibrated primitives — per-SM fabric injection width
# (bytes/clk) and the fabric-sharing contention coefficient α — come
# from the architecture pack (``device.pack.dsm``), so each
# cluster-capable generation carries its own fabric numbers.


@dataclass(frozen=True)
class SmToSmNetwork:
    """The cluster-scope interconnect of one device."""

    device: DeviceSpec

    def __post_init__(self) -> None:
        if not self.device.pack.has_distributed_shared_memory:
            raise UnsupportedInstruction(
                f"{self.device.name} has no SM-to-SM network "
                "(distributed shared memory requires Hopper)"
            )

    # -- latency ----------------------------------------------------------

    @property
    def latency_clk(self) -> float:
        return self.device.mem_latencies.dsm_remote_clk

    @property
    def latency_vs_l2(self) -> float:
        """Latency reduction relative to an L2 round trip (the paper
        reports −32 %)."""
        return 1.0 - self.latency_clk / self.device.mem_latencies.l2_hit_clk

    # -- bandwidth -----------------------------------------------------------

    @property
    def link_bytes_per_clk(self) -> float:
        return self.device.pack.dsm.link_bytes_per_clk

    def effective_bytes_per_clk_sm(self, cluster_size: int) -> float:
        """Per-SM achieved fabric bandwidth inside a CS-block cluster."""
        self._check_cs(cluster_size)
        if cluster_size < 2:
            return 0.0  # no remote traffic possible
        cal = self.device.pack.dsm
        eff = cal.link_bytes_per_clk / (
            1.0 + cal.contention_alpha * (cluster_size - 1)
        )
        obs = counters_or_null()
        if obs.enabled:
            obs.add("dsm.fabric.queries")
            # cycles one 128 B packet loses to fabric sharing vs an
            # uncontended link — the contention-stall distribution
            stall = 128.0 / eff - 128.0 / cal.link_bytes_per_clk
            obs.observe("dsm.stall.contention", stall)
        return eff

    def aggregate_bandwidth_tbps(self, cluster_size: int,
                                 *, active_sms: int | None = None) -> float:
        """Device-wide SM-to-SM throughput (TB/s) with every SM hosting
        one communicating block — the quantity Fig 8 plots."""
        sms = active_sms if active_sms is not None else self.device.num_sms
        per_sm = self.effective_bytes_per_clk_sm(cluster_size)
        return per_sm * sms * self.device.clocks.observed_hz / 1e12

    def latency_bound_bytes_per_clk(self, *, warps: int, ilp: int,
                                    bytes_per_instr: float = 128.0) -> float:
        """Little's-law injection limit: in-flight bytes over latency."""
        if warps < 1 or ilp < 1:
            raise ValueError("warps and ilp must be >= 1")
        return warps * ilp * bytes_per_instr / self.latency_clk

    def _check_cs(self, cs: int) -> None:
        if cs < 1:
            raise ValueError("cluster size must be >= 1")
        if cs > self.device.max_cluster_size:
            raise ValueError(
                f"cluster size {cs} exceeds {self.device.name}'s max "
                f"{self.device.max_cluster_size}"
            )
