"""``hopperdissect`` command-line interface.

Subcommands::

    hopperdissect list                 # all experiments
    hopperdissect run table07_mma      # one experiment + checks
    hopperdissect run --all            # everything
    hopperdissect run --all --jobs 4   # ... on four processes
    hopperdissect run --all --profile  # ... + timings → BENCH_perf.json
    hopperdissect run --devices A100   # single-device sweep
    hopperdissect run --all --seed 7   # reseed the RNG-using workloads
    hopperdissect devices              # Table III
    hopperdissect report -o EXPERIMENTS.md
    hopperdissect run --all --counters # + hardware-counter table
    hopperdissect run --all --counters-json c.json  # machine-readable
    hopperdissect run --all --trace t.json   # + Perfetto trace
    hopperdissect stats table04_mem_latency  # counter deep-dive
    hopperdissect serve < queries.jsonl      # batch cost oracle
    hopperdissect query mma -d A100 -p ab=fp16 -p cd=fp32 \
        -p m=16 -p n=8 -p k=16               # one-shot point query

``--device/--devices`` and ``--seed``/``--fidelity`` build the
:class:`~repro.core.context.RunContext` the builders run under; the
default context is the paper's testbed (RTX4090, A100, H800, seed 0,
fast fidelity).  Under a restrictive device sweep, experiments pinned
to excluded devices are skipped with a note (``--all``) or fail with a
clear error (named explicitly).

Results are served from a content-addressed on-disk cache
(``~/.cache/hopperdissect`` or ``$HOPPERDISSECT_CACHE_DIR``) keyed on
the run context, the context's device specs and each builder's
transitive ``repro`` imports, so a re-run with nothing relevant
changed is near-instant; ``--no-cache`` forces fresh builds.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.arch import get_device, list_devices
from repro.core import (
    DEFAULT_CONTEXT,
    RunContext,
    get_experiment,
    list_experiments,
    run_all,
)
from repro.core.report import experiments_markdown, summary_line

__all__ = ["main"]


def _cmd_list(_args) -> int:
    for name in list_experiments():
        exp = get_experiment(name)
        print(f"{name:28s} {exp.paper_ref:12s} {exp.description}")
    return 0


def _cmd_devices(_args) -> int:
    names = list_devices()
    # capability matrix — one row per device, straight off each
    # device's ArchPack, so third-party packs show up automatically
    flags = (("wgmma", "has_wgmma"), ("tma", "has_tma"),
             ("dsm", "has_distributed_shared_memory"),
             ("fp8", "has_fp8"), ("dpx", "has_dpx_hardware"),
             ("cp.async", "has_cp_async"),
             ("sparse", "has_sparse_mma"))
    header = (["Device", "Arch", "CC", "TC gen"]
              + [label for label, _ in flags] + ["cluster"])
    rows = []
    for name in names:
        d = get_device(name)
        pack = d.pack
        rows.append(
            [name, pack.display_name, pack.compute_capability,
             str(d.tensor_core.generation)]
            + [("yes" if getattr(pack, attr) else "-")
               for _, attr in flags]
            + [str(d.max_cluster_size)
               if pack.has_distributed_shared_memory else "-"])
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    for name in names:
        d = get_device(name)
        print(f"\n{name}")
        for k, v in d.table3_row().items():
            print(f"  {k}: {v}")
    return 0


def _make_cache(args):
    if getattr(args, "no_cache", False):
        return None
    from repro.perf import ResultCache

    return ResultCache()


def _make_obs(args):
    """An :class:`~repro.obs.ObsSession` when ``--counters``,
    ``--counters-json`` or ``--trace`` asked for one, else ``None``
    (instrumentation stays on its null-object fast path)."""
    if (getattr(args, "counters", False)
            or getattr(args, "counters_json", None)
            or getattr(args, "metrics", None)
            or getattr(args, "trace", None)):
        from repro.obs import ObsSession

        return ObsSession(trace=bool(getattr(args, "trace", None)))
    return None


def _write_metrics(session, path, context) -> None:
    """``--metrics PATH``: labeled export, format by extension —
    ``.json`` gets the counters/v2 document, anything else the
    OpenMetrics text exposition."""
    if str(path).endswith(".json"):
        session.write_counters_v2(path, context=context)
        form = "counters/v2 JSON"
    else:
        session.write_openmetrics(path, context=context)
        form = "OpenMetrics text"
    print(f"wrote {path} ({form}, "
          f"{len(session.per_experiment)} experiment banks)")


def _finish_obs(session, args, context=None) -> None:
    """Print/serialize whatever the session collected."""
    if session is None:
        return
    if getattr(args, "counters", False):
        print(session.render_counters())
        print()
    counters_path = getattr(args, "counters_json", None)
    if counters_path:
        session.write_counters_json(counters_path, context=context)
        print(f"wrote {counters_path} "
              f"({len(session.counters)} counters)")
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        _write_metrics(session, metrics_path, context)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        session.write_trace(trace_path)
        print(f"wrote {trace_path} "
              f"({len(session.tracer.events)} events; load in "
              f"ui.perfetto.dev or chrome://tracing)")


def _make_context(args) -> RunContext:
    """The :class:`RunContext` the flags describe (default testbed
    when nothing was overridden)."""
    devices = getattr(args, "devices", None)
    kwargs = {}
    if devices:
        kwargs["devices"] = tuple(
            name for item in devices
            for name in item.split(",") if name)
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    if getattr(args, "fidelity", None) is not None:
        kwargs["fidelity"] = args.fidelity
    if not kwargs:
        return DEFAULT_CONTEXT
    try:
        return RunContext(**kwargs)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"hopperdissect: bad run context: {exc}")


def _cmd_run(args) -> int:
    context = _make_context(args)
    if args.all:
        names = []
        for name in list_experiments():
            exp = get_experiment(name)
            if exp.supports(context):
                names.append(name)
            else:
                print(f"note: skipping {name} ({exp.pin_note()}; "
                      f"not satisfied by context "
                      f"{','.join(context.devices)})", file=sys.stderr)
    else:
        names = args.experiments
    if not names:
        print("nothing to run: name experiments or pass --all",
              file=sys.stderr)
        return 2
    from repro.perf import (
        append_bench_history,
        run_experiments,
        write_bench_json,
    )

    session = _make_obs(args)
    if session is not None:
        context = session.bind(context)
        with session.activate():
            report = run_experiments(names, jobs=args.jobs,
                                     cache=_make_cache(args),
                                     context=context)
    else:
        report = run_experiments(names, jobs=args.jobs,
                                 cache=_make_cache(args),
                                 context=context)
    failed = 0
    for res in report.results.values():
        print(res.render())
        print()
        failed += sum(1 for c in res.checks if not c.passed)
    _finish_obs(session, args, context)
    if args.profile:
        print(report.profiler.render())
        bench_path = args.bench_json or "BENCH_perf.json"
        write_bench_json(bench_path, report.profiler)
        print(f"wrote {bench_path}")
        if args.bench_history:
            append_bench_history(args.bench_history, report.profiler,
                                 label=context.token())
            print(f"appended {args.bench_history}")
    if failed:
        print(f"{failed} finding check(s) FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_fidelity(_args) -> int:
    from repro.core.fidelity import fidelity_report
    print(fidelity_report().render())
    return 0


def _cmd_report(args) -> int:
    context = _make_context(args)
    session = _make_obs(args)
    if session is not None:
        context = session.bind(context)
        with session.activate():
            results = run_all(jobs=args.jobs, cache=_make_cache(args),
                              context=context)
    else:
        results = run_all(jobs=args.jobs, cache=_make_cache(args),
                          context=context)
    md = experiments_markdown(results)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(md)
        print(f"wrote {args.output}: {summary_line(results)}")
    else:
        print(md)
    _finish_obs(session, args, context)
    return 0


def _cmd_stats(args) -> int:
    """Deep-dive one experiment: run it fresh (no result cache — a
    cache hit would skip the instrumented code entirely) with counters
    forced on, and render the counter table next to the result."""
    from repro.obs import ObsSession
    from repro.perf import run_experiments

    context = _make_context(args)
    exp = get_experiment(args.experiment)
    if not exp.supports(context):
        print(f"hopperdissect: {args.experiment} cannot run here "
              f"({exp.pin_note()}; context "
              f"{','.join(context.devices)})", file=sys.stderr)
        return 2
    session = ObsSession(trace=bool(args.trace))
    context = session.bind(context)
    with session.activate():
        report = run_experiments([args.experiment], jobs=1,
                                 cache=None, context=context)
    res = report.results[args.experiment]
    print(res.render())
    print()
    print(session.render_counters())
    if args.counters_json:
        session.write_counters_json(args.counters_json,
                                    context=context)
        print(f"\nwrote {args.counters_json} "
              f"({len(session.counters)} counters)")
    if args.openmetrics:
        session.write_openmetrics(args.openmetrics, context=context)
        print(f"\nwrote {args.openmetrics} (OpenMetrics text)")
    if args.metrics_json:
        session.write_counters_v2(args.metrics_json, context=context)
        print(f"\nwrote {args.metrics_json} (counters/v2 JSON)")
    if args.trace:
        session.write_trace(args.trace)
        print(f"\nwrote {args.trace} "
              f"({len(session.tracer.events)} events; load in "
              f"ui.perfetto.dev or chrome://tracing)")
    drift_failed = False
    if args.diff:
        import os

        from repro.obs import diff_payloads, load_counters_v2

        baseline_path = args.diff
        if os.path.isdir(baseline_path):
            baseline_path = os.path.join(baseline_path,
                                         f"{args.experiment}.json")
        try:
            baseline = load_counters_v2(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"hopperdissect: cannot load baseline: {exc}",
                  file=sys.stderr)
            return 2
        report_drift = diff_payloads(
            baseline,
            session.counters_v2_payload(context=context),
            tolerance=args.tolerance,
            baseline_label=baseline_path,
        )
        print()
        print(report_drift.render())
        drift_failed = not report_drift.passed
    return 0 if res.passed and not drift_failed else 1


def _parse_param(item: str):
    """One ``-p key=value`` flag → (key, typed value): ints stay
    ints, ``true``/``false`` become booleans, the rest stay strings."""
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise SystemExit(
            f"hopperdissect: bad param {item!r}; expected key=value")
    low = raw.lower()
    if low in ("true", "false"):
        return key, low == "true"
    try:
        return key, int(raw)
    except ValueError:
        return key, raw


def _make_service(args, context):
    from repro.serve import QueryService

    return QueryService(context=context, cache=_make_cache(args),
                        jobs=args.jobs)


def _cmd_serve(args) -> int:
    """Batch query loop: JSONL requests in (stdin or ``--input``),
    canonical JSONL predictions out.  The whole stream is answered as
    one batch so duplicate and same-(kind, device) queries coalesce
    onto single vectorized sweeps."""
    context = _make_context(args)
    if args.input:
        with open(args.input) as fh:
            lines = fh.readlines()
    else:
        lines = sys.stdin.readlines()
    session = _make_obs(args)
    service = _make_service(args, context)
    if session is not None:
        with session.activate():
            text = service.answer_lines_text(lines)
    else:
        text = service.answer_lines_text(lines)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    _finish_obs(session, args, context)
    if args.stats_json:
        service.write_stats_json(args.stats_json)
        print(f"wrote {args.stats_json} (service stats)",
              file=sys.stderr)
    return 0


def _cmd_query(args) -> int:
    """One-shot point query from flags (or a raw ``--json`` object);
    prints the canonical prediction line.  Unknown devices and
    experiment names fail with the registries' did-you-mean
    suggestions."""
    import json as _json

    from repro.serve import QueryError, parse_query

    if args.json:
        try:
            obj = _json.loads(args.json)
        except _json.JSONDecodeError as exc:
            print(f"hopperdissect: bad --json: {exc}",
                  file=sys.stderr)
            return 2
    else:
        if not args.kind:
            print("hopperdissect: name a query kind (or pass --json)",
                  file=sys.stderr)
            return 2
        obj = {"kind": args.kind}
        if args.query_device:
            obj["device"] = args.query_device
        if args.precision:
            obj["precision"] = args.precision
        if args.param:
            obj["params"] = dict(_parse_param(p) for p in args.param)
    try:
        query = parse_query(obj)
    except QueryError as exc:
        # covers unknown devices too — the schema re-raises the
        # registry's did-you-mean KeyError as a QueryError
        print(f"hopperdissect: bad query: {exc}", file=sys.stderr)
        return 2
    context = _make_context(args)
    session = _make_obs(args)
    service = _make_service(args, context)
    if session is not None:
        with session.activate():
            prediction = service.answer(query)
    else:
        prediction = service.answer(query)
    print(prediction.to_line())
    _finish_obs(session, args, context)
    return 0 if prediction.status != "error" else 1


def _cmd_fuzz(args) -> int:
    """Scenario fuzzing: seeded random workloads through the query
    service, every answer stream checked against the invariant
    oracle, violations shrunk to replayable repro files.  Exits 1
    when any invariant fired (``--replay`` included — a repro that
    still reproduces reports its violation and exits 1)."""
    from repro.fuzz import replay_repro, run_fuzz

    session = _make_obs(args)

    if args.replay:
        try:
            if session is not None:
                with session.activate():
                    report = replay_repro(args.replay)
            else:
                report = replay_repro(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            print(f"hopperdissect: bad repro file: {exc}",
                  file=sys.stderr)
            return 2
        for v in report.violations:
            print(f"[{v.invariant}] {v.message}")
        if not report.violations:
            print(f"{args.replay}: no invariant fires any more "
                  f"({report.n_queries} queries, "
                  f"{report.n_checks} checks)")
        _finish_obs(session, args)
        return 1 if report.violations else 0

    devices = None
    if args.devices:
        devices = tuple(name for item in args.devices
                        for name in item.split(",") if name)
    kwargs = dict(jobs=args.jobs, devices=devices,
                  repro_dir=args.repro_dir,
                  max_repros=args.max_repros,
                  shrink=not args.no_shrink)
    try:
        if session is not None:
            with session.activate():
                report = run_fuzz(args.seed, args.budget, **kwargs)
        else:
            report = run_fuzz(args.seed, args.budget, **kwargs)
    except (KeyError, ValueError) as exc:
        print(f"hopperdissect: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    _finish_obs(session, args)
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="hopperdissect",
        description=(
            "Simulator-backed reproduction of 'Benchmarking and "
            "Dissecting the Nvidia Hopper GPU Architecture'"
        ),
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        fn=_cmd_list)
    sub.add_parser("devices", help="show device specs").set_defaults(
        fn=_cmd_devices)

    def add_perf_flags(sp) -> None:
        sp.add_argument("-j", "--jobs", type=int, default=1,
                        metavar="N",
                        help="run experiments on N processes")
        sp.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk result cache")

    def add_obs_flags(sp) -> None:
        sp.add_argument("--counters", action="store_true",
                        help="collect hardware-style counters and "
                             "print the counter table")
        sp.add_argument("--counters-json", default=None,
                        metavar="PATH", dest="counters_json",
                        help="dump the counter bank as canonical "
                             "JSON (hopperdissect.counters/v1)")
        sp.add_argument("--metrics", default=None, metavar="PATH",
                        help="export labeled per-experiment counters: "
                             "counters/v2 JSON for .json paths, "
                             "OpenMetrics text otherwise")
        sp.add_argument("--trace", default=None, metavar="PATH",
                        help="write a structured trace (Chrome/"
                             "Perfetto JSON, or JSONL for .jsonl "
                             "paths)")

    def add_context_flags(sp) -> None:
        sp.add_argument("--device", "--devices", dest="devices",
                        action="append", default=None,
                        metavar="NAME[,NAME]",
                        help="device sweep for the run context; "
                             "repeat or comma-separate for several "
                             "(default: RTX4090,A100,H800)")
        sp.add_argument("--seed", type=int, default=None, metavar="N",
                        help="RNG seed for seeded workloads "
                             "(default: 0)")
        sp.add_argument("--fidelity", choices=("fast", "full"),
                        default=None,
                        help="probe budget tier (default: fast)")

    run_p = sub.add_parser("run", help="run experiments")
    run_p.add_argument("experiments", nargs="*",
                       help="experiment names (see `list`)")
    run_p.add_argument("--all", action="store_true",
                       help="run every experiment the context supports")
    add_perf_flags(run_p)
    add_context_flags(run_p)
    add_obs_flags(run_p)
    run_p.add_argument("--profile", action="store_true",
                       help="print per-experiment timings and write "
                            "the BENCH_perf.json trajectory")
    run_p.add_argument("--bench-json", default=None, metavar="PATH",
                       help="where --profile writes timings "
                            "(default: BENCH_perf.json)")
    run_p.add_argument("--bench-history", default=None, metavar="PATH",
                       help="also append a timestamped --profile "
                            "snapshot to this .jsonl archive")
    run_p.set_defaults(fn=_cmd_run)

    sub.add_parser(
        "fidelity",
        help="score the simulator against the paper's absolute numbers",
    ).set_defaults(fn=_cmd_fidelity)

    rep_p = sub.add_parser("report",
                           help="generate the EXPERIMENTS.md report")
    rep_p.add_argument("-o", "--output", default=None,
                       help="output path (default: stdout)")
    add_perf_flags(rep_p)
    add_context_flags(rep_p)
    add_obs_flags(rep_p)
    rep_p.set_defaults(fn=_cmd_report)

    stats_p = sub.add_parser(
        "stats",
        help="run one experiment fresh and show its counter table",
    )
    stats_p.add_argument("experiment",
                         help="experiment name (see `list`)")
    add_context_flags(stats_p)
    stats_p.add_argument("--counters-json", default=None,
                         metavar="PATH", dest="counters_json",
                         help="also dump the counter bank as "
                              "canonical JSON")
    stats_p.add_argument("--openmetrics", default=None,
                         metavar="PATH",
                         help="also export the labeled counters as "
                              "OpenMetrics text exposition")
    stats_p.add_argument("--metrics-json", default=None,
                         metavar="PATH", dest="metrics_json",
                         help="also export the labeled counters as "
                              "counters/v2 JSON")
    stats_p.add_argument("--trace", default=None, metavar="PATH",
                         help="also write a structured trace")
    stats_p.add_argument("--diff", default=None, metavar="BASELINE",
                         help="diff this run's counters against a "
                              "golden counters/v2 baseline (file, or "
                              "directory holding "
                              "<experiment>.json); exits 1 on "
                              "failing drift")
    stats_p.add_argument("--tolerance", type=float, default=0.0,
                         metavar="FRAC",
                         help="relative drift allowed per histogram "
                              "bucket, as a fraction of the "
                              "family's total observations "
                              "(default: 0 — exact)")
    stats_p.set_defaults(fn=_cmd_stats)

    serve_p = sub.add_parser(
        "serve",
        help="answer a JSONL batch of cost queries (stdin → stdout)",
    )
    serve_p.add_argument("-i", "--input", default=None, metavar="PATH",
                         help="JSONL request file (default: stdin)")
    serve_p.add_argument("-o", "--output", default=None, metavar="PATH",
                         help="prediction JSONL output "
                              "(default: stdout)")
    serve_p.add_argument("--stats-json", default=None, metavar="PATH",
                         dest="stats_json",
                         help="dump private service stats (cache hit "
                              "tiers, wall-stage latency histograms) — "
                              "kept out of the deterministic counter "
                              "bank")
    add_perf_flags(serve_p)
    add_context_flags(serve_p)
    add_obs_flags(serve_p)
    serve_p.set_defaults(fn=_cmd_serve)

    query_p = sub.add_parser(
        "query",
        help="answer one point query from flags",
    )
    query_p.add_argument("kind", nargs="?", default=None,
                         help="query kind (te.linear, llm.generate, "
                              "mma, wgmma, memory.latency, "
                              "dsm.bandwidth, experiment)")
    query_p.add_argument("-d", "--on", dest="query_device",
                         default=None, metavar="NAME",
                         help="target device of the query (registry "
                              "name; --device/--devices remain the "
                              "run-context sweep for experiment "
                              "queries)")
    query_p.add_argument("--precision", default=None,
                         help="fp32/fp16/bf16/fp8 for te.linear and "
                              "llm.generate")
    query_p.add_argument("-p", "--param", action="append",
                         default=None, metavar="KEY=VALUE",
                         help="query parameter; repeatable "
                              "(e.g. -p m=4096 -p n=4096 -p k=4096)")
    query_p.add_argument("--json", default=None, metavar="OBJECT",
                         help="raw query JSON object (overrides the "
                              "flag form)")
    add_perf_flags(query_p)
    add_context_flags(query_p)
    add_obs_flags(query_p)
    query_p.set_defaults(fn=_cmd_query)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="fuzz the cost models against the invariant oracle",
    )
    fuzz_p.add_argument("--seed", type=int, default=0, metavar="S",
                        help="scenario-stream seed (default: 0); "
                             "scenario i of seed S is identical "
                             "across runs and --jobs fan-outs")
    fuzz_p.add_argument("--budget", type=int, default=200,
                        metavar="N",
                        help="number of scenarios to check "
                             "(default: 200)")
    fuzz_p.add_argument("-j", "--jobs", type=int, default=1,
                        metavar="N",
                        help="check scenarios on N processes "
                             "(work-stealing pool; results and "
                             "counter dumps match --jobs 1)")
    fuzz_p.add_argument("--device", "--devices", dest="devices",
                        action="append", default=None,
                        metavar="NAME[,NAME]",
                        help="device pool scenarios draw lineups "
                             "from (default: every registered "
                             "device)")
    fuzz_p.add_argument("--repro-dir", default=None, metavar="DIR",
                        dest="repro_dir",
                        help="write one shrunk repro-*.jsonl per "
                             "violating scenario here")
    fuzz_p.add_argument("--max-repros", type=int, default=5,
                        metavar="N", dest="max_repros",
                        help="shrink at most N violating scenarios "
                             "(default: 5)")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        dest="no_shrink",
                        help="write repros without minimizing them")
    fuzz_p.add_argument("--replay", default=None, metavar="FILE",
                        help="re-check a repro file instead of "
                             "fuzzing; exits 1 if it still "
                             "reproduces")
    add_obs_flags(fuzz_p)
    fuzz_p.set_defaults(fn=_cmd_fuzz)
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
