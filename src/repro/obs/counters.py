"""Named monotonic counters — the simulator's hardware-counter bank.

Modeled on what Nsight/CUPTI expose off real silicon: a flat namespace
of monotonically increasing integer counters (``cache.l1.hits``,
``sm.stall.scoreboard``, ``mem.bytes.dram``, …) plus power-of-two
latency histograms folded into the same namespace
(``mem.latency.l2.le00000512``), so one sorted dump describes a whole
run and two dumps merge by plain addition.

Determinism is a design constraint, not an afterthought: counters hold
**integers only** (byte counts, event counts, histogram buckets), so
merging per-experiment deltas in any grouping — one process or a pool
of workers — produces bit-identical totals.  The serial and parallel
runners therefore emit byte-identical counter dumps for the same seed
and context.

The hot-loop contract is the :class:`NullCounterSet` fast path: code
holds either a real :class:`CounterSet` or the shared
:data:`NULL_COUNTERS` sentinel and guards instrumentation with the
class-level ``enabled`` flag::

    obs = self._obs                  # CounterSet or NULL_COUNTERS
    if obs.enabled:
        obs.add("cache.l1.hits")

With observability off that is a single attribute load per batch — the
vectorized paths pay nothing measurable.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "CounterSet",
    "NullCounterSet",
    "NULL_COUNTERS",
    "bucket_bound",
    "bucket_label",
    "counter_sort_key",
    "split_bucket",
]


def bucket_bound(value: float) -> int:
    """The power-of-two histogram bucket upper bound covering
    ``value`` (smallest ``2**k >= value``, at least 1)."""
    bound = 1
    v = int(value) if value == int(value) else int(value) + 1
    while bound < v:
        bound <<= 1
    return bound


def bucket_label(name: str, value: float) -> str:
    """Counter key of the histogram bucket ``value`` falls into.

    Bounds are zero-padded so a lexicographic sort of the dump lists
    buckets in numeric order.
    """
    return f"{name}.le{bucket_bound(value):08d}"


#: a histogram bucket key: ``<family>.le<decimal bound>``
_BUCKET_RE = re.compile(r"^(?P<family>.+)\.le(?P<bound>\d+)$")


def split_bucket(name: str) -> Tuple[str, Optional[int]]:
    """``(family, bound)`` for a histogram bucket key, else
    ``(name, None)`` — how the export/diff layers recognise which
    counters belong to the same latency histogram."""
    m = _BUCKET_RE.match(name)
    if m is None:
        return name, None
    return m.group("family"), int(m.group("bound"))


def counter_sort_key(name: str) -> Tuple[str, int]:
    """Canonical dump ordering: histogram buckets sort *numerically*
    by bound within their family.

    Zero-padding keeps the lexicographic order numeric only up to
    eight digits; a ``.le134217728`` bucket (2^27 cycles) would sort
    *after* ``.le1073741824`` (2^30) lexically.  Every dump/rendering
    path sorts with this key instead, so deep-tail buckets list in
    bound order.  For names without a bucket suffix (and for all
    bounds below 10^8) the order is identical to a plain string sort.
    """
    family, bound = split_bucket(name)
    if bound is None:
        return name, -1
    return f"{family}.le", bound


class CounterSet:
    """A bank of named monotonic integer counters."""

    __slots__ = ("_counters",)

    #: class-level flag hot loops branch on (see module docstring)
    enabled = True

    def __init__(self,
                 values: Optional[Mapping[str, int]] = None) -> None:
        self._counters: Dict[str, int] = {}
        if values:
            self.merge(values)

    # -- increments ---------------------------------------------------------

    def add(self, name: str, n: int = 1) -> None:
        """Increment ``name`` by ``n`` (an integer; floats are
        truncated deliberately — counters stay exact)."""
        self._counters[name] = self._counters.get(name, 0) + int(n)

    def observe(self, name: str, value: float, n: int = 1) -> None:
        """Record ``value`` into ``name``'s power-of-two histogram."""
        self.add(bucket_label(name, value), n)

    def observe_many(self, name: str, values) -> None:
        """Vectorized :meth:`observe` over an array of values."""
        import numpy as np

        a = np.asarray(values)
        if a.size == 0:
            return
        bounds, counts = np.unique(
            np.maximum(
                2 ** np.ceil(np.log2(np.maximum(a, 1.0))).astype(
                    np.int64), 1),
            return_counts=True)
        for bound, count in zip(bounds.tolist(), counts.tolist()):
            self.add(f"{name}.le{bound:08d}", count)

    # -- reads --------------------------------------------------------------

    def get(self, name: str, default: int = 0) -> int:
        return self._counters.get(name, default)

    def total(self, prefix: str) -> int:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(v for k, v in self._counters.items()
                   if k.startswith(prefix))

    def items(self) -> Iterator[Tuple[str, int]]:
        """Counters in canonical order (:func:`counter_sort_key` —
        name order, histogram buckets numeric by bound)."""
        return iter(sorted(self._counters.items(),
                           key=lambda kv: counter_sort_key(kv[0])))

    def as_dict(self) -> Dict[str, int]:
        """A canonically ordered plain-dict snapshot (the
        merge/transport format)."""
        return dict(self.items())

    def dump(self) -> str:
        """Canonical JSON — byte-identical for equal counter states.

        Keys keep :meth:`items` order (``sort_keys`` would fall back
        to the lexicographic order that misplaces 9-digit histogram
        bounds)."""
        return json.dumps(self.as_dict(), sort_keys=False,
                          separators=(",", ":"))

    def delta_since(self, snapshot: Mapping[str, int]) \
            -> Dict[str, int]:
        """Counter increments since ``snapshot`` (a prior
        :meth:`as_dict`).  Counters are monotonic, so every live key
        dominates the snapshot and the delta is non-negative."""
        return {k: d for k, v in self._counters.items()
                if (d := v - snapshot.get(k, 0))}

    def add_scaled(self, delta: Mapping[str, int], k: int) -> None:
        """Apply ``delta`` ``k`` times over — how a steady-state
        engine accounts the counters of extrapolated iterations
        without replaying them."""
        if k <= 0:
            return
        for name, value in delta.items():
            self.add(name, value * k)

    # -- composition --------------------------------------------------------

    def merge(self,
              other: Union["CounterSet", Mapping[str, int]]) -> None:
        """Add another counter bank (a worker's delta) into this one."""
        items = other.as_dict().items() \
            if isinstance(other, CounterSet) else other.items()
        for name, value in items:
            self.add(name, value)

    def clear(self) -> None:
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._counters)

    def __bool__(self) -> bool:
        return bool(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CounterSet: {len(self._counters)} counters>"


class NullCounterSet(CounterSet):
    """The disabled-observability sentinel.

    Every mutator is a no-op and ``enabled`` is False, so hot loops
    holding it skip instrumentation with one attribute check while
    cold paths may still call the mutators unconditionally.
    """

    __slots__ = ()

    enabled = False

    def add(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float, n: int = 1) -> None:
        pass

    def observe_many(self, name: str, values) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullCounterSet>"


#: the shared do-nothing sink — hold this when no session is active
NULL_COUNTERS = NullCounterSet()
