"""The observability session — activation, context wiring, transport.

An :class:`ObsSession` owns one :class:`~repro.obs.counters.CounterSet`
and (optionally) one :class:`~repro.obs.trace.Tracer` for the duration
of a run.  Exactly one session is *active* per process at a time,
published through the module-global :data:`ACTIVE`; instrumented code
asks :func:`counters_or_null` / :func:`active_tracer` and pays a
single ``None``/flag check when observability is off, keeping the
default path byte-identical to an uninstrumented build.

Wiring into the experiment stack:

* :meth:`ObsSession.bind` chains the session onto a
  :class:`~repro.core.context.RunContext`'s existing timing hook, so
  every experiment completion lands as a wall-clock span plus an
  ``exp.completed`` counter without the runner knowing about tracing.
* The process-pool runner activates a **fresh nested session per
  experiment** — in workers *and* on the serial path — and ships the
  :meth:`dump` back with the result; the parent :meth:`merge`\\ s the
  deltas in requested-name order.  Counters are integers, so the
  grouping cannot change totals: serial and parallel runs produce
  byte-identical counter dumps.

Sessions activate as context managers and nest (the previous session
is restored on exit), so a worker-side session composes with a
CLI-level one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional, Union

from repro.obs.counters import NULL_COUNTERS, CounterSet
from repro.obs.trace import Tracer

__all__ = [
    "ObsSession",
    "ACTIVE",
    "active",
    "active_counters",
    "active_tracer",
    "counters_or_null",
]

#: the process's active session (``None`` — the default — means off)
ACTIVE: Optional["ObsSession"] = None


def active() -> Optional["ObsSession"]:
    """The active session, or ``None`` when observability is off."""
    return ACTIVE


def active_counters() -> Optional[CounterSet]:
    s = ACTIVE
    return s.counters if s is not None else None


def counters_or_null() -> CounterSet:
    """The active session's counters, else the shared null sink —
    what hot constructors capture once and branch on ``.enabled``."""
    s = ACTIVE
    return s.counters if s is not None else NULL_COUNTERS


def active_tracer() -> Optional[Tracer]:
    s = ACTIVE
    return s.tracer if s is not None else None


class ObsSession:
    """One run's worth of counters and (optionally) trace events."""

    def __init__(self, *, trace: bool = False) -> None:
        self.counters = CounterSet()
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        #: per-experiment counter banks — populated when the runner
        #: merges worker dumps with an ``experiment=`` attribution;
        #: what the labeled exports (OpenMetrics, counters/v2) render
        self.per_experiment: Dict[str, CounterSet] = {}

    # -- activation ---------------------------------------------------------

    @contextmanager
    def activate(self):
        """Publish this session as :data:`ACTIVE`; restores the
        previous session (sessions nest) on exit."""
        global ACTIVE
        previous = ACTIVE
        ACTIVE = self
        try:
            yield self
        finally:
            ACTIVE = previous

    # -- RunContext wiring --------------------------------------------------

    def bind(self, ctx):
        """``ctx`` with this session chained onto its timing hook.

        The hook receives ``(experiment_name, wall_seconds)`` after
        each build; the session turns that into a completed span on
        the wall track plus an ``exp.completed`` counter, then feeds
        any pre-existing hook.  Wall durations never enter the
        counters — counter dumps stay deterministic.
        """
        from dataclasses import replace

        previous = ctx.hook

        def hook(name: str, wall_s: float) -> None:
            self.counters.add("exp.completed")
            if self.tracer is not None:
                now = self.tracer.now_us()
                dur = wall_s * 1e6
                self.tracer.complete(name, max(now - dur, 0.0), dur,
                                     cat="experiment")
            if previous is not None:
                previous(name, wall_s)

        return replace(ctx, hook=hook)

    # -- transport ----------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """The picklable delta a worker ships back with its result."""
        return {
            "counters": self.counters.as_dict(),
            "events": list(self.tracer.events)
            if self.tracer is not None else [],
        }

    def merge(self, dump: Optional[Dict[str, Any]],
              experiment: Optional[str] = None) -> None:
        """Fold a worker's (or nested session's) delta into this one.

        ``experiment`` attributes the delta's counters to that
        experiment's labeled bank as well as the flat totals; the
        runner passes the experiment name so the export layer can
        label every counter.  Attribution is pure addition of integer
        deltas, so it inherits the flat bank's determinism: serial and
        process-pool runs build identical labeled banks.
        """
        if not dump:
            return
        counters = dump.get("counters", {})
        self.counters.merge(counters)
        if experiment is not None and counters:
            bank = self.per_experiment.get(experiment)
            if bank is None:
                bank = self.per_experiment[experiment] = CounterSet()
            bank.merge(counters)
        events = dump.get("events")
        if events and self.tracer is not None:
            self.tracer.merge(events)

    # -- labeled views ------------------------------------------------------

    def experiment_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-experiment banks as plain dicts, experiments sorted by
        name, counters in canonical order."""
        return {name: self.per_experiment[name].as_dict()
                for name in sorted(self.per_experiment)}

    def orchestration_counters(self) -> Dict[str, int]:
        """Counters fired *outside* any experiment — the flat totals
        minus every attributed bank: cache probes, the ``exp.completed``
        hook, runner self-profiling."""
        from repro.obs.counters import counter_sort_key

        rem = dict(self.counters.as_dict())
        for bank in self.per_experiment.values():
            for name, value in bank.as_dict().items():
                left = rem.get(name, 0) - value
                if left:
                    rem[name] = left
                else:
                    rem.pop(name, None)
        return dict(sorted(rem.items(),
                           key=lambda kv: counter_sort_key(kv[0])))

    # -- rendering ----------------------------------------------------------

    def counters_table(self, title: str = "hardware counters"):
        """The counter bank as a :class:`~repro.core.tables.Table`."""
        from repro.core.tables import Table

        table = Table(title, ["counter", "value"])
        for name, value in self.counters.items():
            table.add_row(name, value)
        return table

    def render_counters(self) -> str:
        if not self.counters:
            return "(no counters recorded)"
        return self.counters_table().render()

    # -- counter output -----------------------------------------------------

    #: schema tag stamped into :meth:`write_counters_json` payloads;
    #: bump the ``/vN`` suffix on breaking shape changes
    COUNTERS_SCHEMA = "hopperdissect.counters/v1"

    def write_counters_json(self, path, *,
                            context: Optional[Any] = None) -> str:
        """Serialize the counter bank as machine-readable JSON.

        The payload is canonical (sorted keys, fixed separators), so
        equal counter states produce byte-identical files — diffable
        in CI and stable under serial/parallel regrouping::

            {"schema": "hopperdissect.counters/v1",
             "context": "A100,H800/seed0/fast" | null,
             "counters": {"exp.completed": 3, ...}}

        ``context`` may be a :class:`~repro.core.context.RunContext`
        (its token is recorded) or ``None``.  Returns the written
        path.  ``benchmarks/validate_counters.py`` checks this shape.
        """
        import json

        token = None
        if context is not None:
            token = context.token() if hasattr(context, "token") \
                else str(context)
        payload = {
            "schema": self.COUNTERS_SCHEMA,
            "context": token,
            "counters": self.counters.as_dict(),
        }
        path = str(path)
        with open(path, "w") as fh:
            json.dump(payload, fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")
        return path

    def _labeled_banks(self) -> Dict[str, Dict[str, int]]:
        """Every labeled bank plus the orchestration remainder under
        the :data:`~repro.obs.export.ORCHESTRATION` key — the input
        shape of the OpenMetrics renderer."""
        from repro.obs.export import ORCHESTRATION

        banks = self.experiment_counters()
        orchestration = self.orchestration_counters()
        if orchestration or not banks:
            banks[ORCHESTRATION] = orchestration
        return banks

    def write_openmetrics(self, path, *,
                          context: Optional[Any] = None) -> str:
        """Serialize the labeled banks as OpenMetrics text exposition
        (see :func:`repro.obs.export.render_openmetrics`); returns the
        written path."""
        from repro.obs.export import context_labels, render_openmetrics

        text = render_openmetrics(self._labeled_banks(),
                                  labels=context_labels(context))
        path = str(path)
        with open(path, "w") as fh:
            fh.write(text)
        return path

    def counters_v2_payload(self, *,
                            context: Optional[Any] = None) \
            -> Dict[str, Any]:
        """The in-memory counters/v2 document — what the drift gate
        diffs against a committed golden baseline without touching
        disk."""
        from repro.obs.export import context_labels, counters_v2_payload

        return counters_v2_payload(self.experiment_counters(),
                                   self.orchestration_counters(),
                                   labels=context_labels(context),
                                   context=context)

    def write_counters_v2(self, path, *,
                          context: Optional[Any] = None) -> str:
        """Serialize the labeled banks as ``hopperdissect.counters/v2``
        JSON (see :func:`repro.obs.export.render_counters_v2`); returns
        the written path."""
        from repro.obs.export import context_labels, render_counters_v2

        text = render_counters_v2(self.experiment_counters(),
                                  self.orchestration_counters(),
                                  labels=context_labels(context),
                                  context=context)
        path = str(path)
        with open(path, "w") as fh:
            fh.write(text)
        return path

    # -- trace output -------------------------------------------------------

    def write_trace(self, path) -> Optional[str]:
        """Write the Chrome-trace JSON (or compact JSONL when ``path``
        ends in ``.jsonl``); returns the written path or ``None`` when
        tracing was off."""
        if self.tracer is None:
            return None
        path = str(path)
        if path.endswith(".jsonl"):
            return str(self.tracer.write_jsonl(path))
        return str(self.tracer.write_chrome(path))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        trace = len(self.tracer) if self.tracer is not None else "off"
        return (f"<ObsSession: {len(self.counters)} counters, "
                f"trace={trace}>")
