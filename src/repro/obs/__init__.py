"""``repro.obs`` — hardware-counter metrics and structured tracing.

A zero-overhead-when-off instrumentation layer modeled on GPU profiler
counters: :mod:`repro.obs.counters` is the counter bank (cache
hits/misses/evictions per level, SM issue and stall slots, bytes moved
per memory path, tensor-core MAC counts), :mod:`repro.obs.trace` is
the span/event tracer with Chrome-trace/Perfetto export, and
:mod:`repro.obs.session` binds both to a run — activated by the
``--counters``/``--trace`` CLI flags and the ``hopperdissect stats``
subcommand, aggregated deterministically across the process-pool
runner.

This package is an import leaf: it depends only on the standard
library (NumPy lazily), so every simulator layer can instrument
itself without cycles.
"""

from __future__ import annotations

from repro.obs.counters import (
    NULL_COUNTERS,
    CounterSet,
    NullCounterSet,
    bucket_bound,
    bucket_label,
)
from repro.obs.session import (
    ObsSession,
    active,
    active_counters,
    active_tracer,
    counters_or_null,
)
from repro.obs.trace import SIM_TRACK, WALL_TRACK, Tracer

__all__ = [
    "CounterSet",
    "NullCounterSet",
    "NULL_COUNTERS",
    "bucket_bound",
    "bucket_label",
    "Tracer",
    "WALL_TRACK",
    "SIM_TRACK",
    "ObsSession",
    "active",
    "active_counters",
    "active_tracer",
    "counters_or_null",
]
