"""``repro.obs`` — hardware-counter metrics and structured tracing.

A zero-overhead-when-off instrumentation layer modeled on GPU profiler
counters: :mod:`repro.obs.counters` is the counter bank (cache
hits/misses/evictions per level, SM issue and stall slots, bytes moved
per memory path, tensor-core MAC counts), :mod:`repro.obs.trace` is
the span/event tracer with Chrome-trace/Perfetto export, and
:mod:`repro.obs.session` binds both to a run — activated by the
``--counters``/``--trace`` CLI flags and the ``hopperdissect stats``
subcommand, aggregated deterministically across the process-pool
runner.

On top of the bank sit three derived planes:
:mod:`repro.obs.export` renders the per-experiment labeled banks to
OpenMetrics text and ``hopperdissect.counters/v2`` JSON (byte-identical
serial vs ``--jobs N``), :mod:`repro.obs.diff` is the golden-baseline
counter-regression gate (``hopperdissect stats --diff``), and
:mod:`repro.obs.catalog` is the registry every emitted counter family
must appear in — rendered to ``docs/counters.md`` and enforced in CI.

This package is an import leaf: it depends only on the standard
library (NumPy lazily), so every simulator layer can instrument
itself without cycles.
"""

from __future__ import annotations

from repro.obs.counters import (
    NULL_COUNTERS,
    CounterSet,
    NullCounterSet,
    bucket_bound,
    bucket_label,
    counter_sort_key,
    split_bucket,
)
from repro.obs.catalog import (
    CATALOG,
    CounterEntry,
    catalog_markdown,
    lookup,
    uncatalogued,
)
from repro.obs.diff import (
    CounterDrift,
    DriftReport,
    diff_files,
    diff_payloads,
)
from repro.obs.export import (
    COUNTERS_V2_SCHEMA,
    ORCHESTRATION,
    counters_v2_payload,
    load_counters_v2,
    render_counters_v2,
    render_openmetrics,
)
from repro.obs.session import (
    ObsSession,
    active,
    active_counters,
    active_tracer,
    counters_or_null,
)
from repro.obs.trace import SIM_TRACK, WALL_TRACK, Tracer

__all__ = [
    "CounterSet",
    "NullCounterSet",
    "NULL_COUNTERS",
    "bucket_bound",
    "bucket_label",
    "counter_sort_key",
    "split_bucket",
    "COUNTERS_V2_SCHEMA",
    "ORCHESTRATION",
    "counters_v2_payload",
    "load_counters_v2",
    "render_counters_v2",
    "render_openmetrics",
    "CounterDrift",
    "DriftReport",
    "diff_files",
    "diff_payloads",
    "CATALOG",
    "CounterEntry",
    "catalog_markdown",
    "lookup",
    "uncatalogued",
    "Tracer",
    "WALL_TRACK",
    "SIM_TRACK",
    "ObsSession",
    "active",
    "active_counters",
    "active_tracer",
    "counters_or_null",
]
