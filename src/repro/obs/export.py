"""Metrics export — OpenMetrics text and labeled counters/v2 JSON.

The counter bank's native dump (``hopperdissect.counters/v1``) is a
flat name→int map: perfect for diffing, useless for a metrics
backend, which wants *labels*.  This module renders the session's
per-experiment counter banks into the two standard shapes:

* **OpenMetrics / Prometheus text exposition** —
  :func:`render_openmetrics`.  Counter names become metric names
  (``dsm.hops`` → ``hopperdissect_dsm_hops_total``); the power-of-two
  latency histograms (``mem.latency.l2.le00000512`` …) become real
  OpenMetrics histograms with cumulative ``_bucket{le="…"}`` samples,
  a ``+Inf`` bucket and ``_count``.  Every sample carries the
  ``{device, experiment, fidelity}`` label set; counters the
  orchestration layer fired outside any experiment (cache probes, the
  ``exp.completed`` hook) are labeled
  ``experiment="_orchestration"``.

* **``hopperdissect.counters/v2``** — :func:`render_counters_v2`, the
  labeled JSON form: the same per-experiment banks keyed by
  experiment name, with the run-level labels and context token
  alongside.  The v1 shape (``ObsSession.write_counters_json``) stays
  as the flat, lexically sorted legacy format.

Both renderings are canonical: experiments sort by name, counters by
:func:`~repro.obs.counters.counter_sort_key` (histogram buckets
numeric by bound), no timestamps — equal counter states produce
byte-identical output no matter how many workers the deltas crossed.
The obs-tripwire CI job holds serial and ``--jobs N`` runs to exactly
that.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.counters import counter_sort_key, split_bucket

__all__ = [
    "COUNTERS_V2_SCHEMA",
    "METRIC_PREFIX",
    "ORCHESTRATION",
    "context_labels",
    "counters_v2_payload",
    "metric_name",
    "render_counters_v2",
    "render_openmetrics",
    "load_counters_v2",
]

#: schema tag of the labeled JSON form; the flat legacy form is
#: ``hopperdissect.counters/v1`` (see ``ObsSession.COUNTERS_SCHEMA``)
COUNTERS_V2_SCHEMA = "hopperdissect.counters/v2"

#: every exported metric name starts with this (OpenMetrics convention
#: for a single-application exposition)
METRIC_PREFIX = "hopperdissect"

#: pseudo-experiment label for counters fired outside any experiment —
#: the runner/cache/hook orchestration layer.  The leading underscore
#: keeps it out of the experiment namespace (registry names are
#: identifier-like) and sorts it first.
ORCHESTRATION = "_orchestration"

#: characters legal in an OpenMetrics metric name
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(counter: str) -> str:
    """OpenMetrics metric name for a counter family
    (``dsm.stall.contention`` → ``hopperdissect_dsm_stall_contention``)."""
    return f"{METRIC_PREFIX}_" + _NAME_OK.sub("_", counter.replace(".", "_"))


def _escape(value: str) -> str:
    """OpenMetrics label-value escaping."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def context_labels(context: Optional[Any]) -> Dict[str, str]:
    """The run-level label set a :class:`~repro.core.context.RunContext`
    contributes: the device sweep and the fidelity tier.  (The seed is
    carried by the context token, not a label — it never changes what
    a counter *means*.)"""
    if context is None:
        return {}
    labels: Dict[str, str] = {}
    devices = getattr(context, "devices", None)
    if devices:
        labels["device"] = ",".join(devices)
    fidelity = getattr(context, "fidelity", None)
    if fidelity:
        labels["fidelity"] = str(fidelity)
    return labels


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"'
                     for k, v in labels.items())
    return "{" + inner + "}"


def _families(banks: Mapping[str, Mapping[str, int]]) \
        -> Tuple[List[str], Dict[str, bool]]:
    """All counter families across ``banks`` plus whether each is a
    histogram (has ``.le<bound>`` buckets) — sorted by family name."""
    is_hist: Dict[str, bool] = {}
    for counters in banks.values():
        for name in counters:
            family, bound = split_bucket(name)
            if bound is not None:
                is_hist[family] = True
            else:
                is_hist.setdefault(name, False)
    return sorted(is_hist), is_hist


def render_openmetrics(
    banks: Mapping[str, Mapping[str, int]],
    *,
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """The OpenMetrics text exposition of labeled counter banks.

    ``banks`` maps experiment name → counter dict (the
    :data:`ORCHESTRATION` key holds the runner's own counters).  Each
    sample carries ``labels`` (typically ``{device, fidelity}`` from
    :func:`context_labels`) plus its ``experiment``.  Output is
    canonical — families and experiments sorted, histogram buckets
    cumulative in numeric bound order, terminated by ``# EOF`` — so
    equal banks render byte-identically.
    """
    base = dict(labels or {})
    families, is_hist = _families(banks)
    exp_names = sorted(banks)
    lines: List[str] = []
    for family in families:
        metric = metric_name(family)
        if is_hist[family]:
            lines.append(f"# TYPE {metric} histogram")
            for exp in exp_names:
                buckets = sorted(
                    (bound, count)
                    for name, count in banks[exp].items()
                    for fam, bound in [split_bucket(name)]
                    if bound is not None and fam == family
                )
                if not buckets:
                    continue
                sample = dict(base)
                sample["experiment"] = exp
                cum = 0
                for bound, count in buckets:
                    cum += count
                    with_le = dict(sample)
                    with_le["le"] = str(bound)
                    lines.append(f"{metric}_bucket"
                                 f"{_label_str(with_le)} {cum}")
                inf = dict(sample)
                inf["le"] = "+Inf"
                lines.append(f"{metric}_bucket{_label_str(inf)} {cum}")
                lines.append(f"{metric}_count{_label_str(sample)} {cum}")
        else:
            lines.append(f"# TYPE {metric} counter")
            for exp in exp_names:
                if family not in banks[exp]:
                    continue
                sample = dict(base)
                sample["experiment"] = exp
                lines.append(f"{metric}_total{_label_str(sample)} "
                             f"{banks[exp][family]}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _canonical_bank(counters: Mapping[str, int]) -> Dict[str, int]:
    return dict(sorted(counters.items(),
                       key=lambda kv: counter_sort_key(kv[0])))


def counters_v2_payload(
    banks: Mapping[str, Mapping[str, int]],
    orchestration: Mapping[str, int],
    *,
    labels: Optional[Mapping[str, str]] = None,
    context: Optional[Any] = None,
) -> Dict[str, Any]:
    """The counters/v2 document as a dict in canonical key order —
    what :func:`render_counters_v2` serializes and the drift gate
    (:mod:`repro.obs.diff`) compares."""
    token = None
    if context is not None:
        token = context.token() if hasattr(context, "token") \
            else str(context)
    return {
        "schema": COUNTERS_V2_SCHEMA,
        "context": token,
        "labels": {k: str(v)
                   for k, v in sorted((labels or {}).items())},
        "experiments": {name: _canonical_bank(banks[name])
                        for name in sorted(banks)},
        "orchestration": _canonical_bank(orchestration),
    }


def render_counters_v2(
    banks: Mapping[str, Mapping[str, int]],
    orchestration: Mapping[str, int],
    *,
    labels: Optional[Mapping[str, str]] = None,
    context: Optional[Any] = None,
) -> str:
    """The ``hopperdissect.counters/v2`` labeled JSON document.

    Key order is fixed (schema, context, labels, experiments,
    orchestration; experiments by name, counters in canonical order)
    and serialization is compact with a trailing newline, so equal
    states are byte-identical files — the property the export
    determinism tests and the golden-counter diff gate rely on.
    """
    payload = counters_v2_payload(banks, orchestration, labels=labels,
                                  context=context)
    return json.dumps(payload, sort_keys=False,
                      separators=(",", ":")) + "\n"


def load_counters_v2(path) -> Dict[str, Any]:
    """Parse a counters/v2 file, checking the schema tag."""
    with open(str(path)) as fh:
        payload = json.load(fh)
    schema = payload.get("schema") if isinstance(payload, dict) \
        else None
    if schema != COUNTERS_V2_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {COUNTERS_V2_SCHEMA!r}, "
            f"found {schema!r}")
    return payload
