"""The counter catalog — the registry behind ``docs/counters.md``.

Counter names are plain strings at their emission sites, which keeps
the hot paths cheap but gives drift a second place to hide: a counter
can fire under a name nothing documents, or the docs can describe a
counter nothing fires.  The catalog closes that gap with one central
registry of every counter *family* the simulator emits — name pattern,
kind, unit, owning engine, meaning — and two mechanical consumers:

* ``benchmarks/gen_counter_catalog.py`` renders the registry to
  ``docs/counters.md`` (``--check`` in CI fails when the committed
  page is stale);
* :func:`lookup` / :func:`uncatalogued` let tests assert that every
  counter a run fires is documented (the golden-baseline suite does
  exactly this over the committed goldens).

Patterns are exact names or single-``*`` suffixes for families with a
dynamic final segment (``sm.issue.*`` — one counter per execution
unit).  Histogram families are catalogued by their *family* name; the
``.le<bound>`` bucket keys map back via
:func:`~repro.obs.counters.split_bucket`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.obs.counters import split_bucket

__all__ = ["CounterEntry", "CATALOG", "lookup", "uncatalogued",
           "catalog_markdown"]


@dataclass(frozen=True)
class CounterEntry:
    """One documented counter family."""

    pattern: str      #: exact name, or ``prefix.*`` for dynamic tails
    kind: str         #: ``counter`` or ``histogram``
    unit: str         #: what one increment measures
    engine: str       #: owning module (emission site)
    description: str

    def matches(self, family: str) -> bool:
        if self.pattern.endswith(".*"):
            stem = self.pattern[:-2]
            return family.startswith(stem + ".") and \
                len(family) > len(stem) + 1
        return family == self.pattern


#: every counter family the simulator emits, grouped by engine —
#: ordering here is the ordering of ``docs/counters.md``
CATALOG: Tuple[CounterEntry, ...] = (
    # -- memory hierarchy ---------------------------------------------------
    CounterEntry("mem.loads", "counter", "accesses",
                 "repro.memory.hierarchy",
                 "Loads issued into the memory hierarchy."),
    CounterEntry("mem.bytes.*", "counter", "bytes",
                 "repro.memory.hierarchy",
                 "Bytes served per memory level (l1/l2/dram/...)."),
    CounterEntry("mem.tlb.hits", "counter", "accesses",
                 "repro.memory.hierarchy", "L2 TLB hits."),
    CounterEntry("mem.tlb.misses", "counter", "accesses",
                 "repro.memory.hierarchy", "L2 TLB misses."),
    CounterEntry("mem.latency.*", "histogram", "cycles",
                 "repro.memory.hierarchy",
                 "Access latency per serving level."),
    CounterEntry("cache.l1.accesses", "counter", "accesses",
                 "repro.memory.cache", "L1 lookups."),
    CounterEntry("cache.l1.hits", "counter", "accesses",
                 "repro.memory.cache", "L1 sector hits."),
    CounterEntry("cache.l1.sector_misses", "counter", "accesses",
                 "repro.memory.cache",
                 "L1 misses with the line resident (sector fill)."),
    CounterEntry("cache.l1.tag_misses", "counter", "accesses",
                 "repro.memory.cache", "L1 full line misses."),
    CounterEntry("cache.l1.evictions", "counter", "lines",
                 "repro.memory.cache", "L1 lines evicted."),
    CounterEntry("cache.l2.accesses", "counter", "accesses",
                 "repro.memory.cache", "L2 lookups."),
    CounterEntry("cache.l2.hits", "counter", "accesses",
                 "repro.memory.cache", "L2 sector hits."),
    CounterEntry("cache.l2.sector_misses", "counter", "accesses",
                 "repro.memory.cache",
                 "L2 misses with the line resident (sector fill)."),
    CounterEntry("cache.l2.tag_misses", "counter", "accesses",
                 "repro.memory.cache", "L2 full line misses."),
    CounterEntry("cache.l2.evictions", "counter", "lines",
                 "repro.memory.cache", "L2 lines evicted."),
    # -- SM execution -------------------------------------------------------
    CounterEntry("sm.sim.runs", "counter", "kernels",
                 "repro.trace.engine", "Trace-simulator invocations."),
    CounterEntry("sm.sim.warps", "counter", "warps",
                 "repro.trace.engine", "Warps simulated."),
    CounterEntry("sm.sim.instructions", "counter", "instructions",
                 "repro.trace.engine", "Instructions issued."),
    CounterEntry("sm.sim.cycles", "counter", "cycles",
                 "repro.trace.engine", "Cycles simulated."),
    CounterEntry("sm.stall.scoreboard", "counter", "slots",
                 "repro.trace.engine",
                 "Issue slots lost to operand dependencies."),
    CounterEntry("sm.stall.pipe_busy", "counter", "slots",
                 "repro.trace.engine",
                 "Issue slots lost to busy execution pipes."),
    CounterEntry("sm.issue.*", "counter", "instructions",
                 "repro.trace.engine",
                 "Instructions issued per execution unit."),
    CounterEntry("sm.busy_clk.*", "counter", "cycles",
                 "repro.trace.engine",
                 "Busy cycles per execution unit."),
    CounterEntry("sm.schedule.launches", "counter", "kernels",
                 "repro.sm.scheduler", "Grid launches scheduled."),
    CounterEntry("sm.schedule.blocks", "counter", "blocks",
                 "repro.sm.scheduler", "Thread blocks scheduled."),
    CounterEntry("sm.schedule.waves", "counter", "waves",
                 "repro.sm.scheduler", "Full waves of blocks."),
    CounterEntry("sm.schedule.partial_waves", "counter", "waves",
                 "repro.sm.scheduler", "Trailing partial waves."),
    # -- tensor cores / transformer engine ----------------------------------
    CounterEntry("tc.mma.instructions", "counter", "instructions",
                 "repro.tensorcore.timing", "mma instructions timed."),
    CounterEntry("tc.mma.macs", "counter", "MACs",
                 "repro.tensorcore.timing",
                 "Multiply-accumulates through mma."),
    CounterEntry("tc.wgmma.instructions", "counter", "instructions",
                 "repro.tensorcore.timing",
                 "wgmma instructions timed."),
    CounterEntry("tc.wgmma.macs", "counter", "MACs",
                 "repro.tensorcore.timing",
                 "Multiply-accumulates through wgmma."),
    CounterEntry("te.op.*", "counter", "ops",
                 "repro.te.cost",
                 "Transformer-engine graph ops costed, per op type."),
    # -- DSM / SM-to-SM network (paper Fig 8-9) -----------------------------
    CounterEntry("dsm.hops", "counter", "accesses",
                 "repro.dsm.cluster",
                 "Remote (cross-SM) shared-memory accesses."),
    CounterEntry("dsm.access.local", "counter", "accesses",
                 "repro.dsm.cluster",
                 "Cluster shared-memory accesses served locally."),
    CounterEntry("dsm.bytes.remote", "counter", "bytes",
                 "repro.dsm.cluster",
                 "Bytes moved across the SM-to-SM fabric."),
    CounterEntry("dsm.bytes.local", "counter", "bytes",
                 "repro.dsm.cluster",
                 "Bytes served from the block's own shared memory."),
    CounterEntry("dsm.latency.remote", "histogram", "cycles",
                 "repro.dsm.cluster", "Remote access latency."),
    CounterEntry("dsm.latency.local", "histogram", "cycles",
                 "repro.dsm.cluster", "Local access latency."),
    CounterEntry("dsm.fabric.queries", "counter", "queries",
                 "repro.dsm.network",
                 "Contended-bandwidth model evaluations."),
    CounterEntry("dsm.stall.contention", "histogram", "cycles",
                 "repro.dsm.network",
                 "Per-128B-transfer stall added by fabric contention "
                 "at the queried cluster size."),
    CounterEntry("dsm.rbc.configs", "counter", "configs",
                 "repro.dsm.rbc",
                 "Ring-based-copy configurations measured."),
    CounterEntry("dsm.link.active", "counter", "links",
                 "repro.dsm.rbc",
                 "SM fabric links driven across measured configs."),
    CounterEntry("dsm.bytes.injected", "counter", "bytes",
                 "repro.dsm.rbc",
                 "In-flight bytes injected into the fabric (warps x "
                 "ILP x 128 B per active SM)."),
    CounterEntry("dsm.rbc.latency_bound", "counter", "configs",
                 "repro.dsm.rbc",
                 "Configs limited by injection (Little's law)."),
    CounterEntry("dsm.rbc.fabric_bound", "counter", "configs",
                 "repro.dsm.rbc",
                 "Configs limited by contended fabric bandwidth."),
    CounterEntry("dsm.hist.configs", "counter", "configs",
                 "repro.dsm.histogram",
                 "Cluster-histogram configurations measured."),
    CounterEntry("dsm.hist.limited_by.*", "counter", "configs",
                 "repro.dsm.histogram",
                 "Configs per limiting factor (latency / dram / "
                 "network / shared_memory)."),
    CounterEntry("dsm.latency.element", "histogram", "cycles",
                 "repro.dsm.histogram",
                 "Modeled per-element latency of the histogram "
                 "kernel."),
    # -- async copy / TMA (paper Table XIII-XIV) ----------------------------
    CounterEntry("async.steps", "counter", "steps",
                 "repro.asynccopy.matmul_pipeline",
                 "Pipeline steps broken down."),
    CounterEntry("async.variant.*", "counter", "steps",
                 "repro.asynccopy.matmul_pipeline",
                 "Steps per copy variant (sync / async / tma)."),
    CounterEntry("async.stage.load", "histogram", "cycles",
                 "repro.asynccopy.matmul_pipeline",
                 "Copy-issue stage cost per step."),
    CounterEntry("async.stage.compute", "histogram", "cycles",
                 "repro.asynccopy.matmul_pipeline",
                 "Compute stage cost per step."),
    CounterEntry("async.stage.drain", "histogram", "cycles",
                 "repro.asynccopy.matmul_pipeline",
                 "Sync/drain overhead per step."),
    CounterEntry("async.bytes.sync", "counter", "bytes",
                 "repro.asynccopy.matmul_pipeline",
                 "Bytes staged through blocking copies."),
    CounterEntry("async.bytes.cp_async", "counter", "bytes",
                 "repro.asynccopy.matmul_pipeline",
                 "Bytes staged through cp.async."),
    CounterEntry("async.bytes.tma", "counter", "bytes",
                 "repro.asynccopy.tma",
                 "Bytes staged through TMA bulk copies."),
    CounterEntry("async.tma.transfers", "counter", "transfers",
                 "repro.asynccopy.tma", "TMA bulk copies costed."),
    CounterEntry("async.latency.tma", "histogram", "cycles",
                 "repro.asynccopy.tma",
                 "One-shot TMA transfer latency."),
    CounterEntry("async.cp_async.equiv_instructions", "counter",
                 "instructions", "repro.asynccopy.tma",
                 "Warp instructions an equivalent cp.async copy "
                 "would issue."),
    # -- orchestration ------------------------------------------------------
    CounterEntry("exp.completed", "counter", "experiments",
                 "repro.obs.session",
                 "Experiments completed under the session hook."),
    CounterEntry("result_cache.hit", "counter", "lookups",
                 "repro.perf.cache", "Result-cache hits."),
    CounterEntry("result_cache.miss", "counter", "lookups",
                 "repro.perf.cache", "Result-cache misses."),
    CounterEntry("result_cache.store", "counter", "entries",
                 "repro.perf.cache", "Result-cache stores."),
    CounterEntry("result_cache.eviction", "counter", "entries",
                 "repro.perf.cache",
                 "Entries evicted by the LRU size guard."),
    # -- query service (repro.serve) ----------------------------------------
    CounterEntry("serve.queries", "counter", "queries",
                 "repro.serve.service",
                 "Well-formed queries received."),
    CounterEntry("serve.errors", "counter", "queries",
                 "repro.serve.service",
                 "Malformed request lines answered with in-stream "
                 "error predictions."),
    CounterEntry("serve.batches", "counter", "batches",
                 "repro.serve.service", "Query batches planned."),
    CounterEntry("serve.batch.size", "histogram", "queries",
                 "repro.serve.service", "Queries per batch."),
    CounterEntry("serve.shards", "counter", "shards",
                 "repro.serve.service",
                 "Per-(kind, device) dispatch shards planned."),
    CounterEntry("serve.dedup", "counter", "queries",
                 "repro.serve.service",
                 "Duplicate queries collapsed onto an earlier slot."),
    CounterEntry("serve.predicted.ns", "histogram", "nanoseconds",
                 "repro.serve.oracle",
                 "Predicted (modeled, never wall-clock) kernel/step "
                 "durations."),
    CounterEntry("serve.predicted.clk", "histogram", "cycles",
                 "repro.serve.oracle",
                 "Predicted (modeled) instruction/access latencies."),
    CounterEntry("serve.cache.evictions", "counter", "entries",
                 "repro.serve.service",
                 "On-disk shard-prediction entries evicted by the LRU "
                 "size guard while serving (private stats bank, "
                 "surfaced via --stats-json — never the deterministic "
                 "bank)."),
    CounterEntry("serve.memo.evictions", "counter", "entries",
                 "repro.serve.service",
                 "In-process memo entries evicted by the warm-tier "
                 "LRU bound (private stats bank, surfaced via "
                 "--stats-json)."),
    CounterEntry("fuzz.scenarios", "counter", "scenarios",
                 "repro.fuzz.driver",
                 "Fuzz scenarios checked against the invariant "
                 "oracle."),
    CounterEntry("fuzz.queries", "counter", "queries",
                 "repro.fuzz.driver",
                 "Serve queries issued across all fuzz scenarios."),
    CounterEntry("fuzz.checks", "counter", "checks",
                 "repro.fuzz.driver",
                 "Invariant evaluations performed by the oracle "
                 "(one per applicable invariant per scenario)."),
    CounterEntry("fuzz.violations", "counter", "violations",
                 "repro.fuzz.driver",
                 "Invariant violations the oracle reported."),
    CounterEntry("fuzz.status.*", "counter", "answers",
                 "repro.fuzz.driver",
                 "Prediction statuses across all fuzz answers (one "
                 "counter per ok/unsupported/oom/error)."),
    CounterEntry("fuzz.scenario.queries", "histogram", "queries",
                 "repro.fuzz.driver",
                 "Queries per fuzz scenario."),
    CounterEntry("fuzz.repros", "counter", "repros",
                 "repro.fuzz.driver",
                 "Violating scenarios shrunk to minimal repro "
                 "cases."),
    CounterEntry("fuzz.repro.queries", "histogram", "queries",
                 "repro.fuzz.driver",
                 "Queries surviving in each shrunk repro — how "
                 "small ddmin got the case."),
)


def lookup(name: str) -> Optional[CounterEntry]:
    """The catalog entry covering ``name`` (bucket keys resolve to
    their histogram family), or ``None`` when undocumented."""
    family, bound = split_bucket(name)
    for entry in CATALOG:
        if entry.matches(family):
            if bound is not None and entry.kind != "histogram":
                continue
            return entry
    return None


def uncatalogued(names: Iterable[str]) -> List[str]:
    """The subset of ``names`` no catalog entry covers — what the
    docs-drift tests assert empty."""
    return sorted({n for n in names if lookup(n) is None})


def catalog_markdown() -> str:
    """``docs/counters.md`` — generated, do not edit by hand."""
    lines = [
        "# Counter catalog",
        "",
        "<!-- generated by benchmarks/gen_counter_catalog.py; "
        "do not edit by hand -->",
        "",
        "Every counter family the simulator can emit, straight from "
        "`repro.obs.catalog.CATALOG`.",
        "Histogram families appear in dumps as power-of-two bucket "
        "keys (`<family>.le<bound>`)",
        "and export to OpenMetrics as cumulative `_bucket{le=...}` "
        "series.  A `*` tail marks a",
        "dynamic final segment (one counter per unit / variant / "
        "level).",
        "",
        "| counter | kind | unit | owning engine | meaning |",
        "|---|---|---|---|---|",
    ]
    for e in CATALOG:
        lines.append(f"| `{e.pattern}` | {e.kind} | {e.unit} | "
                     f"`{e.engine}` | {e.description} |")
    lines.append("")
    return "\n".join(lines)
