"""Structured span/event tracing with Chrome-trace export.

The tracer records three event shapes on named tracks:

* **complete spans** (``ph="X"``) — a name, a start timestamp and a
  duration.  The runner emits one per experiment (wall clock); the
  probe sweeps emit one per sweep with the fidelity knobs in ``args``.
* **instant events** (``ph="i"``) — point markers (a result-cache hit,
  a wave boundary, a tensor-core instruction issue).
* **counter samples** (``ph="C"``) — optional numeric series.

Two clock domains coexist: *wall* tracks use microseconds since the
tracer's epoch (``time.perf_counter``), while *sim* tracks use the
simulator's own cycle count as the timestamp (one trace "microsecond"
per cycle), so a zoomed-in Perfetto view shows per-cycle issue slots.
Tracks are (pid, tid) pairs; the exporter assigns stable integer ids
and emits ``process_name``/``thread_name`` metadata so Perfetto and
``chrome://tracing`` label them.

Export formats:

* :meth:`Tracer.chrome_payload` / :meth:`write_chrome` — the Chrome
  trace-event JSON object (``{"traceEvents": [...]}``) that loads
  directly in Perfetto.
* :meth:`Tracer.write_jsonl` — one event object per line, for cheap
  streaming diffs and ``jq``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = ["Tracer", "WALL_TRACK", "SIM_TRACK"]

#: canonical process (track-group) names
WALL_TRACK = "wall"
SIM_TRACK = "sim"


class Tracer:
    """Collects trace events; cheap when unused, absent when off.

    The observability layer holds ``Optional[Tracer]`` — ``None`` when
    tracing is disabled — so the hot paths guard with an ``is not
    None`` check and a disabled run allocates nothing.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.events: List[Dict[str, Any]] = []

    # -- clocks -------------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since this tracer's epoch (the wall clock)."""
        return (time.perf_counter() - self._epoch) * 1e6

    # -- event emission -----------------------------------------------------

    def _event(self, name: str, ph: str, ts: float, *,
               cat: str = "", pid: str = WALL_TRACK, tid: str = "main",
               dur: Optional[float] = None,
               args: Optional[Dict[str, Any]] = None) -> None:
        ev: Dict[str, Any] = {
            "name": name, "ph": ph, "ts": round(float(ts), 3),
            "pid": pid, "tid": tid,
        }
        if cat:
            ev["cat"] = cat
        if dur is not None:
            ev["dur"] = round(float(dur), 3)
        if args:
            ev["args"] = args
        self.events.append(ev)

    def complete(self, name: str, ts: float, dur: float, *,
                 cat: str = "", pid: str = WALL_TRACK,
                 tid: str = "main",
                 args: Optional[Dict[str, Any]] = None) -> None:
        """A finished span: started at ``ts``, lasted ``dur`` (both in
        the track's time unit)."""
        self._event(name, "X", ts, dur=max(dur, 0.0), cat=cat,
                    pid=pid, tid=tid, args=args)

    def instant(self, name: str, *, ts: Optional[float] = None,
                cat: str = "", pid: str = WALL_TRACK,
                tid: str = "main",
                args: Optional[Dict[str, Any]] = None) -> None:
        """A point marker (wall clock when ``ts`` is omitted)."""
        ev_ts = self.now_us() if ts is None else ts
        self._event(name, "i", ev_ts, cat=cat, pid=pid, tid=tid,
                    args=args)
        self.events[-1]["s"] = "t"      # instant scope: thread

    def counter(self, name: str, values: Dict[str, float], *,
                ts: Optional[float] = None, pid: str = WALL_TRACK,
                tid: str = "main") -> None:
        """A counter sample (renders as a stacked series)."""
        ev_ts = self.now_us() if ts is None else ts
        self._event(name, "C", ev_ts, pid=pid, tid=tid, args=values)

    @contextmanager
    def span(self, name: str, *, cat: str = "", tid: str = "main",
             args: Optional[Dict[str, Any]] = None):
        """Wall-clock span context manager."""
        t0 = self.now_us()
        try:
            yield
        finally:
            self.complete(name, t0, self.now_us() - t0, cat=cat,
                          tid=tid, args=args)

    # -- composition --------------------------------------------------------

    def merge(self, events: Iterable[Dict[str, Any]]) -> None:
        """Append events shipped back from a worker, as-is.

        Worker wall timestamps are relative to the worker's own epoch;
        sim-track timestamps are cycle counts and merge exactly.
        """
        self.events.extend(events)

    # -- export -------------------------------------------------------------

    def _track_ids(self) -> Tuple[Dict[str, int],
                                  Dict[Tuple[str, str], int]]:
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[str, str], int] = {}
        for ev in self.events:
            pid = str(ev.get("pid", WALL_TRACK))
            tid = (pid, str(ev.get("tid", "main")))
            pids.setdefault(pid, len(pids) + 1)
            tids.setdefault(tid, len(tids) + 1)
        return pids, tids

    def chrome_payload(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        pids, tids = self._track_ids()
        out: List[Dict[str, Any]] = []
        for name, pid in sorted(pids.items(), key=lambda kv: kv[1]):
            out.append({"name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0, "args": {"name": name}})
        for (pname, tname), tid in sorted(tids.items(),
                                          key=lambda kv: kv[1]):
            out.append({"name": "thread_name", "ph": "M",
                        "pid": pids[pname], "tid": tid,
                        "args": {"name": tname}})
        for ev in self.events:
            pid = str(ev.get("pid", WALL_TRACK))
            tid = (pid, str(ev.get("tid", "main")))
            mapped = dict(ev)
            mapped["pid"] = pids[pid]
            mapped["tid"] = tids[tid]
            out.append(mapped)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "hopperdissect repro.obs",
                "clock_note": (
                    f"'{SIM_TRACK}' track timestamps are simulator "
                    f"cycles, not microseconds"),
            },
        }

    def write_chrome(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.chrome_payload(), sort_keys=True) + "\n")
        return path

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """One raw event per line (named tracks, unmapped ids)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            for ev in self.events:
                fh.write(json.dumps(ev, sort_keys=True) + "\n")
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tracer: {len(self.events)} events>"
