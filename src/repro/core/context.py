"""The typed run context threaded through the experiment stack.

Every :class:`~repro.core.registry.Experiment` builder receives a
frozen :class:`RunContext` describing *what to run against*: the device
sweep, the RNG seed, the fidelity tier and an optional timing hook.
The default context reproduces the paper's testbed exactly (the three
GPUs of Table III, seed 0, fast fidelity), so ``run_experiment(name)``
with no context is byte-identical to the pre-context harness — but the
same builder can now be re-parameterized over any registered device
model (``RunContext(devices=("A100",))``, an H100 registered via
:func:`repro.arch.register_device`, …) without editing source.

Conventions builders follow:

* **sweep experiments** call :meth:`RunContext.device_order` with their
  paper column order — they receive every context device, preferred
  names first, and must emit per-device rows/checks for whatever they
  get;
* **probe experiments** that only make sense on specific devices call
  :meth:`RunContext.select` — the intersection, in requested order;
* **pinned experiments** (paper artefacts measured on one GPU, e.g.
  the H800 wgmma tables) declare ``devices=("H800",)`` at registration
  and call :meth:`RunContext.pin` — a clear error rather than a wrong
  table when the context excludes the pinned device.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "RunContext",
    "DEFAULT_CONTEXT",
    "DeviceNotInContext",
    "FIDELITY_TIERS",
]

#: recognised fidelity tiers: ``fast`` matches the paper harness's
#: default probe budgets; ``full`` removes the shortcuts (more p-chase
#: iterations, no fast paths) at higher wall cost.
FIDELITY_TIERS = ("fast", "full")


class DeviceNotInContext(KeyError):
    """An experiment needs a device the :class:`RunContext` excludes."""


@dataclass(frozen=True)
class RunContext:
    """Frozen parameters of one experiment run.

    ``devices`` is the device sweep (canonical registry names); the
    default is the paper's testbed.  ``seed`` feeds every RNG-using
    workload, ``fidelity`` selects the probe budget, and ``hook`` (not
    part of identity — excluded from equality and cache keys) receives
    ``(experiment_name, wall_seconds)`` after each build.
    """

    devices: Tuple[str, ...] = ("RTX4090", "A100", "H800")
    seed: int = 0
    fidelity: str = "fast"
    hook: Optional[Callable[[str, float], None]] = field(
        default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("RunContext needs at least one device")
        canonical = []
        for name in self.devices:
            key = str(name).upper()
            if key not in canonical:
                canonical.append(key)
        object.__setattr__(self, "devices", tuple(canonical))
        from repro.arch import get_device

        for name in self.devices:
            get_device(name)   # fail fast on unregistered devices
        if self.fidelity not in FIDELITY_TIERS:
            raise ValueError(
                f"unknown fidelity tier {self.fidelity!r}; "
                f"expected one of {FIDELITY_TIERS}"
            )

    # -- device selection ----------------------------------------------------

    def device_order(self, *preferred: str) -> Tuple[str, ...]:
        """Every context device, ``preferred`` names first.

        Sweep experiments pass their paper column order; under the
        default context that reproduces the legacy layout exactly,
        while extra context devices (an H100, a single-device sweep)
        are appended in context order.
        """
        pref = [p.upper() for p in preferred]
        present = set(self.devices)
        ordered = [p for p in pref if p in present]
        ordered += [d for d in self.devices if d not in ordered]
        return tuple(ordered)

    def select(self, *names: str) -> Tuple[str, ...]:
        """The subset of ``names`` present in the context, in the
        requested order — for probes that only target specific
        devices."""
        present = set(self.devices)
        return tuple(n.upper() for n in names if n.upper() in present)

    def pin(self, name: str) -> str:
        """``name`` if the context includes it, else a clear error.

        Used by experiments the paper measures on exactly one GPU.
        """
        key = name.upper()
        if key not in self.devices:
            raise DeviceNotInContext(
                f"experiment is pinned to {key} but the context only "
                f"provides {list(self.devices)}"
            )
        return key

    def has(self, *names: str) -> bool:
        """True when every named device is in the sweep — the guard
        for cross-device checks."""
        return {n.upper() for n in names} <= set(self.devices)

    # -- reproducibility knobs -----------------------------------------------

    def rng(self):
        """A fresh ``numpy`` generator seeded from the context."""
        import numpy as np

        return np.random.default_rng(self.seed)

    @property
    def fast(self) -> bool:
        """True under the ``fast`` fidelity tier."""
        return self.fidelity == "fast"

    # -- identity / transport ------------------------------------------------

    @property
    def is_default(self) -> bool:
        return self == DEFAULT_CONTEXT

    def token(self) -> str:
        """Canonical identity string (cache keys, reports).

        Covers everything that can change a result; the hook is
        observability only and deliberately excluded.
        """
        return (f"devices={','.join(self.devices)};seed={self.seed};"
                f"fidelity={self.fidelity}")

    def to_payload(self) -> Dict[str, Any]:
        """A picklable dict for process-pool transport (hook dropped)."""
        return {"devices": list(self.devices), "seed": self.seed,
                "fidelity": self.fidelity}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RunContext":
        return cls(devices=tuple(payload["devices"]),
                   seed=int(payload["seed"]),
                   fidelity=str(payload["fidelity"]))

    def without_hook(self) -> "RunContext":
        return replace(self, hook=None) if self.hook else self

    def derive(self, *, devices: Optional[Tuple[str, ...]] = None,
               seed: Optional[int] = None,
               fidelity: Optional[str] = None) -> "RunContext":
        """A context with just the named fields replaced.

        This is the query→context bridge used by :mod:`repro.serve`:
        a family-level query overrides only the sweep, seed or
        fidelity it names and inherits everything else from the
        service's base context.  The hook is dropped — derived
        contexts cross process boundaries and identity must stay a
        pure function of the query plus the base token.
        """
        return RunContext(
            devices=self.devices if devices is None else tuple(devices),
            seed=self.seed if seed is None else int(seed),
            fidelity=self.fidelity if fidelity is None else
            str(fidelity),
        )

    def emit(self, name: str, wall_s: float) -> None:
        """Feed the metrics hook, if one is attached."""
        if self.hook is not None:
            self.hook(name, wall_s)


#: the paper's testbed — what every zero-argument entry point runs
DEFAULT_CONTEXT = RunContext()
