"""Experiment harness — the paper's primary deliverable.

Every table and figure of the paper's evaluation has a registered
:class:`Experiment` here that (a) regenerates the artefact from the
simulator subsystems and (b) verifies the paper's *qualitative*
findings against it (orderings, ratios, crossovers — the shape
contract spelled out in DESIGN.md §3).

Usage::

    from repro.core import run_experiment, list_experiments

    result = run_experiment("table07_mma")
    print(result.table.render())
    assert all(c.passed for c in result.checks)
"""

from __future__ import annotations

from repro.core.tables import Table
from repro.core.checks import Check, approx, ordered, ratio_between
from repro.core.context import (
    DEFAULT_CONTEXT,
    DeviceNotInContext,
    FIDELITY_TIERS,
    RunContext,
)
from repro.core.registry import (
    Experiment,
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
    run_all,
    supported_experiments,
)

# importing the experiment modules populates the registry
from repro.core import experiments as _experiments  # noqa: F401
from repro.core.fidelity import fidelity_report
from repro.core.report import experiments_markdown

__all__ = [
    "fidelity_report",
    "experiments_markdown",
    "Table",
    "Check",
    "approx",
    "ordered",
    "ratio_between",
    "RunContext",
    "DEFAULT_CONTEXT",
    "DeviceNotInContext",
    "FIDELITY_TIERS",
    "Experiment",
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "run_all",
    "supported_experiments",
]
