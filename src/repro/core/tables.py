"""Plain-text result tables on a columnar payload.

Every experiment returns a :class:`Table`; ``render()`` prints the
same rows/columns the paper's artefact reports.

Storage is **column-major**: one Python list per column, packed into
typed NumPy arrays when the table crosses a process boundary.  The
parallel runner and the result cache pickle whole tables, and a
columnar payload serialises N cells as one array op instead of N
per-row object walks.  The row-oriented API (:meth:`add_row`,
:attr:`rows`, :meth:`cell`) is preserved via lightweight row views, and
``render()`` output is byte-for-byte what the row-major table printed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence

__all__ = ["Table"]


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


def _pack(column: List[Any]):
    """A column as a typed NumPy array when homogeneous, else as-is.

    Only pure ``float`` and pure ``int`` columns pack — mixed or
    object columns ship unchanged, so unpacking (``tolist``) restores
    the exact Python types and ``render()`` stays byte-identical
    across a pickle round-trip.
    """
    if column and all(type(v) is float for v in column):
        import numpy as np

        return np.asarray(column, dtype=np.float64)
    if column and all(type(v) is int for v in column):
        import numpy as np

        return np.asarray(column, dtype=np.int64)
    return list(column)


class _RowsView(Sequence):
    """Read-only row-major view over the columnar payload."""

    __slots__ = ("_table",)

    def __init__(self, table: "Table") -> None:
        self._table = table

    def __len__(self) -> int:
        return len(self._table)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("row index out of range")
        return [col[i] for col in self._table._data]

    def __iter__(self) -> Iterator[List[Any]]:
        data = self._table._data
        return (list(row) for row in zip(*data)) if data else iter(())

    def __eq__(self, other) -> bool:
        if isinstance(other, _RowsView):
            other = list(other)
        return list(self) == other

    def __repr__(self) -> str:
        return repr(list(self))


class Table:
    """A titled grid of results (columnar storage, row-style API)."""

    __slots__ = ("title", "columns", "_data")

    def __init__(self, title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[Any]] = ()) -> None:
        self.title = title
        self.columns = list(columns)
        self._data: List[List[Any]] = [[] for _ in self.columns]
        for row in rows:
            self.add_row(*row)

    # -- the row-oriented write/read API -------------------------------------

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        for col, v in zip(self._data, values):
            col.append(v)

    def add_dict_row(self, d: Dict[str, Any]) -> None:
        self.add_row(*(d.get(c, "") for c in self.columns))

    @property
    def rows(self) -> _RowsView:
        """Rows as a sequence of lists (views over the columns)."""
        return _RowsView(self)

    def column(self, name: str) -> List[Any]:
        try:
            i = list(self.columns).index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; have {list(self.columns)}"
            ) from None
        return list(self._data[i])

    def cell(self, row: int, column: str) -> Any:
        return self.column(column)[row]

    # -- the columnar API ----------------------------------------------------

    def to_columns(self) -> Dict[str, List[Any]]:
        """``{column name: cell list}`` — the native payload."""
        return {c: list(col)
                for c, col in zip(self.columns, self._data)}

    @classmethod
    def from_columns(cls, title: str,
                     columns: Dict[str, Sequence[Any]]) -> "Table":
        """Build a table column-wise (all columns same length)."""
        t = cls(title, list(columns))
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"ragged columns: lengths {sorted(lengths)}"
            )
        t._data = [list(v) for v in columns.values()]
        return t

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        cells = [[_fmt(c) for c in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells))
            if cells else len(headers[i])
            for i in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            self.title,
            "=" * len(self.title),
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            sep,
        ]
        for row in cells:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            "| " + " | ".join(str(c) for c in self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        return "\n".join(lines)

    # -- dunder plumbing -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data[0]) if self._data else 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (self.title == other.title
                and self.columns == other.columns
                and self._data == other._data)

    def __repr__(self) -> str:
        return (f"Table(title={self.title!r}, "
                f"columns={self.columns!r}, rows={len(self)})")

    # -- pickling: ship columns, not rows ------------------------------------

    def __getstate__(self) -> dict:
        return {
            "title": self.title,
            "columns": self.columns,
            "data": [_pack(col) for col in self._data],
        }

    def __setstate__(self, state: dict) -> None:
        self.title = state["title"]
        self.columns = state["columns"]
        self._data = [
            col.tolist() if hasattr(col, "tolist") else list(col)
            for col in state["data"]
        ]
