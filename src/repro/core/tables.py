"""Plain-text result tables.

Every experiment returns a :class:`Table`; ``render()`` prints the
same rows/columns the paper's artefact reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["Table"]


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


@dataclass
class Table:
    """A titled grid of results."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_dict_row(self, d: Dict[str, Any]) -> None:
        self.add_row(*(d.get(c, "") for c in self.columns))

    def column(self, name: str) -> List[Any]:
        try:
            i = list(self.columns).index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; have {list(self.columns)}"
            ) from None
        return [r[i] for r in self.rows]

    def cell(self, row: int, column: str) -> Any:
        return self.column(column)[row]

    def render(self) -> str:
        cells = [[_fmt(c) for c in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells))
            if cells else len(headers[i])
            for i in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            self.title,
            "=" * len(self.title),
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            sep,
        ]
        for row in cells:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            "| " + " | ".join(str(c) for c in self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
