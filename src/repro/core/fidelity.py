"""Model-fidelity scoring: simulator vs the paper's absolute numbers.

The reproduction's contract is *shape* (orderings, ratios, crossovers —
checked by the experiments), but because the models are mechanistic and
calibrated from primitive measurements, the absolute agreement is also
strong.  This module quantifies it: for every table with published
numbers it computes the per-cell relative error and a per-table MAPE
(mean absolute percentage error), and renders a fidelity report.

``hopperdissect fidelity`` prints it; tests pin per-table MAPE bounds
so a regression in any model shows up as a number, not a vibe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.arch import get_device
from repro.core import paperdata as P
from repro.core.tables import Table

__all__ = ["FidelityEntry", "TableFidelity", "fidelity_report",
           "compute_all"]


@dataclass(frozen=True)
class FidelityEntry:
    """One compared cell."""

    label: str
    paper: float
    model: float

    @property
    def rel_error(self) -> float:
        if self.paper == 0:
            return abs(self.model)
        return abs(self.model - self.paper) / abs(self.paper)


@dataclass(frozen=True)
class TableFidelity:
    """Fidelity of one paper table."""

    name: str
    entries: Tuple[FidelityEntry, ...]

    @property
    def mape(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e.rel_error for e in self.entries) / len(self.entries)

    @property
    def worst(self) -> FidelityEntry:
        return max(self.entries, key=lambda e: e.rel_error)


# -- per-table comparators ----------------------------------------------------


def _table4() -> TableFidelity:
    from repro.memory import measure_latencies
    entries = []
    for dev, levels in P.TABLE4_LATENCY.items():
        got = measure_latencies(get_device(dev), fast=True)
        for level, paper in levels.items():
            entries.append(FidelityEntry(f"{dev}/{level}", paper,
                                         got[level]))
    return TableFidelity("Table IV (latency)", tuple(entries))


def _table5() -> TableFidelity:
    from repro.memory import measure_throughputs
    entries = []
    for dev, metrics in P.TABLE5_THROUGHPUT.items():
        got = measure_throughputs(get_device(dev))
        for metric, paper in metrics.items():
            if metric in got:
                entries.append(FidelityEntry(f"{dev}/{metric}", paper,
                                             got[metric]))
    return TableFidelity("Table V (throughput)", tuple(entries))


_LABEL_TO_TYPES = {
    ("FP16", "FP16"): ("FP16", "FP16"),
}


def _mma_types(ab_label: str, cd_label: str):
    from repro.isa.dtypes import DType
    ab = {"FP16": DType.FP16, "TF32": DType.TF32, "INT8": DType.INT8,
          "FP8": DType.E4M3}[ab_label]
    cd = {"FP16": DType.FP16, "FP32": DType.FP32,
          "INT32": DType.INT32}[cd_label]
    return ab, cd


def _table7() -> TableFidelity:
    from repro.isa import MatrixShape, MmaInstruction
    from repro.tensorcore import TensorCoreTimingModel
    entries = []
    for (dev, ab_l, cd_l, shape_s), (lat, dense, sparse) in \
            P.TABLE7_MMA.items():
        ab, cd = _mma_types(ab_l, cd_l)
        m, n, k = (int(x) for x in
                   shape_s[1:].replace("n", " ").replace("k", " ")
                   .split())
        tm = TensorCoreTimingModel(get_device(dev))
        d = tm.mma(MmaInstruction(ab, cd, MatrixShape(m, n, k)))
        s = tm.mma(MmaInstruction(ab, cd, MatrixShape(m, n, k),
                                  sparse=True))
        tag = f"{dev}/{ab_l}.{cd_l}/{shape_s}"
        entries.append(FidelityEntry(f"{tag}/lat", lat, d.latency_clk))
        entries.append(FidelityEntry(f"{tag}/dense", dense,
                                     d.throughput_tflops()))
        entries.append(FidelityEntry(f"{tag}/sparse", sparse,
                                     s.throughput_tflops()))
    return TableFidelity("Table VII (mma)", tuple(entries))


def _wgmma_fidelity(sparse: bool) -> TableFidelity:
    from repro.isa import OperandSource, WgmmaInstruction
    from repro.tensorcore import TensorCoreTimingModel
    data = P.TABLE9_WGMMA_SPARSE if sparse else P.TABLE8_WGMMA_DENSE
    tm = TensorCoreTimingModel(get_device("H800"))
    entries = []
    for (ab_l, cd_l), vals in data.items():
        ab, cd = _mma_types(ab_l, cd_l)
        ss = tm.wgmma(WgmmaInstruction(ab, cd, 256, sparse=sparse,
                                       a_source=OperandSource.SHARED))
        rs = tm.wgmma(WgmmaInstruction(ab, cd, 256, sparse=sparse,
                                       a_source=OperandSource.REGISTER))
        tag = f"{ab_l}.{cd_l}"
        ss_lat, ss_zero, rs_lat, rs_zero, ss_rand, rs_rand = vals
        entries += [
            FidelityEntry(f"{tag}/ss_lat", ss_lat, ss.latency_clk),
            FidelityEntry(f"{tag}/ss_zero", ss_zero,
                          ss.throughput_tflops("zero")),
            FidelityEntry(f"{tag}/rs_lat", rs_lat, rs.latency_clk),
            FidelityEntry(f"{tag}/rs_zero", rs_zero,
                          rs.throughput_tflops("zero")),
            FidelityEntry(f"{tag}/ss_rand", ss_rand,
                          ss.throughput_tflops("rand")),
            FidelityEntry(f"{tag}/rs_rand", rs_rand,
                          rs.throughput_tflops("rand")),
        ]
    name = "Table IX (sparse wgmma)" if sparse else \
        "Table VIII (dense wgmma)"
    return TableFidelity(name, tuple(entries))


def _table10() -> TableFidelity:
    from repro.isa import OperandSource, WgmmaInstruction
    from repro.isa.dtypes import DType
    from repro.tensorcore import TensorCoreTimingModel
    tm = TensorCoreTimingModel(get_device("H800"))
    entries = []
    for n, vals in P.TABLE10_NSWEEP.items():
        combos = [(False, OperandSource.SHARED),
                  (False, OperandSource.REGISTER),
                  (True, OperandSource.SHARED),
                  (True, OperandSource.REGISTER)]
        for i, (sparse, src) in enumerate(combos):
            lat_p, thpt_p = vals[2 * i], vals[2 * i + 1]
            t = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, n,
                                          sparse=sparse, a_source=src))
            tag = f"N{n}/{'sp' if sparse else 'd'}{src.value}"
            entries.append(FidelityEntry(f"{tag}/lat", lat_p,
                                         t.latency_clk))
            entries.append(FidelityEntry(f"{tag}/thpt", thpt_p,
                                         t.throughput_tflops()))
    return TableFidelity("Table X (wgmma N sweep)", tuple(entries))


def _table11() -> TableFidelity:
    from repro.isa import MatrixShape, MmaInstruction
    from repro.power import PowerModel
    from repro.tensorcore import TensorCoreTimingModel
    shape_for = {"FP16": (16, 8, 16), "TF32": (16, 8, 8),
                 "INT8": (16, 8, 32)}
    entries = []
    for (dev, ab_l, cd_l, ds), (watts, eff) in P.TABLE11_ENERGY.items():
        ab, cd = _mma_types(ab_l, cd_l)
        sparse = ds == "S"
        device = get_device(dev)
        t = TensorCoreTimingModel(device).mma(
            MmaInstruction(ab, cd, MatrixShape(*shape_for[ab_l]),
                           sparse=sparse))
        rep = PowerModel(device).report(
            op="mma", ab=ab, cd=cd,
            tflops=t.throughput_tflops("rand"), sparse=sparse)
        tag = f"{dev}/{ab_l}.{cd_l}/{ds}"
        entries.append(FidelityEntry(f"{tag}/W", watts,
                                     rep.power_watts))
        entries.append(FidelityEntry(f"{tag}/eff", eff,
                                     rep.efficiency_tflops_per_watt))
    return TableFidelity("Table XI (energy)", tuple(entries))


def _table12() -> TableFidelity:
    from repro.te import LLAMA_MODELS, LlmInferenceModel, Precision
    prec = {"FP32": Precision.FP32, "BF16": Precision.BF16,
            "FP8": Precision.FP8}
    entries = []
    for (dev, model), cells in P.TABLE12_LLM.items():
        m = LlmInferenceModel(get_device(dev))
        for p_name, paper in cells.items():
            if paper is None:
                continue
            est = m.estimate(LLAMA_MODELS[model], prec[p_name])
            if est.status == "ok":
                entries.append(FidelityEntry(
                    f"{dev}/{model}/{p_name}", paper,
                    est.tokens_per_second))
    return TableFidelity("Table XII (LLM)", tuple(entries))


def _async_fidelity() -> TableFidelity:
    from repro.asynccopy import benchmark_table
    entries = []
    for dev, blocks in P.TABLE13_14_ASYNC.items():
        rows = {r["block"]: r for r in benchmark_table(get_device(dev))}
        for block, variants in blocks.items():
            for variant, papers in variants.items():
                models = rows[block][variant]
                for nb, (paper, model) in enumerate(zip(papers,
                                                        models)):
                    entries.append(FidelityEntry(
                        f"{dev}/{block}/{variant}/{2 ** nb}",
                        paper, model))
    return TableFidelity("Tables XIII/XIV (async copy)",
                         tuple(entries))


def _dsm_fidelity() -> TableFidelity:
    from repro.dsm import RingCopyBenchmark, SmToSmNetwork
    h800 = get_device("H800")
    net = SmToSmNetwork(h800)
    rbc = RingCopyBenchmark(h800)
    best = {cs: rbc.measure(cluster_size=cs, block_threads=1024,
                            ilp=8).aggregate_tbps for cs in (2, 4)}
    return TableFidelity("§IV-E DSM scalars", (
        FidelityEntry("latency_clk", P.DSM_LATENCY_CLK,
                      net.latency_clk),
        FidelityEntry("latency_vs_l2", P.DSM_LATENCY_VS_L2,
                      net.latency_vs_l2),
        FidelityEntry("peak_cs2_tbps", P.DSM_PEAK_TBPS_CS2, best[2]),
        FidelityEntry("peak_cs4_tbps", P.DSM_PEAK_TBPS_CS4, best[4]),
    ))


_COMPARATORS: Dict[str, Callable[[], TableFidelity]] = {
    "table4": _table4,
    "table5": _table5,
    "table7": _table7,
    "table8": lambda: _wgmma_fidelity(False),
    "table9": lambda: _wgmma_fidelity(True),
    "table10": _table10,
    "table11": _table11,
    "table12": _table12,
    "async": _async_fidelity,
    "dsm": _dsm_fidelity,
}


def compute_all() -> List[TableFidelity]:
    return [fn() for fn in _COMPARATORS.values()]


def fidelity_report() -> Table:
    """Summary table: per-artefact MAPE + worst cell."""
    t = Table("Model fidelity vs the paper's absolute numbers",
              ["Artefact", "cells", "MAPE %", "worst cell",
               "worst err %"])
    for tf in compute_all():
        w = tf.worst
        t.add_row(tf.name, len(tf.entries), round(100 * tf.mape, 2),
                  w.label, round(100 * w.rel_error, 1))
    return t
