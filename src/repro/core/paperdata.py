"""The paper's reported numbers, verbatim.

Reference values transcribed from the evaluation tables of
*Benchmarking and Dissecting the Nvidia Hopper GPU Architecture*
(IPDPS 2024).  Used by :mod:`repro.core.fidelity` to score the
simulator's absolute agreement and by tests as ground truth.

Only *published measurements* live here — the simulator never reads
this module to produce a result.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table IV — latency cycles per level per device
TABLE4_LATENCY: Dict[str, Dict[str, float]] = {
    "RTX4090": {"L1 Cache": 43.4, "Shared": 30.1, "L2 Cache": 273.0,
                "Global": 541.5},
    "A100": {"L1 Cache": 37.9, "Shared": 29.0, "L2 Cache": 261.5,
             "Global": 466.3},
    "H800": {"L1 Cache": 40.7, "Shared": 29.0, "L2 Cache": 263.0,
             "Global": 478.8},
}

#: Table V — throughput per level/pattern (units as in the paper)
TABLE5_THROUGHPUT: Dict[str, Dict[str, float]] = {
    "RTX4090": {
        "L1 FP32 (byte/clk/SM)": 63.7, "L1 FP64 (byte/clk/SM)": 13.3,
        "L1 FP32.v4 (byte/clk/SM)": 121.2,
        "L2 FP32 (byte/clk)": 1622.2, "L2 FP64 (byte/clk)": 1500.8,
        "L2 FP32.v4 (byte/clk)": 1708.0,
        "Shared (byte/clk/SM)": 127.9, "Global (GB/s)": 929.8,
        "L2 vs. Global": 4.67,
    },
    "A100": {
        "L1 FP32 (byte/clk/SM)": 99.5, "L1 FP64 (byte/clk/SM)": 120.0,
        "L1 FP32.v4 (byte/clk/SM)": 106.8,
        "L2 FP32 (byte/clk)": 1853.7, "L2 FP64 (byte/clk)": 1990.4,
        "L2 FP32.v4 (byte/clk)": 2007.9,
        "Shared (byte/clk/SM)": 128.0, "Global (GB/s)": 1407.2,
        "L2 vs. Global": 2.01,
    },
    "H800": {
        "L1 FP32 (byte/clk/SM)": 125.8, "L1 FP64 (byte/clk/SM)": 16.0,
        "L1 FP32.v4 (byte/clk/SM)": 124.1,
        "L2 FP32 (byte/clk)": 4472.3, "L2 FP64 (byte/clk)": 1817.3,
        "L2 FP32.v4 (byte/clk)": 3942.4,
        "Shared (byte/clk/SM)": 127.9, "Global (GB/s)": 1861.5,
        "L2 vs. Global": 4.23,
    },
}

#: Table VII — (device, ab, cd, shape) -> (lat, dense thpt, sparse thpt)
#: shapes keyed as "m16n8k16" strings; types by paper label.
TABLE7_MMA: Dict[Tuple[str, str, str, str],
                 Tuple[float, float, float]] = {
    ("A100", "FP16", "FP16", "m16n8k8"): (17.7, 310.0, 408.4),
    ("A100", "FP16", "FP16", "m16n8k16"): (24.6, 310.6, 622.8),
    ("A100", "FP16", "FP32", "m16n8k8"): (17.5, 299.6, 394.1),
    ("A100", "FP16", "FP32", "m16n8k16"): (26.0, 303.4, 603.3),
    ("A100", "TF32", "FP32", "m16n8k4"): (17.8, 149.5, 196.8),
    ("A100", "TF32", "FP32", "m16n8k8"): (26.3, 151.5, 301.5),
    ("A100", "INT8", "INT32", "m16n8k16"): (17.6, 594.8, 788.5),
    ("A100", "INT8", "INT32", "m16n8k32"): (26.0, 607.6, 1210.0),
    ("RTX4090", "FP16", "FP16", "m16n8k8"): (17.7, 355.3, 713.2),
    ("RTX4090", "FP16", "FP16", "m16n8k16"): (24.6, 357.6, 711.8),
    ("RTX4090", "FP16", "FP32", "m16n8k8"): (18.8, 177.8, 357.4),
    ("RTX4090", "FP16", "FP32", "m16n8k16"): (33.0, 178.9, 356.0),
    ("RTX4090", "TF32", "FP32", "m16n8k4"): (19.2, 89.0, 178.0),
    ("RTX4090", "TF32", "FP32", "m16n8k8"): (33.4, 89.0, 178.7),
    ("RTX4090", "INT8", "INT32", "m16n8k16"): (17.3, 707.6, 1412.0),
    ("RTX4090", "INT8", "INT32", "m16n8k32"): (24.5, 711.7, 1423.0),
    ("H800", "FP16", "FP16", "m16n8k8"): (16.0, 368.6, 493.8),
    ("H800", "FP16", "FP16", "m16n8k16"): (24.1, 494.4, 722.8),
    ("H800", "FP16", "FP32", "m16n8k8"): (16.0, 363.7, 488.7),
    ("H800", "FP16", "FP32", "m16n8k16"): (24.1, 490.7, 721.8),
    ("H800", "TF32", "FP32", "m16n8k4"): (16.5, 180.6, 240.7),
    ("H800", "TF32", "FP32", "m16n8k8"): (24.5, 246.4, 363.3),
    ("H800", "INT8", "INT32", "m16n8k16"): (16.1, 730.3, 970.0),
    ("H800", "INT8", "INT32", "m16n8k32"): (24.0, 977.9, 1435.0),
}

#: Table VIII — dense wgmma: (ab, cd) ->
#:   (ss_lat, ss_zero, rs_lat, rs_zero, ss_rand, rs_rand)
TABLE8_WGMMA_DENSE: Dict[Tuple[str, str],
                         Tuple[float, ...]] = {
    ("FP16", "FP16"): (128.0, 729.3, 128.0, 729.2, 704.5, 703.7),
    ("FP16", "FP32"): (128.0, 728.5, 128.0, 731.9, 665.4, 667.5),
    ("TF32", "FP32"): (128.0, 364.4, 128.0, 364.6, 357.1, 357.3),
    ("FP8", "FP16"): (128.0, 1448.4, 128.0, 1448.0, 1439.2, 1440.3),
    ("FP8", "FP32"): (128.0, 1447.5, 128.0, 1455.0, 1417.2, 1419.8),
    ("INT8", "INT32"): (128.0, 1448.7, 128.0, 1447.9, 1442.3, 1442.2),
}

#: Table IX — sparse wgmma, same layout
TABLE9_WGMMA_SPARSE: Dict[Tuple[str, str],
                          Tuple[float, ...]] = {
    ("FP16", "FP16"): (144.0, 1308.0, 128.0, 1472.0, 1257.8, 1362.3),
    ("FP16", "FP32"): (144.0, 1312.3, 128.0, 1476.2, 1194.3, 1277.5),
    ("TF32", "FP32"): (144.0, 656.8, 128.0, 735.4, 644.9, 721.7),
    ("FP8", "FP16"): (144.0, 2619.9, 128.0, 2945.0, 2588.6, 2782.4),
    ("FP8", "FP32"): (144.0, 2622.8, 128.0, 2931.0, 2588.7, 2722.3),
    ("INT8", "INT32"): (144.0, 2612.4, 128.0, 2933.0, 2593.9, 2898.3),
}

#: Table X — N sweep (fp16→fp32): N ->
#:   (dss_lat, dss, drs_lat, drs, sss_lat, sss, srs_lat, srs)  [Zero]
TABLE10_NSWEEP: Dict[int, Tuple[float, ...]] = {
    256: (128.0, 728.5, 128.0, 731.9, 144.0, 1312.3, 128.0, 1476.2),
    128: (64.0, 728.5, 64.0, 725.4, 80.0, 1176.4, 64.0, 1463.3),
    64: (32.0, 719.6, 32.0, 719.7, 48.0, 977.4, 32.0, 1450.1),
    32: (24.0, 477.3, 16.0, 710.3, 32.0, 727.1, 18.0, 1272.4),
    16: (20.0, 287.0, 13.0, 434.2, 24.0, 482.3, 18.0, 638.6),
    8: (18.0, 158.2, 13.0, 216.7, 20.0, 289.0, 16.0, 359.4),
}

#: Table XI — (device, ab, cd, D/S) -> (watts, TFLOPS/W)
TABLE11_ENERGY: Dict[Tuple[str, str, str, str],
                     Tuple[float, float]] = {
    ("A100", "FP16", "FP16", "D"): (173.4, 1.79),
    ("A100", "FP16", "FP16", "S"): (198.8, 3.13),
    ("A100", "FP16", "FP32", "D"): (188.5, 1.61),
    ("A100", "FP16", "FP32", "S"): (216.1, 2.79),
    ("A100", "TF32", "FP32", "D"): (214.7, 0.71),
    ("A100", "TF32", "FP32", "S"): (235.7, 1.28),
    ("A100", "INT8", "INT32", "D"): (178.4, 3.41),
    ("A100", "INT8", "INT32", "S"): (193.9, 6.24),
    ("H800", "FP16", "FP16", "D"): (188.6, 2.62),
    ("H800", "FP16", "FP16", "S"): (187.2, 3.86),
    ("H800", "FP16", "FP32", "D"): (196.7, 2.49),
    ("H800", "FP16", "FP32", "S"): (194.9, 3.70),
    ("H800", "TF32", "FP32", "D"): (254.9, 0.97),
    ("H800", "TF32", "FP32", "S"): (232.5, 1.56),
    ("H800", "INT8", "INT32", "D"): (165.3, 5.92),
    ("H800", "INT8", "INT32", "S"): (163.3, 8.79),
    ("RTX4090", "FP16", "FP16", "D"): (189.1, 1.89),
    ("RTX4090", "FP16", "FP16", "S"): (214.0, 3.33),
    ("RTX4090", "FP16", "FP32", "D"): (154.1, 1.16),
    ("RTX4090", "FP16", "FP32", "S"): (165.9, 2.15),
    ("RTX4090", "TF32", "FP32", "D"): (174.3, 0.51),
    ("RTX4090", "TF32", "FP32", "S"): (187.9, 0.95),
    ("RTX4090", "INT8", "INT32", "D"): (201.4, 3.53),
    ("RTX4090", "INT8", "INT32", "S"): (219.8, 6.47),
}

#: Table XII — (device, model) -> {precision: tokens/s or None(OOM/-)}
TABLE12_LLM: Dict[Tuple[str, str], Dict[str, float | None]] = {
    ("RTX4090", "llama-3B"): {"FP32": 414.08, "BF16": 425.19,
                              "FP8": 429.31},
    ("RTX4090", "llama-2-7B"): {"FP32": None, "BF16": 350.69,
                                "FP8": None},
    ("A100", "llama-3B"): {"FP32": 674.50, "BF16": 670.87, "FP8": None},
    ("A100", "llama-2-7B"): {"FP32": 400.88, "BF16": 548.57,
                             "FP8": None},
    ("A100", "llama-2-13B"): {"FP32": None, "BF16": 420.81,
                              "FP8": None},
    ("H800", "llama-3B"): {"FP32": 679.45, "BF16": 624.10,
                           "FP8": 537.92},
    ("H800", "llama-2-7B"): {"FP32": 568.91, "BF16": 502.65,
                             "FP8": 474.42},
    ("H800", "llama-2-13B"): {"FP32": 357.57, "BF16": 399.38,
                              "FP8": 356.11},
}

#: Tables XIII/XIV — device -> block -> variant -> 6 blocks/SM values
TABLE13_14_ASYNC: Dict[str, Dict[str, Dict[str, Tuple[float, ...]]]] = {
    "H800": {
        "8x8": {
            "AsyncPipe": (516.69, 998.45, 1808.5, 2931.29, 3315.38,
                          3615.99),
            "SyncShare": (327.86, 646.58, 1191.48, 2117.56, 2736.06,
                          2861.75),
        },
        "16x16": {
            "AsyncPipe": (2650.06, 4531.02, 5038.26, 5510.76, 5728.71,
                          5929.61),
            "SyncShare": (2372.41, 3821.71, 4713.84, 5147.53, 5309.23,
                          5512.41),
        },
        "32x32": {
            "AsyncPipe": (5570.17, 6112.92, 6372.73, 6496.21, 6592.66,
                          6592.87),
            "SyncShare": (5782.03, 6280.8, 6465.53, 6600.58, 6649.46,
                          6631.11),
        },
    },
    "A100": {
        "8x8": {
            "AsyncPipe": (379.03, 798.5, 1544.15, 2429.93, 2825.64,
                          2888.84),
            "SyncShare": (379.03, 742.93, 1325.88, 1982.38, 2112.6,
                          2256.17),
        },
        "16x16": {
            "AsyncPipe": (2198.21, 2566.83, 3821.09, 4205.72, 4413.69,
                          4527.82),
            "SyncShare": (1754.73, 2974.9, 3724.42, 4015.96, 4207.57,
                          4316.63),
        },
        "32x32": {
            "AsyncPipe": (4453.52, 4863.73, 5020.21, 5106.74, 5150.78,
                          5129.68),
            "SyncShare": (4428.55, 4917.25, 5024.77, 5025.45, 4996.66,
                          5028.47),
        },
    },
}

#: §IV-E scalar claims
DSM_LATENCY_CLK = 180.0
DSM_LATENCY_VS_L2 = 0.32
DSM_PEAK_TBPS_CS2 = 3.27
DSM_PEAK_TBPS_CS4 = 2.65
