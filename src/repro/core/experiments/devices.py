"""Table III — device property comparison."""

from __future__ import annotations

from typing import List, Tuple

from repro.arch import get_device
from repro.core.checks import Check
from repro.core.context import RunContext
from repro.core.registry import register
from repro.core.tables import Table


@register(
    "table03_devices",
    "Table III",
    "Properties of the Ampere, Ada Lovelace and Hopper devices",
)
def table03(ctx: RunContext) -> Tuple[Table, List[Check]]:
    names = ctx.device_order("A100", "RTX4090", "H800")
    devices = [get_device(n) for n in names]
    rows = [d.table3_row() for d in devices]
    keys = list(rows[0].keys())
    table = Table(
        "Table III: device properties",
        ["Property"] + [d.marketing_name for d in devices],
    )
    for k in keys[1:]:
        table.add_row(k, *(r[k] for r in rows))

    by_name = dict(zip(names, devices))
    checks: List[Check] = []
    if ctx.has("A100", "RTX4090", "H800"):
        a100 = by_name["A100"]
        rtx = by_name["RTX4090"]
        h800 = by_name["H800"]
        checks += [
            Check("only Hopper has DPX hardware",
                  h800.pack.has_dpx_hardware
                  and not a100.pack.has_dpx_hardware
                  and not rtx.pack.has_dpx_hardware),
            Check("only Hopper has distributed shared memory",
                  h800.pack.has_distributed_shared_memory
                  and not a100.pack.has_distributed_shared_memory
                  and not rtx.pack.has_distributed_shared_memory),
            Check("H800 has the highest memory bandwidth",
                  h800.dram.peak_bandwidth_gbps
                  > max(a100.dram.peak_bandwidth_gbps,
                        rtx.dram.peak_bandwidth_gbps)),
            Check("Ada and Hopper carry 4th-gen tensor cores, Ampere 3rd",
                  rtx.tensor_core.generation == 4
                  and h800.tensor_core.generation == 4
                  and a100.tensor_core.generation == 3),
            Check("compute capabilities are 8.0 / 8.9 / 9.0",
                  (a100.compute_capability, rtx.compute_capability,
                   h800.compute_capability) == ("8.0", "8.9", "9.0")),
        ]
    else:
        # single-device / partial sweeps: per-device sanity only
        for d in devices:
            checks.append(Check(
                f"{d.name}: spec row is complete",
                all(v not in (None, "") for v in d.table3_row().values()),
            ))
    return table, checks
