"""Figures 3–5 and Table XII — Transformer Engine and LLM inference."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.arch import get_device
from repro.core.checks import Check, ratio_between
from repro.core.context import RunContext
from repro.core.registry import register
from repro.core.tables import Table
from repro.te import (
    CostModel,
    LlmInferenceModel,
    Precision,
    TransformerLayer,
    TransformerLayerConfig,
)

_NS = (1024, 2048, 4096, 8192, 16384)


@register(
    "fig03_te_breakdown",
    "Fig. 3",
    "Operator time shares of an FP8 te.Linear matmul",
    devices=("H800",),
)
def fig03(ctx: RunContext) -> Tuple[Table, List[Check]]:
    cm = CostModel(get_device(ctx.pin("H800")))
    table = Table(
        "Fig 3: FP8 te.Linear operator time shares (H800)",
        ["N", "quantize_input %", "gemm %", "scale_out %"],
    )
    # one vectorized pass prices the whole N sweep
    ns = np.asarray(_NS)
    parts = cm.linear_breakdown_batch(ns, ns, ns, Precision.FP8)
    total = parts[0][1]
    for _, s in parts[1:]:
        total = total + s
    shares = {}
    for i, n in enumerate(_NS):
        share = {name: float(100 * s[i] / total[i]) for name, s in parts}
        shares[n] = share
        table.add_row(n, round(share.get("quantize_input", 0), 1),
                      round(share.get("gemm", 0), 1),
                      round(share.get("scale_out", 0), 1))
    checks = [
        Check(
            "at small N the conversion overhead dominates the GEMM "
            "(paper Fig 3)",
            shares[1024]["quantize_input"] + shares[1024]["scale_out"]
            > shares[1024]["gemm"],
        ),
        Check(
            "at N=16384 the GEMM dominates (>80%)",
            shares[16384]["gemm"] > 80.0,
        ),
        Check(
            "GEMM share grows monotonically with N",
            all(shares[a]["gemm"] <= shares[b]["gemm"]
                for a, b in zip(_NS, _NS[1:])),
        ),
    ]
    return table, checks


@register(
    "fig04_te_linear",
    "Fig. 4",
    "te.Linear throughput (TFLOPS) vs matrix size, dtype and device",
)
def fig04(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order("H800", "RTX4090", "A100")
    table = Table(
        "Fig 4: te.Linear N×N×N throughput (TFLOPS)",
        ["Device", "dtype"] + [str(n) for n in _NS],
    )
    data = {}
    for d in devices:
        cm = CostModel(get_device(d))
        for prec in (Precision.FP8, Precision.FP16, Precision.FP32):
            if not cm.supports(prec):
                continue
            row = [float(v) for v in
                   cm.linear_tflops_batch(np.asarray(_NS), prec)]
            data[(d, prec)] = dict(zip(_NS, row))
            table.add_row(d, prec.name, *(round(v, 1) for v in row))

    checks: List[Check] = []
    for d in ctx.select("H800", "RTX4090"):
        checks.append(Check(
            f"{d}: FP8 slower than FP16 at N=1024 (conversion overhead)",
            data[(d, Precision.FP8)][1024]
            < data[(d, Precision.FP16)][1024],
        ))
        checks.append(ratio_between(
            f"{d}: FP8 ≈ 2× FP16 at N=16384 (paper Fig 4)",
            data[(d, Precision.FP8)][16384],
            data[(d, Precision.FP16)][16384], 1.6, 2.2,
        ))
    checks.append(Check(
        "throughput grows with matrix size for every device/dtype",
        all(vals[a] <= vals[b] * 1.001
            for vals in data.values() for a, b in zip(_NS, _NS[1:])),
    ))
    if ctx.has("A100"):
        checks.append(Check(
            "A100 offers no FP8 path",
            (("A100", Precision.FP8) not in data),
        ))
    return table, checks


@register(
    "fig05_te_layer",
    "Fig. 5",
    "te.TransformerLayer single-layer latency vs hidden size",
)
def fig05(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order("H800", "RTX4090", "A100")
    hiddens = sorted(TransformerLayerConfig.PAPER_CONFIGS)
    table = Table(
        "Fig 5: te.TransformerLayer latency (ms), batch 4 × seq 512",
        ["Device", "dtype"] + [str(h) for h in hiddens],
    )
    data = {}
    for d in devices:
        dev = get_device(d)
        cm = CostModel(dev)
        for prec in (Precision.FP8, Precision.FP16, Precision.FP32):
            if not cm.supports(prec):
                continue
            row = []
            for h in hiddens:
                layer = TransformerLayer(
                    TransformerLayerConfig.PAPER_CONFIGS[h])
                row.append(float(layer.latency_ms_grid(
                    cm, precision=prec)))
            data[(d, prec)] = dict(zip(hiddens, row))
            table.add_row(d, prec.name, *(round(v, 3) for v in row))

    checks: List[Check] = []
    if ctx.has("H800"):
        checks.append(ratio_between(
            "H800: FP16 ≈ 2× faster than FP32 at hidden 8192 "
            "(paper Fig 5)",
            data[("H800", Precision.FP32)][8192],
            data[("H800", Precision.FP16)][8192], 1.6, 2.2,
        ))
        checks.append(Check(
            "H800: FP8 beats FP16 for hidden > 4096",
            all(data[("H800", Precision.FP8)][h]
                < data[("H800", Precision.FP16)][h]
                for h in (5120, 8192)),
        ))
        checks.append(Check(
            "FP8 gain stays below 2× (unquantised operators remain, "
            "paper §IV-D)",
            data[("H800", Precision.FP16)][8192]
            / data[("H800", Precision.FP8)][8192] < 2.0,
        ))
    if ctx.has("H800", "RTX4090", "A100"):
        checks.append(Check(
            "H800 is the fastest device at hidden 8192 FP16 "
            "(computational density favours Hopper)",
            data[("H800", Precision.FP16)][8192]
            < min(data[("RTX4090", Precision.FP16)][8192],
                  data[("A100", Precision.FP16)][8192]),
        ))
    return table, checks


@register(
    "table12_llm",
    "Table XII",
    "Decode-only LLM generation throughput (tokens/s)",
)
def table12(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order("RTX4090", "A100", "H800")
    table = Table(
        "Table XII: inference throughput (tokens/s), batch 8, "
        "in/out ≤ 128",
        ["GPU", "Model", "FP32", "BF16", "FP8"],
    )
    cells = {}
    for d in devices:
        m = LlmInferenceModel(get_device(d))
        models = (("llama-3B", "llama-2-7B")
                  if d == "RTX4090"
                  else ("llama-3B", "llama-2-7B", "llama-2-13B"))
        for row in m.table12_rows(models=models):
            table.add_dict_row(row)
            cells[(d, row["Model"])] = row

    checks: List[Check] = []
    if ctx.has("RTX4090"):
        checks.append(Check(
            "RTX4090 (24 GB): llama-2-7B FP32 and FP8 OOM, BF16 fits",
            cells[("RTX4090", "llama-2-7B")]["FP32"] == "OOM"
            and cells[("RTX4090", "llama-2-7B")]["FP8"] == "OOM"
            and cells[("RTX4090", "llama-2-7B")]["BF16"] != "OOM"))
    if ctx.has("A100"):
        checks.append(Check(
            "A100 (40 GB): llama-2-13B FP32 OOM, BF16 fits",
            cells[("A100", "llama-2-13B")]["FP32"] == "OOM"
            and cells[("A100", "llama-2-13B")]["BF16"] != "OOM"))
        checks.append(Check(
            "A100 has no FP8 column",
            all(cells[("A100", m)]["FP8"] == "-"
                for m in ("llama-3B", "llama-2-7B", "llama-2-13B"))))
    if ctx.has("H800"):
        checks.append(Check(
            "H800 (80 GB) runs every model at every precision",
            all(cells[("H800", m)][p] not in ("OOM", "-")
                for m in ("llama-3B", "llama-2-7B", "llama-2-13B")
                for p in ("FP32", "BF16", "FP8"))))
        # the headline finding: FP8 gives no significant decode
        # advantage
        for m in ("llama-3B", "llama-2-7B"):
            row = cells[("H800", m)]
            fp8 = float(row["FP8"])
            bf16 = float(row["BF16"])
            checks.append(Check(
                f"H800 {m}: FP8 decode ≤ ~BF16 (memory-bound, paper "
                "§IV-D)",
                fp8 <= bf16 * 1.1,
                detail=f"FP8 {fp8:.0f} vs BF16 {bf16:.0f}",
            ))
        checks.append(Check(
            "throughput decreases with model size (H800 BF16)",
            float(cells[("H800", "llama-3B")]["BF16"])
            > float(cells[("H800", "llama-2-7B")]["BF16"])
            > float(cells[("H800", "llama-2-13B")]["BF16"]),
        ))
    return table, checks
