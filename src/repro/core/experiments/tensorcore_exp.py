"""Tables VI–XI — SASS lowering, mma/wgmma latency, throughput, energy."""

from __future__ import annotations

from typing import List, Tuple

from repro.arch import get_device
from repro.core.checks import Check, approx, ordered, ratio_between
from repro.core.context import RunContext
from repro.core.registry import register
from repro.core.tables import Table
from repro.isa.dtypes import DType
from repro.isa.lowering import sass_table
from repro.isa.mma import (
    MatrixShape,
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
)
from repro.power import PowerModel
from repro.tensorcore import TensorCoreTimingModel

#: the paper's column order for Table VII
_PAPER_ORDER = ("A100", "RTX4090", "H800")

#: the Table VII grid: (A/B, C/D, shapes)
_MMA_GRID = [
    (DType.FP16, DType.FP16, [(16, 8, 8), (16, 8, 16)]),
    (DType.FP16, DType.FP32, [(16, 8, 8), (16, 8, 16)]),
    (DType.TF32, DType.FP32, [(16, 8, 4), (16, 8, 8)]),
    (DType.INT8, DType.INT32, [(16, 8, 16), (16, 8, 32)]),
]

#: the Tables VIII/IX dtype pairs
_WGMMA_PAIRS = [
    (DType.FP16, DType.FP16),
    (DType.FP16, DType.FP32),
    (DType.TF32, DType.FP32),
    (DType.E4M3, DType.FP16),
    (DType.E4M3, DType.FP32),
    (DType.INT8, DType.INT32),
]


@register(
    "table06_sass",
    "Table VI",
    "SASS lowering of Hopper tensor-core PTX instructions",
)
def table06(ctx: RunContext) -> Tuple[Table, List[Check]]:
    # The paper lowers on the H800; any other context sweeps its own
    # lead device's architecture through the same Table VI grid.
    pack = get_device(ctx.device_order("H800")[0]).pack
    rows = sass_table(pack)
    table = Table(f"Table VI: {pack.display_name} SASS for "
                  "tensor-core PTX",
                  ["A/B", "C/D", "mma", "wgmma"])
    for r in rows:
        table.add_dict_row(r)
    by_ab = {(r["A/B"], r["C/D"]): r for r in rows}
    checks = [
        Check("INT4 has no wgmma",
              by_ab[("INT4", "INT32")]["wgmma"] == "×"),
        Check("FP8 has no mma on any architecture",
              all(r["mma"] == "×" for r in rows if "FP8" in r["A/B"])),
    ]
    if pack.int4_mma_emulated:
        checks.insert(0, Check(
            "INT4 mma lowers to CUDA-core IMAD on Hopper",
            by_ab[("INT4", "INT32")]["mma"].startswith("IMAD")))
    if pack.has_wgmma:
        checks += [
            Check("FP8 wgmma lowers to QGMMA (both E4M3 and E5M2)",
                  all(r["wgmma"].startswith("QGMMA")
                      for r in rows if "FP8" in r["A/B"])),
            Check("FP16 wgmma lowers to HGMMA.64x256x16",
                  by_ab[("FP16", "FP32")]["wgmma"]
                  == "HGMMA.64x256x16.F32"),
        ]
    else:
        checks.append(Check(
            f"{pack.display_name} has no wgmma lowering",
            all(r["wgmma"] == "×" for r in rows)))
    if pack.supports_mma_input(DType.BIN1.peak_key):
        checks.append(Check(
            "binary mma lowers to BMMA.168256.AND.POPC",
            by_ab[("Binary", "INT32")]["mma"]
            == "BMMA.168256.AND.POPC"))
    return table, checks


def _mma_instr(ab, cd, shape, sparse):
    return MmaInstruction(ab, cd, MatrixShape(*shape), sparse=sparse)


def _lat_thpt_cell(entry) -> str:
    """One Table VII cell — "×" where the instruction doesn't exist on
    the device's architecture (e.g. TF32/sparse mma on Volta)."""
    if not entry.supported:
        return "×"
    return (f"{entry.latency_clk:.1f}"
            f"/{entry.throughput_tflops():.1f}")


@register(
    "table07_mma",
    "Table VII",
    "Dense/sparse mma latency and throughput on A100, RTX4090, H800",
)
def table07(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order(*_PAPER_ORDER)
    table = Table(
        "Table VII: mma latency (clk) / throughput (TFLOPS or TOPS)",
        ["A/B", "C/D", "Shape"] + [
            f"{d} {k}" for d in devices for k in ("Dense", "Sparse")
        ],
    )
    # one vectorized sweep per device prices the whole grid
    combos = [(ab, cd, shape)
              for ab, cd, shapes in _MMA_GRID for shape in shapes]
    sweeps = {
        d: TensorCoreTimingModel(get_device(d)).mma_sweep(
            [_mma_instr(ab, cd, shape, sparse)
             for ab, cd, shape in combos for sparse in (False, True)])
        for d in devices
    }
    data = {}
    for j, (ab, cd, shape) in enumerate(combos):
        cells = []
        for d in devices:
            dd = sweeps[d][2 * j]
            sp = sweeps[d][2 * j + 1]
            data[(ab, cd, shape, d)] = (dd, sp)
            cells += [_lat_thpt_cell(dd), _lat_thpt_cell(sp)]
        table.add_row(ab.paper_label, cd.paper_label,
                      f"m{shape[0]}n{shape[1]}k{shape[2]}", *cells)

    checks: List[Check] = []
    # larger shapes achieve higher throughput on A100/H800, not Ada
    for d in ctx.select("A100", "H800"):
        small = data[(DType.FP16, DType.FP16, (16, 8, 8), d)][0]
        large = data[(DType.FP16, DType.FP16, (16, 8, 16), d)][0]
        checks.append(Check(
            f"{d}: larger mma shape throughput ≥ smaller",
            large.throughput_tflops() >= small.throughput_tflops(),
        ))
    # sparse speedups
    if ctx.has("RTX4090"):
        d16 = data[(DType.FP16, DType.FP16, (16, 8, 16), "RTX4090")]
        checks.append(ratio_between(
            "RTX4090: sparse mma ≈ 2× dense (vendor claim holds)",
            d16[1].throughput_tflops(), d16[0].throughput_tflops(),
            1.9, 2.1,
        ))
    if ctx.has("A100"):
        a16 = data[(DType.FP16, DType.FP16, (16, 8, 16), "A100")]
        checks.append(ratio_between(
            "A100: large-shape sparse mma reaches the 2× speedup",
            a16[1].throughput_tflops(), a16[0].throughput_tflops(),
            1.9, 2.1,
        ))
    if ctx.has("H800"):
        # H800 sparse average speedup ≈ 1.42
        ratios = []
        for ab, cd, shapes in _MMA_GRID:
            for shape in shapes:
                dd, sp = data[(ab, cd, shape, "H800")]
                ratios.append(sp.throughput_tflops()
                              / dd.throughput_tflops())
        checks.append(approx(
            "H800: sparse mma averages ≈1.42× dense (paper §IV-C)",
            sum(ratios) / len(ratios), 1.42, rel_tol=0.08,
        ))
        # fraction of peak
        fracs = []
        for ab, cd, shapes in _MMA_GRID:
            for shape in shapes:
                fracs.append(data[(ab, cd, shape, "H800")][0]
                             .fraction_of_peak())
        checks.append(approx(
            "H800: dense mma averages ≈62.9% of peak (paper §IV-C)",
            100 * sum(fracs) / len(fracs), 62.9, rel_tol=0.10,
        ))
    if ctx.has("A100"):
        a_fracs = [data[(ab, cd, shapes[-1], "A100")][0]
                   .fraction_of_peak()
                   for ab, cd, shapes in _MMA_GRID]
        checks.append(Check(
            "A100: large-shape dense mma exceeds 95% of peak",
            min(a_fracs) > 0.95,
            detail=f"min {min(a_fracs):.3f}",
        ))
    if ctx.has("RTX4090"):
        checks.append(Check(
            "RTX4090 exceeds its official peak (runs above boost "
            "clock)",
            data[(DType.FP16, DType.FP16, (16, 8, 16), "RTX4090")][0]
            .throughput_tflops() > 330.3,
        ))
    # dense and sparse latency are equal (where sparse mma exists)
    for d in devices:
        dd, sp = data[(DType.FP16, DType.FP16, (16, 8, 16), d)]
        if not (dd.supported and sp.supported):
            continue
        checks.append(Check(
            f"{d}: sparse and dense mma latencies match",
            abs(dd.latency_clk - sp.latency_clk) < 1.0,
        ))
    return table, checks


def _wgmma_rows(device: str, sparse: bool):
    tm = TensorCoreTimingModel(get_device(device))
    sweep = tm.wgmma_sweep([
        WgmmaInstruction(ab, cd, 256, sparse=sparse, a_source=src)
        for ab, cd in _WGMMA_PAIRS
        for src in (OperandSource.SHARED, OperandSource.REGISTER)
    ])
    return {pair: (sweep[2 * i], sweep[2 * i + 1])
            for i, pair in enumerate(_WGMMA_PAIRS)}


@register(
    "table08_wgmma_dense",
    "Table VIII",
    "Dense wgmma variants on H800: SS/RS × zero/random operands",
    devices=("H800",),
)
def table08(ctx: RunContext) -> Tuple[Table, List[Check]]:
    rows = _wgmma_rows(ctx.pin("H800"), sparse=False)
    table = Table(
        "Table VIII: dense wgmma m64n256kK on H800",
        ["A/B", "C/D", "LAT/Thpt (SS,Zero)", "LAT/Thpt (RS,Zero)",
         "Thpt (SS,Rand)", "Thpt (RS,Rand)"],
    )
    for (ab, cd), (ss, rs) in rows.items():
        table.add_row(
            ab.paper_label, cd.paper_label,
            f"{ss.latency_clk:.1f}/{ss.throughput_tflops():.1f}",
            f"{rs.latency_clk:.1f}/{rs.throughput_tflops():.1f}",
            f"{ss.throughput_tflops('rand'):.1f}",
            f"{rs.throughput_tflops('rand'):.1f}",
        )
    checks: List[Check] = []
    for (ab, cd), (ss, rs) in rows.items():
        checks.append(Check(
            f"{ab.paper_label}/{cd.paper_label}: dense SS and RS tie "
            "(latency 128, same throughput)",
            ss.latency_clk == 128.0 and rs.latency_clk == 128.0
            and abs(ss.throughput_tflops() - rs.throughput_tflops())
            / rs.throughput_tflops() < 0.02,
        ))
        checks.append(Check(
            f"{ab.paper_label}/{cd.paper_label}: zero-init reaches "
            ">95% of peak",
            ss.fraction_of_peak() > 0.95,
            detail=f"{100 * ss.fraction_of_peak():.1f}%",
        ))
    ss16_32, _ = rows[(DType.FP16, DType.FP32)]
    ss16_16, _ = rows[(DType.FP16, DType.FP16)]
    drop_f32 = (ss16_32.throughput_tflops("rand")
                / ss16_32.throughput_tflops("zero"))
    drop_f16 = (ss16_16.throughput_tflops("rand")
                / ss16_16.throughput_tflops("zero"))
    checks.append(Check(
        "random data throttles FP16+FP32-acc hardest (350 W cap, "
        "paper §IV-C)",
        drop_f32 < drop_f16 < 1.0,
        detail=f"f32acc {drop_f32:.3f}, f16acc {drop_f16:.3f}",
    ))
    return table, checks


@register(
    "table09_wgmma_sparse",
    "Table IX",
    "Sparse wgmma variants on H800: the SS-mode penalty",
    devices=("H800",),
)
def table09(ctx: RunContext) -> Tuple[Table, List[Check]]:
    rows = _wgmma_rows(ctx.pin("H800"), sparse=True)
    table = Table(
        "Table IX: sparse wgmma sp.m64n256kK on H800",
        ["A/B", "C/D", "LAT/Thpt (SS,Zero)", "LAT/Thpt (RS,Zero)",
         "Thpt (SS,Rand)", "Thpt (RS,Rand)"],
    )
    for (ab, cd), (ss, rs) in rows.items():
        table.add_row(
            ab.paper_label, cd.paper_label,
            f"{ss.latency_clk:.1f}/{ss.throughput_tflops():.1f}",
            f"{rs.latency_clk:.1f}/{rs.throughput_tflops():.1f}",
            f"{ss.throughput_tflops('rand'):.1f}",
            f"{rs.throughput_tflops('rand'):.1f}",
        )
    checks: List[Check] = []
    for (ab, cd), (ss, rs) in rows.items():
        checks.append(Check(
            f"{ab.paper_label}/{cd.paper_label}: sparse SS latency 144 "
            "vs RS 128 (unpruned-A traffic, paper §IV-C)",
            ss.latency_clk == 144.0 and rs.latency_clk == 128.0,
        ))
        checks.append(Check(
            f"{ab.paper_label}/{cd.paper_label}: sparse SS throughput "
            "< RS",
            ss.throughput_tflops() < rs.throughput_tflops(),
        ))
    _, rs = rows[(DType.FP16, DType.FP32)]
    checks.append(Check(
        "sparse RS zero-init reaches >95% of sparse peak",
        rs.fraction_of_peak() > 0.95,
    ))
    return table, checks


@register(
    "table10_wgmma_nsweep",
    "Table X",
    "wgmma throughput vs N: compute density hides operand latency",
    devices=("H800",),
)
def table10(ctx: RunContext) -> Tuple[Table, List[Check]]:
    dev = get_device(ctx.pin("H800"))
    tm = TensorCoreTimingModel(dev)
    ns = (256, 128, 64, 32, 16, 8)
    table = Table(
        "Table X: wgmma m64nNk16 f32.f16 on H800 vs N",
        ["N", "Dense SS (LAT/Thpt)", "Dense RS (LAT/Thpt)",
         "Sparse SS (LAT/Thpt)", "Sparse RS (LAT/Thpt)"],
    )
    combos = [(n, sparse, src)
              for n in ns for sparse in (False, True)
              for src in (OperandSource.SHARED, OperandSource.REGISTER)]
    sweep = tm.wgmma_sweep([
        WgmmaInstruction(DType.FP16, DType.FP32, n, sparse=sparse,
                         a_source=src)
        for n, sparse, src in combos
    ])
    grid = {c: sweep[i] for i, c in enumerate(combos)}
    for n in ns:
        cells = [
            f"{t.latency_clk:.1f}/{t.throughput_tflops():.1f}"
            for sparse in (False, True)
            for src in (OperandSource.SHARED, OperandSource.REGISTER)
            for t in (grid[(n, sparse, src)],)
        ]
        table.add_row(n, cells[0], cells[1], cells[2], cells[3])

    peak = dev.tc_peak_tflops("fp16")
    checks: List[Check] = []
    for n in (64, 128, 256):
        t = grid[(n, False, OperandSource.SHARED)]
        checks.append(Check(
            f"N={n}: dense throughput ≥ 90% of peak (paper: N ≥ 64 "
            "approaches peak)",
            t.throughput_tflops() >= 0.90 * peak,
        ))
    for n in (8, 16, 32):
        ss = grid[(n, False, OperandSource.SHARED)]
        rs = grid[(n, False, OperandSource.REGISTER)]
        checks.append(Check(
            f"N={n}: SS latency > RS latency and SS throughput < RS "
            "(small N exposes the shared-memory fetch)",
            ss.latency_clk > rs.latency_clk
            and ss.throughput_tflops() < rs.throughput_tflops(),
        ))
    dense_ss = [grid[(n, False, OperandSource.SHARED)]
                .throughput_tflops() for n in ns]
    checks.append(ordered(
        "dense SS throughput decreases monotonically as N shrinks",
        dense_ss, descending=True,
    ))
    checks.append(Check(
        "sparse SS latency is N/2 + 16 at every N",
        all(grid[(n, True, OperandSource.SHARED)].latency_clk
            == n / 2 + 16 for n in ns),
    ))
    return table, checks


@register(
    "table11_energy",
    "Table XI",
    "Power and energy efficiency of max-shape mma instructions",
)
def table11(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order("A100", "H800", "RTX4090")
    grid = [
        (DType.FP16, DType.FP16, (16, 8, 16)),
        (DType.FP16, DType.FP32, (16, 8, 16)),
        (DType.TF32, DType.FP32, (16, 8, 8)),
        (DType.INT8, DType.INT32, (16, 8, 32)),
    ]
    table = Table(
        "Table XI: mma power (W) and efficiency (TFLOPS/W)",
        ["A/B", "C/D", "T"] + [f"{d} {m}" for d in devices
                               for m in ("P", "E")],
    )
    sweeps = {
        d: TensorCoreTimingModel(get_device(d)).mma_sweep(
            [_mma_instr(ab, cd, shape, sparse)
             for ab, cd, shape in grid for sparse in (False, True)])
        for d in devices
    }
    eff = {}
    for gi, (ab, cd, shape) in enumerate(grid):
        for sparse in (False, True):
            cells = []
            for d in devices:
                dev = get_device(d)
                t = sweeps[d][2 * gi + (1 if sparse else 0)]
                if not t.supported:
                    cells += ["×", "×"]
                    continue
                rep = PowerModel(dev).report(
                    op="mma", ab=ab, cd=cd,
                    tflops=t.throughput_tflops("rand"), sparse=sparse,
                )
                eff[(ab, cd, sparse, d)] = \
                    rep.efficiency_tflops_per_watt
                cells += [round(rep.power_watts, 1),
                          round(rep.efficiency_tflops_per_watt, 2)]
            table.add_row(ab.paper_label, cd.paper_label,
                          "S" if sparse else "D", *cells)

    def avg_ratio(d_num, d_den, sparse):
        rs = [eff[(ab, cd, sparse, d_num)] / eff[(ab, cd, sparse, d_den)]
              for ab, cd, _ in grid]
        return sum(rs) / len(rs)

    checks: List[Check] = []
    if ctx.has("H800", "A100"):
        checks.append(approx(
            "dense: H800 efficiency ≈ 1.60× A100 (paper §IV-C)",
            avg_ratio("H800", "A100", False), 1.60, rel_tol=0.12))
    if ctx.has("H800", "RTX4090"):
        checks.append(approx(
            "dense: H800 efficiency ≈ 1.69× RTX4090",
            avg_ratio("H800", "RTX4090", False), 1.69, rel_tol=0.12))
    if ctx.has("H800", "A100"):
        checks.append(approx(
            "sparse: H800 efficiency ≈ 1.33× A100",
            avg_ratio("H800", "A100", True), 1.33, rel_tol=0.12))
    if ctx.has("H800", "RTX4090"):
        checks.append(approx(
            "sparse: H800 efficiency ≈ 1.39× RTX4090",
            avg_ratio("H800", "RTX4090", True), 1.39, rel_tol=0.12))
    checks.append(Check(
        "sparse always beats dense on energy efficiency",
        all(eff[(ab, cd, True, d)] > eff[(ab, cd, False, d)]
            for ab, cd, _ in grid
            for d in devices
            if (ab, cd, True, d) in eff and (ab, cd, False, d) in eff),
    ))
    return table, checks
