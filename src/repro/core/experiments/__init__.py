"""Experiment definitions, one module per paper section.

Importing this package registers every experiment with
:mod:`repro.core.registry`.
"""

from __future__ import annotations

from repro.core.experiments import (  # noqa: F401
    devices,
    memory,
    tensorcore_exp,
    te_exp,
    features,
    extensions,
)

__all__ = ["devices", "memory", "tensorcore_exp", "te_exp", "features",
           "extensions"]
