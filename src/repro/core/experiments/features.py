"""Figures 6–9 and Tables XIII/XIV — DPX, async copy, DSM."""

from __future__ import annotations

from typing import List, Tuple

from repro.arch import get_device
from repro.asynccopy import benchmark_table
from repro.core.checks import Check, approx, ordered
from repro.core.context import RunContext
from repro.core.registry import register
from repro.core.tables import Table
from repro.dpx import DPX_FUNCTIONS, DpxTimingModel, block_sweep, \
    get_dpx_function
from repro.dsm import (
    DsmHistogram,
    HistogramConfig,
    RingCopyBenchmark,
    SmToSmNetwork,
)

_DPX_SAMPLE = (
    "__vimax_s32",
    "__viaddmax_s32",
    "__vimax3_s32",
    "__vimax3_s32_relu",
    "__vimax3_s16x2",
    "__vimax3_s16x2_relu",
    "__viaddmax_s16x2_relu",
)


@register(
    "fig06_dpx_latency",
    "Fig. 6",
    "DPX intrinsic latency: hardware (H800) vs emulation (A100, 4090)",
)
def fig06(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order("RTX4090", "A100", "H800")
    models = {d: DpxTimingModel(get_device(d)) for d in devices}
    table = Table("Fig 6: DPX latency (cycles)",
                  ["Function", *devices])
    lat = {}
    for name in _DPX_SAMPLE:
        fn = get_dpx_function(name)
        row = [models[d].latency_clk(fn) for d in devices]
        lat[name] = dict(zip(devices, row))
        table.add_row(name, *row)

    checks: List[Check] = []
    if ctx.has("RTX4090", "A100"):
        checks.append(Check(
            "software-emulated devices (RTX4090, A100) have identical "
            "cycle latency (paper §IV-E)",
            all(lat[n]["RTX4090"] == lat[n]["A100"]
                for n in _DPX_SAMPLE),
        ))
    if ctx.has("H800", "A100"):
        checks.append(Check(
            "H800 latency ≤ emulation for every function",
            all(lat[n]["H800"] <= lat[n]["A100"]
                for n in _DPX_SAMPLE),
        ))
        checks.append(Check(
            "2-input __vimax_s32 shows no H800 latency edge "
            "(VIMNMX ≈ IMNMX, paper §IV-E)",
            lat["__vimax_s32"]["H800"] == lat["__vimax_s32"]["A100"],
        ))
        checks.append(Check(
            "relu-fused and 16x2 functions gain the most",
            lat["__viaddmax_s16x2_relu"]["A100"]
            / lat["__viaddmax_s16x2_relu"]["H800"] > 4.0,
        ))
    return table, checks


@register(
    "fig07_dpx_throughput",
    "Fig. 7",
    "DPX throughput per device + the SM-multiple block sawtooth",
)
def fig07(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order("RTX4090", "A100", "H800")
    models = {d: DpxTimingModel(get_device(d)) for d in devices}
    with_speedup = ctx.has("H800", "A100")
    table = Table(
        "Fig 7: DPX throughput (G results/s, device-wide)",
        ["Function", *devices]
        + (["H800 speedup vs A100"] if with_speedup else []),
    )
    speedups = {}
    for name in _DPX_SAMPLE:
        fn = get_dpx_function(name)
        row = [models[d].throughput_gops(fn) for d in devices]
        extra = []
        if with_speedup:
            s = models["H800"].speedup_vs(fn, models["A100"])
            speedups[name] = s
            extra = [round(s, 2)]
        table.add_row(name, *(round(v, 1) for v in row), *extra)

    checks: List[Check] = []
    if with_speedup:
        checks.append(Check(
            "simple 32-bit ops are close across devices (≤2.6× span, "
            "paper §IV-E)",
            speedups["__vimax_s32"] < 1.5
            and speedups["__viaddmax_s32"] < 2.6,
        ))
        checks.append(Check(
            "16-bit relu functions accelerate up to ~13× on H800 "
            "(paper §IV-E)",
            10.0 < speedups["__viaddmax_s16x2_relu"] < 18.0,
            detail=f"{speedups['__viaddmax_s16x2_relu']:.1f}×",
        ))
    if ctx.has("H800"):
        h800 = get_device("H800")
        sweep = block_sweep(h800, get_dpx_function("__vimax3_s32"), 2)
        by_blocks = {p["blocks"]: p["gops"] for p in sweep}
        sms = h800.num_sms
        checks += [
            Check(
                "throughput ∝ blocks below the SM count",
                approx("", by_blocks[sms // 2] / by_blocks[1],
                       sms // 2, rel_tol=0.02).passed,
            ),
            Check(
                "throughput plummets just past the SM count "
                "(DPX unit is per-SM, paper §IV-E)",
                by_blocks[sms + 1] < 0.6 * by_blocks[sms],
            ),
            Check(
                "maximum throughput at integer multiples of the SM "
                "count",
                by_blocks[2 * sms] >= by_blocks[2 * sms - 1]
                and by_blocks[2 * sms] >= by_blocks[2 * sms + 1],
            ),
        ]
    return table, checks


def _async_table(dev_name: str):
    rows = benchmark_table(get_device(dev_name))
    table = Table(
        f"Table {'XIII' if dev_name == 'H800' else 'XIV'}: "
        f"globalToShmemAsyncCopy on {dev_name} (GFLOP/s)",
        ["block", "variant", "1", "2", "4", "8", "16", "32", "Perf↑"],
    )
    gains = {}
    for r in rows:
        gains[r["block"]] = r["perf_gain"]
        table.add_row(r["block"], "AsyncPipe",
                      *(round(v) for v in r["AsyncPipe"]),
                      f"{100 * r['perf_gain']:.1f}%")
        table.add_row(r["block"], "SyncShare",
                      *(round(v) for v in r["SyncShare"]), "")
    return table, rows, gains


@register(
    "table13_async_h800",
    "Table XIII",
    "Async vs sync tile copies in tiled matmul, H800",
    devices=("H800",),
)
def table13(ctx: RunContext) -> Tuple[Table, List[Check]]:
    table, rows, gains = _async_table(ctx.pin("H800"))
    checks = [
        approx("8×8: async gains ≈ 39.5% on average (paper)",
               100 * gains["8x8"], 39.5, rel_tol=0.40),
        Check("gains shrink as block size grows",
              gains["8x8"] > gains["16x16"] > gains["32x32"]),
        Check("at 32×32 async is no better (≈ −1.8%, paper)",
              gains["32x32"] < 0.02),
        Check("throughput is non-decreasing in launched blocks",
              all(a <= b * 1.001
                  for r in rows
                  for series in (r["AsyncPipe"], r["SyncShare"])
                  for a, b in zip(series, series[1:]))),
    ]
    return table, checks


@register(
    "table14_async_a100",
    "Table XIV",
    "Async vs sync tile copies in tiled matmul, A100",
    devices=("A100",),
)
def table14(ctx: RunContext) -> Tuple[Table, List[Check]]:
    table, rows, gains = _async_table(ctx.pin("A100"))
    checks = [
        Check("8×8: async helps (paper: +19.6% average)",
              gains["8x8"] > 0.08),
        Check("A100 gains are smaller than H800 gains at 8×8",
              gains["8x8"]
              < _async_table("H800")[2]["8x8"]),
        Check("at 32×32 the effect is within a few percent",
              abs(gains["32x32"]) < 0.05),
    ]
    return table, checks


@register(
    "fig08_dsm_rbc",
    "Fig. 8",
    "SM-to-SM ring-based copy throughput on H800",
    devices=("H800",),
)
def fig08(ctx: RunContext) -> Tuple[Table, List[Check]]:
    h800 = get_device(ctx.pin("H800"))
    rbc = RingCopyBenchmark(h800)
    net = SmToSmNetwork(h800)
    table = Table(
        "Fig 8: RBC SM-to-SM throughput (TB/s), block 1024",
        ["Cluster size", "ILP=1", "ILP=2", "ILP=4", "ILP=8"],
    )
    best = {}
    for cs in (2, 4, 8, 16):
        row = [rbc.measure(cluster_size=cs, block_threads=1024,
                           ilp=ilp).aggregate_tbps
               for ilp in (1, 2, 4, 8)]
        best[cs] = max(row)
        table.add_row(cs, *(round(v, 2) for v in row))

    small = rbc.measure(cluster_size=2, block_threads=128, ilp=1)
    big = rbc.measure(cluster_size=2, block_threads=1024, ilp=1)
    checks = [
        approx("SM-to-SM latency is 180 cycles", net.latency_clk, 180.0,
               rel_tol=0.01),
        approx("DSM latency ≈ 32% below L2 (paper §IV-E)",
               100 * net.latency_vs_l2, 32.0, rel_tol=0.10),
        approx("peak ≈ 3.27 TB/s at cluster size 2 (paper Fig 8)",
               best[2], 3.27, rel_tol=0.10),
        approx("≈ 2.65 TB/s at cluster size 4", best[4], 2.65,
               rel_tol=0.10),
        ordered("throughput declines as the cluster grows "
                "(fabric contention)",
                [best[2], best[4], best[8], best[16]],
                strict=True, descending=True),
        Check("bigger blocks raise latency-bound throughput",
              small.aggregate_tbps < big.aggregate_tbps),
    ]
    return table, checks


@register(
    "fig09_dsm_histogram",
    "Fig. 9",
    "DSM histogram throughput: occupancy vs SM-to-SM traffic",
    devices=("H800",),
)
def fig09(ctx: RunContext) -> Tuple[Table, List[Check]]:
    h800 = get_device(ctx.pin("H800"))
    hist = DsmHistogram(h800)
    nbins = (256, 512, 1024, 2048, 4096)
    table = Table(
        "Fig 9: DSM histogram (G elements/s)",
        ["block", "CS"] + [str(n) for n in nbins],
    )
    data = {}
    for bt in (128, 512):
        for cs in (1, 2, 4, 8):
            row = []
            for n in nbins:
                r = hist.measure(HistogramConfig(n, cs, bt))
                row.append(r.elements_per_second / 1e9)
            data[(bt, cs)] = dict(zip(nbins, row))
            table.add_row(bt, cs, *(round(v, 1) for v in row))

    checks = [
        Check(
            "CS=1 drops sharply from 1024 to 2048 bins "
            "(shared memory caps resident blocks, paper §IV-E)",
            data[(512, 1)][2048] < 0.6 * data[(512, 1)][1024]
            and data[(128, 1)][4096] < 0.6 * data[(128, 1)][1024],
        ),
        Check(
            "clustering recovers the large-Nbins drop",
            data[(512, 2)][2048] > 1.5 * data[(512, 1)][2048]
            and data[(128, 4)][4096] > 1.5 * data[(128, 1)][4096],
        ),
        Check(
            "block 128: CS=4 is optimal-or-tied at 4096 bins "
            "(paper: CS=4 for block 128)",
            data[(128, 4)][4096]
            >= max(data[(128, cs)][4096] for cs in (1, 2, 8)) * 0.999,
        ),
        Check(
            "block 512: CS=2 beats CS=1 at 2048 bins "
            "(paper: CS=2 for block 512)",
            data[(512, 2)][2048] > data[(512, 1)][2048],
        ),
    ]
    return table, checks
