"""Tables IV and V — memory latency and throughput."""

from __future__ import annotations

from typing import List, Tuple

from repro.arch import get_device
from repro.core.checks import Check, approx, ordered, ratio_between
from repro.core.context import RunContext
from repro.core.registry import register
from repro.core.tables import Table
from repro.memory import measure_latencies, measure_throughputs
from repro.memory.throughput import MemoryThroughputModel

#: the paper's column order for Tables IV/V
_PAPER_ORDER = ("RTX4090", "A100", "H800")


@register(
    "table04_mem_latency",
    "Table IV",
    "P-chase latency (clock cycles) of L1, shared, L2 and global memory",
)
def table04(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order(*_PAPER_ORDER)
    # Chains stay sequential (seed=None): the over-L2 global probe is
    # a transient measurement (iters ≪ chain length), and only the
    # sequential order reproduces the paper's all-miss capacity
    # behaviour — a random permutation mostly revisits the resident
    # 1/overfill of the array and reads like an L2 hit.  Seeded chain
    # orders are exercised by the scalar/vectorized equivalence suite.
    results = {
        name: measure_latencies(get_device(name), fast=ctx.fast)
        for name in devices
    }
    table = Table("Table IV: latency clocks of memory scopes",
                  ["Type", *devices])
    for level in ("L1 Cache", "Shared", "L2 Cache", "Global"):
        table.add_row(level, *(results[d][level] for d in devices))

    checks: List[Check] = []
    for d in devices:
        r = results[d]
        checks.append(ordered(
            f"{d}: shared < L1 < L2 < global",
            [r["Shared"], r["L1 Cache"], r["L2 Cache"], r["Global"]],
            strict=True,
        ))
    if ctx.has(*_PAPER_ORDER):
        l2_over_l1 = sum(
            results[d]["L2 Cache"] / results[d]["L1 Cache"]
            for d in _PAPER_ORDER
        ) / 3
        glob_over_l2 = sum(
            results[d]["Global"] / results[d]["L2 Cache"]
            for d in _PAPER_ORDER
        ) / 3
        checks.append(approx(
            "average L2 latency ≈ 6.5× L1 (paper §IV-B)", l2_over_l1,
            6.5, rel_tol=0.15,
        ))
        checks.append(approx(
            "average global latency ≈ 1.9× L2 (paper §IV-B)",
            glob_over_l2, 1.9, rel_tol=0.15,
        ))
        checks.append(Check(
            "HBM2e devices (A100, H800) have lower global latency than "
            "GDDR6X (RTX4090)",
            max(results["A100"]["Global"], results["H800"]["Global"])
            < results["RTX4090"]["Global"],
        ))
    return table, checks


@register(
    "table05_mem_throughput",
    "Table V",
    "Sustained throughput at each memory level per access pattern",
)
def table05(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order(*_PAPER_ORDER)
    results = {name: measure_throughputs(get_device(name))
               for name in devices}
    metrics = list(results[devices[0]].keys())
    table = Table("Table V: memory throughput", ["Metric", *devices])
    for m in metrics:
        table.add_row(m, *(results[d][m] for d in devices))

    checks: List[Check] = []
    for d in devices:
        r = results[d]
        # Table V itself has H800 scalar FP32 a hair above v4 (125.8 vs
        # 124.1) — the claim is "vectorised is never materially worse".
        checks.append(Check(
            f"{d}: vectorised FP32.v4 ≥ 0.95× scalar FP32 at L1",
            r["L1 FP32.v4 (byte/clk/SM)"]
            >= 0.95 * r["L1 FP32 (byte/clk/SM)"],
        ))
    for d in ctx.select("RTX4090", "H800"):
        checks.append(Check(
            f"{d}: FP64 L1 probe collapses to the FP64 ALU "
            "(paper §IV-B)",
            results[d]["L1 FP64 (byte/clk/SM)"] <= 16.5,
        ))
    if ctx.has("A100"):
        checks.append(Check(
            "A100 FP64 L1 probe is NOT ALU-limited",
            results["A100"]["L1 FP64 (byte/clk/SM)"] > 100,
        ))
    if ctx.has("H800"):
        h800_l2 = max(results["H800"]["L2 FP32 (byte/clk)"],
                      results["H800"]["L2 FP32.v4 (byte/clk)"])
        if ctx.has("RTX4090"):
            checks.append(ratio_between(
                "H800 L2 ≈ 2.6× RTX4090 L2 (paper §IV-B)",
                h800_l2, results["RTX4090"]["L2 FP32.v4 (byte/clk)"],
                2.2, 3.0,
            ))
        if ctx.has("A100"):
            checks.append(ratio_between(
                "H800 L2 ≈ 2.2× A100 L2 (paper §IV-B)",
                h800_l2, results["A100"]["L2 FP32.v4 (byte/clk)"],
                1.9, 2.6,
            ))
    for d, expect in (("RTX4090", 4.67), ("A100", 2.01),
                      ("H800", 4.23)):
        if ctx.has(d):
            checks.append(approx(
                f"{d}: L2-vs-global ratio ≈ {expect}×",
                results[d]["L2 vs. Global"], expect, rel_tol=0.15,
            ))
    for d, pct in (("RTX4090", 92), ("A100", 90), ("H800", 91)):
        if ctx.has(d):
            checks.append(approx(
                f"{d}: global throughput ≈ {pct}% of theoretical peak",
                results[d]["% of peak"], pct, rel_tol=0.05,
            ))
    return table, checks


@register(
    "table05x_shared_parity",
    "Table V (shared row)",
    "Shared-memory throughput parity across the three devices",
)
def table05_shared(ctx: RunContext) -> Tuple[Table, List[Check]]:
    devices = ctx.device_order(*_PAPER_ORDER)
    table = Table("Shared-memory throughput (byte/clk/SM)",
                  ["Device", "Throughput"])
    vals = {}
    for d in devices:
        v = MemoryThroughputModel(get_device(d)).shared().value
        vals[d] = v
        table.add_row(d, v)
    spread = max(vals.values()) - min(vals.values())
    return table, [Check(
        "all devices sustain ≈128 byte/clk/SM of shared memory",
        spread < 2.0 and min(vals.values()) > 126.0,
        detail=str(vals),
    )]
