"""Extension experiments — beyond the paper's published artefacts.

The paper names several things it does not measure (TMA, numeric
behaviour, FP8 accuracy, DPX at application level).  These experiments
fill those gaps with the same harness discipline: regenerate, check,
report.  They carry an ``ext_`` prefix so the paper artefacts stay
clearly separated.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.arch import get_device
from repro.core.checks import Check, approx
from repro.core.context import RunContext
from repro.core.registry import register
from repro.core.tables import Table


@register(
    "ext_tma_vs_cpasync",
    "§III-D2 (extension)",
    "TMA bulk copies vs cp.async: issue-slot savings by tile size",
    devices=("H800",),
)
def ext_tma(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.asynccopy import TmaModel
    from repro.isa.memory_ops import TmaCopy
    h800 = get_device(ctx.pin("H800"))
    m = TmaModel(h800)
    table = Table(
        "TMA vs cp.async on H800",
        ["tile KiB", "TMA cycles", "one-shot B/clk",
         "sustained B/clk", "cp.async instrs", "issue reduction"],
    )
    rows = {}
    for kib in (1, 4, 16, 64):
        t = m.transfer(TmaCopy(tile_bytes=kib * 1024))
        instrs = m.cp_async_equivalent_instructions(kib * 1024)
        rows[kib] = (t, instrs)
        table.add_row(kib, round(t.cycles, 1),
                      round(t.bytes_per_clk, 1),
                      round(t.sustained_bytes_per_clk, 1),
                      instrs, f"{instrs}x")
    checks = [
        Check("TMA always issues exactly one instruction",
              all(t.issuing_instructions == 1
                  for t, _ in rows.values())),
        Check("issue savings grow linearly with tile size",
              rows[64][1] == 64 * rows[1][1]),
        Check("pipelined large tiles approach the streaming width",
              rows[64][0].sustained_bytes_per_clk
              > 0.9 * h800.mem_widths.l1_bytes_per_clk_sm),
        Check("small one-shot tiles are overhead-dominated",
              rows[1][0].bytes_per_clk
              < 0.6 * rows[64][0].bytes_per_clk),
    ]
    return table, checks


@register(
    "ext_cache_detection",
    "§III-A (extension)",
    "P-chase sweeps recover the cache geometry (methodology check)",
    # the capacity sweep mixes pow2 and 1.5×pow2 sizes, so A100's
    # 192 KiB L1 resolves too; any present device with a registered
    # cache geometry will do (the lineage/Blackwell packs included)
    devices_any=("RTX4090", "A100", "H800", "B200", "V100"),
)
def ext_cache_detection(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.memory import CacheProbe
    table = Table(
        "Detected vs configured cache parameters",
        ["Device", "parameter", "detected", "configured"],
    )
    checks = []
    for dev_name in ctx.select("RTX4090", "A100", "H800", "B200",
                               "V100"):
        dev = get_device(dev_name)
        # the default steady-state chase engine makes every point
        # cheap in-process; no need for the process-pool fan-out here
        probe = CacheProbe(dev, fidelity=ctx.fidelity)
        params = probe.detect()
        geo = dev.cache
        pairs = [
            ("L1 capacity (KiB)", params.l1_capacity_bytes // 1024,
             geo.l1_size_kib),
            ("fill sector (B)", params.l1_sector_bytes,
             geo.sector_bytes),
            ("L1 ways", params.l1_ways, geo.l1_associativity),
        ]
        for name, detected, configured in pairs:
            table.add_row(dev_name, name, detected, configured)
            checks.append(Check(
                f"{dev_name}: detected {name} matches ground truth",
                detected == configured,
                detail=f"{detected} vs {configured}",
            ))
    return table, checks


@register(
    "ext_dpx_applications",
    "§III-D1 (extension)",
    "DPX at application level: alignment + Floyd-Warshall speedups",
)
def ext_dpx_apps(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.dp import FloydWarshall, SmithWaterman, \
        estimate_kernel_time
    devices = ctx.device_order("A100", "RTX4090", "H800")
    with_speedup = ctx.has("H800", "A100")
    rng = np.random.default_rng(ctx.seed)
    bases = np.array(list("ACGT"))
    a = "".join(rng.choice(bases, 64))
    b = "".join(rng.choice(bases, 64))
    sw = SmithWaterman().align(a, b)
    fw = FloydWarshall().run(
        FloydWarshall.from_edges(
            32, [(int(u), int(v), int(w)) for u, v, w in
                 zip(rng.integers(0, 32, 100),
                     rng.integers(0, 32, 100),
                     rng.integers(1, 9, 100))]))

    table = Table(
        "DP kernels on DPX: estimated time (us)",
        ["kernel", "DPX calls", *devices]
        + (["H800 vs A100"] if with_speedup else []),
    )
    speedups = {}
    for name, calls, fn in (
        ("Smith-Waterman 64x64", sw.dpx_calls, "__viaddmax_s32_relu"),
        ("Floyd-Warshall n=32", fw.dpx_calls, "__viaddmin_s32"),
    ):
        times = {d: estimate_kernel_time(get_device(d), calls,
                                         function_name=fn).seconds
                 for d in devices}
        extra = []
        if with_speedup:
            s = times["A100"] / times["H800"]
            speedups[name] = s
            extra = [f"{s:.1f}x"]
        table.add_row(name, calls,
                      *(round(times[d] * 1e6, 4) for d in devices),
                      *extra)
    checks = []
    if with_speedup:
        checks += [
            Check("H800 leads on the relu-fused alignment kernel",
                  speedups["Smith-Waterman 64x64"] > 2.5),
            Check("H800 leads on the add-min relaxation kernel",
                  speedups["Floyd-Warshall n=32"] > 1.5),
        ]
    checks.append(Check("alignment issues 2 DPX calls per cell",
                        sw.dpx_calls == 2 * sw.cells))
    return table, checks


@register(
    "ext_fp8_accuracy",
    "§III-C (extension)",
    "What FP8 costs in accuracy through real layers",
)
def ext_fp8_accuracy(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.te import Precision
    from repro.te.accuracy import layer_accuracy, linear_accuracy
    table = Table(
        "Relative RMS error vs FP64 reference",
        ["module", "precision", "rel RMS", "rel max"],
    )
    lin = {r.precision: r for r in linear_accuracy(seed=ctx.seed)}
    for p, r in lin.items():
        table.add_row("Linear 256x256", p.name, f"{r.rel_rms:.2e}",
                      f"{r.rel_max:.2e}")
    layer = layer_accuracy(seed=ctx.seed)
    table.add_row("TransformerLayer", "FP8",
                  f"{layer[Precision.FP8].rel_rms:.2e}",
                  f"{layer[Precision.FP8].rel_max:.2e}")
    checks = [
        Check("error orders FP16 < BF16 < FP8",
              lin[Precision.FP16].rel_rms < lin[Precision.BF16].rel_rms
              < lin[Precision.FP8].rel_rms),
        Check("FP8 Linear stays under 5% relative RMS",
              lin[Precision.FP8].rel_rms < 0.05),
        Check("full-layer FP8 error stays under 5% (high-precision "
              "norms/attention dampen it)",
              layer[Precision.FP8].rel_rms < 0.05),
    ]
    return table, checks


@register(
    "ext_tma_pipeline",
    "§III-D2 (extension)",
    "Predicted TmaPipe variant of the async-copy study (H800)",
    devices=("H800",),
)
def ext_tma_pipeline(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.asynccopy import AsyncCopyConfig, CopyVariant, \
        TiledMatmulModel
    m = TiledMatmulModel(get_device(ctx.pin("H800")))
    table = Table(
        "globalToShmemAsyncCopy with a TMA pipeline (GFLOP/s, H800)",
        ["block", "variant", "1", "4", "16", "32"],
    )
    grid = {}
    for b in (8, 16, 32):
        for variant in (CopyVariant.TMA, CopyVariant.ASYNC,
                        CopyVariant.SYNC):
            row = [m.throughput_gflops(AsyncCopyConfig(b, nb, variant))
                   for nb in (1, 4, 16, 32)]
            grid[(b, variant)] = row
            table.add_row(f"{b}x{b}", variant.value,
                          *(round(v) for v in row))
    checks = [
        Check("TMA never loses to cp.async at any point",
              all(t >= a * 0.999
                  for b in (8, 16, 32)
                  for t, a in zip(grid[(b, CopyVariant.TMA)],
                                  grid[(b, CopyVariant.ASYNC)]))),
        Check("TMA's relative gain is largest at small blocks "
              "(issue-stream relief matters most there)",
              grid[(8, CopyVariant.TMA)][0]
              / grid[(8, CopyVariant.ASYNC)][0]
              > grid[(32, CopyVariant.TMA)][0]
              / grid[(32, CopyVariant.ASYNC)][0]),
        Check("at 32×32 TMA recovers the ground cp.async loses to "
              "SyncShare",
              grid[(32, CopyVariant.TMA)][3]
              >= grid[(32, CopyVariant.SYNC)][3] * 0.999),
    ]
    return table, checks


@register(
    "ext_mma_full_matrix",
    "Table VII (extension)",
    "The complete mma type matrix: BF16, INT4, binary, FP64 included",
)
def ext_mma_full(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.isa.dtypes import DType
    from repro.isa.lowering import UnsupportedInstruction
    from repro.isa.mma import MmaInstruction, mma_shapes
    from repro.tensorcore import TensorCoreTimingModel
    pairs = [
        (DType.BF16, DType.FP32),
        (DType.FP64, DType.FP64),
        (DType.INT4, DType.INT32),
        (DType.BIN1, DType.INT32),
    ]
    devices = ctx.device_order("A100", "RTX4090", "H800")
    table = Table(
        "Extended mma matrix: dense throughput (TFLOPS/TOPS)",
        ["A/B", "C/D", "Shape", *devices],
    )
    data = {}
    for ab, cd in pairs:
        shape = mma_shapes(ab)[-1]
        cells = []
        for d in devices:
            dev = get_device(d)
            try:
                t = TensorCoreTimingModel(dev).mma(
                    MmaInstruction(ab, cd, shape))
                thpt = t.throughput_tflops()
            except (KeyError, UnsupportedInstruction):
                # no such unit on this device (FP64 TC on Ada) or the
                # instruction predates the architecture (Volta)
                cells.append("×")
                continue
            data[(ab, d)] = t
            cells.append(round(thpt, 1))
        table.add_row(ab.paper_label, cd.paper_label,
                      shape.modifier, *cells)
    fp16_rates = {
        d: TensorCoreTimingModel(get_device(d)).mma(
            MmaInstruction(DType.FP16, DType.FP32,
                           mma_shapes(DType.FP16)[-1])
        ).throughput_tflops()
        for d in devices if d != "RTX4090"  # Ada halves FP32-acc
    }
    checks: List[Check] = []
    if ctx.has("A100", "H800"):
        checks.append(Check(
            "BF16 matches the FP16 (fp32-acc) rate on A100/H800",
            all(abs(data[(DType.BF16, d)].throughput_tflops()
                    / fp16_rates[d] - 1) < 1e-6
                for d in ("A100", "H800"))))
    if ctx.has("A100"):
        checks.append(Check(
            "binary runs at 8× the INT8 rate class (A100)",
            data[(DType.BIN1, "A100")].throughput_tflops() > 4000))
    if ctx.has("A100", "RTX4090"):
        checks.append(Check(
            "INT4 stays on tensor cores on Ampere/Ada",
            data[(DType.INT4, "A100")].on_tensor_core
            and data[(DType.INT4, "RTX4090")].on_tensor_core))
    if ctx.has("H800", "A100"):
        checks.append(Check(
            "INT4 collapses onto CUDA cores on Hopper "
            "(orders of magnitude slower)",
            not data[(DType.INT4, "H800")].on_tensor_core
            and data[(DType.INT4, "H800")].throughput_tflops()
            < 0.05 * data[(DType.INT4, "A100")].throughput_tflops()))
    if ctx.has("A100", "RTX4090", "H800"):
        checks.append(Check(
            "FP64 tensor cores: A100 healthy, H800 fused down, "
            "Ada absent",
            (DType.FP64, "RTX4090") not in data
            and data[(DType.FP64, "A100")].throughput_tflops() > 15
            and data[(DType.FP64, "H800")].throughput_tflops() < 2))
    return table, checks


@register(
    "ext_coalescing",
    "§III-A (extension)",
    "Warp coalescing: efficiency vs stride and alignment",
)
def ext_coalescing(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.memory.coalescing import efficiency_vs_stride, \
        strided_access
    strides = [4, 8, 16, 32, 64, 128]
    curve = efficiency_vs_stride(strides)
    table = Table(
        "Global-load efficiency vs stride (FP32 lanes)",
        ["stride B", "efficiency", "sectors/warp"],
    )
    for s in strides:
        table.add_row(s, round(curve[s], 3),
                      strided_access(s).sectors)
    mis = strided_access(4, base=2)
    checks = [
        Check("unit stride is perfectly coalesced", curve[4] == 1.0),
        Check("efficiency floors at 4/32 once each lane owns a sector",
              curve[32] == curve[128] == 4 / 32),
        Check("misalignment costs one extra sector",
              mis.sectors == 5 and mis.efficiency < 1.0),
    ]
    return table, checks


@register(
    "ext_trace_simulator",
    "§II (extension)",
    "Trace-driven SM simulator validated against the pipe models",
    devices=("H800",),
)
def ext_trace_sim(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.isa import MatrixShape, MmaInstruction
    from repro.isa.dtypes import DType
    from repro.tensorcore.timing import MmaTiming
    from repro.trace import SmSimulator, TraceBuilder
    h800 = get_device(ctx.pin("H800"))
    instr = MmaInstruction(DType.FP16, DType.FP32,
                           MatrixShape(16, 8, 16))
    timing = MmaTiming(h800, instr)
    sim = SmSimulator()
    n = 96
    chain = sim.run([TraceBuilder.mma_accumulate_loop(h800, instr, n)])
    streams = sim.run([
        TraceBuilder.mma_independent(h800, instr, n, accumulators=8)
        for _ in range(4)
    ])
    sim_lat = chain.cycles / n
    sim_tflops = (4 * n * instr.flops / streams.cycles
                  * h800.num_sms * h800.clocks.observed_hz / 1e12)

    table = Table(
        "Cycle simulator vs analytical model (H800, mma.m16n8k16)",
        ["quantity", "simulator", "analytical model"],
    )
    table.add_row("dependent-chain latency (clk)", round(sim_lat, 2),
                  round(timing.latency_clk, 2))
    table.add_row("4-warp throughput (TFLOPS)", round(sim_tflops, 1),
                  round(timing.throughput_tflops(), 1))
    checks = [
        approx("simulated chain latency matches the calibrated "
               "latency", sim_lat, timing.latency_clk, rel_tol=0.05),
        approx("simulated saturated throughput matches Table VII",
               sim_tflops, timing.throughput_tflops(), rel_tol=0.10),
    ]
    return table, checks


@register(
    "ext_llm_batch_sweep",
    "§III-C3 (extension)",
    "LLM throughput vs batch size: when does FP8 start paying?",
    devices=("H800",),
)
def ext_llm_batch(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.te import LLAMA_MODELS, LlmInferenceModel, Precision
    m = LlmInferenceModel(get_device(ctx.pin("H800")))
    spec = LLAMA_MODELS["llama-2-7B"]
    batches = (1, 2, 4, 8, 16, 32, 64)
    table = Table(
        "llama-2-7B on H800: tokens/s vs batch",
        ["batch", "BF16", "FP8", "FP8/BF16"],
    )
    series = {}
    for p in (Precision.BF16, Precision.FP8):
        series[p] = [
            m.estimate(spec, p, batch=b).tokens_per_second
            for b in batches
        ]
    for i, b in enumerate(batches):
        bf, f8 = series[Precision.BF16][i], series[Precision.FP8][i]
        table.add_row(b, round(bf, 1), round(f8, 1),
                      round(f8 / bf, 3))
    checks = [
        Check("throughput grows with batch (decode streams weights "
              "once per step regardless of batch)",
              all(a < b for a, b in zip(series[Precision.BF16],
                                        series[Precision.BF16][1:]))),
        Check("FP8 gains relative ground as batch grows "
              "(prefill becomes compute-bound)",
              series[Precision.FP8][-1] / series[Precision.BF16][-1]
              > series[Precision.FP8][0]
              / series[Precision.BF16][0]),
        Check("at the paper's batch 8, FP8 still does not win",
              series[Precision.FP8][3]
              <= series[Precision.BF16][3] * 1.1),
    ]
    return table, checks


@register(
    "ext_attention_scaling",
    "§III-C2 (extension)",
    "Flash-attention cost scaling: quadratic compute vs linear IO",
    devices=("H800",),
)
def ext_attention(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.te import CostModel, DotProductAttention, Precision
    cm = CostModel(get_device(ctx.pin("H800")))
    att = DotProductAttention(num_heads=32, head_dim=128)
    seqs = (512, 1024, 2048, 4096, 8192)
    table = Table(
        "DotProductAttention (32 heads × 128) latency vs sequence",
        ["seq", "ms", "ms per token"],
    )
    times = {}
    for s in seqs:
        sec = sum(o.seconds for o in att.op_costs(
            cm, tokens=4 * s, precision=Precision.FP16, batch=4))
        times[s] = sec
        table.add_row(s, round(1e3 * sec, 3),
                      round(1e6 * sec / (4 * s), 3))
    checks = [
        Check("long-sequence attention scales ~quadratically "
              "(compute-bound regime)",
              3.0 < times[8192] / times[4096] < 4.5),
        Check("short sequences scale sub-quadratically "
              "(IO + launch overhead dilute the s² term)",
              times[1024] / times[512] < 3.5),
    ]
    return table, checks


@register(
    "ext_roofline",
    "§I/§II (extension)",
    "Roofline summary: where the paper's workloads sit per device",
)
def ext_roofline(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.sm import BlockConfig, KernelSpec, Roofline
    devices = ctx.device_order("A100", "RTX4090", "H800")
    workloads = {
        "LLM decode (7B bf16, b=8)": KernelSpec(
            name="decode", block=BlockConfig(threads=256),
            num_blocks=1024, tc_flops_per_thread=1000.0,
            dram_bytes_per_thread=1000.0, tc_precision="bf16"),
        "GEMM 8192^3 fp16": KernelSpec(
            name="gemm", block=BlockConfig(threads=256),
            num_blocks=1024, tc_flops_per_thread=2.7e6,
            dram_bytes_per_thread=2000.0),
        "histogram": KernelSpec(
            name="hist", block=BlockConfig(threads=128),
            num_blocks=1024, flops_per_thread=4.0,
            dram_bytes_per_thread=4.0),
    }
    table = Table(
        "Roofline placement (FP16 tensor roof)",
        ["workload", "FLOP/B"] + [f"{d} bound" for d in devices],
    )
    bounds = {}
    ridge = {}
    for d in devices:
        ridge[d] = Roofline(get_device(d), "fp16").ridge_point
    for name, spec in workloads.items():
        cells = []
        for d in devices:
            p = Roofline(get_device(d), "fp16").place(spec)
            bounds[(name, d)] = p.bound
            cells.append(p.bound)
        table.add_row(name, round(spec.arithmetic_intensity, 1),
                      *cells)
    checks = [
        Check("LLM decode is memory-bound everywhere "
              "(the Table XII story)",
              all(bounds[("LLM decode (7B bf16, b=8)", d)] == "memory"
                  for d in devices)),
        Check("the big GEMM is compute-bound everywhere "
              "(the Table VIII story)",
              all(bounds[("GEMM 8192^3 fp16", d)] == "compute"
                  for d in devices)),
    ]
    if ctx.has("A100", "RTX4090", "H800"):
        checks.append(Check(
            "H800 has the highest FP16 ridge point "
            "(most bandwidth-hungry balance)",
            ridge["H800"] > max(ridge["A100"], ridge["RTX4090"])))
    return table, checks


@register(
    "ext_numeric_probes",
    "Fasi et al. (extension)",
    "Tensor-core numeric behaviour probes",
)
def ext_numeric_probes(ctx: RunContext) -> Tuple[Table, List[Check]]:
    from repro.tensorcore.numerics_study import run_all_probes
    table = Table("Numeric behaviour of the modelled tensor cores",
                  ["probe", "behaviour", "detail"])
    checks = []
    for r in run_all_probes():
        table.add_row(r.name, r.behaviour, r.detail)
        checks.append(Check(f"probe: {r.name}", r.passed,
                            detail=r.detail))
    return table, checks
