"""Shape checks — machine-checkable forms of the paper's findings.

Rather than asserting absolute numbers (our substrate is a simulator,
not the authors' testbed), each experiment verifies the *qualitative*
result: who wins, by roughly what factor, where a crossover falls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Check", "approx", "ordered", "ratio_between"]


@dataclass(frozen=True)
class Check:
    """One verified (or falsified) claim."""

    description: str
    passed: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        extra = f"  [{self.detail}]" if self.detail else ""
        return f"[{mark}] {self.description}{extra}"


def approx(description: str, value: float, expected: float,
           rel_tol: float = 0.25) -> Check:
    """``value`` within ``rel_tol`` of ``expected``."""
    if expected == 0:
        ok = abs(value) < 1e-12
    else:
        ok = abs(value - expected) / abs(expected) <= rel_tol
    return Check(
        description, ok,
        detail=f"got {value:.4g}, expected {expected:.4g} ±{rel_tol:.0%}",
    )


def ordered(description: str, values: Sequence[float],
            *, strict: bool = False, descending: bool = False) -> Check:
    """Values are monotonically ordered."""
    vs = list(values)
    if descending:
        vs = vs[::-1]
    pairs = zip(vs, vs[1:])
    ok = all((a < b) if strict else (a <= b) for a, b in pairs)
    return Check(description, ok,
                 detail=", ".join(f"{v:.4g}" for v in values))


def ratio_between(description: str, numerator: float,
                  denominator: float, lo: float, hi: float) -> Check:
    """``numerator / denominator`` lies in [lo, hi]."""
    if denominator == 0:
        return Check(description, False, detail="zero denominator")
    r = numerator / denominator
    return Check(description, lo <= r <= hi,
                 detail=f"ratio {r:.3g}, expected [{lo:g}, {hi:g}]")
