"""The experiment registry.

An :class:`Experiment` bundles an artefact id (``table04_mem_latency``),
the paper reference, a builder that produces the result table and the
shape checks that verify the paper's findings on it.

Builders are **context-parameterized**: they take a
:class:`~repro.core.context.RunContext` and draw their device list,
seed and fidelity tier from it instead of hardcoding the paper's
testbed.  Zero-argument builders are no longer accepted —
:func:`register` raises a :class:`TypeError` (the adapter shim warned
via ``DeprecationWarning`` for two releases before being removed).
"""

from __future__ import annotations

import difflib
import inspect
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.checks import Check
from repro.core.context import DEFAULT_CONTEXT, DeviceNotInContext, \
    RunContext
from repro.core.tables import Table

__all__ = [
    "Experiment",
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
    "supported_experiments",
    "run_experiment",
    "run_all",
]

Builder = Callable[[RunContext], Tuple[Table, List[Check]]]


def _accepts_context(fn: Callable) -> bool:
    """Does ``fn`` take the RunContext positional parameter?"""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):   # builtins, odd callables
        return False
    for p in sig.parameters.values():
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD,
                      p.VAR_POSITIONAL):
            return True
    return False


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run."""

    experiment: "Experiment"
    table: Table
    checks: Tuple[Check, ...]
    context: Optional[RunContext] = None

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        parts = [self.table.render(), ""]
        parts += [c.render() for c in self.checks]
        if self.context is not None and not self.context.is_default:
            parts.append(f"(context: {self.context.token()})")
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """One paper artefact reproduction.

    ``devices`` names the devices the artefact is *pinned* to (the
    paper measured it on exactly those GPUs — the context must provide
    **all** of them); ``devices_any`` is the weaker "any of" mode: the
    builder adapts to whichever of the named devices the context
    offers, so one present device suffices.  ``None`` for both means
    the builder sweeps whatever the context provides.
    """

    name: str
    paper_ref: str        # e.g. "Table IV" / "Fig. 8"
    description: str
    builder: Builder
    devices: Optional[Tuple[str, ...]] = None
    devices_any: Optional[Tuple[str, ...]] = None

    def supports(self, context: RunContext) -> bool:
        """Can this experiment run under ``context``'s device sweep?"""
        if self.devices and not context.has(*self.devices):
            return False
        if self.devices_any and not any(
                context.has(d) for d in self.devices_any):
            return False
        return True

    def pin_note(self) -> str:
        """Human-readable device requirement, for skip messages."""
        parts = []
        if self.devices:
            parts.append(f"pinned to {', '.join(self.devices)}")
        if self.devices_any:
            parts.append(f"needs any of "
                         f"{', '.join(self.devices_any)}")
        return "; ".join(parts) if parts else "no device pin"

    def run(self, context: Optional[RunContext] = None) \
            -> ExperimentResult:
        ctx = DEFAULT_CONTEXT if context is None else context
        if not self.supports(ctx):
            raise DeviceNotInContext(
                f"{self.name} is {self.pin_note()} but the context "
                f"only provides {list(ctx.devices)}"
            )
        t0 = time.perf_counter()
        table, checks = self.builder(ctx)
        ctx.emit(self.name, time.perf_counter() - t0)
        return ExperimentResult(self, table, tuple(checks), context=ctx)


_REGISTRY: Dict[str, Experiment] = {}


def register(name: str, paper_ref: str, description: str, *,
             devices: Optional[Tuple[str, ...]] = None,
             devices_any: Optional[Tuple[str, ...]] = None):
    """Decorator registering a builder function as an experiment.

    The builder must accept a :class:`RunContext` as its positional
    parameter; registering a zero-argument builder raises
    :class:`TypeError` (the back-compat shim was removed after its
    deprecation period).  ``devices`` requires every named device in
    the context; ``devices_any`` requires at least one (for builders
    that adapt their sweep).
    """

    def deco(fn: Builder):
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        if not _accepts_context(fn):
            raise TypeError(
                f"experiment {name!r} registered a zero-argument "
                "builder; builders must take a RunContext "
                "(the legacy zero-arg shim has been removed)"
            )
        _REGISTRY[name] = Experiment(
            name=name, paper_ref=paper_ref,
            description=description, builder=fn,
            devices=tuple(d.upper() for d in devices) if devices
            else None,
            devices_any=tuple(d.upper() for d in devices_any)
            if devices_any else None,
        )
        return fn

    return deco


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(
            name, list_experiments(), n=3, cutoff=0.4)
        hint = (f"did you mean {' or '.join(repr(c) for c in close)}?"
                if close else
                "see `hopperdissect list` for the registered names")
        raise KeyError(
            f"unknown experiment {name!r}; {hint}"
        ) from None


def list_experiments() -> List[str]:
    return sorted(_REGISTRY)


def supported_experiments(context: RunContext) -> List[str]:
    """Registered experiments runnable under ``context``'s devices."""
    return [n for n in list_experiments()
            if _REGISTRY[n].supports(context)]


def run_experiment(name: str,
                   context: Optional[RunContext] = None) \
        -> ExperimentResult:
    return get_experiment(name).run(context)


def run_all(*, jobs: int = 1, cache=None,
            context: Optional[RunContext] = None) \
        -> Dict[str, ExperimentResult]:
    """Run every registered experiment (the EXPERIMENTS.md generator).

    ``jobs > 1`` fans the builders out over a process pool and
    ``cache`` (a :class:`repro.perf.ResultCache`) serves previously
    computed results; both are wall-time-only knobs — the returned
    mapping is identical to the serial uncached run, in
    :func:`list_experiments` order.  A restrictive ``context`` drops
    experiments pinned to devices outside its sweep.
    """
    ctx = DEFAULT_CONTEXT if context is None else context
    names = supported_experiments(ctx)
    if jobs <= 1 and cache is None:
        return {name: run_experiment(name, ctx) for name in names}
    from repro.perf.runner import run_experiments

    return run_experiments(names, jobs=jobs, cache=cache,
                           context=ctx).results
