"""The experiment registry.

An :class:`Experiment` bundles an artefact id (``table04_mem_latency``),
the paper reference, a builder that produces the result table and the
shape checks that verify the paper's findings on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.checks import Check
from repro.core.tables import Table

__all__ = [
    "Experiment",
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "run_all",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment run."""

    experiment: "Experiment"
    table: Table
    checks: Tuple[Check, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        parts = [self.table.render(), ""]
        parts += [c.render() for c in self.checks]
        return "\n".join(parts)


@dataclass(frozen=True)
class Experiment:
    """One paper artefact reproduction."""

    name: str
    paper_ref: str        # e.g. "Table IV" / "Fig. 8"
    description: str
    builder: Callable[[], Tuple[Table, List[Check]]]

    def run(self) -> ExperimentResult:
        table, checks = self.builder()
        return ExperimentResult(self, table, tuple(checks))


_REGISTRY: Dict[str, Experiment] = {}


def register(name: str, paper_ref: str, description: str):
    """Decorator registering a builder function as an experiment."""

    def deco(fn: Callable[[], Tuple[Table, List[Check]]]):
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        _REGISTRY[name] = Experiment(
            name=name, paper_ref=paper_ref,
            description=description, builder=fn,
        )
        return fn

    return deco


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {list_experiments()}"
        ) from None


def list_experiments() -> List[str]:
    return sorted(_REGISTRY)


def run_experiment(name: str) -> ExperimentResult:
    return get_experiment(name).run()


def run_all(*, jobs: int = 1, cache=None) -> Dict[str, ExperimentResult]:
    """Run every registered experiment (the EXPERIMENTS.md generator).

    ``jobs > 1`` fans the builders out over a process pool and
    ``cache`` (a :class:`repro.perf.ResultCache`) serves previously
    computed results; both are wall-time-only knobs — the returned
    mapping is identical to the serial uncached run, in
    :func:`list_experiments` order.
    """
    if jobs <= 1 and cache is None:
        return {name: run_experiment(name) for name in list_experiments()}
    from repro.perf.runner import run_experiments

    return run_experiments(jobs=jobs, cache=cache).results
