"""Tensor-level FP8 quantisation — the Transformer-Engine recipe.

The paper (§III-C1) describes how TE maps an FP16/FP32 tensor onto FP8:
it takes the running absolute maximum of the tensor as the scaling
factor, divides the tensor by the scale so the data fits the FP8
dynamic range, performs the FP8 matmul, then multiplies the result back.
This module implements exactly that recipe on top of the bit-accurate
codecs in :mod:`repro.numerics.formats` and is what
:class:`repro.te.Linear` uses under FP8 autocast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.formats import E4M3, FloatFormat

__all__ = [
    "QuantizedTensor",
    "amax_scale",
    "quantize_fp8",
    "dequantize_fp8",
    "quantization_error",
]


def amax_scale(x: np.ndarray, fmt: FloatFormat = E4M3,
               margin: float = 0.0) -> float:
    """Scaling factor mapping tensor ``x`` into ``fmt``'s finite range.

    ``scale = amax / (max_finite * 2^-margin)``; dividing the tensor by
    the scale places its largest magnitude exactly at the format's
    largest finite value (optionally backed off by ``margin`` power-of-
    two steps, TE's ``margin`` knob for headroom against amax staleness).
    """
    amax = float(np.max(np.abs(x))) if np.size(x) else 0.0
    if amax == 0.0 or not np.isfinite(amax):
        return 1.0
    return amax / (fmt.max_finite * 2.0 ** (-margin))


@dataclass(frozen=True)
class QuantizedTensor:
    """An FP8-grid tensor plus the scale that restores magnitudes.

    ``data`` holds values already rounded onto the FP8 grid (in float64
    carrier precision); ``scale`` satisfies ``original ≈ data * scale``.
    """

    data: np.ndarray
    scale: float
    fmt: FloatFormat

    def dequantize(self) -> np.ndarray:
        return self.data * self.scale

    @property
    def nbytes(self) -> float:
        """Storage footprint in the quantised format."""
        return self.data.size * self.fmt.storage_bytes


def quantize_fp8(x: np.ndarray, fmt: FloatFormat = E4M3,
                 scale: float | None = None,
                 margin: float = 0.0) -> QuantizedTensor:
    """Quantise ``x`` to FP8 with amax scaling (TE recipe).

    The returned tensor's ``data`` lies on the FP8 grid; multiply by
    ``scale`` to recover the original magnitudes.
    """
    arr = np.asarray(x, dtype=np.float64)
    if scale is None:
        scale = amax_scale(arr, fmt, margin)
    if scale <= 0 or not np.isfinite(scale):
        raise ValueError("scale must be positive and finite")
    return QuantizedTensor(data=fmt.quantize(arr / scale), scale=scale,
                           fmt=fmt)


def dequantize_fp8(qt: QuantizedTensor) -> np.ndarray:
    """Inverse of :func:`quantize_fp8` (up to rounding error)."""
    return qt.dequantize()


def quantization_error(x: np.ndarray, fmt: FloatFormat = E4M3,
                       margin: float = 0.0) -> float:
    """Relative RMS error of an FP8 round-trip of ``x``.

    Used by tests and the TE accuracy study: for well-scaled tensors the
    error is bounded by roughly ``fmt.machine_epsilon / sqrt(3)``.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    rt = quantize_fp8(arr, fmt, margin=margin).dequantize()
    denom = float(np.sqrt(np.mean(arr * arr)))
    if denom == 0.0:
        return 0.0
    return float(np.sqrt(np.mean((rt - arr) ** 2))) / denom
