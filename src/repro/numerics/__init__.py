"""Bit-accurate low-precision numerics.

Software implementations of every tensor-core input/accumulator format
the paper exercises: FP16, BF16, TF32, FP8 (both E4M3 and E5M2
variants), INT8 and INT4, plus block quantisation helpers used by the
Transformer-Engine analogue.

The centrepiece is :class:`FloatFormat`, a generic binary
floating-point codec parameterised by exponent/mantissa widths with
round-to-nearest-even, gradual underflow (subnormals), and either
IEEE-style overflow-to-infinity or saturating overflow (FP8-E4M3 in
Transformer Engine saturates).
"""

from __future__ import annotations

from repro.numerics.formats import (
    BF16,
    E4M3,
    E5M2,
    FP16,
    FP32,
    FP64,
    TF32,
    FloatFormat,
    FORMATS,
    get_format,
)
from repro.numerics.integers import (
    IntFormat,
    INT4,
    INT8,
    quantize_int,
    dequantize_int,
)
from repro.numerics.quantize import (
    QuantizedTensor,
    amax_scale,
    quantize_fp8,
    dequantize_fp8,
    quantization_error,
)

__all__ = [
    "FloatFormat",
    "FP64",
    "FP32",
    "FP16",
    "BF16",
    "TF32",
    "E4M3",
    "E5M2",
    "FORMATS",
    "get_format",
    "IntFormat",
    "INT8",
    "INT4",
    "quantize_int",
    "dequantize_int",
    "QuantizedTensor",
    "amax_scale",
    "quantize_fp8",
    "dequantize_fp8",
    "quantization_error",
]
