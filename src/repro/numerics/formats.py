"""Generic binary floating-point codec.

:class:`FloatFormat` models an IEEE-754-style binary format with ``E``
exponent bits and ``M`` explicit mantissa bits.  It supports:

* round-to-nearest-even quantisation of float64 arrays,
* gradual underflow (subnormals),
* overflow either to ±inf (IEEE semantics, e.g. FP16/E5M2) or
  saturation to the largest finite value (the Transformer-Engine
  convention for FP8-E4M3),
* raw bit-pattern encode/decode for the sub-32-bit formats,
* exact unit-in-the-last-place and dynamic-range queries.

All quantisation is *value-exact*: the returned float64 array contains
exactly the values representable in the target format, so downstream
matmuls performed in float64 reproduce the products a real tensor core
would form from those operands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "FloatFormat", "FP64", "FP32", "FP16", "BF16", "TF32",
    "E4M3", "E5M2", "FORMATS", "get_format",
]


@dataclass(frozen=True)
class FloatFormat:
    """A binary floating-point format with 1 sign bit.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"fp16"``.
    exp_bits:
        Width of the biased exponent field.
    man_bits:
        Width of the explicit mantissa (trailing significand) field.
    has_inf:
        Whether the top exponent encodes ±inf/NaN (IEEE style).  When
        False (FP8-E4M3), only the all-ones mantissa of the top exponent
        is NaN and the rest of the top binade encodes finite values.
    saturate_on_overflow:
        Quantise out-of-range values to ±max_finite instead of ±inf.
    storage_bits:
        Bits a stored element occupies (may exceed 1+E+M, e.g. TF32
        occupies 32 bits in memory/registers).
    """

    name: str
    exp_bits: int
    man_bits: int
    has_inf: bool = True
    saturate_on_overflow: bool = False
    storage_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.exp_bits < 2 or self.exp_bits > 11:
            raise ValueError("exp_bits out of supported range [2, 11]")
        if self.man_bits < 0 or self.man_bits > 52:
            raise ValueError("man_bits out of supported range [0, 52]")
        if self.storage_bits is None:
            object.__setattr__(
                self, "storage_bits", 1 + self.exp_bits + self.man_bits
            )

    # -- derived constants -----------------------------------------------

    @property
    def bias(self) -> int:
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a finite normal number."""
        # IEEE formats reserve the top exponent for inf/NaN; E4M3-style
        # formats use it for finite values (except the NaN pattern).
        top = (1 << self.exp_bits) - 1
        return (top - 1 - self.bias) if self.has_inf else (top - self.bias)

    @property
    def emin(self) -> int:
        """Unbiased exponent of the smallest normal number."""
        return 1 - self.bias

    @property
    def max_finite(self) -> float:
        if self.has_inf:
            frac = 2.0 - math.ldexp(1.0, -self.man_bits)
        else:
            # All-ones mantissa in the top binade is NaN, so the largest
            # finite value has mantissa 111...10 (E4M3: 448 = 1.75 * 2^8).
            frac = 2.0 - math.ldexp(2.0, -self.man_bits)
            if self.man_bits == 0:
                # Degenerate: no finite value exists in the top binade.
                return math.ldexp(2.0 - 1.0, self.emax - 1)
        return math.ldexp(frac, self.emax)

    @property
    def min_normal(self) -> float:
        return math.ldexp(1.0, self.emin)

    @property
    def min_subnormal(self) -> float:
        return math.ldexp(1.0, self.emin - self.man_bits)

    @property
    def machine_epsilon(self) -> float:
        return math.ldexp(1.0, -self.man_bits)

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0

    def ulp(self, x: float) -> float:
        """Unit in the last place at magnitude ``x``."""
        ax = abs(float(x))
        if ax == 0.0 or ax < self.min_normal:
            return self.min_subnormal
        e = math.floor(math.log2(ax))
        e = min(max(e, self.emin), self.emax)
        return math.ldexp(1.0, e - self.man_bits)

    # -- quantisation ------------------------------------------------------

    def quantize(self, x: np.ndarray | float) -> np.ndarray:
        """Round ``x`` to the nearest representable value (RNE).

        Returns a float64 array whose every element is exactly
        representable in this format (or ±inf / NaN).
        """
        arr = np.asarray(x, dtype=np.float64)
        out = arr.copy()
        finite = np.isfinite(arr)

        mant, exp = np.frexp(np.where(finite, arr, 0.0))
        # frexp yields mant in [0.5, 1); IEEE convention wants [1, 2).
        exp = exp - 1
        # Clamp the quantisation step to the subnormal step below emin.
        step_exp = np.maximum(exp, self.emin) - self.man_bits
        step = np.ldexp(1.0, step_exp.astype(np.int64))
        with np.errstate(invalid="ignore", over="ignore"):
            q = np.round(arr / step) * step   # np.round is half-to-even

        # Overflow handling.
        over = finite & (np.abs(q) > self.max_finite)
        with np.errstate(invalid="ignore"):
            if self.saturate_on_overflow or not self.has_inf:
                q = np.where(over, np.sign(arr) * self.max_finite, q)
            else:
                q = np.where(over, np.sign(arr) * np.inf, q)

        out = np.where(finite, q, out)
        if not self.has_inf:
            # Formats without inf turn input infinities into NaN
            # (matches the OCP FP8 E4M3 spec) unless saturating.
            inf_mask = np.isinf(arr)
            repl = (np.sign(arr) * self.max_finite
                    if self.saturate_on_overflow else np.nan)
            out = np.where(inf_mask, repl, out)
        return out if out.ndim else out[()]

    def representable(self, x: float) -> bool:
        """True if ``x`` survives a quantisation round-trip unchanged."""
        if math.isnan(x):
            return True
        q = float(self.quantize(x))
        return q == x or (math.isinf(x) and math.isinf(q))

    # -- raw bit patterns --------------------------------------------------

    def to_bits(self, x: np.ndarray | float) -> np.ndarray:
        """Encode already-quantised values to raw bit patterns.

        Only supported for formats that fit in 16 payload bits or fewer
        (FP16, BF16, the FP8s); TF32/FP32/FP64 round-trip through NumPy
        dtypes instead.
        """
        if 1 + self.exp_bits + self.man_bits > 16:
            raise NotImplementedError(
                f"bit-pattern codec supports <=16-bit formats, "
                f"not {self.name}"
            )
        arr = np.atleast_1d(np.asarray(x, dtype=np.float64))
        bits = np.zeros(arr.shape, dtype=np.uint16)
        sign = (np.signbit(arr)).astype(np.uint16)

        nan_mask = np.isnan(arr)
        inf_mask = np.isinf(arr)
        zero_mask = arr == 0.0
        finite = ~(nan_mask | inf_mask | zero_mask)

        mant_f, exp = np.frexp(np.where(finite, arr, 1.0))
        exp = exp - 1
        sub = finite & (exp < self.emin)
        eff_exp = np.where(sub, self.emin, exp)
        # significand as an integer count of min-step units
        sig = np.where(
            finite,
            np.abs(np.where(finite, arr, 0.0))
            / np.ldexp(1.0, (eff_exp - self.man_bits)),
            0.0,
        )
        sig_int = np.rint(sig).astype(np.uint32)

        biased = np.where(sub, 0, exp + self.bias).astype(np.int64)
        mant_field = np.where(
            sub, sig_int, sig_int - (1 << self.man_bits)
        ).astype(np.uint16)

        bits = np.where(
            finite,
            (sign << (self.exp_bits + self.man_bits))
            | (biased.astype(np.uint16) << self.man_bits)
            | mant_field,
            bits,
        ).astype(np.uint16)

        top = (1 << self.exp_bits) - 1
        if self.has_inf:
            inf_bits = (top << self.man_bits)
            nan_bits = inf_bits | (1 << max(self.man_bits - 1, 0))
        else:
            nan_bits = (top << self.man_bits) | ((1 << self.man_bits) - 1)
            inf_bits = nan_bits  # no inf encoding: collapses to NaN
        bits = np.where(
            inf_mask,
            (sign << (self.exp_bits + self.man_bits)) | inf_bits, bits
        ).astype(np.uint16)
        bits = np.where(nan_mask, nan_bits, bits).astype(np.uint16)
        bits = np.where(
            zero_mask, sign << (self.exp_bits + self.man_bits), bits
        ).astype(np.uint16)
        return bits if np.ndim(x) else bits[0]

    def from_bits(self, bits: np.ndarray | int) -> np.ndarray:
        """Decode raw bit patterns back to float64 values."""
        if 1 + self.exp_bits + self.man_bits > 16:
            raise NotImplementedError(
                f"bit-pattern codec supports <=16-bit formats, "
                f"not {self.name}"
            )
        b = np.atleast_1d(np.asarray(bits, dtype=np.uint16)).astype(np.int64)
        sign = np.where((b >> (self.exp_bits + self.man_bits)) & 1, -1.0, 1.0)
        biased = (b >> self.man_bits) & ((1 << self.exp_bits) - 1)
        mant = b & ((1 << self.man_bits) - 1)
        top = (1 << self.exp_bits) - 1

        sub = biased == 0
        exp = np.where(sub, self.emin, biased - self.bias)
        sig = np.where(sub, mant, mant + (1 << self.man_bits)).astype(
            np.float64
        )
        val = sign * sig * np.ldexp(1.0, (exp - self.man_bits).astype(int))

        if self.has_inf:
            special = biased == top
            val = np.where(special & (mant == 0), sign * np.inf, val)
            val = np.where(special & (mant != 0), np.nan, val)
        else:
            nan_pat = (biased == top) & (mant == (1 << self.man_bits) - 1)
            val = np.where(nan_pat, np.nan, val)
        return val if np.ndim(bits) else val[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name} (e{self.exp_bits}m{self.man_bits}, "
            f"max={self.max_finite:g})"
        )


# ---------------------------------------------------------------------------
# The concrete formats the paper's tensor cores accept.
# ---------------------------------------------------------------------------

FP64 = FloatFormat("fp64", exp_bits=11, man_bits=52)
FP32 = FloatFormat("fp32", exp_bits=8, man_bits=23)
#: IEEE binary16 — the original Volta tensor-core input type.
FP16 = FloatFormat("fp16", exp_bits=5, man_bits=10)
#: bfloat16 — FP32 dynamic range with 8 mantissa bits.
BF16 = FloatFormat("bf16", exp_bits=8, man_bits=7)
#: TF32 — FP32 range, 10 explicit mantissa bits, stored in 32 bits.
TF32 = FloatFormat("tf32", exp_bits=8, man_bits=10, storage_bits=32)
#: FP8 E4M3 — no infinities, saturating (Transformer-Engine convention).
E4M3 = FloatFormat(
    "e4m3", exp_bits=4, man_bits=3, has_inf=False, saturate_on_overflow=True
)
#: FP8 E5M2 — IEEE-style with infinities, wide range / coarse precision.
E5M2 = FloatFormat("e5m2", exp_bits=5, man_bits=2)

FORMATS = {
    f.name: f for f in (FP64, FP32, FP16, BF16, TF32, E4M3, E5M2)
}
# Convenience aliases used in benchmark tables.
FORMATS["fp8"] = E4M3
FORMATS["fp8_e4m3"] = E4M3
FORMATS["fp8_e5m2"] = E5M2


def get_format(name: str) -> FloatFormat:
    """Look up a float format by name (``"fp16"``, ``"e4m3"``, ...)."""
    try:
        return FORMATS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown float format {name!r}; known: {sorted(FORMATS)}"
        ) from None
