"""Integer tensor-core formats (INT8, INT4) and symmetric quantisation.

Tensor cores treat integer inputs as signed two's-complement values and
accumulate in INT32.  For AI workloads the interesting operation is the
symmetric scale quantisation used to map float tensors onto the integer
grid; both the grid arithmetic and the quantisation live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["IntFormat", "INT8", "INT4", "quantize_int", "dequantize_int"]


@dataclass(frozen=True)
class IntFormat:
    """A signed two's-complement integer format."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if not 1 < self.bits <= 32:
            raise ValueError("bits must be in (1, 32]")

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def storage_bytes(self) -> float:
        return self.bits / 8.0

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Saturate to the representable range (keeps integer dtype)."""
        return np.clip(x, self.min_value, self.max_value)

    def wrap(self, x: np.ndarray) -> np.ndarray:
        """Two's-complement wrap-around (modular) semantics."""
        span = 1 << self.bits
        return ((np.asarray(x, dtype=np.int64) - self.min_value) % span
                + self.min_value)

    def representable(self, x: int) -> bool:
        return self.min_value <= int(x) <= self.max_value


INT8 = IntFormat("int8", 8)
INT4 = IntFormat("int4", 4)
INT32 = IntFormat("int32", 32)


def quantize_int(
    x: np.ndarray, fmt: IntFormat, *, scale: float | None = None
) -> Tuple[np.ndarray, float]:
    """Symmetric round-to-nearest quantisation of a float tensor.

    Returns ``(q, scale)`` with ``q`` an int64 array on the format's
    grid and ``x ≈ q * scale``.  When ``scale`` is not given it is
    chosen from the tensor's absolute maximum so the full grid is used
    (the Transformer-Engine convention for its INT paths).
    """
    arr = np.asarray(x, dtype=np.float64)
    if scale is None:
        amax = float(np.max(np.abs(arr))) if arr.size else 0.0
        scale = amax / fmt.max_value if amax > 0 else 1.0
        if scale == 0.0:  # amax so small the division underflowed
            scale = 1.0
    if scale <= 0:
        raise ValueError("scale must be positive")
    q = np.round(arr / scale)           # half-to-even, like the hardware
    q = fmt.clip(q).astype(np.int64)
    return q, scale


def dequantize_int(q: np.ndarray, scale: float) -> np.ndarray:
    """Map integer-grid values back to float64."""
    return np.asarray(q, dtype=np.float64) * scale
