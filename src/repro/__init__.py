"""hopperdissect — a simulator-backed reproduction of
"Benchmarking and Dissecting the Nvidia Hopper GPU Architecture"
(Luo et al., IPDPS 2024).

The package models three GPU generations — Ampere (A100 PCIe), Ada
Lovelace (RTX 4090) and Hopper (H800 PCIe) — at the level the paper's
microbenchmarks probe them:

* :mod:`repro.arch` — device specifications and the clock model.
* :mod:`repro.numerics` — bit-accurate low-precision float/int codecs
  (FP16, BF16, TF32, FP8-E4M3/E5M2, INT8, INT4).
* :mod:`repro.isa` — PTX instruction model and per-architecture
  PTX → SASS lowering (Table VI).
* :mod:`repro.memory` — set-associative caches, banked shared memory,
  DRAM and TLB models plus a P-chase driver (Tables IV, V).
* :mod:`repro.sm` — occupancy, block scheduling and the issue pipeline.
* :mod:`repro.tensorcore` — functional and timing models of ``mma`` /
  ``wgmma`` dense and 2:4-sparse tensor-core instructions
  (Tables VII–X).
* :mod:`repro.dpx` — the DPX dynamic-programming instruction family,
  hardware-accelerated on Hopper and emulated elsewhere (Figs 6, 7).
* :mod:`repro.asynccopy` — ``cp.async``/TMA pipelines and the
  globalToShmemAsyncCopy study (Tables XIII, XIV).
* :mod:`repro.dsm` — thread-block clusters and the SM-to-SM network:
  ring-based copy and the DSM histogram application (Figs 8, 9).
* :mod:`repro.te` — a Transformer-Engine analogue with real FP8
  quantisation and an LLM decode cost model (Figs 3–5, Table XII).
* :mod:`repro.power` — activity-based power/energy model (Table XI).
* :mod:`repro.core` — the experiment harness that regenerates every
  table and figure and checks the paper's qualitative findings.

Quickstart::

    from repro import get_device
    from repro.core import run_experiment

    h800 = get_device("H800")
    table4 = run_experiment("table04_mem_latency")
    print(table4.render())
"""

from __future__ import annotations

from repro.arch import DeviceSpec, get_device, list_devices

__all__ = ["DeviceSpec", "get_device", "list_devices", "__version__"]

__version__ = "1.0.0"
