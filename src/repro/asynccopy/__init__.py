"""Asynchronous data movement (paper §III-D2, Tables XIII/XIV).

Models the ``globalToShmemAsyncCopy`` CUDA-sample experiment: a tiled
matrix multiplication whose global→shared tile copies are either

* **SyncShare** — classic ``ld.global`` + ``st.shared`` with a barrier:
  the tile's DRAM round-trip latency sits serially inside every step,
* **AsyncPipe** — ``cp.async`` with a two-stage (double-buffered)
  pipeline: the next tile's copy overlaps the current tile's compute,
  hiding the latency whenever enough compute (or enough resident
  warps) covers it.

The model derives each configuration's throughput from four mechanisms:
the shared-memory-bound inner product (2 × 4 B shared loads per FMA —
which caps *any* variant at 32 FLOP/clk/SM), the DRAM bandwidth each
step's tile traffic consumes, the occupancy-limited resident block
count, and the exposed-latency term that the pipeline exists to remove.

:mod:`repro.asynccopy.tma` adds the Hopper TMA bulk-copy cost model.
"""

from __future__ import annotations

from repro.asynccopy.matmul_pipeline import (
    AsyncCopyConfig,
    CopyVariant,
    StepBreakdown,
    TiledMatmulModel,
    benchmark_table,
)
from repro.asynccopy.tma import TmaModel, TmaTransfer

__all__ = [
    "CopyVariant",
    "AsyncCopyConfig",
    "StepBreakdown",
    "TiledMatmulModel",
    "benchmark_table",
    "TmaModel",
    "TmaTransfer",
]
