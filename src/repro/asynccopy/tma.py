"""Tensor Memory Accelerator cost model (Hopper).

TMA replaces per-thread ``cp.async`` address generation with a single
descriptor-driven bulk copy: one thread issues the instruction, the TMA
engine computes every address, and *zero* threads are occupied during
the transfer.  The model captures the two first-order effects:

* fixed descriptor/issue cost per transfer (amortised by tile size),
* freed instruction-issue slots (a ``cp.async`` tile copy costs one
  warp instruction per 16 B per thread; TMA costs one instruction per
  tile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import DeviceSpec
from repro.isa.lowering import UnsupportedInstruction
from repro.isa.memory_ops import TmaCopy
from repro.obs.session import counters_or_null

__all__ = ["TmaTransfer", "TmaModel"]

#: one-off per-transfer TMA engine issue + descriptor decode, cycles
_TMA_ISSUE_CLK = 40.0
#: bytes one cp.async warp instruction moves (32 threads × 16 B)
_CP_ASYNC_BYTES_PER_INSTR = 512.0


@dataclass(frozen=True)
class TmaTransfer:
    """Cost estimate of one bulk tile copy."""

    tile_bytes: int
    cycles: float
    issuing_instructions: int
    pipelined_cycles: float = 0.0

    @property
    def bytes_per_clk(self) -> float:
        """One-shot rate: the DRAM round trip is exposed."""
        return self.tile_bytes / self.cycles if self.cycles else 0.0

    @property
    def sustained_bytes_per_clk(self) -> float:
        """Back-to-back rate: the TMA engine pipelines transfers, so
        only issue + streaming remain on the critical path."""
        if not self.pipelined_cycles:
            return self.bytes_per_clk
        return self.tile_bytes / self.pipelined_cycles


class TmaModel:
    """Per-device TMA cost estimates (Hopper only)."""

    def __init__(self, device: DeviceSpec) -> None:
        if not device.pack.has_tma:
            raise UnsupportedInstruction(
                f"{device.name} has no TMA engine (requires Hopper)"
            )
        self.device = device

    def transfer(self, copy: TmaCopy) -> TmaTransfer:
        """Global→shared bulk copy cost.

        Streaming happens at the SM's L1/global interface width; the
        issue overhead is a constant independent of size.
        """
        stream = (copy.tile_bytes
                  / self.device.mem_widths.l1_bytes_per_clk_sm)
        latency = self.device.mem_latencies.global_clk
        transfer = TmaTransfer(
            tile_bytes=copy.tile_bytes,
            cycles=_TMA_ISSUE_CLK + latency + stream,
            issuing_instructions=1,
            pipelined_cycles=_TMA_ISSUE_CLK + stream,
        )
        obs = counters_or_null()
        if obs.enabled:
            obs.add("async.tma.transfers")
            obs.add("async.bytes.tma", copy.tile_bytes)
            obs.observe("async.latency.tma", transfer.cycles)
        return transfer

    def cp_async_equivalent_instructions(self, tile_bytes: int) -> int:
        """Warp instructions a cp.async version of the copy would issue
        — the occupancy the TMA engine hands back to the program."""
        instrs = max(1, round(tile_bytes / _CP_ASYNC_BYTES_PER_INSTR))
        obs = counters_or_null()
        if obs.enabled:
            obs.add("async.cp_async.equiv_instructions", instrs)
        return instrs

    def issue_reduction(self, copy: TmaCopy) -> float:
        """Instruction-issue savings factor of TMA over cp.async."""
        return float(self.cp_async_equivalent_instructions(copy.tile_bytes))
