"""Tiled-matmul pipeline cost model (SyncShare vs AsyncPipe).

Workload: ``C (H × W) = A (H × K) × B (K × W)`` with square b×b thread
blocks; K = 2048 as in the paper.  Each block iterates over K/b steps;
a step copies one A tile + one B tile (2·b²·4 bytes) to shared memory
and accumulates b FMAs per thread against them.

The model splits a configuration's throughput into two regimes:

* **Latency-bound** (few resident blocks): each block's step takes
  ``C + copy + X`` cycles, where ``C`` is the shared-memory-bound
  inner product (2 × 4 B shared loads per FMA → ``8·b³/128`` cycles),
  ``copy`` the LSU issue cost, and ``X`` the per-step exposed latency
  plus software overhead.  ``X`` is where the two variants differ: the
  synchronous copy exposes the full tile round-trip behind a barrier
  every step; the 2-stage ``cp.async`` pipeline prefetches the next
  tile during the current compute.  ``X`` values for the paper's two
  benchmarked devices are microbenchmark calibrations
  (``_STEP_OVERHEAD_CLK``); other devices use a structural fallback.

* **Resource-bound** (machine full): the saturation throughput is the
  min of three *derived* caps — shared-memory bandwidth (4 B per FLOP
  → 32 FLOP/clk/SM), DRAM bandwidth against the per-step tile traffic
  (which is what pins the 8×8 plateau), and the FP32 pipes — times a
  barrier-convoy efficiency ``1 − 0.42/warps`` for the synchronous
  variant (tiny blocks convoy badly, 32-warp blocks hardly at all).

Both the async advantage at small blocks, its evaporation at 16×16 and
its sign-flip at 32×32 (Tables XIII/XIV) follow from the interplay of
``X``, the caps and occupancy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.arch import DeviceSpec
from repro.obs.session import counters_or_null
from repro.sm.occupancy import BlockConfig, occupancy

__all__ = [
    "CopyVariant",
    "AsyncCopyConfig",
    "StepBreakdown",
    "TiledMatmulModel",
    "benchmark_table",
]


#: CopyVariant → the counter slug of its tile-copy byte path
_VARIANT_PATHS = {"SYNC": "sync", "ASYNC": "cp_async", "TMA": "tma"}


class CopyVariant(enum.Enum):
    SYNC = "SyncShare"
    ASYNC = "AsyncPipe"
    #: Hopper-only: the tile copy is one TMA bulk descriptor per step —
    #: no per-thread address generation, no cp.async bookkeeping in the
    #: issue stream.  The paper describes TMA (§III-D2) but benchmarks
    #: only cp.async; this variant is the library's prediction.
    TMA = "TmaPipe"


#: shared-memory bytes the inner product reads per FLOP (2 × 4 B / 2 FLOP)
_SMEM_BYTES_PER_FLOP = 4.0
#: barrier-convoy penalty coefficient of the synchronous variant
_SYNC_CONVOY = 0.42
#: steady-state issue-slot tax of cp.async commit/wait bookkeeping —
#: the reason AsyncPipe ends up *slightly behind* SyncShare once 32×32
#: blocks hide all latency anyway (Table XIII's −1.8 % row)
_ASYNC_CAP_EFF = 0.98
# Per-step exposed-latency + software overhead calibrations live in the
# architecture packs (``device.pack.asynccopy.step_overhead_clk``,
# keyed by CopyVariant value then block_dim); architectures without a
# calibration fall through to the structural pieces below.
#: structural fallback pieces for uncalibrated devices
_BARRIER_CLK = 30.0
_ASYNC_OVERHEAD_CLK = 90.0
_SERIAL_SW_CLK = 480.0     # per-step software cost, divided by warps
#: TMA removes the per-thread copy bookkeeping from the issue stream;
#: what remains of the async step overhead is latency exposure + the
#: mbarrier wait.
_TMA_OVERHEAD_FACTOR = 0.85
#: issuing one bulk descriptor costs a handful of cycles
_TMA_ISSUE_CLK = 4.0


@dataclass(frozen=True)
class AsyncCopyConfig:
    """One cell of Tables XIII/XIV."""

    block_dim: int                 # 8, 16 or 32 (b×b threads)
    blocks_per_sm_launched: int    # grid size / SM count
    variant: CopyVariant
    k: int = 2048                  # A width = B height
    pipeline_stages: int = 2

    def __post_init__(self) -> None:
        if self.block_dim not in (8, 16, 32):
            raise ValueError("block_dim must be 8, 16 or 32")
        if self.blocks_per_sm_launched < 1:
            raise ValueError("must launch at least one block per SM")
        if self.pipeline_stages < 1:
            raise ValueError("pipeline needs >= 1 stage")
        if (self.variant in (CopyVariant.ASYNC, CopyVariant.TMA)
                and self.pipeline_stages < 2):
            raise ValueError(
                f"{self.variant.value} needs >= 2 buffer stages"
            )

    @property
    def threads(self) -> int:
        return self.block_dim ** 2

    @property
    def warps(self) -> int:
        return max(self.threads // 32, 1)

    @property
    def flops_per_step(self) -> int:
        """2·b³: each of b² threads does b FMAs per tile step."""
        return 2 * self.block_dim ** 3

    @property
    def copy_bytes_per_step(self) -> int:
        """A tile + B tile, FP32."""
        return 2 * self.block_dim ** 2 * 4

    @property
    def smem_bytes_per_block(self) -> int:
        stages = (1 if self.variant is CopyVariant.SYNC
                  else self.pipeline_stages)
        return stages * self.copy_bytes_per_step


@dataclass(frozen=True)
class StepBreakdown:
    """Per-step cycle decomposition of one resident block."""

    compute_clk: float
    copy_issue_clk: float
    overhead_clk: float

    @property
    def total_clk(self) -> float:
        return self.compute_clk + self.copy_issue_clk + self.overhead_clk


class TiledMatmulModel:
    """Throughput model for the globalToShmemAsyncCopy experiment."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # -- per-step mechanics ------------------------------------------------

    def compute_clk(self, cfg: AsyncCopyConfig) -> float:
        smem_bw = self.device.mem_widths.smem_bytes_per_clk_sm
        return cfg.flops_per_step * _SMEM_BYTES_PER_FLOP / smem_bw

    def copy_issue_clk(self, cfg: AsyncCopyConfig) -> float:
        if cfg.variant is CopyVariant.TMA:
            return _TMA_ISSUE_CLK   # one descriptor, engine-generated
        return (cfg.copy_bytes_per_step
                / self.device.mem_widths.l1_bytes_per_clk_sm)

    def _overhead_clk(self, cfg: AsyncCopyConfig) -> float:
        pack = self.device.pack
        lookup_variant = cfg.variant
        if cfg.variant is CopyVariant.TMA:
            if not pack.has_tma:
                raise ValueError(
                    f"{self.device.name} has no TMA engine"
                )
            # TMA inherits the async pipeline's latency exposure with
            # the per-thread bookkeeping stripped out.
            lookup_variant = CopyVariant.ASYNC
        elif cfg.variant is CopyVariant.ASYNC and not pack.has_cp_async:
            raise ValueError(
                f"{self.device.name} predates cp.async (sm_80+)"
            )
        table = pack.asynccopy.step_overhead_clk.get(
            lookup_variant.value
        )
        if table is not None and cfg.block_dim in table:
            x = table[cfg.block_dim]
        else:
            # Structural fallback: full round trip exposed each step
            # for sync; one stage of prefetch distance for async.
            lat = self.device.mem_latencies.global_clk
            sw = _SERIAL_SW_CLK / cfg.warps
            if cfg.variant is CopyVariant.SYNC:
                x = lat + 2 * _BARRIER_CLK + sw
            else:
                hidden = self.compute_clk(cfg) + sw
                exposed = max(
                    0.0, lat / (cfg.pipeline_stages - 1) - hidden
                )
                x = exposed + _BARRIER_CLK + _ASYNC_OVERHEAD_CLK + sw
        if (cfg.variant is not CopyVariant.SYNC
                and cfg.pipeline_stages != 2 and cfg.block_dim in (
                    table or {})):
            # Ablation hook: a deeper ring hides more latency, a
            # 2-stage calibration point scales with prefetch distance.
            x *= 2.0 / cfg.pipeline_stages + 0.0
            x = max(x, _BARRIER_CLK + _ASYNC_OVERHEAD_CLK)
        if cfg.variant is CopyVariant.TMA:
            x *= _TMA_OVERHEAD_FACTOR
        return x

    def step_breakdown(self, cfg: AsyncCopyConfig) -> StepBreakdown:
        step = StepBreakdown(
            compute_clk=self.compute_clk(cfg),
            copy_issue_clk=self.copy_issue_clk(cfg),
            overhead_clk=self._overhead_clk(cfg),
        )
        obs = counters_or_null()
        if obs.enabled:
            # pipeline-stage decomposition of the priced step: load =
            # tile-copy issue, compute = the shared-memory-bound inner
            # product, drain = exposed latency + barrier/bookkeeping
            obs.add("async.steps")
            obs.add(f"async.variant.{cfg.variant.name.lower()}")
            obs.observe("async.stage.load", step.copy_issue_clk)
            obs.observe("async.stage.compute", step.compute_clk)
            obs.observe("async.stage.drain", step.overhead_clk)
            obs.add(f"async.bytes.{_VARIANT_PATHS[cfg.variant.name]}",
                    cfg.copy_bytes_per_step)
        return step

    # -- resident blocks ---------------------------------------------------------

    def resident_blocks(self, cfg: AsyncCopyConfig) -> int:
        occ = occupancy(
            self.device,
            BlockConfig(threads=cfg.threads, regs_per_thread=32,
                        smem_bytes=cfg.smem_bytes_per_block),
        )
        return max(1, min(cfg.blocks_per_sm_launched, occ.blocks_per_sm))

    # -- saturation caps (fully derived) -------------------------------------------

    def smem_cap_flops_clk(self) -> float:
        return (self.device.mem_widths.smem_bytes_per_clk_sm
                / _SMEM_BYTES_PER_FLOP)

    def dram_cap_flops_clk(self, cfg: AsyncCopyConfig) -> float:
        bw_sm_clk = (
            self.device.dram.effective_bandwidth_gbps(1.0) * 1e9
            / (self.device.num_sms * self.device.clocks.observed_hz)
        )
        return bw_sm_clk * cfg.flops_per_step / cfg.copy_bytes_per_step

    def fp32_cap_flops_clk(self) -> float:
        return 2.0 * self.device.cuda_cores_per_sm

    # -- throughput ---------------------------------------------------------------

    def flops_per_clk_sm(self, cfg: AsyncCopyConfig) -> float:
        nb = self.resident_blocks(cfg)
        step = self.step_breakdown(cfg).total_clk
        latency_bound = nb * cfg.flops_per_step / step

        cap = min(
            self.smem_cap_flops_clk(),
            self.dram_cap_flops_clk(cfg),
            self.fp32_cap_flops_clk(),
        )
        if cfg.variant is CopyVariant.SYNC:
            cap *= 1.0 - _SYNC_CONVOY / cfg.warps
        elif cfg.variant is CopyVariant.ASYNC:
            cap *= _ASYNC_CAP_EFF
        # TMA pays no issue-stream tax: the engine moves the tiles.
        return min(latency_bound, cap)

    def throughput_gflops(self, cfg: AsyncCopyConfig) -> float:
        """Device-wide GFLOP/s — the unit of Tables XIII/XIV."""
        return (self.flops_per_clk_sm(cfg)
                * self.device.num_sms
                * self.device.clocks.observed_hz / 1e9)


def benchmark_table(device: DeviceSpec,
                    *, block_dims=(8, 16, 32),
                    blocks_per_sm=(1, 2, 4, 8, 16, 32),
                    pipeline_stages: int = 2) -> List[Dict]:
    """Regenerate one of Tables XIII/XIV.

    Returns one dict per block size with AsyncPipe/SyncShare rows and
    the mean improvement column ("Perf↑").
    """
    model = TiledMatmulModel(device)
    out = []
    for b in block_dims:
        row_async, row_sync = [], []
        for nb in blocks_per_sm:
            a = AsyncCopyConfig(b, nb, CopyVariant.ASYNC,
                                pipeline_stages=pipeline_stages)
            s = AsyncCopyConfig(b, nb, CopyVariant.SYNC)
            row_async.append(model.throughput_gflops(a))
            row_sync.append(model.throughput_gflops(s))
        gain = [a / s - 1.0 for a, s in zip(row_async, row_sync)]
        out.append({
            "block": f"{b}x{b}",
            "blocks_per_sm": list(blocks_per_sm),
            "AsyncPipe": row_async,
            "SyncShare": row_sync,
            "perf_gain": sum(gain) / len(gain),
        })
    return out
