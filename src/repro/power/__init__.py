"""Activity-based power and energy-efficiency model (Table XI).

``P = P_idle + e_mac · MAC_rate · activity + e_byte · operand_rate``

* ``e_mac`` is the per-*physical*-MAC energy (pJ), calibrated per
  (architecture, input type, accumulator, dense/sparse) from the
  paper's own wattmeter readings — these constants are primitive
  measurements in the sense of DESIGN.md §6.  Sparse instructions
  execute half the MACs but pay metadata-select energy, so their
  per-physical-MAC cost is *higher* while per-useful-FLOP cost is
  lower — which is exactly why Table XI's sparse rows win on
  efficiency.
* ``activity`` models datapath toggling: all-zero operands barely
  switch any wires (≈0.35 of random-data power) — the mechanism behind
  the paper's "Zero" vs "Rand" wgmma split: zero-initialised runs stay
  under the H800-PCIe's 350 W cap and full throughput, random data
  pushes past the cap and sheds frequency.
* The throttle solves for the clock scale that brings total power back
  to the cap.
"""

from __future__ import annotations

from repro.power.model import PowerModel, PowerReport

__all__ = ["PowerModel", "PowerReport"]
