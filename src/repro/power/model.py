"""The power/energy model implementation.

See the package docstring for the model equation and calibration
provenance.  Energy constants are expressed in pJ per *physical* MAC —
for sparse instructions the hardware executes half the mathematical
(2·k) MACs, the other half being pruned zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.arch import DeviceSpec
from repro.isa.dtypes import DType

__all__ = ["PowerModel", "PowerReport"]

OpKind = Literal["mma", "wgmma"]
DataKind = Literal["zero", "rand"]

# Per-generation calibrations (board idle watts, per-MAC energies for
# the mma and wgmma paths) live in the architecture packs —
# ``device.pack.power`` — keyed by (peak_key, accumulator ptx name,
# sparse).  Only cross-architecture constants stay here.

#: dynamic power fraction of an all-zero operand stream
_ZERO_ACTIVITY = 0.35

#: shared-memory operand-stream energy (wgmma path), pJ/byte
_SMEM_PJ_PER_BYTE = 2.6

#: fallback per-MAC energy for pairings outside the calibrated set
_DEFAULT_PJ = 1.0


@dataclass(frozen=True)
class PowerReport:
    """Power and efficiency of one sustained tensor-core workload."""

    power_watts: float
    throttle_scale: float
    throughput_tflops: float     # after throttling

    @property
    def efficiency_tflops_per_watt(self) -> float:
        return self.throughput_tflops / self.power_watts


class PowerModel:
    """Per-device activity-based power model."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # -- components ----------------------------------------------------------

    @property
    def idle_watts(self) -> float:
        return self.device.pack.power.idle_watts

    def _energy_pj(self, op: OpKind, ab: DType, cd: DType,
                   sparse: bool) -> float:
        key = (ab.peak_key, cd.ptx_name, sparse)
        cal = self.device.pack.power
        if op == "wgmma":
            return cal.wgmma_energy_pj.get(key, _DEFAULT_PJ)
        return cal.mma_energy_pj.get(key, _DEFAULT_PJ)

    def energy_pj(self, op: OpKind, ab: DType, cd: DType,
                  sparse: bool) -> float:
        """Calibrated pJ per physical MAC for one instruction kind —
        the per-element lookup the vectorized sweep packs into an
        array before calling :meth:`throttle_scale_many`."""
        return self._energy_pj(op, ab, cd, sparse)

    def dynamic_watts(
        self,
        *,
        op: OpKind,
        ab: DType,
        cd: DType,
        tflops: float,
        sparse: bool = False,
        operand_bytes_per_s: float = 0.0,
        data: DataKind = "rand",
    ) -> float:
        """Dynamic power of a sustained stream at ``tflops``.

        ``tflops`` counts *useful* FLOPs (the number the throughput
        tables report); physical MACs are half of that for dense and a
        quarter for 2:4 sparse (half the MACs are pruned away).
        """
        if tflops < 0 or operand_bytes_per_s < 0:
            raise ValueError("rates must be non-negative")
        physical_macs = tflops * 1e12 / (4.0 if sparse else 2.0)
        e = self._energy_pj(op, ab, cd, sparse)
        dyn = (e * physical_macs
               + _SMEM_PJ_PER_BYTE * operand_bytes_per_s) * 1e-12
        if data == "zero":
            dyn *= _ZERO_ACTIVITY
        return dyn

    def total_watts(self, **kwargs) -> float:
        return self.idle_watts + self.dynamic_watts(**kwargs)

    # -- throttling ------------------------------------------------------------

    def throttle_scale(
        self,
        *,
        op: OpKind,
        ab: DType,
        cd: DType,
        tflops: float,
        sparse: bool = False,
        operand_bytes_per_s: float = 0.0,
    ) -> float:
        """Clock scale enforcing the board power cap for random data.

        Dynamic power is proportional to frequency, so the governor
        settles at ``scale = (cap − idle) / dynamic_at_full_clock``
        whenever the unthrottled total exceeds the cap.
        """
        dyn = self.dynamic_watts(
            op=op, ab=ab, cd=cd, tflops=tflops, sparse=sparse,
            operand_bytes_per_s=operand_bytes_per_s, data="rand",
        )
        budget = max(self.device.power_cap_watts - self.idle_watts, 0.0)
        if dyn <= budget or dyn == 0.0:
            return 1.0
        return budget / dyn

    def throttle_scale_many(self, *, energies_pj, tflops, sparse,
                            operand_bytes_per_s):
        """Vectorized :meth:`throttle_scale` over instruction batches.

        ``energies_pj`` carries the pre-gathered per-instruction
        :meth:`energy_pj` lookups; the remaining arguments are arrays
        broadcastable against it.  Elementwise arithmetic mirrors the
        scalar method operation-for-operation, so the returned scales
        are bit-identical to a per-instruction loop.
        """
        import numpy as np

        energies_pj = np.asarray(energies_pj, dtype=np.float64)
        tflops = np.asarray(tflops, dtype=np.float64)
        sparse = np.asarray(sparse, dtype=bool)
        operand_bytes_per_s = np.asarray(operand_bytes_per_s,
                                         dtype=np.float64)
        physical_macs = tflops * 1e12 / np.where(sparse, 4.0, 2.0)
        dyn = (energies_pj * physical_macs
               + _SMEM_PJ_PER_BYTE * operand_bytes_per_s) * 1e-12
        budget = max(self.device.power_cap_watts - self.idle_watts, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            throttled = budget / dyn
        return np.where((dyn <= budget) | (dyn == 0.0), 1.0, throttled)

    # -- Table XI -------------------------------------------------------------

    def report(
        self,
        *,
        op: OpKind,
        ab: DType,
        cd: DType,
        tflops: float,
        sparse: bool = False,
        operand_bytes_per_s: float = 0.0,
        data: DataKind = "rand",
    ) -> PowerReport:
        """Steady-state power/efficiency, throttle applied."""
        scale = 1.0
        if data == "rand":
            scale = self.throttle_scale(
                op=op, ab=ab, cd=cd, tflops=tflops, sparse=sparse,
                operand_bytes_per_s=operand_bytes_per_s,
            )
        achieved = tflops * scale
        watts = self.idle_watts + self.dynamic_watts(
            op=op, ab=ab, cd=cd, tflops=achieved, sparse=sparse,
            operand_bytes_per_s=operand_bytes_per_s * scale, data=data,
        )
        return PowerReport(
            power_watts=watts,
            throttle_scale=scale,
            throughput_tflops=achieved,
        )
