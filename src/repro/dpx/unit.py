"""DPX latency/throughput model and the SM-level sawtooth (Figs 6, 7).

Two execution paths:

* **Hopper hardware** — each intrinsic is one DPX-unit instruction.
  The unit sits *inside the SM* (the paper infers this from the block
  sweep) and issues like the other ALU pipes.
* **Emulation (Ampere/Ada)** — the intrinsic expands to its CUDA-core
  sequence; latency follows the critical path, throughput divides the
  integer-pipe issue rate by the instruction count.

The VIMNMX-vs-IMNMX parity the paper notes falls out naturally: a
2-input ``__vimax_s32`` is one instruction on both paths, so only the
clocks differ.  The big Hopper wins appear where emulation sequences
are long — packed 16-bit lanes and fused ReLU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arch import DeviceSpec
from repro.isa.lowering import lower_dpx
from repro.dpx.functions import DpxFunction
from repro.sm.occupancy import BlockConfig
from repro.sm.scheduler import KernelLaunch, schedule_blocks

__all__ = ["DpxTimingModel", "DpxMeasurement", "block_sweep"]

#: integer-ALU completion latency (cycles) — IMNMX/IADD3 class
_INT_ALU_LATENCY = 4.5
#: Hopper DPX-unit completion latency (cycles) — VIMNMX class; the
#: paper notes VIMNMX shows no latency edge over IMNMX.
_DPX_HW_LATENCY = 4.5
#: integer-pipe issue rate: warp instructions per clk per SM
_INT_ISSUE_PER_CLK = 2.0
#: DPX-pipe issue rate on Hopper: warp instructions per clk per SM
_DPX_ISSUE_PER_CLK = 2.0


@dataclass(frozen=True)
class DpxMeasurement:
    """Latency/throughput of one DPX intrinsic on one device."""

    function: str
    device: str
    hardware: bool
    latency_clk: float
    #: intrinsic results per clk per SM (32 threads × issue / instrs)
    throughput_per_clk_sm: float
    measurable: bool = True

    @property
    def throughput_gops(self) -> float:
        """Device-wide intrinsic throughput (G results/s) — needs the
        caller to scale by SM count and clock; see DpxTimingModel."""
        return self.throughput_per_clk_sm  # per-SM·clk; scaled by model


class DpxTimingModel:
    """Per-device DPX timing."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    @property
    def hardware(self) -> bool:
        return self.device.pack.has_dpx_hardware

    def lowered(self, fn: DpxFunction):
        return lower_dpx(
            fn.name,
            arch=self.device.pack,
            hw_mnemonics=fn.hw_sass,
            emulation_mnemonics=fn.emu_sass,
        )

    # -- latency -----------------------------------------------------------

    def latency_clk(self, fn: DpxFunction) -> float:
        """Dependent-chain per-intrinsic latency (Fig 6's metric)."""
        if self.hardware:
            return _DPX_HW_LATENCY * fn.hw_instruction_count
        return _INT_ALU_LATENCY * fn.emu_critical_path

    def latency_ns(self, fn: DpxFunction) -> float:
        return self.latency_clk(fn) / self.device.clocks.observed_hz * 1e9

    # -- throughput ----------------------------------------------------------

    def throughput_per_clk_sm(self, fn: DpxFunction) -> float:
        """Intrinsic results per clock per SM with a full block issuing."""
        if self.hardware:
            return 32 * _DPX_ISSUE_PER_CLK / fn.hw_instruction_count
        return 32 * _INT_ISSUE_PER_CLK / fn.emu_instruction_count

    def throughput_gops(self, fn: DpxFunction, *,
                        num_blocks: int | None = None) -> float:
        """Device-wide intrinsic throughput in G results/s.

        ``num_blocks`` applies the wave-scheduling utilisation (the
        sawtooth); default fills the machine exactly.
        """
        per_sm_clk = self.throughput_per_clk_sm(fn)
        peak = (per_sm_clk * self.device.num_sms
                * self.device.clocks.observed_hz / 1e9)
        if num_blocks is None:
            return peak
        launch = KernelLaunch(num_blocks, BlockConfig(threads=1024))
        sched = schedule_blocks(self.device, launch,
                                blocks_per_sm_override=1)
        return peak * sched.utilization

    def measure(self, fn: DpxFunction) -> DpxMeasurement:
        measurable = self.hardware or not fn.emu_optimized_away
        return DpxMeasurement(
            function=fn.name,
            device=self.device.name,
            hardware=self.hardware,
            latency_clk=self.latency_clk(fn),
            throughput_per_clk_sm=self.throughput_per_clk_sm(fn),
            measurable=measurable,
        )

    def speedup_vs(self, fn: DpxFunction, other: "DpxTimingModel") -> float:
        """Device-seconds speedup of this device over ``other``."""
        mine = (self.throughput_per_clk_sm(fn)
                * self.device.clocks.observed_hz)
        theirs = (other.throughput_per_clk_sm(fn)
                  * other.device.clocks.observed_hz)
        return mine / theirs


def block_sweep(device: DeviceSpec, fn: DpxFunction,
                max_multiple: int = 3) -> List[Dict[str, float]]:
    """Throughput vs launched blocks — the experiment that locates the
    DPX unit at SM level (throughput ∝ blocks below the SM count,
    plummets just past each multiple, peaks exactly at multiples)."""
    model = DpxTimingModel(device)
    sms = device.num_sms
    points = sorted(
        {1, sms // 4, sms // 2}
        | {m * sms + d for m in range(1, max_multiple + 1)
           for d in (-1, 0, 1)}
    )
    out = []
    for nb in points:
        if nb < 1:
            continue
        out.append({
            "blocks": nb,
            "gops": model.throughput_gops(fn, num_blocks=nb),
        })
    return out
