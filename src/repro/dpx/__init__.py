"""DPX dynamic-programming instructions (paper §III-D1, Figs 6–7).

CUDA 12 exposes ``__vi{add,}{max,min}…`` intrinsics that fuse the
min/max compare chains at the heart of dynamic-programming inner loops
(Smith-Waterman, Needleman-Wunsch, Floyd-Warshall).  On Hopper they are
*hardware* instructions (``VIMNMX``/``VIADDMNMX`` family, including
packed 16-bit×2 lanes and fused ReLU clamps); on Ampere and Ada the
compiler emits multi-instruction CUDA-core emulation sequences.

* :mod:`repro.dpx.functions` — exact integer semantics of the full
  intrinsic family (scalar s32/u32 and packed s16x2), plus each
  function's hardware and emulation SASS sequences.
* :mod:`repro.dpx.unit` — latency/throughput model: near-parity for
  the simple 32-bit ops, large Hopper wins for packed-16-bit + ReLU
  fusions, and the per-SM block-scheduling sawtooth that locates the
  DPX unit at SM level.
"""

from __future__ import annotations

from repro.dpx.functions import (
    DPX_FUNCTIONS,
    DpxFunction,
    get_dpx_function,
    pack_s16x2,
    unpack_s16x2,
)
from repro.dpx.unit import DpxTimingModel, DpxMeasurement, block_sweep

__all__ = [
    "DpxFunction",
    "DPX_FUNCTIONS",
    "get_dpx_function",
    "pack_s16x2",
    "unpack_s16x2",
    "DpxTimingModel",
    "DpxMeasurement",
    "block_sweep",
]
