"""The DPX intrinsic family: exact semantics + lowering sequences.

Semantics operate on NumPy int64 carriers with exact 32-bit / packed
16-bit two's-complement behaviour (wrap-around addition, signed or
unsigned compares, optional fused ReLU clamp at zero).

Each :class:`DpxFunction` also records its SASS lowering on both paths:

* ``hw`` — the Hopper hardware sequence (usually one ``VIMNMX`` /
  ``VIADDMNMX``-family instruction),
* ``emu`` — the CUDA-core emulation sequence Ampere/Ada execute, with
  its critical-path depth (for latency) and instruction count (for
  throughput).

The emulation costs grow with packing and fusion — two IMNMX for a
scalar 3-way max, but over a dozen extract/compare/select/pack ops for
``__viaddmax_s16x2_relu`` — which is exactly where the paper measures
Hopper's up-to-13× advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "DpxFunction",
    "DPX_FUNCTIONS",
    "get_dpx_function",
    "pack_s16x2",
    "unpack_s16x2",
]

_U32 = np.int64(1) << 32
_U16 = np.int64(1) << 16


def _wrap_s32(x):
    x = np.asarray(x, dtype=np.int64)
    return (x + (1 << 31)) % _U32 - (1 << 31)


def _wrap_u32(x):
    return np.asarray(x, dtype=np.int64) % _U32


def _wrap_s16(x):
    x = np.asarray(x, dtype=np.int64)
    return (x + (1 << 15)) % _U16 - (1 << 15)


def pack_s16x2(hi, lo) -> np.ndarray:
    """Pack two signed 16-bit lanes into a 32-bit word (hi:lo)."""
    hi = _wrap_s16(hi)
    lo = _wrap_s16(lo)
    return _wrap_s32((hi % _U16) * _U16 + (lo % _U16))


def unpack_s16x2(v) -> Tuple[np.ndarray, np.ndarray]:
    """Split a 32-bit word into its signed 16-bit (hi, lo) lanes."""
    u = _wrap_s32(v) % _U32
    lo = _wrap_s16(u % _U16)
    hi = _wrap_s16(u // _U16)
    return hi, lo


def _lanewise(op: Callable, *args):
    """Apply a scalar op independently to both s16 lanes."""
    lanes = [unpack_s16x2(a) for a in args]
    hi = op(*(l[0] for l in lanes))
    lo = op(*(l[1] for l in lanes))
    return pack_s16x2(hi, lo)


def _relu(x):
    return np.maximum(x, 0)


@dataclass(frozen=True)
class DpxFunction:
    """One DPX intrinsic."""

    name: str
    arity: int
    semantics: Callable
    hw_sass: Tuple[str, ...]
    emu_sass: Tuple[str, ...]
    emu_critical_path: int
    packed: bool = False
    unsigned: bool = False
    relu: bool = False
    #: on Ampere/Ada the compiler folds this intrinsic into a plain max,
    #: so its standalone throughput cannot be measured there (paper's
    #: ``__vibmax_s32`` footnote).
    emu_optimized_away: bool = False

    def __call__(self, *args):
        if len(args) != self.arity:
            raise TypeError(
                f"{self.name} takes {self.arity} arguments, got {len(args)}"
            )
        return self.semantics(*args)

    @property
    def hw_instruction_count(self) -> int:
        return len(self.hw_sass)

    @property
    def emu_instruction_count(self) -> int:
        return len(self.emu_sass)


def _f(name, arity, fn, hw, emu, crit, **kw) -> DpxFunction:
    return DpxFunction(
        name=name, arity=arity, semantics=fn,
        hw_sass=tuple(hw), emu_sass=tuple(emu), emu_critical_path=crit,
        **kw,
    )


# -- scalar 32-bit ----------------------------------------------------------

def _vimax_s32(a, b):
    return np.maximum(_wrap_s32(a), _wrap_s32(b))


def _vimin_s32(a, b):
    return np.minimum(_wrap_s32(a), _wrap_s32(b))


def _vimax3_s32(a, b, c):
    return np.maximum(np.maximum(_wrap_s32(a), _wrap_s32(b)), _wrap_s32(c))


def _vimin3_s32(a, b, c):
    return np.minimum(np.minimum(_wrap_s32(a), _wrap_s32(b)), _wrap_s32(c))


def _vimax3_s32_relu(a, b, c):
    return _relu(_vimax3_s32(a, b, c))


def _vimin3_s32_relu(a, b, c):
    return _relu(_vimin3_s32(a, b, c))


def _viaddmax_s32(a, b, c):
    return np.maximum(_wrap_s32(_wrap_s32(a) + _wrap_s32(b)), _wrap_s32(c))


def _viaddmin_s32(a, b, c):
    return np.minimum(_wrap_s32(_wrap_s32(a) + _wrap_s32(b)), _wrap_s32(c))


def _viaddmax_s32_relu(a, b, c):
    return _relu(_viaddmax_s32(a, b, c))


def _vibmax_s32(a, b):
    """Returns (max, pred) — pred is True where a >= b."""
    a = _wrap_s32(a)
    b = _wrap_s32(b)
    return np.maximum(a, b), a >= b


def _vibmin_s32(a, b):
    a = _wrap_s32(a)
    b = _wrap_s32(b)
    return np.minimum(a, b), a <= b


def _viaddmax_u32(a, b, c):
    return np.maximum(_wrap_u32(_wrap_u32(a) + _wrap_u32(b)), _wrap_u32(c))


def _viaddmin_u32(a, b, c):
    return np.minimum(_wrap_u32(_wrap_u32(a) + _wrap_u32(b)), _wrap_u32(c))


# -- packed 16x2 ----------------------------------------------------------------

def _vimax3_s16x2(a, b, c):
    return _lanewise(lambda x, y, z: np.maximum(np.maximum(x, y), z),
                     a, b, c)


def _vimin3_s16x2(a, b, c):
    return _lanewise(lambda x, y, z: np.minimum(np.minimum(x, y), z),
                     a, b, c)


def _vimax3_s16x2_relu(a, b, c):
    return _lanewise(
        lambda x, y, z: _relu(np.maximum(np.maximum(x, y), z)), a, b, c
    )


def _viaddmax_s16x2(a, b, c):
    return _lanewise(
        lambda x, y, z: np.maximum(_wrap_s16(x + y), z), a, b, c
    )


def _viaddmax_s16x2_relu(a, b, c):
    return _lanewise(
        lambda x, y, z: _relu(np.maximum(_wrap_s16(x + y), z)), a, b, c
    )


# -- registry ----------------------------------------------------------------------

DPX_FUNCTIONS: Dict[str, DpxFunction] = {
    f.name: f
    for f in (
        _f("__vimax_s32", 2, _vimax_s32,
           hw=["VIMNMX"], emu=["IMNMX"], crit=1),
        _f("__vimin_s32", 2, _vimin_s32,
           hw=["VIMNMX"], emu=["IMNMX"], crit=1),
        _f("__vimax3_s32", 3, _vimax3_s32,
           hw=["VIMNMX3"], emu=["IMNMX", "IMNMX"], crit=2),
        _f("__vimin3_s32", 3, _vimin3_s32,
           hw=["VIMNMX3"], emu=["IMNMX", "IMNMX"], crit=2),
        _f("__vimax3_s32_relu", 3, _vimax3_s32_relu, relu=True,
           hw=["VIMNMX3.RELU"], emu=["IMNMX", "IMNMX", "IMNMX"], crit=3),
        _f("__vimin3_s32_relu", 3, _vimin3_s32_relu, relu=True,
           hw=["VIMNMX3.RELU"], emu=["IMNMX", "IMNMX", "IMNMX"], crit=3),
        _f("__viaddmax_s32", 3, _viaddmax_s32,
           hw=["VIADDMNMX"], emu=["IADD3", "IMNMX"], crit=2),
        _f("__viaddmin_s32", 3, _viaddmin_s32,
           hw=["VIADDMNMX"], emu=["IADD3", "IMNMX"], crit=2),
        _f("__viaddmax_s32_relu", 3, _viaddmax_s32_relu, relu=True,
           hw=["VIADDMNMX.RELU"], emu=["IADD3", "IMNMX", "IMNMX"], crit=3),
        _f("__viaddmax_u32", 3, _viaddmax_u32, unsigned=True,
           hw=["VIADDMNMX.U32"], emu=["IADD3", "IMNMX.U32"], crit=2),
        _f("__viaddmin_u32", 3, _viaddmin_u32, unsigned=True,
           hw=["VIADDMNMX.U32"], emu=["IADD3", "IMNMX.U32"], crit=2),
        _f("__vibmax_s32", 2, _vibmax_s32,
           hw=["VIMNMX"], emu=["IMNMX", "ISETP"], crit=2,
           emu_optimized_away=True),
        _f("__vibmin_s32", 2, _vibmin_s32,
           hw=["VIMNMX"], emu=["IMNMX", "ISETP"], crit=2,
           emu_optimized_away=True),
        _f("__vimax3_s16x2", 3, _vimax3_s16x2, packed=True,
           hw=["VIMNMX3.S16X2"],
           emu=["PRMT", "PRMT", "PRMT", "IMNMX", "IMNMX", "IMNMX",
                "IMNMX", "PRMT"],
           crit=5),
        _f("__vimin3_s16x2", 3, _vimin3_s16x2, packed=True,
           hw=["VIMNMX3.S16X2"],
           emu=["PRMT", "PRMT", "PRMT", "IMNMX", "IMNMX", "IMNMX",
                "IMNMX", "PRMT"],
           crit=5),
        _f("__vimax3_s16x2_relu", 3, _vimax3_s16x2_relu, packed=True,
           relu=True,
           hw=["VIMNMX3.S16X2.RELU"],
           emu=["PRMT", "PRMT", "PRMT", "IMNMX", "IMNMX", "IMNMX",
                "IMNMX", "IMNMX", "IMNMX", "PRMT"],
           crit=6),
        _f("__viaddmax_s16x2", 3, _viaddmax_s16x2, packed=True,
           hw=["VIADDMNMX.S16X2"],
           emu=["PRMT", "PRMT", "PRMT", "IADD3", "IADD3", "IMNMX",
                "IMNMX", "PRMT", "PRMT", "LOP3"],
           crit=6),
        _f("__viaddmax_s16x2_relu", 3, _viaddmax_s16x2_relu, packed=True,
           relu=True,
           hw=["VIADDMNMX.S16X2.RELU"],
           emu=["PRMT", "PRMT", "PRMT", "IADD3", "IADD3", "IMNMX",
                "IMNMX", "IMNMX", "IMNMX", "PRMT", "PRMT", "LOP3",
                "LOP3"],
           crit=7),
    )
}


def get_dpx_function(name: str) -> DpxFunction:
    try:
        return DPX_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown DPX function {name!r}; known: "
            f"{sorted(DPX_FUNCTIONS)}"
        ) from None
