"""PTX → SASS lowering, per architecture.

This pass answers the question the paper answers with ``cuobjdump``:
*what does the machine actually execute for a given PTX instruction?*
(Table VI).  Beyond the SASS mnemonics, the lowering decides which
functional unit runs the op — which is where two of the paper's
headline findings live:

* On Hopper, INT4 ``mma`` no longer maps to the tensor core at all: it
  lowers to a long sequence of CUDA-core ``IMAD`` instructions, so its
  performance falls far short of tensor-core levels.
* DPX intrinsics lower to single hardware instructions (``VIMNMX``,
  ``VIADDMNMX``) on Hopper but to multi-instruction CUDA-core
  emulation sequences on Ampere/Ada.

Every per-generation decision is data-driven: the rules gate on
capability flags and lowering deltas of the target's
:class:`~repro.arch.packs.ArchPack` (``int4_mma_emulated``,
``mma_peak_keys``, ``has_wgmma``, …).  ``lower`` accepts either an
:class:`~repro.arch.Architecture` member or an ``ArchPack`` directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import singledispatch
from typing import List, Sequence, Tuple, Union

from repro.arch import ArchPack, Architecture
from repro.isa.dtypes import DType
from repro.isa.memory_ops import CpAsync, LoadGlobal, LoadShared, Mapa, TmaCopy
from repro.isa.mma import MmaInstruction, WgmmaInstruction

#: lowering targets: the enum identity or a pack itself
ArchLike = Union[Architecture, ArchPack]


def _pack_of(arch: ArchLike) -> ArchPack:
    return arch.pack if isinstance(arch, Architecture) else arch

__all__ = [
    "FunctionalUnit",
    "SassInstruction",
    "LoweredOp",
    "UnsupportedInstruction",
    "lower",
    "lower_dpx",
    "sass_table",
]


class UnsupportedInstruction(ValueError):
    """The instruction does not exist on the target architecture."""


class FunctionalUnit(enum.Enum):
    """The SM datapath a SASS instruction executes on."""

    TENSOR_CORE = "tensor core"
    CUDA_CORE_INT = "cuda core (INT32)"
    CUDA_CORE_FP32 = "cuda core (FP32)"
    CUDA_CORE_FP64 = "fp64 unit"
    DPX = "dpx unit"
    LSU = "load/store unit"
    TMA = "tma engine"


@dataclass(frozen=True)
class SassInstruction:
    """One SASS mnemonic plus the unit it occupies."""

    mnemonic: str
    unit: FunctionalUnit
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class LoweredOp:
    """The SASS sequence one PTX instruction lowers to."""

    ptx: str
    arch: ArchLike
    sass: Tuple[SassInstruction, ...]

    @property
    def primary(self) -> SassInstruction:
        return self.sass[0]

    @property
    def instruction_count(self) -> int:
        return sum(s.count for s in self.sass)

    @property
    def uses_tensor_core(self) -> bool:
        return any(s.unit is FunctionalUnit.TENSOR_CORE for s in self.sass)


# -- SASS mnemonic helpers -----------------------------------------------------

_MMA_FAMILY = {
    DType.FP16: "HMMA",
    DType.BF16: "HMMA",
    DType.TF32: "HMMA",
    DType.FP64: "DMMA",
    DType.INT8: "IMMA",
    DType.INT4: "IMMA",
    DType.BIN1: "BMMA",
}

_GMMA_FAMILY = {
    DType.FP16: "HGMMA",
    DType.BF16: "HGMMA",
    DType.TF32: "HGMMA",
    DType.E4M3: "QGMMA",
    DType.E5M2: "QGMMA",
    DType.INT8: "IGMMA",
    DType.BIN1: "BGMMA",
}


def _mma_suffix(ab: DType, cd: DType) -> str:
    """Type suffix of an (H|I|B)MMA mnemonic."""
    if ab is DType.BIN1:
        return "AND.POPC"
    if ab in (DType.INT8, DType.INT4):
        t = "S8" if ab is DType.INT8 else "S4"
        return f"{t}.{t}"
    suffix = cd.paper_label  # F16 / F32 style
    suffix = {"FP16": "F16", "FP32": "F32", "FP64": "F64"}[suffix]
    if ab is DType.TF32:
        suffix += ".TF32"
    elif ab is DType.BF16:
        suffix += ".BF16"
    return suffix


def _gmma_suffix(ab: DType, cd: DType) -> str:
    if ab is DType.BIN1:
        return "AND.POPC"
    if ab is DType.INT8:
        return "S8.S8"
    suffix = {"FP16": "F16", "FP32": "F32"}[cd.paper_label]
    if ab is DType.TF32:
        suffix += ".TF32"
    elif ab is DType.BF16:
        suffix += ".BF16"
    elif ab in (DType.E4M3, DType.E5M2):
        v = ab.name  # E4M3 / E5M2
        suffix += f".{v}.{v}"
    return suffix


# -- lowering rules ------------------------------------------------------------


@singledispatch
def lower(instr, arch: ArchLike) -> LoweredOp:
    """Lower a PTX instruction descriptor to SASS for ``arch``."""
    raise TypeError(f"no lowering rule for {type(instr).__name__}")


@lower.register
def _lower_mma(instr: MmaInstruction, arch: ArchLike) -> LoweredOp:
    pack = _pack_of(arch)
    ab, cd = instr.ab_type, instr.cd_type
    if ab.is_fp8:
        # There are no FP8 mma instructions on any architecture — the
        # "×" cells of Table VI.  FP8 is reachable only through wgmma.
        raise UnsupportedInstruction(
            f"no mma instruction exists for FP8 inputs on "
            f"{pack.name} (FP8 requires Hopper wgmma)"
        )
    if not pack.supports_mma_input(ab.peak_key):
        # Older generations predate the dtype entirely (e.g. Volta has
        # only FP16 tensor-core inputs).
        raise UnsupportedInstruction(
            f"{pack.name} tensor cores do not accept {ab.paper_label} "
            "mma inputs"
        )
    if instr.sparse and not pack.has_sparse_mma:
        raise UnsupportedInstruction(
            f"sparse mma requires sm_80+; {pack.name} has no sparsity "
            "selector hardware"
        )
    if ab is DType.INT4 and pack.int4_mma_emulated:
        # Hopper dropped INT4 tensor-core support: the PTX still
        # compiles, but to CUDA-core integer MACs (one 32-lane IMAD per
        # 32 scalar MACs) plus register moves.
        imads = max(instr.effective_shape.macs // 32, 1)
        return LoweredOp(
            ptx=instr.opcode,
            arch=arch,
            sass=(
                SassInstruction("IMAD.MOV.U32", FunctionalUnit.CUDA_CORE_INT,
                                count=imads),
            ),
        )
    eff = instr.effective_shape
    shape_tag = f"{eff.m}{eff.n}{eff.k}"
    sp = "SP." if instr.sparse else ""
    mnemonic = f"{_MMA_FAMILY[ab]}.{sp}{shape_tag}.{_mma_suffix(ab, cd)}"
    return LoweredOp(
        ptx=instr.opcode,
        arch=arch,
        sass=(SassInstruction(mnemonic, FunctionalUnit.TENSOR_CORE),),
    )


@lower.register
def _lower_wgmma(instr: WgmmaInstruction, arch: ArchLike) -> LoweredOp:
    pack = _pack_of(arch)
    if not pack.has_wgmma:
        raise UnsupportedInstruction(
            f"wgmma requires Hopper (sm_90); {pack.name} has no GMMA "
            "SASS instructions"
        )
    eff = instr.effective_shape
    sp = "SP." if instr.sparse else ""
    mnemonic = (
        f"{_GMMA_FAMILY[instr.ab_type]}.{sp}"
        f"{eff.m}x{eff.n}x{eff.k}."
        f"{_gmma_suffix(instr.ab_type, instr.cd_type)}"
    )
    return LoweredOp(
        ptx=instr.opcode,
        arch=arch,
        sass=(SassInstruction(mnemonic, FunctionalUnit.TENSOR_CORE),),
    )


@lower.register
def _lower_ld_global(instr: LoadGlobal, arch: ArchLike) -> LoweredOp:
    bits = instr.bytes_per_thread * 8
    mnemonic = f"LDG.E.{bits}" if bits <= 64 else "LDG.E.128"
    if instr.cache_op.value == "cg":
        mnemonic += ".STRONG.GPU"
    return LoweredOp(
        ptx=instr.opcode, arch=arch,
        sass=(SassInstruction(mnemonic, FunctionalUnit.LSU),),
    )


@lower.register
def _lower_ld_shared(instr: LoadShared, arch: ArchLike) -> LoweredOp:
    bits = instr.bytes_per_thread * 8
    return LoweredOp(
        ptx=instr.opcode, arch=arch,
        sass=(SassInstruction(f"LDS.{bits}", FunctionalUnit.LSU),),
    )


@lower.register
def _lower_cp_async(instr: CpAsync, arch: ArchLike) -> LoweredOp:
    if not _pack_of(arch).has_cp_async:
        raise UnsupportedInstruction("cp.async requires sm_80+")
    return LoweredOp(
        ptx=instr.opcode, arch=arch,
        sass=(SassInstruction("LDGSTS.E.BYPASS.128",
                              FunctionalUnit.LSU),),
    )


@lower.register
def _lower_tma(instr: TmaCopy, arch: ArchLike) -> LoweredOp:
    if not _pack_of(arch).has_tma:
        raise UnsupportedInstruction("TMA requires Hopper (sm_90)")
    return LoweredOp(
        ptx=instr.opcode, arch=arch,
        sass=(SassInstruction("UBLKCP", FunctionalUnit.TMA),),
    )


@lower.register
def _lower_mapa(instr: Mapa, arch: ArchLike) -> LoweredOp:
    if not _pack_of(arch).has_distributed_shared_memory:
        raise UnsupportedInstruction(
            "mapa requires Hopper thread-block clusters"
        )
    return LoweredOp(
        ptx=instr.opcode, arch=arch,
        sass=(SassInstruction("MAPA", FunctionalUnit.CUDA_CORE_INT),),
    )


# -- DPX lowering ---------------------------------------------------------------


def lower_dpx(
    name: str,
    *,
    arch: ArchLike,
    hw_mnemonics: Sequence[str],
    emulation_mnemonics: Sequence[str],
) -> LoweredOp:
    """Lower a DPX intrinsic.

    On Hopper the intrinsic maps to the short hardware sequence
    (``VIMNMX``-family); elsewhere the compiler emits the CUDA-core
    emulation sequence.  The caller (:mod:`repro.dpx`) supplies both,
    since the sequences are per-function properties.
    """
    if _pack_of(arch).has_dpx_hardware:
        sass = tuple(
            SassInstruction(m, FunctionalUnit.DPX) for m in hw_mnemonics
        )
    else:
        sass = tuple(
            SassInstruction(m, FunctionalUnit.CUDA_CORE_INT)
            for m in emulation_mnemonics
        )
    return LoweredOp(ptx=name, arch=arch, sass=sass)


# -- Table VI ------------------------------------------------------------------


def sass_table(arch: ArchLike) -> List[dict]:
    """Regenerate Table VI: SASS for each A/B–C/D tensor-core pairing.

    Returns one row per (A/B, C/D) pair with the ``mma`` and ``wgmma``
    lowering (or ``×`` where the instruction does not exist) for the
    given architecture (enum member or pack — no implicit default).
    """
    from repro.isa.mma import mma_shapes, wgmma_k  # local to avoid cycle

    pairs = [
        (DType.FP16, DType.FP16),
        (DType.FP16, DType.FP32),
        (DType.TF32, DType.FP32),
        (DType.E4M3, DType.FP16),
        (DType.E5M2, DType.FP16),
        (DType.E4M3, DType.FP32),
        (DType.E5M2, DType.FP32),
        (DType.INT8, DType.INT32),
        (DType.INT4, DType.INT32),
        (DType.BIN1, DType.INT32),
    ]
    rows = []
    for ab, cd in pairs:
        # mma column — largest legal shape, matching the paper.
        try:
            shape = mma_shapes(ab)[-1]
            m = lower(MmaInstruction(ab, cd, shape), arch)
            mma_cell = m.primary.mnemonic
        except (ValueError, UnsupportedInstruction):
            mma_cell = "×"
        # wgmma column — N=256, matching the paper.
        try:
            wgmma_k(ab)  # raises for INT4
            w = lower(WgmmaInstruction(ab, cd, n=256), arch)
            wgmma_cell = w.primary.mnemonic
        except (ValueError, UnsupportedInstruction):
            wgmma_cell = "×"
        rows.append({
            "A/B": ab.paper_label + (f" ({ab.name})" if ab.is_fp8 else ""),
            "C/D": cd.paper_label,
            "mma": mma_cell,
            "wgmma": wgmma_cell,
        })
    return rows
