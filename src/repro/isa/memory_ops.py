"""Memory-access instruction descriptors.

Models the PTX memory operations the paper's microbenchmarks use:

* ``ld.global`` with cache-operator modifiers — ``.ca`` (cache at all
  levels, used to warm L1) and ``.cg`` (cache global, L2 only; used to
  isolate L2 in the latency tests),
* ``ld.shared`` / ``st.shared``,
* ``ldmatrix`` (the tile loader feeding ``mma`` register operands),
* ``cp.async`` (Ampere asynchronous global→shared copies),
* TMA bulk tensor copies (Hopper ``cp.async.bulk.tensor``),
* ``mapa`` (maps a shared-memory address into a peer block of the same
  cluster — the distributed-shared-memory primitive).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "CacheOp",
    "LoadGlobal",
    "LoadShared",
    "Ldmatrix",
    "CpAsync",
    "TmaCopy",
    "Mapa",
]


class CacheOp(enum.Enum):
    """PTX load cache operators (the ``.ca``/``.cg`` modifiers)."""

    CACHE_ALL = "ca"        # cache in L1 and L2
    CACHE_GLOBAL = "cg"     # cache in L2, bypass L1
    STREAMING = "cs"        # evict-first
    LAST_USE = "lu"
    VOLATILE = "cv"         # don't cache

    @property
    def allocates_l1(self) -> bool:
        return self in (CacheOp.CACHE_ALL, CacheOp.STREAMING,
                        CacheOp.LAST_USE)

    @property
    def allocates_l2(self) -> bool:
        return self is not CacheOp.VOLATILE


@dataclass(frozen=True)
class LoadGlobal:
    """A warp-level ``ld.global`` of ``width_bytes`` per thread.

    ``vector_width`` counts elements per thread (e.g. 4 for ``float4``
    vectorised loads, the paper's FP32.v4 rows).
    """

    width_bytes: int = 4
    vector_width: int = 1
    cache_op: CacheOp = CacheOp.CACHE_ALL

    def __post_init__(self) -> None:
        if self.width_bytes not in (1, 2, 4, 8):
            raise ValueError("element width must be 1/2/4/8 bytes")
        if self.vector_width not in (1, 2, 4):
            raise ValueError("vector width must be 1, 2 or 4")
        if self.width_bytes * self.vector_width > 16:
            raise ValueError("PTX loads move at most 16 bytes per thread")

    @property
    def bytes_per_thread(self) -> int:
        return self.width_bytes * self.vector_width

    @property
    def bytes_per_warp(self) -> int:
        return 32 * self.bytes_per_thread

    @property
    def opcode(self) -> str:
        vec = f".v{self.vector_width}" if self.vector_width > 1 else ""
        return (
            f"ld.global.{self.cache_op.value}{vec}.b{self.width_bytes * 8}"
        )


@dataclass(frozen=True)
class LoadShared:
    """A warp-level ``ld.shared``."""

    width_bytes: int = 4
    vector_width: int = 1

    def __post_init__(self) -> None:
        if self.width_bytes * self.vector_width > 16:
            raise ValueError("PTX loads move at most 16 bytes per thread")

    @property
    def bytes_per_thread(self) -> int:
        return self.width_bytes * self.vector_width

    @property
    def bytes_per_warp(self) -> int:
        return 32 * self.bytes_per_thread

    @property
    def opcode(self) -> str:
        vec = f".v{self.vector_width}" if self.vector_width > 1 else ""
        return f"ld.shared{vec}.b{self.width_bytes * 8}"


@dataclass(frozen=True)
class Ldmatrix:
    """``ldmatrix`` — loads 8×8 16-bit tiles from shared memory into
    the register layout ``mma`` expects.  ``num`` ∈ {1, 2, 4} tiles."""

    num: int = 4
    transpose: bool = False

    def __post_init__(self) -> None:
        if self.num not in (1, 2, 4):
            raise ValueError("ldmatrix moves 1, 2 or 4 tiles")

    @property
    def bytes_per_warp(self) -> int:
        return self.num * 8 * 8 * 2

    @property
    def opcode(self) -> str:
        t = ".trans" if self.transpose else ""
        return f"ldmatrix.sync.aligned.m8n8.x{self.num}{t}.shared.b16"


@dataclass(frozen=True)
class CpAsync:
    """Ampere+ asynchronous global→shared copy (``cp.async``).

    Per-thread granules of 4/8/16 bytes; the hardware path bypasses the
    register file, freeing the issuing warp immediately — the property
    the two-stage pipeline of §III-D2 exploits.
    """

    bytes_per_thread: int = 16
    bypass_l1: bool = True

    def __post_init__(self) -> None:
        if self.bytes_per_thread not in (4, 8, 16):
            raise ValueError("cp.async moves 4, 8 or 16 bytes per thread")

    @property
    def bytes_per_warp(self) -> int:
        return 32 * self.bytes_per_thread

    @property
    def opcode(self) -> str:
        op = "cg" if self.bypass_l1 else "ca"
        return f"cp.async.{op}.shared.global [..], [..], " \
               f"{self.bytes_per_thread}"


@dataclass(frozen=True)
class TmaCopy:
    """Hopper Tensor Memory Accelerator bulk tensor copy.

    A single descriptor-driven instruction moves a whole tile; the TMA
    engine computes addresses, so no threads are occupied during the
    transfer at all (vs one warp issuing many ``cp.async``).
    """

    tile_bytes: int
    dims: int = 2
    multicast: bool = False     # cluster multicast (DSM integration)

    def __post_init__(self) -> None:
        if self.tile_bytes <= 0:
            raise ValueError("tile_bytes must be positive")
        if not 1 <= self.dims <= 5:
            raise ValueError("TMA supports 1-5 dimensional tensors")

    @property
    def opcode(self) -> str:
        mc = ".multicast::cluster" if self.multicast else ""
        return f"cp.async.bulk.tensor.{self.dims}d{mc}.shared::cluster" \
               f".global"


@dataclass(frozen=True)
class Mapa:
    """``mapa`` — map a shared-memory address to block ``target_rank``
    of the cluster (compiled from ``cluster.map_shared_rank``)."""

    target_rank: int

    def __post_init__(self) -> None:
        if self.target_rank < 0:
            raise ValueError("target_rank must be non-negative")

    @property
    def opcode(self) -> str:
        return "mapa.shared::cluster.u32"
