"""``mma`` / ``mma.sp`` / ``wgmma`` / ``wgmma.sp`` instruction model.

The descriptors here carry everything the functional and timing models
need: the matrix shape, the operand/accumulator types, sparsity, and —
for ``wgmma`` — where the A operand lives (shared memory vs register
file, the "SS"/"RS" modes of Tables VIII–X).

Shape validation follows the PTX ISA 8.x rules:

* ``mma``: warp-synchronous, fixed shapes per input type
  (``m16n8k16``/``m16n8k8`` for FP16, ``m16n8k4``/``m16n8k8`` for TF32,
  ``m16n8k16``/``m16n8k32`` for INT8, …).
* ``mma.sp``: the 2:4 structured-sparse variant; the instruction
  modifier's ``k`` is twice the dense compressed ``k`` (the paper's
  Table VII lists compressed shapes).
* ``wgmma``: warp-group (128-thread) asynchronous, ``m64nNkK`` with
  ``N`` any multiple of 8 up to 256 and ``K`` fixed per input type
  (16 for FP16/BF16, 8 for TF32, 32 for FP8/INT8, 256 for binary).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.isa.dtypes import DType, accumulator_types

__all__ = [
    "MatrixShape",
    "OperandSource",
    "MmaInstruction",
    "WgmmaInstruction",
    "mma_shapes",
    "wgmma_k",
    "valid_wgmma_n",
]


@dataclass(frozen=True, order=True)
class MatrixShape:
    """An ``m × n × k`` MMA tile shape."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("shape dimensions must be positive")

    @property
    def modifier(self) -> str:
        """PTX shape modifier, e.g. ``m16n8k16``."""
        return f"m{self.m}n{self.n}k{self.k}"

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of one instruction at this shape."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """FLOPs (or int-ops): one MAC = one multiply + one add."""
        return 2 * self.macs

    def __str__(self) -> str:
        return self.modifier


class OperandSource(enum.Enum):
    """Where ``wgmma`` reads its A operand from (B is always shared).

    The paper's "SS" mode loads both A and B from shared memory; "RS"
    keeps A in the register file.  This distinction drives the sparse
    SS throughput penalty of Table IX.
    """

    SHARED = "SS"
    REGISTER = "RS"


# -- mma shape tables ---------------------------------------------------------

#: Dense ``mma`` shapes per input type (PTX ISA; the pairs the paper tests).
_MMA_SHAPES: Dict[DType, Tuple[MatrixShape, ...]] = {
    DType.FP16: (MatrixShape(16, 8, 8), MatrixShape(16, 8, 16)),
    DType.BF16: (MatrixShape(16, 8, 8), MatrixShape(16, 8, 16)),
    DType.TF32: (MatrixShape(16, 8, 4), MatrixShape(16, 8, 8)),
    DType.FP64: (MatrixShape(8, 8, 4),),
    DType.INT8: (MatrixShape(16, 8, 16), MatrixShape(16, 8, 32)),
    DType.INT4: (MatrixShape(16, 8, 32), MatrixShape(16, 8, 64)),
    DType.BIN1: (MatrixShape(16, 8, 128), MatrixShape(16, 8, 256)),
}

#: ``wgmma`` K dimension per input type (``m64nNkK``).
_WGMMA_K: Dict[DType, int] = {
    DType.FP16: 16,
    DType.BF16: 16,
    DType.TF32: 8,
    DType.E4M3: 32,
    DType.E5M2: 32,
    DType.INT8: 32,
    DType.BIN1: 256,
}

_WGMMA_MAX_N = 256
_WGMMA_N_STEP = 8


def mma_shapes(ab: DType) -> Tuple[MatrixShape, ...]:
    """Legal dense ``mma`` shapes for input type ``ab``."""
    try:
        return _MMA_SHAPES[ab]
    except KeyError:
        raise ValueError(f"no mma shapes defined for {ab}") from None


def wgmma_k(ab: DType) -> int:
    """The fixed ``k`` of ``wgmma`` for input type ``ab``."""
    try:
        return _WGMMA_K[ab]
    except KeyError:
        raise ValueError(
            f"wgmma does not support input type {ab} "
            "(note: no INT4 wgmma exists)"
        ) from None


def valid_wgmma_n() -> Tuple[int, ...]:
    """All legal ``wgmma`` N values (multiples of 8 up to 256)."""
    return tuple(range(_WGMMA_N_STEP, _WGMMA_MAX_N + 1, _WGMMA_N_STEP))


# -- instruction descriptors ---------------------------------------------------


@dataclass(frozen=True)
class MmaInstruction:
    """A warp-level ``mma.sync`` (or ``mma.sp``) instruction.

    ``shape`` is the *compressed* shape for sparse instructions, i.e.
    the shape whose operand data actually moves; the PTX modifier's
    ``k`` is ``2 * shape.k`` when ``sparse``.
    """

    ab_type: DType
    cd_type: DType
    shape: MatrixShape
    sparse: bool = False

    def __post_init__(self) -> None:
        if self.cd_type not in accumulator_types(self.ab_type):
            raise ValueError(
                f"accumulator {self.cd_type} is illegal for input "
                f"{self.ab_type}; legal: {accumulator_types(self.ab_type)}"
            )
        if self.shape not in mma_shapes(self.ab_type):
            raise ValueError(
                f"shape {self.shape} is not a legal mma shape for "
                f"{self.ab_type}; legal: "
                f"{[str(s) for s in mma_shapes(self.ab_type)]}"
            )
        if self.sparse and self.ab_type in (DType.BIN1, DType.FP64):
            raise ValueError(f"mma.sp does not support {self.ab_type}")

    @property
    def warps(self) -> int:
        """``mma`` executes on a single warp."""
        return 1

    @property
    def threads(self) -> int:
        return 32

    @property
    def synchronous(self) -> bool:
        return True

    @property
    def effective_shape(self) -> MatrixShape:
        """Shape of the math performed (sparse doubles ``k``)."""
        if self.sparse:
            return MatrixShape(self.shape.m, self.shape.n, 2 * self.shape.k)
        return self.shape

    @property
    def flops(self) -> int:
        """Useful FLOPs per instruction (sparse counts the full 2·k)."""
        return self.effective_shape.flops

    @property
    def opcode(self) -> str:
        op = "mma.sp.sync" if self.sparse else "mma.sync"
        eff = self.effective_shape
        return (
            f"{op}.aligned.{eff.modifier}.row.col"
            f".{self.cd_type.ptx_name}.{self.ab_type.ptx_name}"
            f".{self.ab_type.ptx_name}.{self.cd_type.ptx_name}"
        )

    def operand_bytes(self) -> Dict[str, float]:
        """Register-file bytes per matrix operand, per instruction."""
        s = self.shape
        return {
            "A": s.m * s.k * self.ab_type.bytes,
            "B": s.k * s.n * self.ab_type.bytes,
            "C": s.m * s.n * self.cd_type.bytes,
            # Sparse metadata: 2 bits per compressed element pair.
            "meta": (s.m * s.k // 4) if self.sparse else 0.0,
        }


@dataclass(frozen=True)
class WgmmaInstruction:
    """A warp-group-level asynchronous ``wgmma`` (Hopper only).

    Computes ``D = A × B (+ D)`` over one warp group (4 warps).  Unlike
    ``mma`` the accumulator is D itself (no separate C), and A/B can be
    read straight from shared memory.
    """

    ab_type: DType
    cd_type: DType
    n: int
    sparse: bool = False
    a_source: OperandSource = OperandSource.SHARED

    def __post_init__(self) -> None:
        if self.ab_type not in _WGMMA_K:
            raise ValueError(
                f"wgmma does not support input type {self.ab_type}"
            )
        if self.cd_type not in accumulator_types(self.ab_type):
            raise ValueError(
                f"accumulator {self.cd_type} is illegal for input "
                f"{self.ab_type}"
            )
        if (self.n % _WGMMA_N_STEP) or not (
            _WGMMA_N_STEP <= self.n <= _WGMMA_MAX_N
        ):
            raise ValueError(
                f"wgmma N must be a multiple of {_WGMMA_N_STEP} in "
                f"[{_WGMMA_N_STEP}, {_WGMMA_MAX_N}]; got {self.n}"
            )
        if self.sparse and self.ab_type is DType.BIN1:
            raise ValueError("wgmma.sp does not support binary inputs")

    @property
    def m(self) -> int:
        return 64

    @property
    def k(self) -> int:
        """Compressed ``k`` (data that moves); math ``k`` when dense."""
        return _WGMMA_K[self.ab_type]

    @property
    def warps(self) -> int:
        """``wgmma`` is issued by a full warp group."""
        return 4

    @property
    def threads(self) -> int:
        return 128

    @property
    def synchronous(self) -> bool:
        return False

    @property
    def shape(self) -> MatrixShape:
        return MatrixShape(self.m, self.n, self.k)

    @property
    def effective_shape(self) -> MatrixShape:
        if self.sparse:
            return MatrixShape(self.m, self.n, 2 * self.k)
        return self.shape

    @property
    def flops(self) -> int:
        return self.effective_shape.flops

    @property
    def opcode(self) -> str:
        op = "wgmma.mma_async.sp" if self.sparse else "wgmma.mma_async"
        eff = self.effective_shape
        return (
            f"{op}.sync.aligned.{eff.modifier}"
            f".{self.cd_type.ptx_name}.{self.ab_type.ptx_name}"
            f".{self.ab_type.ptx_name}"
        )

    def shared_memory_bytes(self) -> float:
        """Shared-memory bytes one instruction reads.

        B always streams from shared memory (``k × n`` at the *math*
        ``k``).  In SS mode A streams from shared memory too — and for
        sparse instructions the shared copy of A is the *unpruned*
        ``m × 2k`` tile, pruned on the fly against the metadata (the
        mechanism behind Table IX's SS throughput deficit).  In RS mode
        A comes pre-pruned from the register file and costs no shared
        bandwidth.
        """
        eff_k = self.effective_shape.k
        b_bytes = eff_k * self.n * self.ab_type.bytes
        if self.a_source is OperandSource.REGISTER:
            return b_bytes
        a_k = eff_k if self.sparse else self.k
        return b_bytes + self.m * a_k * self.ab_type.bytes

    def register_bytes(self) -> float:
        """Register-file bytes per instruction (A in RS mode, plus D)."""
        d_bytes = self.m * self.n * self.cd_type.bytes
        if self.a_source is OperandSource.REGISTER:
            return d_bytes + self.m * self.k * self.ab_type.bytes
        return d_bytes
