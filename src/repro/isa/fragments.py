"""``mma`` register-fragment layouts.

The dissection literature the paper builds on (Jia et al., Sun et al.)
documents *which thread's registers hold which matrix element* for the
warp-synchronous ``mma`` instructions — essential for writing the
``ldmatrix`` shuffles and epilogues of a real kernel.  This module
reproduces those layouts from the PTX ISA specification for the shapes
the paper benchmarks:

* 16-bit inputs (FP16/BF16): ``m16n8k8`` and ``m16n8k16``,
* 32-bit inputs (TF32): ``m16n8k4`` and ``m16n8k8``,
* 8-bit inputs (INT8): ``m16n8k16`` and ``m16n8k32``,
* accumulators (FP16/FP32/INT32): ``m16n8``.

Layouts are returned as dense ownership maps: for every matrix element
the owning lane (0–31) and its index within that lane's fragment.  The
test suite verifies the bijection (every element stored exactly once)
and the documented anchor positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.isa.dtypes import DType
from repro.isa.mma import MatrixShape, MmaInstruction

__all__ = ["FragmentLayout", "a_layout", "b_layout", "c_layout",
           "layouts_for"]


@dataclass(frozen=True)
class FragmentLayout:
    """Ownership map of one matrix operand across the warp.

    ``lane[r, c]`` is the thread (0–31) holding element (r, c);
    ``index[r, c]`` is the element's position in that thread's
    fragment (``a0, a1, …`` in PTX-ISA notation).
    """

    operand: str
    rows: int
    cols: int
    lane: np.ndarray
    index: np.ndarray

    @property
    def elements_per_thread(self) -> int:
        return self.rows * self.cols // 32

    @property
    def fragment_size(self) -> int:
        """Elements per thread as seen by the index map."""
        return int(self.index.max()) + 1

    def registers_per_thread(self, elem_bits: int) -> int:
        """32-bit registers each thread devotes to this operand."""
        if elem_bits <= 0 or 32 % min(elem_bits, 32):
            raise ValueError("element width must divide 32")
        per_reg = max(32 // elem_bits, 1)
        return -(-self.fragment_size // per_reg)

    def owner(self, row: int, col: int) -> Tuple[int, int]:
        """(lane, fragment index) of one element."""
        return int(self.lane[row, col]), int(self.index[row, col])

    def is_bijection(self) -> bool:
        """Every (lane, index) pair owns exactly one element."""
        pairs = set(zip(self.lane.ravel().tolist(),
                        self.index.ravel().tolist()))
        return len(pairs) == self.rows * self.cols


def _group_ids():
    """PTX-ISA thread decomposition: groupID = lane>>2, tid = lane&3."""
    lanes = np.arange(32)
    return lanes >> 2, lanes & 3


def a_layout(shape: MatrixShape, ab: DType) -> FragmentLayout:
    """Matrix A (m × k) fragment layout."""
    m, k = shape.m, shape.k
    if m != 16:
        raise ValueError("documented layouts cover m16n8 shapes")
    lane = np.empty((m, k), dtype=np.int64)
    index = np.empty((m, k), dtype=np.int64)
    per_row_pair = _elems_per_thread_row(ab)
    # Generic PTX rule for m16n8 A operands: lanes tile a
    # (8 rows × 4 threads) grid; each thread holds ``w`` consecutive
    # elements per (row-half, k-chunk), where w = 32 bits / elem width
    # capped at the chunk, and k is split into 8-element × w chunks.
    w = per_row_pair
    chunk = 4 * w                       # k-width covered by one pass
    if k % chunk:
        raise ValueError(
            f"shape {shape} is not a documented A layout for {ab}"
        )
    for r in range(m):
        g_row = r % 8                   # row within the 8-row half
        half = r // 8                   # 0: rows 0-7, 1: rows 8-15
        for c in range(k):
            pass_idx = c // chunk       # which k-chunk
            within = c % chunk
            tid = within // w
            sub = within % w
            lane[r, c] = g_row * 4 + tid
            index[r, c] = sub + half * w + pass_idx * 2 * w
    return FragmentLayout("A", m, k, lane, index)


def b_layout(shape: MatrixShape, ab: DType) -> FragmentLayout:
    """Matrix B (k × n) fragment layout."""
    k, n = shape.k, shape.n
    if n != 8:
        raise ValueError("documented layouts cover m16n8 shapes")
    w = _elems_per_thread_row(ab)
    chunk = 4 * w
    if k % chunk:
        raise ValueError(
            f"shape {shape} is not a documented B layout for {ab}"
        )
    lane = np.empty((k, n), dtype=np.int64)
    index = np.empty((k, n), dtype=np.int64)
    for r in range(k):
        pass_idx = r // chunk
        within = r % chunk
        tid = within // w
        sub = within % w
        for c in range(n):
            lane[r, c] = c * 4 + tid
            index[r, c] = sub + pass_idx * w
    return FragmentLayout("B", k, n, lane, index)


def c_layout(shape: MatrixShape, cd: DType) -> FragmentLayout:
    """Accumulator C/D (m × n) fragment layout (same for all widths)."""
    m, n = shape.m, shape.n
    if (m, n) != (16, 8):
        raise ValueError("documented layouts cover m16n8 accumulators")
    lane = np.empty((m, n), dtype=np.int64)
    index = np.empty((m, n), dtype=np.int64)
    for r in range(m):
        g_row = r % 8
        half = r // 8
        for c in range(n):
            lane[r, c] = g_row * 4 + c // 2
            index[r, c] = (c % 2) + half * 2
    return FragmentLayout("C", m, n, lane, index)


def layouts_for(instr: MmaInstruction):
    """(A, B, C) layouts of one dense mma instruction."""
    if instr.sparse:
        raise ValueError(
            "sparse fragments hold compressed A; use the dense shape "
            "plus repro.tensorcore.sparse for the metadata layout"
        )
    return (
        a_layout(instr.shape, instr.ab_type),
        b_layout(instr.shape, instr.ab_type),
        c_layout(MatrixShape(instr.shape.m, instr.shape.n, 1),
                 instr.cd_type),
    )


def _elems_per_thread_row(ab: DType) -> int:
    """Consecutive k-elements one thread holds per row per pass
    (32-bit register width over the element width, min 1)."""
    return max(32 // ab.bits, 1)
