"""PTX instruction-set model and SASS lowering.

The paper benchmarks at the PTX level and disassembles to SASS to see
what the hardware actually executes (Table VI).  This subpackage models
both layers:

* :mod:`repro.isa.dtypes` — the PTX element types tensor cores accept.
* :mod:`repro.isa.mma` — ``mma``/``mma.sp``/``wgmma``/``wgmma.sp``
  instruction descriptors with shape validation against the PTX ISA.
* :mod:`repro.isa.memory_ops` — loads/stores with cache modifiers,
  ``ldmatrix``, ``cp.async``, TMA copies and ``mapa``.
* :mod:`repro.isa.lowering` — the per-architecture PTX → SASS lowering
  pass, including the Hopper INT4 fallback onto CUDA-core ``IMAD`` and
  the DPX hardware-vs-emulation split.
"""

from __future__ import annotations

from repro.isa.dtypes import DType, accumulator_types, input_types
from repro.isa.mma import (
    MatrixShape,
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
    mma_shapes,
    valid_wgmma_n,
    wgmma_k,
)
from repro.isa.memory_ops import (
    CacheOp,
    CpAsync,
    Ldmatrix,
    LoadGlobal,
    LoadShared,
    Mapa,
    TmaCopy,
)
from repro.isa.lowering import (
    FunctionalUnit,
    LoweredOp,
    SassInstruction,
    lower,
    sass_table,
)
from repro.isa.fragments import (
    FragmentLayout,
    a_layout,
    b_layout,
    c_layout,
    layouts_for,
)
from repro.isa.descriptor import (
    SmemDescriptor,
    Swizzle,
    decode_descriptor,
    descriptor_for_tile,
    encode_descriptor,
)

__all__ = [
    "DType",
    "accumulator_types",
    "input_types",
    "MatrixShape",
    "MmaInstruction",
    "WgmmaInstruction",
    "OperandSource",
    "mma_shapes",
    "valid_wgmma_n",
    "wgmma_k",
    "CacheOp",
    "CpAsync",
    "Ldmatrix",
    "LoadGlobal",
    "LoadShared",
    "Mapa",
    "TmaCopy",
    "FunctionalUnit",
    "LoweredOp",
    "SassInstruction",
    "lower",
    "sass_table",
    "FragmentLayout",
    "a_layout",
    "b_layout",
    "c_layout",
    "layouts_for",
    "SmemDescriptor",
    "Swizzle",
    "encode_descriptor",
    "decode_descriptor",
    "descriptor_for_tile",
]
