"""Hopper shared-memory matrix descriptors.

``wgmma`` does not take shared-memory *pointers*: its A (in SS mode)
and B operands are 64-bit **matrix descriptors** encoding the tile's
base address, leading-dimension and stride byte offsets, base offset
and swizzle mode.  Building these correctly is the fiddliest part of
hand-writing Hopper tensor-core kernels; this module implements the
documented encoding (PTX ISA 8.x, "Matrix Descriptor Format"):

===========  ========  ====================================
bits         field     meaning
===========  ========  ====================================
13:0         start     base address, 128-byte aligned, >> 4
29:16        lbo       leading-dimension byte offset >> 4
45:32        sbo       stride-dimension byte offset >> 4
51:49        base_off  matrix base offset (swizzle phase)
63:62        swizzle   0 none / 1 128B / 2 64B / 3 32B
===========  ========  ====================================

Round-tripping through :func:`encode_descriptor` /
:func:`decode_descriptor` is exact for every legal field combination
(property-tested), and validation rejects the misalignments that
silently corrupt real kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Swizzle", "SmemDescriptor", "encode_descriptor",
           "decode_descriptor"]

_ALIGN = 16          # all encoded offsets are in 16-byte units
_FIELD14 = (1 << 14) - 1


class Swizzle(enum.Enum):
    """Shared-memory swizzle mode of the tile."""

    NONE = 0
    B128 = 1
    B64 = 2
    B32 = 3

    @property
    def bytes(self) -> int:
        """Swizzle atom span in bytes (0 = unswizzled)."""
        return {0: 0, 1: 128, 2: 64, 3: 32}[self.value]


@dataclass(frozen=True)
class SmemDescriptor:
    """Decoded wgmma matrix descriptor."""

    start_address: int          # byte address in shared memory
    leading_byte_offset: int
    stride_byte_offset: int
    base_offset: int = 0
    swizzle: Swizzle = Swizzle.NONE

    def __post_init__(self) -> None:
        for name, v, bits in (
            ("start_address", self.start_address, 14),
            ("leading_byte_offset", self.leading_byte_offset, 14),
            ("stride_byte_offset", self.stride_byte_offset, 14),
        ):
            if v < 0:
                raise ValueError(f"{name} must be non-negative")
            if v % _ALIGN:
                raise ValueError(
                    f"{name} ({v}) must be {_ALIGN}-byte aligned"
                )
            if (v // _ALIGN) > _FIELD14:
                raise ValueError(f"{name} exceeds the {bits}-bit field")
        if not 0 <= self.base_offset < 8:
            raise ValueError("base_offset is a 3-bit field")


def encode_descriptor(desc: SmemDescriptor) -> int:
    """Pack a descriptor into its 64-bit register image."""
    word = 0
    word |= (desc.start_address // _ALIGN) & _FIELD14
    word |= ((desc.leading_byte_offset // _ALIGN) & _FIELD14) << 16
    word |= ((desc.stride_byte_offset // _ALIGN) & _FIELD14) << 32
    word |= (desc.base_offset & 0x7) << 49
    word |= (desc.swizzle.value & 0x3) << 62
    return word


def decode_descriptor(word: int) -> SmemDescriptor:
    """Unpack a 64-bit descriptor register image."""
    if not 0 <= word < (1 << 64):
        raise ValueError("descriptor must be a 64-bit value")
    return SmemDescriptor(
        start_address=(word & _FIELD14) * _ALIGN,
        leading_byte_offset=((word >> 16) & _FIELD14) * _ALIGN,
        stride_byte_offset=((word >> 32) & _FIELD14) * _ALIGN,
        base_offset=(word >> 49) & 0x7,
        swizzle=Swizzle((word >> 62) & 0x3),
    )


def descriptor_for_tile(*, base: int, rows: int, cols: int,
                        elem_bytes: int,
                        swizzle: Swizzle = Swizzle.B128,
                        row_major: bool = True) -> SmemDescriptor:
    """Build the descriptor for a dense (rows × cols) tile.

    Follows the canonical layout kernels use: the leading byte offset
    spans one core-matrix row (or column), the stride byte offset
    spans the 8-row core-matrix block.
    """
    if min(rows, cols, elem_bytes) <= 0:
        raise ValueError("tile dimensions must be positive")
    line = cols * elem_bytes if row_major else rows * elem_bytes
    lbo = line
    sbo = 8 * line
    if lbo % _ALIGN or sbo % _ALIGN:
        raise ValueError(
            f"tile line of {line} B is not {_ALIGN}-byte aligned; "
            "pad the leading dimension"
        )
    return SmemDescriptor(
        start_address=base,
        leading_byte_offset=lbo,
        stride_byte_offset=sbo,
        swizzle=swizzle,
    )
