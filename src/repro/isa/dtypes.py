"""PTX element data types for tensor-core instructions.

Maps each PTX type name onto its storage width and, for floats, the
bit-accurate codec in :mod:`repro.numerics`.  Also encodes the legal
input → accumulator pairings (the A/B → C/D columns of Tables VI–IX).
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.numerics import formats as _f
from repro.numerics.formats import FloatFormat

__all__ = ["DType", "input_types", "accumulator_types"]


class DType(enum.Enum):
    """A PTX-level element type (matrix operand or accumulator)."""

    FP64 = "f64"
    FP32 = "f32"
    TF32 = "tf32"
    FP16 = "f16"
    BF16 = "bf16"
    E4M3 = "e4m3"
    E5M2 = "e5m2"
    INT32 = "s32"
    INT8 = "s8"
    INT4 = "s4"
    BIN1 = "b1"

    # -- storage ----------------------------------------------------------

    @property
    def bits(self) -> int:
        return {
            DType.FP64: 64,
            DType.FP32: 32,
            DType.TF32: 32,   # TF32 occupies a full 32-bit register
            DType.FP16: 16,
            DType.BF16: 16,
            DType.E4M3: 8,
            DType.E5M2: 8,
            DType.INT32: 32,
            DType.INT8: 8,
            DType.INT4: 4,
            DType.BIN1: 1,
        }[self]

    @property
    def bytes(self) -> float:
        return self.bits / 8.0

    @property
    def is_float(self) -> bool:
        return self in (
            DType.FP64, DType.FP32, DType.TF32, DType.FP16, DType.BF16,
            DType.E4M3, DType.E5M2,
        )

    @property
    def is_fp8(self) -> bool:
        return self in (DType.E4M3, DType.E5M2)

    @property
    def float_format(self) -> Optional[FloatFormat]:
        """The numerics codec for float types (None for integers)."""
        return {
            DType.FP64: _f.FP64,
            DType.FP32: _f.FP32,
            DType.TF32: _f.TF32,
            DType.FP16: _f.FP16,
            DType.BF16: _f.BF16,
            DType.E4M3: _f.E4M3,
            DType.E5M2: _f.E5M2,
        }.get(self)

    @property
    def ptx_name(self) -> str:
        return self.value

    # -- table labels -------------------------------------------------------

    @property
    def paper_label(self) -> str:
        """The label the paper's tables use for this type."""
        return {
            DType.FP64: "FP64",
            DType.FP32: "FP32",
            DType.TF32: "TF32",
            DType.FP16: "FP16",
            DType.BF16: "BF16",
            DType.E4M3: "FP8",
            DType.E5M2: "FP8",
            DType.INT32: "INT32",
            DType.INT8: "INT8",
            DType.INT4: "INT4",
            DType.BIN1: "Binary",
        }[self]

    # -- peak-rate lookup key ------------------------------------------------

    @property
    def peak_key(self) -> str:
        """Key into :attr:`TensorCoreSpec.dense_peak_tflops`."""
        return {
            DType.FP64: "fp64",
            DType.TF32: "tf32",
            DType.FP16: "fp16",
            DType.BF16: "bf16",
            DType.E4M3: "fp8",
            DType.E5M2: "fp8",
            DType.INT8: "int8",
            DType.INT4: "int4",
            DType.BIN1: "binary",
        }[self]


#: Legal A/B input → C/D accumulator pairings for tensor-core MMA.
_ACCUMULATORS: dict[DType, Tuple[DType, ...]] = {
    DType.FP64: (DType.FP64,),
    DType.TF32: (DType.FP32,),
    DType.FP16: (DType.FP16, DType.FP32),
    DType.BF16: (DType.FP32,),
    DType.E4M3: (DType.FP16, DType.FP32),
    DType.E5M2: (DType.FP16, DType.FP32),
    DType.INT8: (DType.INT32,),
    DType.INT4: (DType.INT32,),
    DType.BIN1: (DType.INT32,),
}


def input_types() -> Tuple[DType, ...]:
    """All types usable as MMA A/B operands."""
    return tuple(_ACCUMULATORS)


def accumulator_types(ab: DType) -> Tuple[DType, ...]:
    """Accumulator types legal for input type ``ab``."""
    try:
        return _ACCUMULATORS[ab]
    except KeyError:
        raise ValueError(
            f"{ab} is not a valid MMA input type"
        ) from None
