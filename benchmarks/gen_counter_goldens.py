#!/usr/bin/env python
"""(Re)generate the golden counter baselines the drift gate diffs.

Usage::

    python benchmarks/gen_counter_goldens.py [--check] [OUTDIR]

For each experiment in :data:`GOLDEN_EXPERIMENTS` this runs the
experiment fresh (no result cache — a cache hit would skip the
instrumented code entirely) under the default
:class:`~repro.core.context.RunContext` and writes its labeled
counter bank as ``<experiment>.json`` (``hopperdissect.counters/v2``)
into ``OUTDIR`` (default ``tests/golden/counters/``).

Counters are exact integers and the simulator is deterministic, so
the files only change when the *instrumentation or the model*
changes — exactly the events the gate exists to surface.  After an
intentional change, rerun this script and commit the diff; the
review then shows precisely which counters moved.

``--check`` regenerates in memory and exits 1 if any committed golden
differs (the CI drift step), without touching the tree.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.context import RunContext  # noqa: E402
from repro.obs import ObsSession  # noqa: E402
from repro.perf import run_experiments  # noqa: E402

#: the gated experiment set: every "dark engine" family the
#: instrumentation PR lit up (DSM Fig 8–9, async Table XIII–XIV, the
#: TMA extension) plus the memory-hierarchy probe whose counters have
#: been live the longest — all fast and byte-deterministic.
GOLDEN_EXPERIMENTS = (
    "table04_mem_latency",
    "fig08_dsm_rbc",
    "fig09_dsm_histogram",
    "table13_async_h800",
    "table14_async_a100",
    "ext_tma_vs_cpasync",
)

DEFAULT_OUTDIR = Path(__file__).resolve().parent.parent \
    / "tests" / "golden" / "counters"


def golden_text(name: str) -> str:
    """The counters/v2 document of one fresh experiment run."""
    from repro.obs.export import context_labels, render_counters_v2

    session = ObsSession()
    ctx = session.bind(RunContext())
    with session.activate():
        run_experiments([name], jobs=1, cache=None, context=ctx)
    return render_counters_v2(session.experiment_counters(),
                              session.orchestration_counters(),
                              labels=context_labels(ctx),
                              context=ctx)


def main(argv) -> int:
    check = "--check" in argv
    rest = [a for a in argv if a != "--check"]
    outdir = Path(rest[0]) if rest else DEFAULT_OUTDIR
    stale = []
    outdir.mkdir(parents=True, exist_ok=True)
    for name in GOLDEN_EXPERIMENTS:
        text = golden_text(name)
        path = outdir / f"{name}.json"
        if check:
            on_disk = path.read_text() if path.exists() else None
            if on_disk != text:
                stale.append(name)
                print(f"{path}: STALE"
                      if on_disk is not None else f"{path}: MISSING")
            else:
                print(f"{path}: OK")
        else:
            path.write_text(text)
            print(f"wrote {path}")
    if stale:
        print(f"\n{len(stale)} golden(s) out of date — rerun "
              f"benchmarks/gen_counter_goldens.py and commit",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
