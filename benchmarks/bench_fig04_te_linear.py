"""Fig 4 — te.Linear throughput sweep (exp id F4).

Also benchmarks a real (small) FP8 forward through the functional
Linear module, exercising the amax-scale quantisation path.
"""

from __future__ import annotations

import numpy as np

from repro.core import run_experiment
from repro.te import Linear, fp8_autocast


def test_fp8_linear_forward(benchmark):
    lin = Linear(512, 512, bias=False)
    x = np.random.default_rng(0).normal(size=(64, 512))

    def fwd():
        with fp8_autocast():
            return lin(x)

    y = benchmark(fwd)
    assert y.shape == (64, 512)


def test_fig04_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "fig04_te_linear")
    paper_artefact("fig04_te_linear")
