#!/usr/bin/env python
"""Validate an emitted trace file against the Chrome trace-event shape.

Usage::

    python benchmarks/validate_trace.py TRACE.json [TRACE2.jsonl ...]

Accepts both export formats of :mod:`repro.obs.trace`:

* Chrome/Perfetto JSON — an object with a ``traceEvents`` list whose
  entries carry ``name``/``ph``/``pid``/``tid`` (integer ids after
  export)
  and numeric ``ts`` on non-metadata events, plus the ``process_name``
  metadata rows that label the ``wall`` and ``sim`` clock domains.
* compact JSONL — one raw event object per line, string track names.

Exit code 0 when every file validates; prints one summary line per
file.  CI runs this as the trace-schema smoke step.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: phases repro.obs.trace may legitimately emit
_PHASES = {"X", "i", "C", "M"}


def _check_event(ev: dict, *, mapped_ids: bool, where: str) -> None:
    missing = {"name", "ph", "pid", "tid"} - set(ev)
    if missing:
        raise ValueError(f"{where}: missing keys {sorted(missing)}")
    if ev["ph"] not in _PHASES:
        raise ValueError(f"{where}: unknown phase {ev['ph']!r}")
    if mapped_ids and not (isinstance(ev["pid"], int)
                           and isinstance(ev["tid"], int)):
        raise ValueError(f"{where}: exported pid/tid must be ints")
    if ev["ph"] != "M":
        if not isinstance(ev.get("ts"), (int, float)):
            raise ValueError(f"{where}: non-numeric ts")
    if ev["ph"] == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            raise ValueError(f"{where}: complete span needs dur >= 0")


def validate_chrome(path: Path) -> int:
    payload = json.loads(path.read_text())
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError(f"{path}: empty or missing traceEvents")
    for i, ev in enumerate(events):
        _check_event(ev, mapped_ids=True, where=f"{path}[{i}]")
    tracks = {ev["args"]["name"] for ev in events
              if ev.get("name") == "process_name"}
    if "wall" not in tracks:
        raise ValueError(f"{path}: no 'wall' track metadata")
    return len(events)


def validate_jsonl(path: Path) -> int:
    n = 0
    with open(path) as fh:
        for i, line in enumerate(fh):
            if not line.strip():
                continue
            _check_event(json.loads(line), mapped_ids=False,
                         where=f"{path}:{i + 1}")
            n += 1
    if not n:
        raise ValueError(f"{path}: no events")
    return n


def main(argv) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: validate_trace.py TRACE [TRACE ...]",
              file=sys.stderr)
        return 2
    for arg in argv:
        path = Path(arg)
        if path.suffix == ".jsonl":
            n = validate_jsonl(path)
        else:
            n = validate_chrome(path)
        print(f"{path}: OK ({n} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
