"""Ablation 2 (DESIGN.md §4) — async pipeline depth.

Deeper cp.async rings hide more latency per step but double/triple the
shared-memory footprint, cutting resident blocks — the model exposes
both sides of the trade-off.
"""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.asynccopy import AsyncCopyConfig, CopyVariant, \
    TiledMatmulModel


def test_pipeline_depth_tradeoff(benchmark):
    m = TiledMatmulModel(get_device("H800"))

    def sweep():
        return {
            stages: m.throughput_gflops(AsyncCopyConfig(
                8, 4, CopyVariant.ASYNC, pipeline_stages=stages))
            for stages in (2, 3, 4)
        }

    by_depth = benchmark(sweep)
    # at low occupancy a deeper ring hides more latency
    assert by_depth[3] >= by_depth[2]


def test_deeper_ring_costs_occupancy():
    m = TiledMatmulModel(get_device("H800"))
    shallow = AsyncCopyConfig(32, 32, CopyVariant.ASYNC,
                              pipeline_stages=2)
    deep = AsyncCopyConfig(32, 32, CopyVariant.ASYNC,
                           pipeline_stages=8)
    assert deep.smem_bytes_per_block == 4 * shallow.smem_bytes_per_block
    assert m.resident_blocks(deep) <= m.resident_blocks(shallow)


def test_single_stage_is_rejected():
    with pytest.raises(ValueError):
        AsyncCopyConfig(8, 1, CopyVariant.ASYNC, pipeline_stages=1)
