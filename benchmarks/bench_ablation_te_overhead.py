"""Ablation 5 (DESIGN.md §4) — TE quantisation overhead.

Zeroing the cast/amax/scale operators moves the FP8-vs-FP16 crossover
from N ≈ 4–8k down to (essentially) N = 0: the small-matrix FP8 loss in
Figs 3–4 is pure conversion overhead, not tensor-core behaviour.
"""

from __future__ import annotations

from repro.arch import get_device
from repro.te import CostModel, Precision


def test_overhead_sets_the_crossover(benchmark):
    cm = CostModel(get_device("H800"))

    def crossover(include_overheads: bool) -> int:
        for n in (256, 512, 1024, 2048, 4096, 8192, 16384):
            fp8 = cm.linear_tflops(n, Precision.FP8,
                                   include_overheads=include_overheads)
            fp16 = cm.linear_tflops(n, Precision.FP16)
            if fp8 > fp16:
                return n
        return 1 << 30

    with_ov = benchmark(crossover, True)
    without = crossover(False)
    assert with_ov >= 2048          # overhead pushes crossover out
    assert without <= 512           # ablated: FP8 wins almost instantly
    assert without < with_ov
