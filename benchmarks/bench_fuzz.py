#!/usr/bin/env python
"""Work-stealing dispatch vs chunked fan-out on a heavy-tailed mix.

Usage::

    python benchmarks/bench_fuzz.py              # report
    python benchmarks/bench_fuzz.py --check      # CI gate
    python benchmarks/bench_fuzz.py \
        --merge BENCH_perf.current.json          # + record

The fuzz driver streams ~1000 scenarios whose costs are wildly
skewed — most check in around a millisecond, a handful (deep passes,
big DSM ladders) cost two orders of magnitude more.  Chunked
``pool.map`` pre-assigns each worker ``n/jobs`` contiguous items, so
whichever worker drew the heavy cluster finishes long after the rest
sit idle.  :func:`repro.perf.parallel_map` with ``unordered=True``
dispatches one item at a time through the work-stealing pool
(:func:`repro.perf.parallel_imap`) and re-merges by index — same
results, same order, saturated workers.

The workload here makes the skew explicit and *dispatch-policy
shaped*: 1000 jobs, each sleeping for its declared cost, with a dozen
~150 ms heavies clustered at the front of the list (the worst case
for contiguous chunking) and ~1 ms lights everywhere else.  Sleeping
jobs release the GIL and the CPU, so the pool reaches wall-clock
parallelism on any core count and the measured ratio is purely the
dispatch discipline, not machine-dependent arithmetic throughput.
Both passes run the *same* jobs through the *same*
``parallel_map`` — only ``unordered``/``chunksize`` differ — and the
result lists are cross-checked for equality before any timing is
reported.

Gate (``--check``): work-stealing wall time beats chunked
``pool.map`` by ``>= --min-speedup`` (default 2x) on the mix above.

``--merge`` injects both timings as ``fuzz_map_chunked`` /
``fuzz_map_stealing`` pseudo-experiments into an existing
``BENCH_perf.json`` snapshot.

Also importable by pytest (``pytest benchmarks/``) for the
pytest-benchmark harness.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import List, Tuple

from repro.perf import parallel_map

_JOBS = 4
_N_JOBS = 1000
_N_HEAVY = 12
_HEAVY_S = 0.150
_LIGHT_S = 0.001


def job_mix(n: int = _N_JOBS, heavies: int = _N_HEAVY) -> List[float]:
    """Per-job sleep costs: a cluster of heavies at the head of the
    list (all land in worker 0's chunk under contiguous chunking),
    lights everywhere else."""
    costs = [_LIGHT_S] * n
    for i in range(min(heavies, n)):
        costs[i] = _HEAVY_S
    return costs


def sleep_job(cost_s: float) -> int:
    """A job whose cost is its input — sleeps, then returns a
    deterministic token so the two passes can be cross-checked.
    Module-level for pickling."""
    time.sleep(cost_s)
    return round(cost_s * 1e6)


def run_chunked(costs: List[float],
                repeat: int) -> Tuple[float, List[int]]:
    """Contiguous chunks, one per worker — the pre-PR dispatch."""
    chunksize = math.ceil(len(costs) / _JOBS)
    best = float("inf")
    results: List[int] = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        results = parallel_map(sleep_job, costs, jobs=_JOBS,
                               chunksize=chunksize)
        best = min(best, time.perf_counter() - t0)
    return best, results


def run_stealing(costs: List[float],
                 repeat: int) -> Tuple[float, List[int]]:
    """Work-stealing dispatch: one item at a time, re-merged by
    index."""
    best = float("inf")
    results: List[int] = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        results = parallel_map(sleep_job, costs, jobs=_JOBS,
                               chunksize=1, unordered=True)
        best = min(best, time.perf_counter() - t0)
    return best, results


def merge_into_bench(path: Path, chunked_s: float,
                     stealing_s: float) -> None:
    """Add both timings as pseudo-experiments to a bench snapshot."""
    data = json.loads(path.read_text())
    if data.get("schema") != 1:
        raise ValueError(
            f"{path}: unsupported bench schema {data.get('schema')!r}")
    exps = data.setdefault("experiments", {})
    exps["fuzz_map_chunked"] = {"cached": False,
                                "wall_s": round(chunked_s, 6)}
    exps["fuzz_map_stealing"] = {"cached": False,
                                 "wall_s": round(stealing_s, 6)}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeat", type=int, default=1,
                    help="best-of-N timing (default: 1)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless the gate holds")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="stealing-vs-chunked wall-time ratio the "
                         "--check gate requires (default: 2.0)")
    ap.add_argument("--merge", default=None, metavar="BENCH.json",
                    help="inject fuzz_map_{chunked,stealing} into an "
                         "existing BENCH_perf.json snapshot")
    args = ap.parse_args(argv)

    costs = job_mix()
    chunked_s, chunked_r = run_chunked(costs, args.repeat)
    stealing_s, stealing_r = run_stealing(costs, args.repeat)
    if chunked_r != stealing_r:
        print("FAIL: chunked and stealing results disagree",
              file=sys.stderr)
        return 1
    speedup = chunked_s / stealing_s if stealing_s else float("inf")
    print(f"{len(costs)} sleep-jobs "
          f"({_N_HEAVY} x {_HEAVY_S * 1e3:.0f} ms heavies at the "
          f"head, {_LIGHT_S * 1e3:.0f} ms lights), "
          f"{_JOBS} workers, best of {args.repeat}:")
    print(f"  chunked pool.map    {chunked_s * 1e3:8.1f} ms")
    print(f"  work-stealing map   {stealing_s * 1e3:8.1f} ms  "
          f"({speedup:.1f}x)")

    if args.merge:
        merge_into_bench(Path(args.merge), chunked_s, stealing_s)
        print(f"merged into {args.merge}")

    if args.check and speedup < args.min_speedup:
        print(f"FAIL: work-stealing speedup {speedup:.2f}x is below "
              f"the {args.min_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


# -- pytest-benchmark entry points ----------------------------------------


def test_stealing_matches_and_beats_chunked():
    costs = job_mix(200, 6)
    chunked_s, chunked_r = run_chunked(costs, 1)
    stealing_s, stealing_r = run_stealing(costs, 1)
    assert chunked_r == stealing_r
    assert stealing_s < chunked_s


def test_bench_fuzz_map_chunked(benchmark):
    costs = job_mix(200, 6)
    benchmark(lambda: run_chunked(costs, 1))


def test_bench_fuzz_map_stealing(benchmark):
    costs = job_mix(200, 6)
    benchmark(lambda: run_stealing(costs, 1))


if __name__ == "__main__":
    raise SystemExit(main())
