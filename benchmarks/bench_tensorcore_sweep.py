#!/usr/bin/env python
"""Vectorized tensor-core sweeps vs the scalar reference walk.

Usage::

    python benchmarks/bench_tensorcore_sweep.py            # report
    python benchmarks/bench_tensorcore_sweep.py --check    # CI gate
    python benchmarks/bench_tensorcore_sweep.py \
        --merge BENCH_perf.current.json                    # + record

Times the full legal mma grid (every dtype pair × shape × dense/
sparse, on every device) and the full wgmma N-sweep (Hopper) twice:
once through the scalar per-instruction walk
(:class:`ScalarTensorCoreTimingModel`) and once through the batched
:class:`MmaSweep`/:class:`WgmmaSweep` constructors.  Both paths price
the identical instruction list — ``tests/test_vectorized_equivalence``
pins them bit-equal, this script pins the *speed* claim.

``--merge`` injects the two timings as ``tc_sweep_scalar`` /
``tc_sweep_vectorized`` pseudo-experiments into an existing
``BENCH_perf.json`` snapshot, so the committed baseline tracks the
sweep trajectory next to the real experiments.  ``--check`` exits
non-zero unless the vectorized pass beats the scalar walk.

Also importable by pytest (``pytest benchmarks/``) for the
pytest-benchmark harness.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Tuple

from repro.arch import get_device, list_devices
from repro.isa.dtypes import DType, accumulator_types
from repro.isa.mma import (
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
    mma_shapes,
    valid_wgmma_n,
    wgmma_k,
)
from repro.tensorcore import (
    ScalarTensorCoreTimingModel,
    TensorCoreTimingModel,
)

_MMA_ABS = (DType.FP16, DType.BF16, DType.TF32, DType.FP64,
            DType.INT8, DType.INT4, DType.BIN1)
_WGMMA_ABS = (DType.FP16, DType.BF16, DType.TF32, DType.E4M3,
              DType.E5M2, DType.INT8, DType.BIN1)
#: replication factor — the legal grid alone is small enough that
#: timing noise would dominate; repeating it keeps both paths honest
#: without changing the work mix
_TILE = 40


def _price_mma(timing) -> None:
    """Read everything a :class:`SweepEntry` carries — the scalar
    dataclass is lazy, so the walk must touch the properties to do
    the work the sweep does eagerly."""
    timing.latency_clk
    timing.issue_interval_clk
    timing.throughput_tflops("zero")
    timing.throughput_tflops("rand")
    timing.fraction_of_peak()


def _price_wgmma(timing) -> None:
    timing.latency_clk
    timing.issue_interval_clk
    timing.throughput_tflops("zero")
    timing.throughput_tflops("rand")
    timing.fraction_of_peak()


def base_mma_grid() -> List[MmaInstruction]:
    instrs = []
    for ab in _MMA_ABS:
        for cd in sorted(accumulator_types(ab), key=lambda d: d.name):
            for shape in mma_shapes(ab):
                for sparse in (False, True):
                    if sparse and ab in (DType.BIN1, DType.FP64):
                        continue
                    instrs.append(MmaInstruction(ab, cd, shape,
                                                 sparse=sparse))
    return instrs


def base_wgmma_grid() -> List[WgmmaInstruction]:
    instrs = []
    for ab in _WGMMA_ABS:
        cd = sorted(accumulator_types(ab), key=lambda d: d.name)[0]
        for n in valid_wgmma_n():
            for src in (OperandSource.SHARED, OperandSource.REGISTER):
                instrs.append(WgmmaInstruction(ab, cd, n,
                                               a_source=src))
    return instrs


def mma_grids() -> List[Tuple[object, List[MmaInstruction]]]:
    """Per-device instruction lists, filtered to combos the scalar
    path prices cleanly (some dtype pairs have no peak entry on some
    parts — the sweep maps those to NaN, the scalar walk raises)."""
    grids = []
    for d in list_devices():
        dev = get_device(d)
        model = ScalarTensorCoreTimingModel(dev)
        ok = []
        for instr in base_mma_grid():
            try:
                _price_mma(model.mma(instr))
            except (KeyError, ValueError):
                continue
            ok.append(instr)
        grids.append((dev, ok * _TILE))
    return grids


def wgmma_grid() -> Tuple[object, List[WgmmaInstruction]]:
    dev = get_device("H800")
    model = ScalarTensorCoreTimingModel(dev)
    ok = []
    for instr in base_wgmma_grid():
        try:
            _price_wgmma(model.wgmma(instr))
        except (KeyError, ValueError):
            continue
        ok.append(instr)
    return dev, ok * (_TILE // 8)


def time_scalar(repeat: int) -> float:
    grids = mma_grids()
    hopper, wgmma_instrs = wgmma_grid()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for dev, instrs in grids:
            model = ScalarTensorCoreTimingModel(dev)
            for instr in instrs:
                _price_mma(model.mma(instr))
        model = ScalarTensorCoreTimingModel(hopper)
        for instr in wgmma_instrs:
            _price_wgmma(model.wgmma(instr))
        best = min(best, time.perf_counter() - t0)
    return best


def time_vectorized(repeat: int) -> float:
    grids = mma_grids()
    hopper, wgmma_instrs = wgmma_grid()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for dev, instrs in grids:
            TensorCoreTimingModel(dev).mma_sweep(instrs)
        TensorCoreTimingModel(hopper).wgmma_sweep(wgmma_instrs)
        best = min(best, time.perf_counter() - t0)
    return best


def merge_into_bench(path: Path, scalar_s: float,
                     vectorized_s: float) -> None:
    """Add both timings as pseudo-experiments to a bench snapshot."""
    data = json.loads(path.read_text())
    if data.get("schema") != 1:
        raise ValueError(
            f"{path}: unsupported bench schema {data.get('schema')!r}")
    exps = data.setdefault("experiments", {})
    exps["tc_sweep_scalar"] = {"cached": False,
                               "wall_s": round(scalar_s, 6)}
    exps["tc_sweep_vectorized"] = {"cached": False,
                                   "wall_s": round(vectorized_s, 6)}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeat", type=int, default=3,
                    help="best-of-N timing (default: 3)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless vectorized < scalar")
    ap.add_argument("--merge", default=None, metavar="BENCH.json",
                    help="inject tc_sweep_{scalar,vectorized} into an "
                         "existing BENCH_perf.json snapshot")
    args = ap.parse_args(argv)

    n = (sum(len(instrs) for _, instrs in mma_grids())
         + len(wgmma_grid()[1]))
    scalar_s = time_scalar(args.repeat)
    vectorized_s = time_vectorized(args.repeat)
    speedup = scalar_s / vectorized_s if vectorized_s else float("inf")
    print(f"{n} instruction prices per pass "
          f"(best of {args.repeat}):")
    print(f"  scalar walk     {scalar_s * 1e3:8.2f} ms")
    print(f"  vectorized sweep{vectorized_s * 1e3:8.2f} ms  "
          f"({speedup:.1f}x)")

    if args.merge:
        merge_into_bench(Path(args.merge), scalar_s, vectorized_s)
        print(f"merged into {args.merge}")

    if args.check and vectorized_s >= scalar_s:
        print("FAIL: vectorized sweep did not beat the scalar walk",
              file=sys.stderr)
        return 1
    return 0


# -- pytest-benchmark entry points ----------------------------------------


def test_vectorized_sweep_beats_scalar():
    assert time_vectorized(3) < time_scalar(3)


def test_bench_scalar_walk(benchmark):
    grids = mma_grids()

    def scalar():
        for dev, instrs in grids:
            model = ScalarTensorCoreTimingModel(dev)
            for instr in instrs:
                _price_mma(model.mma(instr))

    benchmark(scalar)


def test_bench_vectorized_sweep(benchmark):
    grids = mma_grids()

    def vectorized():
        for dev, instrs in grids:
            TensorCoreTimingModel(dev).mma_sweep(instrs)

    benchmark(vectorized)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
