"""Table IX — sparse wgmma and the SS-mode penalty (exp id T9).

Benchmarks the full sparse data path: prune → compress → decompress →
functional sparse wgmma.
"""

from __future__ import annotations

import numpy as np

from repro.core import run_experiment
from repro.isa import WgmmaInstruction
from repro.isa.dtypes import DType
from repro.tensorcore import (
    compress_2_4,
    decompress_2_4,
    prune_2_4,
    wgmma_functional,
)


def test_sparse_pipeline(benchmark):
    rng = np.random.default_rng(0)
    a = rng.normal(size=(64, 32))
    b = rng.normal(size=(32, 64))
    instr = WgmmaInstruction(DType.FP16, DType.FP32, 64, sparse=True)

    def pipeline():
        op = compress_2_4(prune_2_4(a))
        return wgmma_functional(instr, decompress_2_4(op), b)

    d = benchmark(pipeline)
    assert d.shape == (64, 64)


def test_compression_throughput(benchmark):
    a = np.random.default_rng(1).normal(size=(256, 512))
    op = benchmark(compress_2_4, a)
    assert op.values.shape == (256, 256)


def test_table09_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table09_wgmma_sparse")
    paper_artefact("table09_wgmma_sparse")
