#!/usr/bin/env python
"""(Re)generate ``docs/counters.md`` from the counter catalog.

Usage::

    python benchmarks/gen_counter_catalog.py [--check] [OUTPUT]

Renders :data:`repro.obs.catalog.CATALOG` — the central registry of
every counter family the simulator emits — to the markdown catalog
page (default ``docs/counters.md``).  ``--check`` compares instead of
writing and exits 1 when the committed page is stale; CI runs that as
the catalog-drift step, so adding a counter without cataloguing it
(or cataloguing without regenerating the page) fails the build.

As a second net, ``--check`` also verifies that every counter in the
committed golden baselines (``tests/golden/counters/*.json``) is
covered by a catalog entry.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.catalog import catalog_markdown, uncatalogued  # noqa: E402

REPO = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO / "docs" / "counters.md"
GOLDEN_DIR = REPO / "tests" / "golden" / "counters"


def golden_counter_names():
    names = set()
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        payload = json.loads(path.read_text())
        for bank in payload.get("experiments", {}).values():
            names.update(bank)
        names.update(payload.get("orchestration", {}))
    return names


def main(argv) -> int:
    check = "--check" in argv
    rest = [a for a in argv if a != "--check"]
    output = Path(rest[0]) if rest else DEFAULT_OUTPUT
    text = catalog_markdown()
    if not check:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text)
        print(f"wrote {output}")
        return 0
    ok = True
    on_disk = output.read_text() if output.exists() else None
    if on_disk != text:
        print(f"{output}: STALE — rerun "
              f"benchmarks/gen_counter_catalog.py and commit",
              file=sys.stderr)
        ok = False
    else:
        print(f"{output}: OK")
    missing = uncatalogued(golden_counter_names())
    if missing:
        print("counters in golden baselines with no catalog entry:",
              file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        ok = False
    else:
        print("golden baselines: every counter catalogued")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
