"""Table XII — LLM generation throughput (exp id T12)."""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.core import run_experiment
from repro.te import LLAMA_MODELS, LlmInferenceModel, Precision


@pytest.mark.parametrize("model_name", sorted(LLAMA_MODELS))
def test_estimate_per_model(benchmark, model_name):
    m = LlmInferenceModel(get_device("H800"))
    est = benchmark(m.estimate, LLAMA_MODELS[model_name],
                    Precision.BF16)
    assert est.status == "ok"


def test_workload_driven_generation(benchmark):
    m = LlmInferenceModel(get_device("H800"))
    est = benchmark(m.estimate_workload, LLAMA_MODELS["llama-3B"],
                    Precision.BF16, n_requests=64)
    assert est.tokens_per_second > 0


def test_table12_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table12_llm")
    paper_artefact("table12_llm")
