"""Benchmarks for the extension experiments (DESIGN.md E1–E5 + more).

Each extension artefact runs through the same harness discipline as
the paper tables: regenerate, check findings, time the regeneration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import list_experiments, run_experiment

_EXTENSIONS = [n for n in list_experiments() if n.startswith("ext_")]


@pytest.mark.parametrize("name", _EXTENSIONS)
def test_extension_artefact(benchmark, paper_artefact, name):
    benchmark.pedantic(run_experiment, args=(name,), rounds=1,
                       iterations=1)
    paper_artefact(name)


def test_trace_simulator_throughput(benchmark):
    """Raw simulation speed: instructions per second of wall time."""
    from repro.trace import SmSimulator, TraceBuilder
    traces = [TraceBuilder.independent_stream(500, latency=8.0,
                                              ii=2.0)
              for _ in range(8)]
    sim = SmSimulator()
    res = benchmark(sim.run, traces)
    assert res.instructions == 4000


def test_tiny_llama_generation(benchmark):
    from repro.te.llama import TinyLlama, TinyLlamaConfig
    model = TinyLlama(TinyLlamaConfig(vocab_size=64, hidden=32,
                                      layers=2, heads=4,
                                      ffn_hidden=64, max_seq=32))
    out = benchmark(model.generate, [1, 2, 3], 8)
    assert len(out) == 11


def test_kernel_model_grid(benchmark):
    from repro.arch import get_device
    from repro.sm import BlockConfig, KernelModel, KernelSpec
    km = KernelModel(get_device("H800"))
    specs = [
        KernelSpec(name=f"k{i}", block=BlockConfig(threads=256),
                   num_blocks=1024,
                   flops_per_thread=float(10 ** i),
                   dram_bytes_per_thread=64.0)
        for i in range(1, 6)
    ]
    ests = benchmark(lambda: [km.estimate(s) for s in specs])
    assert len(ests) == 5
