#!/usr/bin/env python
"""Steady-state chase engine vs the scalar P-chase loops.

Usage::

    python benchmarks/bench_pchase.py             # report
    python benchmarks/bench_pchase.py --check     # CI gate (>=5x)
    python benchmarks/bench_pchase.py \
        --merge BENCH_perf.current.json           # + record

Replays every pointer chase ``ext_cache_detection`` issues at **full**
fidelity — the capacity sweep (with its steady-state warmup passes),
the stride sweep and the conflict ladders, on all three paper devices
— twice: once through the scalar one-``load()``-per-hop reference
loops (the executable specs preserved as ``*_scalar``) and once
through the steady-state :class:`~repro.memory.chase.ChaseEngine`.

Only the chases themselves are timed.  The warm-up fills
(``warm_l1``/``warm_l2``/``warm_tlb``) are the *same* vectorized
helpers on both paths, so including them would dilute the comparison
with identical work; the chase loop is precisely what this engine
vectorized.  Both passes run the identical task list against
identically prepared hierarchies, and the bench cross-checks that the
summed cycles of every chase agree bit-for-bit before reporting —
``tests/test_memory_chase.py`` pins the full equivalence claim, this
script pins the *speed* claim.

``--merge`` injects the two timings as ``pchase_scalar`` /
``pchase_vectorized`` pseudo-experiments into an existing
``BENCH_perf.json`` snapshot.  ``--check`` exits non-zero unless the
engine beats the scalar chase by ``--min-speedup`` (default 5x).

Also importable by pytest (``pytest benchmarks/``) for the
pytest-benchmark harness.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Tuple

import numpy as np

from repro.arch import get_device
from repro.isa.memory_ops import CacheOp
from repro.memory import MemoryHierarchy
from repro.memory.cache_study import (PROBE_BUDGETS,
                                      capacity_sweep_sizes)
from repro.memory.chase import (ChaseEngine, chase_total_clk,
                                latency_counts)

_DEVICES = ("RTX4090", "A100", "H800")
_BUDGET = PROBE_BUDGETS["full"]
_STRIDES = (4, 8, 16, 32, 64, 128)
_STRIDE_ARRAY_KIB = 512
_MAX_WAYS = 16


@dataclass
class ChaseTask:
    """One chase of the detection workload: how to prepare the
    hierarchy (untimed) and which runs to chase over it (timed)."""

    label: str
    seq: np.ndarray
    runs: List[int]                  # iteration budgets, in order
    width: int
    op: CacheOp = CacheOp.CACHE_ALL
    setup: Callable[[MemoryHierarchy], None] = field(
        default=lambda mh: None)


def _conflict_set_stride(device) -> int:
    geo = device.cache
    l1_lines = geo.l1_size_bytes // geo.line_bytes
    return (l1_lines // geo.l1_associativity) * geo.line_bytes


def detection_tasks(device) -> List[ChaseTask]:
    """Every chase ``CacheProbe(device, fidelity="full").detect()``
    issues, in sweep order."""
    tasks: List[ChaseTask] = []
    warmup = _BUDGET["warmup_passes"]

    for kib in capacity_sweep_sizes(16, 1024):
        size = kib * 1024
        n = size // 128
        runs = ([warmup * n] if warmup else []) \
            + [_BUDGET["capacity_iters"]]
        tasks.append(ChaseTask(
            label=f"capacity/{kib}KiB",
            seq=np.arange(n, dtype=np.int64) * 128,
            runs=runs, width=32,
            setup=lambda mh, size=size: (mh.warm_l1(0, 0, size),
                                         mh.warm_tlb(0, size)),
        ))

    array = _STRIDE_ARRAY_KIB * 1024
    for stride in _STRIDES:
        n = array // stride
        tasks.append(ChaseTask(
            label=f"stride/{stride}B",
            seq=np.arange(n, dtype=np.int64) * stride,
            runs=[_BUDGET["stride_iters"]], width=4,
            setup=lambda mh: (mh.warm_tlb(0, array),
                              mh.warm_l2(0, array)),
        ))

    set_stride = _conflict_set_stride(device)
    for w in range(1, _MAX_WAYS + 1):
        span = (w - 1) * set_stride + 128
        tasks.append(ChaseTask(
            label=f"conflict/{w}way",
            seq=np.arange(w, dtype=np.int64) * set_stride,
            runs=[(1 + warmup) * w, _BUDGET["conflict_iters"]],
            width=32,
            setup=lambda mh, span=span: mh.warm_tlb(0, span),
        ))
    return tasks


def _chase_scalar(mh: MemoryHierarchy, task: ChaseTask,
                  iters: int) -> float:
    """The executable spec: one ``load()`` per hop."""
    addrs = task.seq.tolist()
    period = len(addrs)
    load = mh.load
    lats = np.empty(iters)
    for i in range(iters):
        lats[i] = load(addrs[i % period], task.width,
                       cache_op=task.op).latency_clk
    return chase_total_clk(latency_counts(lats))


def _chase_engine(mh: MemoryHierarchy, task: ChaseTask,
                  iters: int) -> float:
    return ChaseEngine(mh, size=task.width,
                       cache_op=task.op).run(
                           task.seq, iters).total_latency_clk


def run_workload(chase, repeat: int) -> Tuple[float, List[float]]:
    """Best-of-``repeat`` chase time over the full workload, plus the
    per-run cycle totals of the last pass (the cross-check)."""
    best = float("inf")
    totals: List[float] = []
    for _ in range(repeat):
        totals = []
        elapsed = 0.0
        for name in _DEVICES:
            device = get_device(name)
            for task in detection_tasks(device):
                mh = MemoryHierarchy(device)
                task.setup(mh)
                t0 = time.perf_counter()
                for iters in task.runs:
                    totals.append(chase(mh, task, iters))
                elapsed += time.perf_counter() - t0
        best = min(best, elapsed)
    return best, totals


def merge_into_bench(path: Path, scalar_s: float,
                     vectorized_s: float) -> None:
    """Add both timings as pseudo-experiments to a bench snapshot."""
    data = json.loads(path.read_text())
    if data.get("schema") != 1:
        raise ValueError(
            f"{path}: unsupported bench schema {data.get('schema')!r}")
    exps = data.setdefault("experiments", {})
    exps["pchase_scalar"] = {"cached": False,
                             "wall_s": round(scalar_s, 6)}
    exps["pchase_vectorized"] = {"cached": False,
                                 "wall_s": round(vectorized_s, 6)}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeat", type=int, default=3,
                    help="best-of-N timing (default: 3)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless the engine beats the "
                         "scalar chase by --min-speedup")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="speedup the --check gate requires "
                         "(default: 5.0)")
    ap.add_argument("--merge", default=None, metavar="BENCH.json",
                    help="inject pchase_{scalar,vectorized} into an "
                         "existing BENCH_perf.json snapshot")
    args = ap.parse_args(argv)

    n_chases = sum(len(t.runs) for d in _DEVICES
                   for t in detection_tasks(get_device(d)))
    scalar_s, scalar_totals = run_workload(_chase_scalar, args.repeat)
    vectorized_s, engine_totals = run_workload(_chase_engine,
                                               args.repeat)
    if scalar_totals != engine_totals:
        print("FAIL: engine and scalar chases disagree on summed "
              "cycles", file=sys.stderr)
        return 1
    speedup = scalar_s / vectorized_s if vectorized_s else float("inf")
    print(f"{n_chases} chases per pass (best of {args.repeat}):")
    print(f"  scalar chase loops  {scalar_s * 1e3:8.2f} ms")
    print(f"  steady-state engine {vectorized_s * 1e3:8.2f} ms  "
          f"({speedup:.1f}x)")

    if args.merge:
        merge_into_bench(Path(args.merge), scalar_s, vectorized_s)
        print(f"merged into {args.merge}")

    if args.check and speedup < args.min_speedup:
        print(f"FAIL: engine speedup {speedup:.2f}x is below the "
              f"{args.min_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


# -- pytest-benchmark entry points ----------------------------------------


def test_engine_matches_and_beats_scalar_chase():
    scalar_s, scalar_totals = run_workload(_chase_scalar, 1)
    vectorized_s, engine_totals = run_workload(_chase_engine, 1)
    assert scalar_totals == engine_totals
    assert vectorized_s < scalar_s


def test_bench_scalar_chase(benchmark):
    benchmark(lambda: run_workload(_chase_scalar, 1))


def test_bench_chase_engine(benchmark):
    benchmark(lambda: run_workload(_chase_engine, 1))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
