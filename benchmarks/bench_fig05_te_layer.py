"""Fig 5 — te.TransformerLayer latency sweep (exp id F5)."""

from __future__ import annotations

import numpy as np

from repro.arch import get_device
from repro.core import run_experiment
from repro.te import (
    CostModel,
    Precision,
    TransformerLayer,
    TransformerLayerConfig,
)


def test_layer_cost_sweep(benchmark):
    cm = CostModel(get_device("H800"))
    layers = {h: TransformerLayer(cfg) for h, cfg in
              TransformerLayerConfig.PAPER_CONFIGS.items()}

    def sweep():
        return {
            (h, p.name): layer.latency_ms(cm, precision=p)
            for h, layer in layers.items()
            for p in (Precision.FP8, Precision.FP16, Precision.FP32)
        }

    lat = benchmark(sweep)
    assert len(lat) == 15


def test_layer_forward_small(benchmark):
    layer = TransformerLayer(TransformerLayerConfig(128, 256, 4))
    x = np.random.default_rng(0).normal(size=(2, 16, 128))
    y = benchmark(layer.forward, x)
    assert y.shape == x.shape


def test_fig05_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "fig05_te_layer")
    paper_artefact("fig05_te_layer")
