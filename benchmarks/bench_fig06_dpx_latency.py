"""Fig 6 — DPX latency across architectures (exp id F6)."""

from __future__ import annotations

import numpy as np

from repro.core import run_experiment
from repro.dpx import get_dpx_function, pack_s16x2


def test_dpx_semantics_throughput(benchmark):
    """Vectorised execution of the heaviest intrinsic over 64k lanes."""
    f = get_dpx_function("__viaddmax_s16x2_relu")
    rng = np.random.default_rng(0)
    a = pack_s16x2(rng.integers(-100, 100, 65536),
                   rng.integers(-100, 100, 65536))
    b = pack_s16x2(rng.integers(-100, 100, 65536),
                   rng.integers(-100, 100, 65536))
    c = pack_s16x2(rng.integers(-100, 100, 65536),
                   rng.integers(-100, 100, 65536))
    out = benchmark(f, a, b, c)
    assert out.shape == (65536,)


def test_fig06_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "fig06_dpx_latency")
    paper_artefact("fig06_dpx_latency")
