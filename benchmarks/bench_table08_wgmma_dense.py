"""Table VIII — dense wgmma SS/RS × zero/rand (exp id T8 + X2)."""

from __future__ import annotations

import numpy as np

from repro.arch import get_device
from repro.core import run_experiment
from repro.isa import WgmmaInstruction
from repro.isa.dtypes import DType
from repro.tensorcore import TensorCoreTimingModel, wgmma_functional


def test_wgmma_functional_tile(benchmark):
    instr = WgmmaInstruction(DType.FP16, DType.FP32, 64)
    rng = np.random.default_rng(0)
    a = rng.normal(size=(64, 16))
    b = rng.normal(size=(16, 64))
    d = benchmark(wgmma_functional, instr, a, b)
    assert d.shape == (64, 64)


def test_wgmma_timing_sweep(benchmark):
    tm = TensorCoreTimingModel(get_device("H800"))

    def sweep():
        return [
            tm.wgmma(WgmmaInstruction(ab, cd, 256)).throughput_tflops(
                "rand")
            for ab, cd in ((DType.FP16, DType.FP16),
                           (DType.FP16, DType.FP32),
                           (DType.TF32, DType.FP32),
                           (DType.E4M3, DType.FP32),
                           (DType.INT8, DType.INT32))
        ]

    vals = benchmark(sweep)
    assert all(v > 0 for v in vals)


def test_table08_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table08_wgmma_dense")
    paper_artefact("table08_wgmma_dense")
