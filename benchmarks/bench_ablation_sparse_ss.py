"""Ablation 1 (DESIGN.md §4) — sparse-SS shared-memory pressure.

The claim: sparse wgmma's SS-mode deficit is *entirely* the unpruned-A
shared-memory traffic.  Removing that traffic (= the RS operand path)
restores latency to 128 cycles and throughput to the RS level.
"""

from __future__ import annotations

from repro.arch import get_device
from repro.isa import OperandSource, WgmmaInstruction
from repro.isa.dtypes import DType
from repro.tensorcore import TensorCoreTimingModel


def test_sparse_ss_penalty_is_unpruned_a_traffic(benchmark):
    tm = TensorCoreTimingModel(get_device("H800"))

    def measure():
        ss = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256,
                                       sparse=True,
                                       a_source=OperandSource.SHARED))
        rs = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256,
                                       sparse=True,
                                       a_source=OperandSource.REGISTER))
        return ss, rs

    ss, rs = benchmark(measure)
    extra_bytes = (ss.instr.shared_memory_bytes()
                   - rs.instr.shared_memory_bytes()
                   - ss.instr.m * ss.instr.k * 2)  # pruned-A equivalent
    smem_clk = extra_bytes / 128.0
    # with the traffic: +16 cycles and lower throughput
    assert ss.latency_clk - rs.latency_clk == smem_clk == 16.0
    assert ss.throughput_tflops() < rs.throughput_tflops()
    # ablated (RS path): deficit gone
    assert rs.latency_clk == 128.0
    assert rs.fraction_of_peak() > 0.95
