"""Benchmark-suite helpers.

Every benchmark regenerates one paper artefact through the experiment
registry, asserts the paper's qualitative findings still hold, and
prints the regenerated rows (visible with ``pytest -s`` or in the
benchmark's captured output).
"""

from __future__ import annotations

import pytest

from repro.core import run_experiment


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    """Keep benchmark runs off the user's real result cache."""
    monkeypatch.setenv("HOPPERDISSECT_CACHE_DIR",
                       str(tmp_path / "result-cache"))


@pytest.fixture
def paper_artefact():
    """Run a registered experiment, verify its checks, return result."""

    def _run(name: str):
        res = run_experiment(name)
        failed = [c for c in res.checks if not c.passed]
        assert not failed, "\n".join(c.render() for c in failed)
        print()
        print(res.render())
        return res

    return _run
