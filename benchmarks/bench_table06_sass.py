"""Table VI — PTX → SASS lowering on Hopper (exp id T6)."""

from __future__ import annotations

from repro.arch import Architecture
from repro.core import run_experiment
from repro.isa import sass_table


def test_sass_lowering_pass(benchmark):
    rows = benchmark(sass_table, Architecture.HOPPER)
    assert len(rows) == 10


def test_table06_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table06_sass")
    paper_artefact("table06_sass")
