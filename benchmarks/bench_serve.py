#!/usr/bin/env python
"""Batched query service vs a one-at-a-time point-query loop.

Usage::

    python benchmarks/bench_serve.py              # report
    python benchmarks/bench_serve.py --check      # CI gates
    python benchmarks/bench_serve.py \
        --merge BENCH_perf.current.json           # + record

Builds the acceptance workload — a 64-query JSONL batch spanning the
three paper devices (te.linear grids, mma/wgmma instructions, memory
chases, DSM probes, one unsupported-capability query) — and answers it
twice through :class:`~repro.serve.QueryService`:

* **sequential** — one ``answer()`` call per query, the way a naive
  client would use the oracle: every call plans, dispatches and
  expands a batch of one;
* **batched** — one ``answer_batch()`` over the whole stream, letting
  the planner coalesce same-(kind, device) queries onto single
  vectorized sweeps (one ``linear_seconds_batch``, one ``MmaSweep``).

Both passes run with the persistent cache off and fresh services, so
the comparison is pure batching (no tier ever hits); the bench
cross-checks that the prediction streams agree byte-for-byte before
reporting.  ``tests/test_serve_service.py`` pins the equivalence and
determinism claims, this script pins the *throughput* claim.

Gates (``--check``):

* batched throughput ``>= --min-speedup`` x the sequential loop
  (default 5x — the batching planner's reason to exist);
* warm point-query latency ``<= --max-point-ms`` (default 50 ms):
  best-observed single ``answer()`` on a service whose memo tier is
  warm — the interactive half of the service contract.

``--merge`` injects the two timings as ``serve_sequential`` /
``serve_batched`` pseudo-experiments into an existing
``BENCH_perf.json`` snapshot.

Also importable by pytest (``pytest benchmarks/``) for the
pytest-benchmark harness.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Tuple

from repro.serve import Query, QueryService, parse_query

_DEVICES = ("RTX4090", "A100", "H800")


def acceptance_batch() -> List[Query]:
    """The 64-query acceptance workload (deterministic, no RNG).

    Deliberately coalescing-friendly: mostly te.linear/mma/wgmma
    points that the planner folds onto single vectorized sweeps,
    spanning three devices, plus one unsupported-capability query
    (wgmma on V100) and one LLM query to keep the answer stream
    heterogeneous.  Unbatchable per-query simulations (e.g. the
    memory-latency chase) are benchmarked by ``bench_pchase.py``;
    here they would only add identical wall time to both passes.
    """
    queries: List[Query] = []
    for di, dev in enumerate(_DEVICES):
        for i in range(16):
            m = 256 * (1 + (i + di) % 16)
            queries.append(parse_query(
                {"kind": "te.linear", "device": dev,
                 "precision": "fp16",
                 "params": {"m": m, "n": m, "k": m}}))
        queries.append(parse_query(
            {"kind": "mma", "device": dev,
             "params": {"ab": "fp16", "cd": "fp32",
                        "m": 16, "n": 8, "k": 16}}))
        queries.append(parse_query(
            {"kind": "mma", "device": dev,
             "params": {"ab": "bf16", "cd": "fp32",
                        "m": 16, "n": 8, "k": 16}}))
    for n in (8, 16, 32, 64, 128, 256):
        queries.append(parse_query(
            {"kind": "wgmma", "device": "H800",
             "params": {"ab": "fp16", "cd": "fp32", "n": n}}))
    queries.append(parse_query(
        {"kind": "wgmma", "device": "V100",          # unsupported
         "params": {"ab": "fp16", "cd": "fp32", "n": 64}}))
    for cs in (2, 4):
        queries.append(parse_query(
            {"kind": "dsm.bandwidth", "device": "H800",
             "params": {"cluster_size": cs}}))
    queries.append(parse_query(
        {"kind": "llm.generate", "device": "H800",
         "precision": "fp8", "params": {"model": "llama-2-7B"}}))
    assert len(queries) == 64, len(queries)
    return queries


def _render(predictions) -> List[str]:
    return [p.to_line() for p in predictions]


def run_sequential(queries: List[Query],
                   repeat: int) -> Tuple[float, List[str]]:
    """One-at-a-time loop on a fresh service per pass (best-of)."""
    best = float("inf")
    lines: List[str] = []
    for _ in range(repeat):
        service = QueryService(cache=None)
        t0 = time.perf_counter()
        predictions = [service.answer(q) for q in queries]
        best = min(best, time.perf_counter() - t0)
        lines = _render(predictions)
    return best, lines


def run_batched(queries: List[Query],
                repeat: int) -> Tuple[float, List[str]]:
    """One coalesced batch on a fresh service per pass (best-of)."""
    best = float("inf")
    lines: List[str] = []
    for _ in range(repeat):
        service = QueryService(cache=None)
        t0 = time.perf_counter()
        predictions = service.answer_batch(queries)
        best = min(best, time.perf_counter() - t0)
        lines = _render(predictions)
    return best, lines


def warm_point_latency(repeat: int) -> float:
    """Best-observed warm ``answer()`` — the memo tier is hot, so this
    is the floor an interactive client sees on a repeated question."""
    service = QueryService(cache=None)
    query = parse_query(
        {"kind": "te.linear", "device": "H800", "precision": "fp16",
         "params": {"m": 4096, "n": 4096, "k": 4096}})
    service.answer(query)                    # warm the memo tier
    best = float("inf")
    for _ in range(max(repeat * 10, 10)):
        t0 = time.perf_counter()
        service.answer(query)
        best = min(best, time.perf_counter() - t0)
    return best


def merge_into_bench(path: Path, sequential_s: float,
                     batched_s: float) -> None:
    """Add both timings as pseudo-experiments to a bench snapshot."""
    data = json.loads(path.read_text())
    if data.get("schema") != 1:
        raise ValueError(
            f"{path}: unsupported bench schema {data.get('schema')!r}")
    exps = data.setdefault("experiments", {})
    exps["serve_sequential"] = {"cached": False,
                                "wall_s": round(sequential_s, 6)}
    exps["serve_batched"] = {"cached": False,
                             "wall_s": round(batched_s, 6)}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeat", type=int, default=3,
                    help="best-of-N timing (default: 3)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero unless both gates hold")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="batched-vs-sequential throughput the "
                         "--check gate requires (default: 5.0)")
    ap.add_argument("--max-point-ms", type=float, default=50.0,
                    help="warm point-query latency ceiling in ms "
                         "(default: 50)")
    ap.add_argument("--merge", default=None, metavar="BENCH.json",
                    help="inject serve_{sequential,batched} into an "
                         "existing BENCH_perf.json snapshot")
    args = ap.parse_args(argv)

    queries = acceptance_batch()
    sequential_s, seq_lines = run_sequential(queries, args.repeat)
    batched_s, batch_lines = run_batched(queries, args.repeat)
    if seq_lines != batch_lines:
        print("FAIL: batched and sequential predictions disagree",
              file=sys.stderr)
        return 1
    point_s = warm_point_latency(args.repeat)
    speedup = sequential_s / batched_s if batched_s else float("inf")
    print(f"{len(queries)} queries per pass "
          f"(best of {args.repeat}):")
    print(f"  one-at-a-time loop  {sequential_s * 1e3:8.2f} ms")
    print(f"  batched service     {batched_s * 1e3:8.2f} ms  "
          f"({speedup:.1f}x)")
    print(f"  warm point query    {point_s * 1e3:8.3f} ms")

    if args.merge:
        merge_into_bench(Path(args.merge), sequential_s, batched_s)
        print(f"merged into {args.merge}")

    failed = False
    if args.check and speedup < args.min_speedup:
        print(f"FAIL: batched speedup {speedup:.2f}x is below the "
              f"{args.min_speedup:.1f}x gate", file=sys.stderr)
        failed = True
    if args.check and point_s * 1e3 > args.max_point_ms:
        print(f"FAIL: warm point query {point_s * 1e3:.2f} ms is "
              f"over the {args.max_point_ms:.1f} ms ceiling",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


# -- pytest-benchmark entry points ----------------------------------------


def test_batched_matches_and_beats_sequential():
    queries = acceptance_batch()
    sequential_s, seq_lines = run_sequential(queries, 1)
    batched_s, batch_lines = run_batched(queries, 1)
    assert seq_lines == batch_lines
    assert batched_s < sequential_s


def test_bench_serve_sequential(benchmark):
    queries = acceptance_batch()
    benchmark(lambda: run_sequential(queries, 1))


def test_bench_serve_batched(benchmark):
    queries = acceptance_batch()
    benchmark(lambda: run_batched(queries, 1))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
