"""Table XIII — globalToShmemAsyncCopy on H800 (exp id T13)."""

from __future__ import annotations

from repro.arch import get_device
from repro.asynccopy import benchmark_table
from repro.core import run_experiment


def test_async_copy_grid_h800(benchmark):
    rows = benchmark(benchmark_table, get_device("H800"))
    assert len(rows) == 3


def test_table13_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table13_async_h800")
    paper_artefact("table13_async_h800")
