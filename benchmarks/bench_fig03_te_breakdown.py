"""Fig 3 — FP8 te.Linear operator time shares (exp id F3)."""

from __future__ import annotations

from repro.arch import get_device
from repro.core import run_experiment
from repro.te import CostModel, Precision


def test_fp8_linear_breakdown(benchmark):
    cm = CostModel(get_device("H800"))

    def breakdown():
        return [cm.linear(n, n, n, Precision.FP8)
                for n in (1024, 2048, 4096, 8192, 16384)]

    all_ops = benchmark(breakdown)
    assert all(len(ops) == 3 for ops in all_ops)


def test_fig03_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "fig03_te_breakdown")
    paper_artefact("fig03_te_breakdown")
