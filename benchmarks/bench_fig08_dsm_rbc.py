"""Fig 8 + §IV-E latency claim — DSM ring-based copy (exp ids F8, X1)."""

from __future__ import annotations

from repro.arch import get_device
from repro.core import run_experiment
from repro.dsm import RingCopyBenchmark, SmToSmNetwork


def test_rbc_sweep(benchmark):
    rbc = RingCopyBenchmark(get_device("H800"))
    res = benchmark(rbc.sweep)
    assert len(res) == 4 * 4 * 4


def test_rbc_functional_ring(benchmark):
    rbc = RingCopyBenchmark(get_device("H800"))
    ok = benchmark(rbc.run_functional, 8, 64)
    assert ok


def test_dsm_latency_claim():
    net = SmToSmNetwork(get_device("H800"))
    assert net.latency_clk == 180.0
    assert 0.31 <= net.latency_vs_l2 <= 0.33


def test_fig08_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "fig08_dsm_rbc")
    paper_artefact("fig08_dsm_rbc")
