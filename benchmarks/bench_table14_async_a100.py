"""Table XIV — globalToShmemAsyncCopy on A100 (exp id T14)."""

from __future__ import annotations

from repro.arch import get_device
from repro.asynccopy import benchmark_table
from repro.core import run_experiment


def test_async_copy_grid_a100(benchmark):
    rows = benchmark(benchmark_table, get_device("A100"))
    assert len(rows) == 3


def test_table14_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table14_async_a100")
    paper_artefact("table14_async_a100")
