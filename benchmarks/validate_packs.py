#!/usr/bin/env python
"""Validate every registered architecture pack and the golden pins.

Usage::

    PYTHONPATH=src python benchmarks/validate_packs.py
    PYTHONPATH=src python benchmarks/validate_packs.py --skip-golden

Three layers of checks, mirroring what the engines rely on:

1. **Schema** — every pack in the registry passes
   :func:`repro.arch.validate_pack`: all capability flags present and
   boolean, calibration tables complete for the capabilities the pack
   claims, no capability without the data the engines read for it.
2. **Registry coherence** — every registered device resolves a pack,
   the pack's tensor-core generation matches the device's
   ``TensorCoreSpec.generation``, and each ``Architecture`` member
   delegates to the pack of the same name.
3. **Golden pins** — the nine committed fixtures under
   ``tests/golden/`` re-render byte-for-byte, proving the data-plane
   refactor (and any pack edit) left the paper devices untouched.

Exit code 0 when everything validates; prints one line per layer.
CI runs this in the tier-1 job right after the test suite.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.arch import (  # noqa: E402
    Architecture,
    get_device,
    get_pack,
    list_devices,
    list_packs,
    validate_pack,
)

_GOLDEN_DIR = _REPO / "tests" / "golden"


def check_schemas() -> int:
    names = list_packs()
    for name in names:
        validate_pack(get_pack(name))
    print(f"OK: {len(names)} packs pass schema validation "
          f"({', '.join(names)})")
    return len(names)


def check_registry_coherence() -> int:
    devices = list_devices()
    for dev_name in devices:
        dev = get_device(dev_name)
        pack = dev.pack
        if pack is None:
            raise AssertionError(f"{dev_name}: no pack resolved")
        if pack.tensor_core_generation != dev.tensor_core.generation:
            raise AssertionError(
                f"{dev_name}: pack generation "
                f"{pack.tensor_core_generation} != spec generation "
                f"{dev.tensor_core.generation}")
    for arch in Architecture:
        if arch.pack.name != arch.value:
            raise AssertionError(
                f"{arch}: delegates to pack {arch.pack.name!r}")
    print(f"OK: {len(devices)} devices and {len(list(Architecture))} "
          "architectures resolve coherent packs")
    return len(devices)


def check_golden_pins() -> int:
    from repro.core import run_experiment

    fixtures = sorted(_GOLDEN_DIR.glob("*.txt"))
    if not fixtures:
        raise AssertionError(f"no golden fixtures in {_GOLDEN_DIR}")
    for fixture in fixtures:
        name = fixture.stem
        actual = run_experiment(name).render() + "\n"
        if actual != fixture.read_text():
            raise AssertionError(
                f"{name}: rendered output drifted from "
                f"tests/golden/{name}.txt — a pack edit moved a "
                "paper-device number")
    print(f"OK: {len(fixtures)} golden fixtures re-render "
          "byte-for-byte")
    return len(fixtures)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--skip-golden", action="store_true",
                    help="schema + coherence only (fast)")
    args = ap.parse_args(argv)
    check_schemas()
    check_registry_coherence()
    if not args.skip_golden:
        check_golden_pins()
    return 0


if __name__ == "__main__":
    sys.exit(main())
