"""Ablation 4 (DESIGN.md §4) — the 350 W power cap.

Lifting the H800-PCIe's power cap removes the Rand-vs-Zero wgmma
throughput gap entirely, confirming the paper's attribution of the
random-data slowdown to power throttling.
"""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.isa import WgmmaInstruction
from repro.isa.dtypes import DType
from repro.tensorcore import TensorCoreTimingModel


def _gap(device):
    tm = TensorCoreTimingModel(device)
    t = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256))
    return (t.throughput_tflops("zero"), t.throughput_tflops("rand"))


def test_power_cap_explains_rand_gap(benchmark):
    h800 = get_device("H800")
    zero, rand = benchmark(_gap, h800)
    assert rand < 0.95 * zero                       # capped: gap exists

    uncapped = h800.with_overrides(power_cap_watts=10_000.0)
    zero_u, rand_u = _gap(uncapped)
    assert rand_u == pytest.approx(zero_u, rel=1e-9)  # gap gone
    assert zero_u == pytest.approx(zero, rel=1e-9)    # zero unchanged
