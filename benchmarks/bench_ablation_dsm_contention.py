"""Ablation 3 (DESIGN.md §4) — DSM fabric contention.

With the contention coefficient zeroed (an ideal crossbar), Fig 8's
cluster-size throughput decline disappears — demonstrating that the
decline is a *shared-fabric* effect, not a per-link one.
"""

from __future__ import annotations

import pytest

import repro.dsm.network as netmod
from repro.arch import get_device
from repro.dsm import RingCopyBenchmark


def _best_by_cs(device):
    rbc = RingCopyBenchmark(device)
    return {cs: rbc.measure(cluster_size=cs, block_threads=1024,
                            ilp=8).aggregate_tbps
            for cs in (2, 4, 8, 16)}


def test_contention_drives_cluster_decline(benchmark, monkeypatch):
    h800 = get_device("H800")
    with_contention = benchmark(_best_by_cs, h800)
    assert with_contention[2] > with_contention[16] * 2

    monkeypatch.setattr(netmod, "_CONTENTION_ALPHA", 0.0)
    without = _best_by_cs(h800)
    # ideal crossbar: cluster size no longer matters (up to the ±2 %
    # wobble of how many SMs a cluster size can fully populate)
    vals = list(without.values())
    assert max(vals) == pytest.approx(min(vals), rel=0.02)
    assert without[16] > with_contention[16] * 2
