"""Table III — device property comparison (exp id T3)."""

from __future__ import annotations

from repro.core import run_experiment


def test_table03_devices(benchmark, paper_artefact):
    benchmark(run_experiment, "table03_devices")
    paper_artefact("table03_devices")
