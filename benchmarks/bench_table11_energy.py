"""Table XI — mma power and energy efficiency (exp id T11)."""

from __future__ import annotations

from repro.arch import get_device
from repro.core import run_experiment
from repro.isa import MatrixShape, MmaInstruction
from repro.isa.dtypes import DType
from repro.power import PowerModel
from repro.tensorcore import TensorCoreTimingModel


def test_power_report_grid(benchmark):
    devices = [get_device(d) for d in ("A100", "H800", "RTX4090")]
    grid = [
        (DType.FP16, DType.FP16, (16, 8, 16)),
        (DType.FP16, DType.FP32, (16, 8, 16)),
        (DType.TF32, DType.FP32, (16, 8, 8)),
        (DType.INT8, DType.INT32, (16, 8, 32)),
    ]

    def run():
        reports = []
        for dev in devices:
            tm = TensorCoreTimingModel(dev)
            pm = PowerModel(dev)
            for ab, cd, shape in grid:
                for sparse in (False, True):
                    t = tm.mma(MmaInstruction(ab, cd,
                                              MatrixShape(*shape),
                                              sparse=sparse))
                    reports.append(pm.report(
                        op="mma", ab=ab, cd=cd,
                        tflops=t.throughput_tflops("rand"),
                        sparse=sparse))
        return reports

    reports = benchmark(run)
    assert len(reports) == 24
    assert all(r.power_watts > 100 for r in reports)


def test_table11_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table11_energy")
    paper_artefact("table11_energy")
