"""Fig 7 — DPX throughput + block sawtooth (exp id F7)."""

from __future__ import annotations

from repro.arch import get_device
from repro.core import run_experiment
from repro.dpx import DPX_FUNCTIONS, DpxTimingModel, block_sweep, \
    get_dpx_function


def test_throughput_all_functions_all_devices(benchmark):
    models = [DpxTimingModel(get_device(d))
              for d in ("A100", "RTX4090", "H800")]

    def run():
        return [m.throughput_gops(fn)
                for m in models for fn in DPX_FUNCTIONS.values()]

    vals = benchmark(run)
    assert len(vals) == 3 * len(DPX_FUNCTIONS)


def test_block_sweep_sawtooth(benchmark):
    pts = benchmark(block_sweep, get_device("H800"),
                    get_dpx_function("__vimax3_s32"), 3)
    assert len(pts) >= 9


def test_fig07_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "fig07_dpx_throughput")
    paper_artefact("fig07_dpx_throughput")
