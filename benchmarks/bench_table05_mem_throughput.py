"""Table V — memory throughput at every level (exp id T5)."""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.core import run_experiment
from repro.memory import measure_throughputs


@pytest.mark.parametrize("device_name", ["RTX4090", "A100", "H800"])
def test_throughput_model(benchmark, device_name):
    out = benchmark(measure_throughputs, get_device(device_name))
    assert out["Shared (byte/clk/SM)"] == 128.0


def test_table05_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table05_mem_throughput")
    paper_artefact("table05_mem_throughput")
