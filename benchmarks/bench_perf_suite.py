"""The experiment suite itself as a benchmark (exp id PERF).

Times a cold full-suite run against a warm (result-cached) rerun and
asserts the cache actually pays for itself — the property the
``BENCH_perf.json`` trajectory records.
"""

from __future__ import annotations

import time

import pytest

from repro.perf import ResultCache, run_experiments

SUBSET = ["table03_devices", "table04_mem_latency", "table06_sass",
          "fig06_dpx_latency"]


def test_warm_cache_beats_cold(tmp_path):
    cache = ResultCache(tmp_path / "rc")
    t0 = time.perf_counter()
    cold = run_experiments(SUBSET, cache=cache)
    cold_s = time.perf_counter() - t0

    warm_cache = ResultCache(tmp_path / "rc")
    t0 = time.perf_counter()
    warm = run_experiments(SUBSET, cache=warm_cache)
    warm_s = time.perf_counter() - t0

    assert warm_cache.stats.hits == len(SUBSET)
    assert {n: r.render() for n, r in warm.results.items()} == \
        {n: r.render() for n, r in cold.results.items()}
    # the whole point of the cache: a warm rerun is much cheaper
    assert warm_s < cold_s / 2, (
        f"warm {warm_s:.3f}s not faster than cold {cold_s:.3f}s"
    )


def test_bench_cold_suite(benchmark, tmp_path):
    def cold():
        return run_experiments(SUBSET,
                               cache=ResultCache(tmp_path / "cold"))

    report = benchmark.pedantic(cold, rounds=1, iterations=1)
    assert report.passed


def test_bench_warm_suite(benchmark, tmp_path):
    run_experiments(SUBSET, cache=ResultCache(tmp_path / "warm"))

    def warm():
        return run_experiments(SUBSET,
                               cache=ResultCache(tmp_path / "warm"))

    report = benchmark(warm)
    assert report.passed
    assert all(t.cached for t in report.profiler.timings)


@pytest.mark.parametrize("jobs", [1, 2])
def test_bench_parallel_subset(benchmark, jobs):
    report = benchmark.pedantic(
        run_experiments, args=(SUBSET,), kwargs={"jobs": jobs},
        rounds=1, iterations=1,
    )
    assert report.passed
