#!/usr/bin/env python
"""CI gate: compare a fresh BENCH_perf.json against the committed one.

Usage::

    python benchmarks/check_perf_regression.py BASELINE CURRENT \
        [--threshold 3.0] [--floor-ms 50]

Exits non-zero when any experiment's fresh wall time exceeds
``threshold ×`` its baseline (both clamped up to the floor first — see
:func:`repro.perf.compare_bench`).

Either side may be a ``BENCH_perf_history.jsonl`` archive instead of a
snapshot — the latest archived entry is used.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf import (
    compare_bench,
    latest_bench_entry,
    load_bench_json,
)


def _load(path: str) -> dict:
    if path.endswith(".jsonl"):
        return latest_bench_entry(path)
    return load_bench_json(path)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline",
                    help="committed BENCH_perf.json (or .jsonl archive)")
    ap.add_argument("current",
                    help="freshly generated BENCH_perf.json "
                         "(or .jsonl archive)")
    ap.add_argument("--threshold", type=float, default=3.0,
                    help="allowed slowdown factor (default: 3.0)")
    ap.add_argument("--floor-ms", type=float, default=50.0,
                    help="clamp timings up to this before comparing "
                         "(default: 50ms)")
    args = ap.parse_args(argv)

    baseline = _load(args.baseline)
    current = _load(args.current)
    problems = compare_bench(baseline, current,
                             threshold=args.threshold,
                             floor_s=args.floor_ms / 1e3)
    if problems:
        print(f"{len(problems)} perf regression(s) vs {args.baseline}:")
        for p in problems:
            print(f"  {p}")
        return 1
    n = len(baseline.get("experiments", {}))
    print(f"no perf regressions across {n} experiments "
          f"(threshold {args.threshold:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
