"""Table VII — mma dense/sparse latency & throughput (exp id T7).

Also benchmarks the *functional* execution of an mma tile (the value
path a GEMM built on this simulator would take).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import get_device
from repro.core import run_experiment
from repro.isa import MatrixShape, MmaInstruction
from repro.isa.dtypes import DType
from repro.tensorcore import mma_functional


def test_mma_functional_tile(benchmark):
    instr = MmaInstruction(DType.FP16, DType.FP32,
                           MatrixShape(16, 8, 16))
    rng = np.random.default_rng(0)
    a = rng.normal(size=(16, 16))
    b = rng.normal(size=(16, 8))
    d = benchmark(mma_functional, instr, a, b)
    assert d.shape == (16, 8)


def test_mma_functional_fp16_accumulate(benchmark):
    instr = MmaInstruction(DType.FP16, DType.FP16,
                           MatrixShape(16, 8, 16))
    rng = np.random.default_rng(1)
    a = rng.normal(size=(16, 16))
    b = rng.normal(size=(16, 8))
    benchmark(mma_functional, instr, a, b)


def test_table07_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table07_mma")
    paper_artefact("table07_mma")
