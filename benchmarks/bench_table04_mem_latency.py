"""Table IV — P-chase memory latency (exp id T4).

Benchmarks the actual pointer-chase through the cache state machines
(the simulator's hot path) and regenerates the full table.
"""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.core import run_experiment
from repro.memory import PChase


@pytest.mark.parametrize("device_name", ["RTX4090", "A100", "H800"])
def test_pchase_l1(benchmark, device_name):
    p = PChase(get_device(device_name))
    res = benchmark(p.l1_latency, iters=2048)
    assert res.hits_at_level == 1.0


def test_pchase_l2_h800(benchmark):
    p = PChase(get_device("H800"))
    res = benchmark(p.l2_latency, array_kib=4096, iters=2048)
    assert res.hits_at_level == 1.0


def test_pchase_global_h800(benchmark, tiny_l2_h800):
    p = PChase(tiny_l2_h800)
    res = benchmark.pedantic(p.global_latency, kwargs={"iters": 2048},
                             rounds=1, iterations=1)
    assert res.hits_at_level > 0.99


@pytest.fixture
def tiny_l2_h800():
    from dataclasses import replace
    h = get_device("H800")
    return h.with_overrides(cache=replace(h.cache, l2_size_kib=4096))


def test_table04_artefact(benchmark, paper_artefact):
    benchmark.pedantic(run_experiment, args=("table04_mem_latency",),
                       rounds=1, iterations=1)
    paper_artefact("table04_mem_latency")
