"""Fig 9 — DSM histogram application (exp id F9)."""

from __future__ import annotations

import numpy as np

from repro.arch import get_device
from repro.core import run_experiment
from repro.dsm import DsmHistogram, HistogramConfig


def test_histogram_functional(benchmark):
    hist = DsmHistogram(get_device("H800"))
    data = np.random.default_rng(0).integers(0, 1024, 5000)
    cfg = HistogramConfig(1024, 4, 128)
    counts = benchmark(hist.compute, data, cfg)
    assert counts.sum() == 5000


def test_histogram_timing_sweep(benchmark):
    hist = DsmHistogram(get_device("H800"))
    res = benchmark(hist.sweep)
    assert len(res) == 5 * 4 * 2


def test_fig09_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "fig09_dsm_histogram")
    paper_artefact("fig09_dsm_histogram")
