"""Table X — wgmma throughput vs N (exp id T10)."""

from __future__ import annotations

from repro.arch import get_device
from repro.core import run_experiment
from repro.isa import OperandSource, WgmmaInstruction
from repro.isa.dtypes import DType
from repro.isa.mma import valid_wgmma_n
from repro.tensorcore import TensorCoreTimingModel


def test_full_n_sweep(benchmark):
    """Every legal N × {dense, sparse} × {SS, RS}: 128 timings."""
    tm = TensorCoreTimingModel(get_device("H800"))

    def sweep():
        out = []
        for n in valid_wgmma_n():
            for sparse in (False, True):
                for src in OperandSource:
                    t = tm.wgmma(WgmmaInstruction(
                        DType.FP16, DType.FP32, n, sparse=sparse,
                        a_source=src))
                    out.append(t.throughput_tflops())
        return out

    vals = benchmark(sweep)
    assert len(vals) == len(valid_wgmma_n()) * 4


def test_table10_artefact(benchmark, paper_artefact):
    benchmark(run_experiment, "table10_wgmma_nsweep")
    paper_artefact("table10_wgmma_nsweep")
