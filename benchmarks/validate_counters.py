#!/usr/bin/env python
"""Validate counter dumps against their declared schema.

Usage::

    python benchmarks/validate_counters.py COUNTERS.json [MORE ...]

Dispatches on the ``schema`` tag in each file:

* ``hopperdissect.counters/v1`` — the flat dump written by
  :meth:`repro.obs.ObsSession.write_counters_json`: exactly
  ``schema``/``context``/``counters`` keys, names mapping to
  non-negative integers, canonical serialization (sorted keys,
  compact separators, trailing newline).
* ``hopperdissect.counters/v2`` — the labeled dump written by
  :meth:`repro.obs.ObsSession.write_counters_v2`: run-level
  ``labels`` (string→string), ``experiments`` mapping experiment
  names to counter banks, an ``orchestration`` bank for counters
  fired outside any experiment, and canonical serialization in the
  v2 key order (schema, context, labels, experiments sorted by name,
  orchestration; counters in ``counter_sort_key`` order — histogram
  buckets numeric by bound, *not* plain ``sort_keys``).

Both banks are monotonic — a negative value means a broken merge.
Exit code 0 when every file validates; prints one summary line per
file.  CI runs this as the counter-schema smoke step next to
``validate_trace.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.counters import counter_sort_key  # noqa: E402

_SCHEMA_V1 = "hopperdissect.counters/v1"
_SCHEMA_V2 = "hopperdissect.counters/v2"
_KEYS_V1 = {"schema", "context", "counters"}
_KEYS_V2 = {"schema", "context", "labels", "experiments",
            "orchestration"}


def _check_bank(path: Path, where: str, counters, *,
                ordered: bool = True) -> int:
    if not isinstance(counters, dict):
        raise ValueError(f"{path}: {where} must be an object")
    for name, value in counters.items():
        if not name or not isinstance(name, str):
            raise ValueError(
                f"{path}: bad counter name {name!r} in {where}")
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            raise ValueError(
                f"{path}: counter {name!r} in {where} has "
                f"non-monotonic or non-integer value {value!r}")
    if ordered:
        names = list(counters)
        if names != sorted(names, key=counter_sort_key):
            raise ValueError(
                f"{path}: {where} not in canonical counter order")
    return len(counters)


def _check_context(path: Path, payload) -> None:
    ctx = payload["context"]
    if ctx is not None and not isinstance(ctx, str):
        raise ValueError(f"{path}: context must be a string or null")


def _validate_v1(path: Path, raw: str, payload: dict) -> int:
    if set(payload) != _KEYS_V1:
        raise ValueError(
            f"{path}: keys {sorted(payload)} != {sorted(_KEYS_V1)}")
    _check_context(path, payload)
    counters = payload["counters"]
    # v1 predates numeric bucket ordering — its canonical form is a
    # plain lexical sort, enforced by the re-serialization below
    _check_bank(path, "counters", counters, ordered=False)
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n"
    if raw != canonical:
        raise ValueError(
            f"{path}: not in canonical v1 form (sorted keys, compact "
            "separators, trailing newline)")
    return len(counters)


def _validate_v2(path: Path, raw: str, payload: dict) -> int:
    if set(payload) != _KEYS_V2:
        raise ValueError(
            f"{path}: keys {sorted(payload)} != {sorted(_KEYS_V2)}")
    _check_context(path, payload)
    labels = payload["labels"]
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()):
        raise ValueError(
            f"{path}: labels must map strings to strings")
    experiments = payload["experiments"]
    if not isinstance(experiments, dict):
        raise ValueError(f"{path}: experiments must be an object")
    total = 0
    for exp, bank in experiments.items():
        if not exp or not isinstance(exp, str):
            raise ValueError(f"{path}: bad experiment name {exp!r}")
        total += _check_bank(path, f"experiments[{exp!r}]", bank)
    if list(experiments) != sorted(experiments):
        raise ValueError(
            f"{path}: experiments not sorted by name")
    total += _check_bank(path, "orchestration",
                         payload["orchestration"])
    # v2 canonical form is the writer's exact key order — re-serialize
    # without re-sorting
    canonical = json.dumps(payload, sort_keys=False,
                           separators=(",", ":")) + "\n"
    if raw != canonical:
        raise ValueError(
            f"{path}: not in canonical v2 form (writer key order, "
            "compact separators, trailing newline)")
    return total


def validate(path: Path) -> int:
    raw = path.read_text()
    payload = json.loads(raw)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: top level must be an object")
    schema = payload.get("schema")
    if schema == _SCHEMA_V1:
        return _validate_v1(path, raw, payload)
    if schema == _SCHEMA_V2:
        return _validate_v2(path, raw, payload)
    raise ValueError(
        f"{path}: unknown schema {schema!r} (expected "
        f"{_SCHEMA_V1!r} or {_SCHEMA_V2!r})")


def main(argv) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: validate_counters.py COUNTERS [COUNTERS ...]",
              file=sys.stderr)
        return 2
    for arg in argv:
        n = validate(Path(arg))
        print(f"{arg}: OK ({n} counters)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
