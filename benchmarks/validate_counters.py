#!/usr/bin/env python
"""Validate a ``--counters-json`` dump against its declared schema.

Usage::

    python benchmarks/validate_counters.py COUNTERS.json [MORE ...]

Checks the ``hopperdissect.counters/v1`` shape written by
:meth:`repro.obs.ObsSession.write_counters_json`:

* top level is an object with exactly ``schema``, ``context`` and
  ``counters`` keys;
* ``schema`` is the version tag, ``context`` a run-context token
  string or ``null``;
* ``counters`` maps non-empty string names to non-negative integers
  (the bank is monotonic — a negative total means a broken merge);
* the file is canonical: re-serializing with sorted keys and compact
  separators reproduces it byte-for-byte, so two equal counter states
  always diff clean.

Exit code 0 when every file validates; prints one summary line per
file.  CI runs this as the counter-schema smoke step next to
``validate_trace.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_SCHEMA = "hopperdissect.counters/v1"
_KEYS = {"schema", "context", "counters"}


def validate(path: Path) -> int:
    raw = path.read_text()
    payload = json.loads(raw)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: top level must be an object")
    if set(payload) != _KEYS:
        raise ValueError(
            f"{path}: keys {sorted(payload)} != {sorted(_KEYS)}")
    if payload["schema"] != _SCHEMA:
        raise ValueError(
            f"{path}: schema {payload['schema']!r} != {_SCHEMA!r}")
    ctx = payload["context"]
    if ctx is not None and not isinstance(ctx, str):
        raise ValueError(f"{path}: context must be a string or null")
    counters = payload["counters"]
    if not isinstance(counters, dict):
        raise ValueError(f"{path}: counters must be an object")
    for name, value in counters.items():
        if not name or not isinstance(name, str):
            raise ValueError(f"{path}: bad counter name {name!r}")
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            raise ValueError(
                f"{path}: counter {name!r} has non-monotonic or "
                f"non-integer value {value!r}")
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n"
    if raw != canonical:
        raise ValueError(
            f"{path}: not in canonical form (sorted keys, compact "
            "separators, trailing newline)")
    return len(counters)


def main(argv) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: validate_counters.py COUNTERS [COUNTERS ...]",
              file=sys.stderr)
        return 2
    for arg in argv:
        n = validate(Path(arg))
        print(f"{arg}: OK ({n} counters)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
