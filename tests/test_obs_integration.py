"""End-to-end observability guarantees.

The three contracts this file pins down:

* **determinism** — counter dumps are byte-identical between a serial
  run and a ``jobs=N`` process-pool run of the same experiments,
* **zero effect when off** — results computed under an active session
  render identically to results computed with observability off,
* **consistency** — the counter bank agrees with the caches' own
  bookkeeping (what the "counters consistent with the tables"
  acceptance check means mechanically).
"""

from __future__ import annotations

import json

from repro.arch import get_device
from repro.cli import main
from repro.core.context import RunContext
from repro.core.registry import Experiment, get_experiment
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import ObsSession
from repro.obs import session as obs_session
from repro.perf import run_experiments

CHEAP = ["ext_coalescing", "ext_trace_simulator"]


class TestSerialParallelDeterminism:
    def _dump(self, jobs: int) -> str:
        session = ObsSession()
        ctx = session.bind(RunContext())
        with session.activate():
            run_experiments(CHEAP, jobs=jobs, cache=None,
                            context=ctx)
        return session.counters.dump()

    def test_counter_dumps_byte_identical(self):
        assert self._dump(1) == self._dump(2)

    def test_dump_is_nonempty(self):
        dump = json.loads(self._dump(1))
        assert dump.get("exp.completed") == len(CHEAP)
        assert any(k.startswith("sm.") for k in dump)


class TestOffMeansOff:
    def test_no_session_active_by_default(self):
        assert obs_session.ACTIVE is None
        assert obs_session.active_counters() is None
        assert obs_session.active_tracer() is None

    def test_results_identical_with_and_without_session(self):
        plain = run_experiments(CHEAP, cache=None).results
        session = ObsSession(trace=True)
        with session.activate():
            observed = run_experiments(CHEAP, cache=None).results
        for name in CHEAP:
            assert plain[name].table.render() \
                == observed[name].table.render()
            assert plain[name].checks == observed[name].checks

    def test_session_deactivates_on_exit(self):
        with ObsSession().activate():
            assert obs_session.ACTIVE is not None
        assert obs_session.ACTIVE is None

    def test_sessions_nest(self):
        outer = ObsSession()
        inner = ObsSession()
        with outer.activate():
            with inner.activate():
                assert obs_session.ACTIVE is inner
            assert obs_session.ACTIVE is outer


class TestCounterConsistency:
    def test_counters_match_cache_stats(self):
        session = ObsSession()
        with session.activate():
            mh = MemoryHierarchy(get_device("H800"))
            for i in range(256):
                mh.load((i % 64) * 128, 32, sm_id=0)
        c = session.counters
        l1 = mh.l1_for_sm(0)
        assert c.get("cache.l1.accesses") == l1.stats.accesses
        assert c.get("cache.l1.hits") == l1.stats.hits
        assert c.get("cache.l2.accesses") == mh.l2.stats.accesses
        assert c.get("mem.loads") == 256
        # every load lands in exactly one level's byte counter
        assert c.total("mem.bytes.") == 256 * 32

    def test_latency_histogram_covers_every_load(self):
        session = ObsSession()
        with session.activate():
            mh = MemoryHierarchy(get_device("A100"))
            for i in range(64):
                mh.load(i * 128, 32, sm_id=0)
        hist = session.counters.total("mem.latency.")
        assert hist == 64


class TestCliObservability:
    def test_stats_subcommand(self, capsys):
        assert main(["stats", "ext_coalescing"]) == 0
        out = capsys.readouterr().out
        assert "hardware counters" in out
        assert "exp.completed" in out

    def test_run_with_counters_flag(self, capsys):
        assert main(["run", "ext_coalescing", "--no-cache",
                     "--counters"]) == 0
        assert "hardware counters" in capsys.readouterr().out

    def test_run_trace_writes_perfetto_json(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["run", "ext_trace_simulator", "--no-cache",
                     "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        evs = payload["traceEvents"]
        assert evs and any(ev.get("cat") == "issue" for ev in evs)
        names = [ev["args"]["name"] for ev in evs
                 if ev["name"] == "process_name"]
        assert "sim" in names

    def test_trace_jsonl_variant(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["stats", "ext_coalescing", "--trace",
                     str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert lines and all(json.loads(l)["name"] for l in lines)


class TestDevicesAny:
    def _exp(self, **kw) -> Experiment:
        return Experiment(name="x", paper_ref="-", description="-",
                          builder=lambda ctx: None, **kw)

    def test_any_of_one_present_suffices(self):
        e = self._exp(devices_any=("RTX4090", "A100", "H800"))
        assert e.supports(RunContext(devices=("A100",)))
        assert e.supports(RunContext(devices=("H800", "RTX4090")))

    def test_any_of_none_present_fails(self):
        e = self._exp(devices_any=("A100",))
        assert not e.supports(RunContext(devices=("H800",)))

    def test_all_of_still_requires_every_device(self):
        e = self._exp(devices=("A100", "H800"))
        assert not e.supports(RunContext(devices=("A100",)))
        assert e.supports(RunContext(devices=("A100", "H800")))

    def test_pin_note_wording(self):
        assert "any of" in self._exp(devices_any=("A100",)).pin_note()
        assert "pinned to" in self._exp(devices=("A100",)).pin_note()
        assert self._exp().pin_note() == "no device pin"

    def test_cache_detection_runs_on_any_single_testbed_device(self):
        exp = get_experiment("ext_cache_detection")
        assert exp.devices is None
        assert set(exp.devices_any) == {"RTX4090", "A100", "H800",
                                        "B200", "V100"}
        for dev in ("RTX4090", "A100", "H800", "B200", "V100"):
            assert exp.supports(RunContext(devices=(dev,)))
