"""Determinism: every experiment is a pure function of its inputs.

Reproducibility is the product here — rerunning an artefact must give
byte-identical tables (no hidden global state, no unseeded RNG).
"""

from __future__ import annotations

import pytest

from repro.core import run_experiment

# a representative slice: one per subsystem, including the stateful
# ones (caches, clusters, RNG-using workloads)
_REPRESENTATIVE = [
    "table04_mem_latency",      # cache state machines
    "table07_mma",              # timing tables
    "table09_wgmma_sparse",     # power throttle path
    "table12_llm",              # workload models
    "table13_async_h800",       # pipeline model
    "fig08_dsm_rbc",            # network + functional cluster
    "fig09_dsm_histogram",      # occupancy + functional smem
    "ext_dpx_applications",     # RNG-seeded DP workloads
    "ext_fp8_accuracy",         # RNG-seeded numerics
    "ext_trace_simulator",      # the cycle engine
]


@pytest.mark.parametrize("name", _REPRESENTATIVE)
def test_experiment_is_deterministic(name):
    first = run_experiment(name)
    second = run_experiment(name)
    assert first.table.rows == second.table.rows
    assert [c.passed for c in first.checks] \
        == [c.passed for c in second.checks]
    assert [c.detail for c in first.checks] \
        == [c.detail for c in second.checks]


def test_fidelity_is_deterministic():
    from repro.core.fidelity import _table7
    a = _table7()
    b = _table7()
    assert [(e.label, e.model) for e in a.entries] \
        == [(e.label, e.model) for e in b.entries]
