"""Tests for the SM-to-SM network and cluster machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsm import Cluster, SmToSmNetwork
from repro.isa.lowering import UnsupportedInstruction


class TestNetwork:
    def test_hopper_only(self, a100, rtx4090, h800):
        SmToSmNetwork(h800)
        for d in (a100, rtx4090):
            with pytest.raises(UnsupportedInstruction):
                SmToSmNetwork(d)

    def test_latency_and_l2_comparison(self, h800):
        net = SmToSmNetwork(h800)
        assert net.latency_clk == 180.0
        assert net.latency_vs_l2 == pytest.approx(0.32, abs=0.01)

    def test_contention_decreases_bandwidth(self, h800):
        net = SmToSmNetwork(h800)
        bws = [net.effective_bytes_per_clk_sm(cs)
               for cs in (2, 4, 8, 16)]
        assert all(a > b for a, b in zip(bws, bws[1:]))

    def test_cluster_of_one_has_no_remote_bw(self, h800):
        assert SmToSmNetwork(h800).effective_bytes_per_clk_sm(1) == 0.0

    def test_cluster_size_bounds(self, h800):
        net = SmToSmNetwork(h800)
        with pytest.raises(ValueError):
            net.effective_bytes_per_clk_sm(0)
        with pytest.raises(ValueError, match="exceeds"):
            net.effective_bytes_per_clk_sm(17)

    def test_littles_law_injection(self, h800):
        net = SmToSmNetwork(h800)
        one = net.latency_bound_bytes_per_clk(warps=1, ilp=1)
        assert one == pytest.approx(128 / 180)
        assert net.latency_bound_bytes_per_clk(warps=4, ilp=2) \
            == pytest.approx(8 * one)
        with pytest.raises(ValueError):
            net.latency_bound_bytes_per_clk(warps=0, ilp=1)

    def test_aggregate_units(self, h800):
        net = SmToSmNetwork(h800)
        tbps = net.aggregate_bandwidth_tbps(2)
        per_sm = net.effective_bytes_per_clk_sm(2)
        assert tbps == pytest.approx(
            per_sm * h800.num_sms * h800.clocks.observed_hz / 1e12)


class TestCluster:
    def test_local_and_remote_handles(self, h800):
        c = Cluster(h800, cluster_size=4, smem_bytes_per_block=256)
        local = c.map_shared_rank(0, 0)
        remote = c.map_shared_rank(0, 2)
        assert not local.remote
        assert remote.remote

    def test_remote_write_lands_in_target_block(self, h800):
        c = Cluster(h800, cluster_size=4, smem_bytes_per_block=64)
        c.map_shared_rank(1, 3).write_u32(0, 777)
        assert c.block_smem(3).read_u32(0) == 777
        assert c.block_smem(1).read_u32(0) == 0

    def test_remote_atomic(self, h800):
        c = Cluster(h800, cluster_size=2, smem_bytes_per_block=16)
        h = c.map_shared_rank(0, 1)
        assert h.atomic_add_u32(4, 2) == 0
        assert h.atomic_add_u32(4, 3) == 2
        assert c.block_smem(1).read_u32(4) == 5

    def test_access_accounting(self, h800):
        c = Cluster(h800, cluster_size=2, smem_bytes_per_block=16)
        c.map_shared_rank(0, 0).read_u32(0)
        c.map_shared_rank(0, 1).read_u32(0)
        assert c.local_accesses == 1
        assert c.remote_accesses == 1
        # remote access costs the 180-cycle network trip
        assert c.access_cycles == pytest.approx(
            h800.mem_latencies.shared_clk + 180.0)
        c.reset_stats()
        assert c.total_accesses == 0

    def test_bulk_read_write(self, h800):
        c = Cluster(h800, cluster_size=2, smem_bytes_per_block=64)
        payload = np.arange(8, dtype=np.uint32)
        c.map_shared_rank(0, 1).write(0, payload)
        back = c.map_shared_rank(1, 1).read(0, 32).view(np.uint32)
        assert np.array_equal(back, payload)

    def test_rank_validation(self, h800):
        c = Cluster(h800, cluster_size=2, smem_bytes_per_block=16)
        with pytest.raises(IndexError):
            c.map_shared_rank(0, 2)
        with pytest.raises(IndexError):
            c.map_shared_rank(-1, 0)
        with pytest.raises(IndexError):
            c.block_smem(5)

    def test_cluster_size_validation(self, h800):
        with pytest.raises(ValueError):
            Cluster(h800, cluster_size=17, smem_bytes_per_block=64)
        with pytest.raises(ValueError):
            Cluster(h800, cluster_size=2, smem_bytes_per_block=0)
        with pytest.raises(ValueError, match="exceeds"):
            Cluster(h800, cluster_size=2,
                    smem_bytes_per_block=300 * 1024)
