"""Scalar-vs-vectorized equivalence properties.

The vectorized fast paths — :class:`TensorCoreTimingModel`'s
``mma_sweep``/``wgmma_sweep`` and the TE cost model's ``*_batch`` /
``op_seconds_grid`` walks — claim to be *bit-identical* to the scalar
reference implementations they replaced (``ScalarTensorCoreTimingModel``
and the per-point ``op_costs`` walks).  This suite makes that claim a
property, not a hope:

* Hypothesis generates random instruction/module grids (≥200 examples
  per property under the ``ci`` profile, derandomized so CI failures
  reproduce byte-for-byte).
* Cycle quantities (latencies, issue intervals) must match **exactly**.
* Throughputs and FP8 seconds must match within 2 ULP (in practice they
  are bit-equal too; the ULP bound documents the tolerance FP8 numerics
  are held to).
* Observability counter deltas (``tc.*``, ``te.op.*``) must be
  *identical* between a scalar walk and the batched sweep over the same
  grid.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.arch import get_device
from repro.fuzz.strategies import (
    mma_instructions,
    token_arrays,
    wgmma_instructions,
)
from repro.isa.dtypes import DType
from repro.isa.lowering import UnsupportedInstruction
from repro.isa.mma import MmaInstruction, WgmmaInstruction, mma_shapes
from repro.obs.session import ObsSession
from repro.te.cost import CostModel, Precision
from repro.te.modules import (
    DotProductAttention,
    LayerNorm,
    LayerNormMLP,
    Linear,
    RMSNorm,
    TransformerLayer,
    TransformerLayerConfig,
)
from repro.tensorcore.timing import (
    ScalarTensorCoreTimingModel,
    TensorCoreTimingModel,
)

# -- CI determinism ----------------------------------------------------------
#
# ≥200 examples per property; derandomize pins the example sequence so
# every CI run (and every local repro) executes the identical grid.

settings.register_profile("ci", max_examples=200, derandomize=True,
                          deadline=None)
settings.load_profile("ci")

_DEVICE_NAMES = ("A100", "RTX4090", "H800")


def _ulp_diff(a: float, b: float) -> float:
    """|a − b| measured in ULPs of the larger magnitude."""
    if a == b:
        return 0.0
    if math.isnan(a) and math.isnan(b):
        return 0.0
    u = math.ulp(max(abs(a), abs(b)))
    return abs(a - b) / u


def assert_ulp(a: float, b: float, bound: float = 2.0) -> None:
    assert _ulp_diff(a, b) <= bound, f"{a!r} vs {b!r} differ > {bound} ULP"


# -- strategies: shared with the runtime fuzzer's property suites ------------
# (mma_instructions / wgmma_instructions / token_arrays now live in
# repro.fuzz.strategies, imported above — structurally identical, so
# the derandomized ci example sequences are unchanged)

# -- tensor-core sweeps -------------------------------------------------------


@given(name=st.sampled_from(_DEVICE_NAMES),
       instrs=st.lists(mma_instructions(), min_size=1, max_size=8))
def test_mma_sweep_matches_scalar(name, instrs):
    device = get_device(name)
    scalar = ScalarTensorCoreTimingModel(device)
    timings = []
    s_sess = ObsSession()
    with s_sess.activate():
        for instr in instrs:
            try:
                t = scalar.mma(instr)
                t.latency_clk, t.throughput_tflops("rand")
            except (UnsupportedInstruction, KeyError, ValueError):
                assume(False)
            timings.append(t)

    v_sess = ObsSession()
    with v_sess.activate():
        sweep = TensorCoreTimingModel(device).mma_sweep(instrs)

    assert len(sweep) == len(instrs)
    for t, entry in zip(timings, sweep):
        # cycle quantities: exact
        assert entry.latency_clk == t.latency_clk
        assert entry.issue_interval_clk == t.issue_interval_clk
        # throughputs: ULP-bounded (bit-equal in practice)
        assert_ulp(entry.throughput_tflops("zero"),
                   t.throughput_tflops("zero"))
        assert_ulp(entry.throughput_tflops("rand"),
                   t.throughput_tflops("rand"))
        try:
            frac = t.fraction_of_peak()
        except KeyError:
            frac = None
        if frac is not None:
            assert_ulp(entry.fraction_of_peak(), frac)
    # counter parity: a scalar walk and one batched sweep over the same
    # grid must report identical tc.* deltas
    assert s_sess.counters.as_dict() == v_sess.counters.as_dict()


@given(instrs=st.lists(wgmma_instructions(), min_size=1, max_size=8))
def test_wgmma_sweep_matches_scalar(instrs):
    device = get_device("H800")
    scalar = ScalarTensorCoreTimingModel(device)
    timings = []
    s_sess = ObsSession()
    with s_sess.activate():
        for instr in instrs:
            try:
                t = scalar.wgmma(instr)
                t.latency_clk, t.throughput_tflops("rand")
            except (UnsupportedInstruction, KeyError, ValueError):
                assume(False)
            timings.append(t)

    v_sess = ObsSession()
    with v_sess.activate():
        sweep = TensorCoreTimingModel(device).wgmma_sweep(instrs)

    for t, entry in zip(timings, sweep):
        assert entry.latency_clk == t.latency_clk
        assert entry.issue_interval_clk == t.issue_interval_clk
        assert_ulp(entry.throughput_tflops("zero"),
                   t.throughput_tflops("zero"))
        assert_ulp(entry.throughput_tflops("rand"),
                   t.throughput_tflops("rand"))
        assert_ulp(entry.fraction_of_peak("zero"),
                   t.fraction_of_peak("zero"))
        assert_ulp(entry.fraction_of_peak("rand"),
                   t.fraction_of_peak("rand"))
    assert s_sess.counters.as_dict() == v_sess.counters.as_dict()


def test_wgmma_sweep_rejects_non_hopper():
    with pytest.raises(UnsupportedInstruction):
        TensorCoreTimingModel(get_device("A100")).wgmma_sweep(
            [WgmmaInstruction(DType.FP16, DType.FP32, 64)])


def test_sweep_entries_are_views():
    """Indexing a sweep yields the duck-typed per-instruction view."""
    device = get_device("H800")
    instr = MmaInstruction(DType.FP16, DType.FP32,
                           mma_shapes(DType.FP16)[1])
    sweep = TensorCoreTimingModel(device).mma_sweep([instr])
    entry = sweep[0]
    assert entry.throughput_tflops() == entry.throughput_tflops("zero")
    assert entry.fraction_of_peak("rand") == entry.frac_rand
    assert len(sweep) == 1
    assert isinstance(sweep.throughput_tflops("rand"), np.ndarray)


# -- TE cost model ------------------------------------------------------------


def _cost_model(draw_name: str, precision: Precision) -> CostModel:
    cm = CostModel(get_device(draw_name))
    try:
        cm.gemm_tflops(precision)
        # attention always prices its GEMMs at the FP16 rate — warm it
        # here, outside any ObsSession, so counter-parity comparisons
        # see only the walk under test (rate pricing is lazily cached
        # and would otherwise bill its tc.* counters to whichever
        # session happens to run first)
        cm.gemm_tflops(Precision.FP16)
    except ValueError:
        assume(False)
    return cm


@given(name=st.sampled_from(_DEVICE_NAMES),
       precision=st.sampled_from(sorted(Precision,
                                        key=lambda p: p.value)),
       ns=st.lists(st.integers(min_value=1, max_value=20000),
                   min_size=1, max_size=6).map(np.asarray))
def test_linear_tflops_batch_matches_scalar(name, precision, ns):
    cm = _cost_model(name, precision)
    batch = cm.linear_tflops_batch(ns, precision)
    for n, v in zip(ns.tolist(), batch.tolist()):
        scalar = cm.linear_tflops(n, precision)
        if precision is Precision.FP8:
            assert_ulp(v, scalar)
        else:
            assert v == scalar


@given(name=st.sampled_from(_DEVICE_NAMES),
       precision=st.sampled_from(sorted(Precision,
                                        key=lambda p: p.value)),
       cache=st.booleans(),
       m=st.integers(1, 65536), n=st.integers(1, 65536),
       k=st.integers(1, 65536))
def test_linear_breakdown_batch_matches_scalar(name, precision, cache,
                                               m, n, k):
    cm = _cost_model(name, precision)
    ops = cm.linear(m, n, k, precision, cache_weight_cast=cache)
    parts = cm.linear_breakdown_batch(
        np.asarray([m]), np.asarray([n]), np.asarray([k]), precision,
        cache_weight_cast=cache)
    assert [name for name, _ in parts] == [o.name for o in ops]
    for (_, secs), op in zip(parts, ops):
        if precision is Precision.FP8:
            assert_ulp(float(secs[0]), op.seconds)
        else:
            assert float(secs[0]) == op.seconds


@given(name=st.sampled_from(_DEVICE_NAMES),
       precision=st.sampled_from(sorted(Precision,
                                        key=lambda p: p.value)),
       tokens=token_arrays,
       features=st.integers(min_value=1, max_value=16384),
       out_features=st.integers(min_value=1, max_value=16384))
def test_module_grids_match_scalar_walk(name, precision, tokens,
                                        features, out_features):
    cm = _cost_model(name, precision)
    modules = [
        Linear(features, out_features, bias=False),
        LayerNorm(features),
        RMSNorm(features),
        LayerNormMLP(1024, 2816),
    ]
    for module in modules:
        s_sess = ObsSession()
        with s_sess.activate():
            ref = module.seconds_grid_scalar(cm, tokens, precision)
        v_sess = ObsSession()
        with v_sess.activate():
            grid = module.seconds_grid(cm, tokens, precision)
        for a, b in zip(grid.tolist(), ref.tolist()):
            if precision is Precision.FP8:
                assert_ulp(a, b)
            else:
                assert a == b
        assert s_sess.counters.as_dict() == v_sess.counters.as_dict()


@given(precision=st.sampled_from(sorted(Precision,
                                        key=lambda p: p.value)),
       batch=st.integers(min_value=1, max_value=64),
       tokens=token_arrays)
def test_attention_grid_matches_scalar(precision, batch, tokens):
    cm = _cost_model("H800", precision)
    att = DotProductAttention(16, 128)
    ref = att.seconds_grid_scalar(cm, tokens, precision, batch=batch)
    grid = att.seconds_grid(cm, tokens, precision, batch=batch)
    assert np.array_equal(grid, ref)


@given(name=st.sampled_from(_DEVICE_NAMES),
       precision=st.sampled_from(sorted(Precision,
                                        key=lambda p: p.value)),
       hidden=st.sampled_from(
           sorted(TransformerLayerConfig.PAPER_CONFIGS)),
       batch=st.integers(min_value=1, max_value=16),
       seq=st.integers(min_value=1, max_value=4096))
def test_transformer_layer_grid_matches_scalar(name, precision, hidden,
                                               batch, seq):
    cm = _cost_model(name, precision)
    layer = TransformerLayer(TransformerLayerConfig.PAPER_CONFIGS[hidden])
    s_sess = ObsSession()
    with s_sess.activate():
        ref = layer.latency_ms(cm, batch=batch, seq=seq,
                               precision=precision)
    v_sess = ObsSession()
    with v_sess.activate():
        grid = float(layer.latency_ms_grid(cm, batch=batch, seq=seq,
                                           precision=precision))
    if precision is Precision.FP8:
        assert_ulp(grid, ref)
    else:
        assert grid == ref
    assert s_sess.counters.as_dict() == v_sess.counters.as_dict()


def test_transformer_layer_grid_broadcasts():
    """(batch, seq) arrays broadcast into a full latency surface."""
    cm = CostModel(get_device("H800"))
    layer = TransformerLayer(TransformerLayerConfig.PAPER_CONFIGS[1024])
    batches = np.asarray([1, 4, 8])[:, None]
    seqs = np.asarray([128, 512])[None, :]
    surface = layer.latency_ms_grid(cm, batch=batches, seq=seqs,
                                    precision=Precision.FP16)
    assert surface.shape == (3, 2)
    for i, b in enumerate((1, 4, 8)):
        for j, s in enumerate((128, 512)):
            assert surface[i, j] == layer.latency_ms(
                cm, batch=b, seq=s, precision=Precision.FP16)


# -- LLM workload -------------------------------------------------------------


@given(precision=st.sampled_from((Precision.FP32, Precision.BF16,
                                  Precision.FP8)),
       name=st.sampled_from(_DEVICE_NAMES),
       seed=st.integers(min_value=0, max_value=31),
       batch=st.integers(min_value=1, max_value=16))
def test_estimate_workload_matches_scalar(precision, name, seed, batch):
    from repro.te.llm import LLAMA_MODELS, LlmInferenceModel

    m = LlmInferenceModel(get_device(name))
    model = LLAMA_MODELS["llama-3B"]
    ref = m.estimate_workload_scalar(model, precision,
                                     n_requests=24, batch=batch,
                                     seed=seed)
    vec = m.estimate_workload(model, precision, n_requests=24,
                              batch=batch, seed=seed)
    assert vec.status == ref.status
    if ref.status == "ok":
        assert vec.tokens_per_second == ref.tokens_per_second
